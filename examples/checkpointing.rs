//! Checkpointing workflow: train LC-Rec once, save the weights, and later
//! restore them into a freshly built model for pure inference — the
//! deployment path a downstream user of this library would take.
//!
//! ```text
//! cargo run --release --example checkpointing
//! ```

use lc_rec::prelude::*;

fn build(ds: &Dataset) -> LcRec {
    let mut enc = TextEncoder::new(32, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(32, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 12;
    rq.hidden = vec![24];
    rq.epochs = 15;
    // Deterministic: the same config + dataset rebuilds identical indices,
    // so a weights-only checkpoint fully restores the model.
    let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
    let mut cfg = LcRecConfig::test();
    cfg.train.epochs = 2;
    cfg.train.max_steps = Some(150);
    LcRec::build(ds, indices, cfg)
}

fn main() {
    let ds = Dataset::generate(&DatasetConfig::tiny());

    // Train and checkpoint.
    let mut trained = build(&ds);
    let losses = trained.fit(&ds);
    println!("trained {} epochs, final loss {:.3}", losses.len(), losses.last().expect("epochs"));
    let path = std::env::temp_dir().join("lcrec_demo.ckpt");
    let mut file = std::fs::File::create(&path).expect("create checkpoint");
    trained.save(&mut file).expect("save");
    let bytes = std::fs::metadata(&path).expect("stat").len();
    println!("checkpoint written: {} ({bytes} bytes)", path.display());

    // Restore into a fresh, untrained model.
    let mut restored = build(&ds);
    let mut file = std::fs::File::open(&path).expect("open checkpoint");
    let n = restored.load(&mut file).expect("load");
    println!("restored {n} parameter tensors");

    // Identical recommendations prove the round trip.
    let builder = InstructionBuilder::new(&ds);
    let (history, _) = ds.test_example(0);
    let a: Vec<u32> = trained
        .recommend_prompt(&builder.seq_eval_prompt(history), 5)
        .into_iter()
        .map(|h| h.item)
        .collect();
    let b: Vec<u32> = restored
        .recommend_prompt(&builder.seq_eval_prompt(history), 5)
        .into_iter()
        .map(|h| h.item)
        .collect();
    assert_eq!(a, b, "restored model must reproduce recommendations");
    println!("recommendations after restore match: {a:?}");
    let _ = std::fs::remove_file(&path);
}
