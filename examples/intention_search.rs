//! Intention-based retrieval scenario (paper §III-C3b, Figure 3): a user
//! describes what they want in natural language; LC-Rec generates items
//! directly from the whole catalog — no candidate set.
//!
//! ```text
//! cargo run --release --example intention_search
//! ```

use lc_rec::prelude::*;

fn main() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut encoder = TextEncoder::new(32, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let embeddings = encoder.encode_batch(texts.iter().map(String::as_str));

    let mut rq = RqVaeConfig::small(32, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 12;
    rq.hidden = vec![24];
    rq.epochs = 20;
    let indices = build_indices(IndexerKind::LcRec, &embeddings, &rq);

    let mut cfg = LcRecConfig::test();
    cfg.train.epochs = 3;
    cfg.train.max_steps = Some(250);
    let mut model = LcRec::build(&ds, indices, cfg);
    model.fit(&ds);

    // A user query in the style the GPT-3.5 oracle produces.
    let gen = TextGen::new(ds.catalog.taxonomy);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(4);
    let probe_item = 5u32;
    let query = gen.intention(&ds.catalog.item(probe_item).profile, &mut rng);
    println!("user query: {query:?}");
    println!("(generated from item {probe_item}: {})\n", ds.catalog.item(probe_item).title);

    let prompt = vec![Seg::Text(format!(
        "suppose you are a search engine a user searches for the following can you select an item that answers the query {query}"
    ))];
    let results = model.recommend_prompt(&prompt, 10);
    println!("LC-Rec retrieves (full catalog, constrained beam search):");
    for (rank, hyp) in results.iter().take(5).enumerate() {
        let item = ds.catalog.item(hyp.item);
        let marker = if hyp.item == probe_item { "  <-- query source" } else { "" };
        println!("  #{rank}: [{:>6.2}] {}{marker}", hyp.logprob, item.title);
    }

    // Personalized variant: same intention plus an interaction history.
    let (history, _) = ds.test_example(3);
    let prompt = vec![
        Seg::Text("as a recommender system you are assisting a user who recently interacted with these items and now wants an item with the following characteristics please recommend one".into()),
        Seg::Items(history.to_vec()),
        Seg::Text(query),
    ];
    let personalized = model.recommend_prompt(&prompt, 10);
    println!("\nwith user 3's history blended in:");
    for (rank, hyp) in personalized.iter().take(3).enumerate() {
        println!("  #{rank}: {}", ds.catalog.item(hyp.item).title);
    }
}
