//! Quickstart: the full LC-Rec pipeline on a small synthetic dataset.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Steps: generate data → embed item text → learn semantic item indices
//! (RQ-VAE + uniform semantic mapping) → alignment-tune the LM → recommend
//! with trie-constrained beam search → evaluate HR/NDCG.

use lc_rec::prelude::*;

fn main() {
    // 1. A small synthetic catalog + interaction log (Amazon-like; see
    //    DESIGN.md for the substitution rationale).
    let ds = Dataset::generate(&DatasetConfig::tiny());
    println!("dataset: {}", ds.stats());

    // 2. Item text embeddings (title + description, mean-pooled).
    let mut encoder = TextEncoder::new(32, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let embeddings = encoder.encode_batch(texts.iter().map(String::as_str));

    // 3. Learn tree-structured semantic IDs.
    let mut rq = RqVaeConfig::small(32, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 12;
    rq.hidden = vec![24];
    rq.epochs = 20;
    let indices = build_indices(IndexerKind::LcRec, &embeddings, &rq);
    println!(
        "indices: {} items, {} levels, {} extra vocabulary tokens, conflicts: {}",
        indices.len(),
        indices.levels,
        indices.vocab_tokens(),
        indices.conflicts()
    );
    println!("example item 0 -> {}", indices.format(0));

    // 4. Alignment tuning on all five task families (§III-C).
    let mut cfg = LcRecConfig::test();
    cfg.train.epochs = 3;
    cfg.train.max_steps = Some(200);
    let mut model = LcRec::build(&ds, indices, cfg);
    let losses = model.fit(&ds);
    println!("tuning losses per epoch: {losses:?}");

    // 5. Recommend for one user and evaluate over all users.
    let builder = InstructionBuilder::new(&ds);
    let (history, target) = ds.test_example(0);
    let recs = model.recommend_prompt(&builder.seq_eval_prompt(history), 10);
    println!("\nuser 0 history: {history:?} (held-out target: {target})");
    for (rank, hyp) in recs.iter().take(5).enumerate() {
        println!(
            "  #{rank}: item {:>3}  logp {:>7.3}  {}",
            hyp.item,
            hyp.logprob,
            ds.catalog.item(hyp.item).title
        );
    }

    let ranker = LcRecRanker { model: &model, builder: InstructionBuilder::new(&ds), template: 0 };
    let metrics = evaluate_test(&ranker, &ds, 20);
    println!(
        "\nfull-ranking test metrics over {} users: HR@1 {:.4}  HR@5 {:.4}  HR@10 {:.4}  NDCG@10 {:.4}",
        metrics.count, metrics.hr1, metrics.hr5, metrics.hr10, metrics.ndcg10
    );
}
