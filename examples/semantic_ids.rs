//! Catalog-organization scenario: inspect what the learned semantic IDs
//! capture — the paper's "meaningful, unique, extensible" indexing claims.
//!
//! ```text
//! cargo run --release --example semantic_ids
//! ```
//!
//! Trains the RQ-VAE on a synthetic catalog, then shows (a) that items of
//! the same category share index prefixes (meaningful), (b) that no two
//! items collide (unique, thanks to uniform semantic mapping), and (c) how
//! a *new* item is indexed without retraining (extensible — the cold-start
//! property the paper motivates).

use lc_rec::prelude::*;
use std::collections::{BTreeMap, HashMap};

fn main() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut encoder = TextEncoder::new(32, 7);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let embeddings = encoder.encode_batch(texts.iter().map(String::as_str));

    let mut cfg = RqVaeConfig::small(32, ds.num_items());
    cfg.levels = 3;
    cfg.codebook_size = 8;
    cfg.latent_dim = 12;
    cfg.hidden = vec![24];
    cfg.epochs = 25;
    let mut model = RqVae::new(cfg);
    let report = model.train(&embeddings);
    println!(
        "RQ-VAE trained: loss {:.4} -> {:.4} over {} epochs",
        report.epoch_losses[0],
        report.epoch_losses.last().expect("non-empty"),
        report.epoch_losses.len()
    );

    let indices = model.build_indices(&embeddings);
    println!("conflicts after uniform semantic mapping: {}", indices.conflicts());

    // (a) Meaningful: first-level code purity per category. BTreeMap so the
    // per-category lines print in a stable order run to run.
    let mut by_sub: BTreeMap<usize, Vec<u16>> = BTreeMap::new();
    for item in &ds.catalog.items {
        by_sub.entry(ds.catalog.sub_of(item.id)).or_default().push(indices.of(item.id)[0]);
    }
    println!("\nfirst-level code distribution per category:");
    for (sub, codes) in &by_sub {
        let mut counts: HashMap<u16, usize> = HashMap::new();
        for &c in codes {
            *counts.entry(c).or_default() += 1;
        }
        let mut top: Vec<(u16, usize)> = counts.into_iter().collect(); // lint: allow(det, reason = "fully sorted on the next line with a total order (count desc, then code)")
        top.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let name = ds.catalog.taxonomy.sub(*sub).name;
        let purity = top[0].1 as f32 / codes.len() as f32;
        println!("  {name:<16} majority code <a_{}> covers {:.0}%", top[0].0, purity * 100.0);
    }
    println!(
        "\nprefix sharing: depth1 {:.3}, depth2 {:.3}, depth3 {:.3} (coarse → fine)",
        indices.prefix_sharing(1),
        indices.prefix_sharing(2),
        indices.prefix_sharing(3)
    );

    // (c) Extensible: index a brand-new item from its text alone.
    let new_text = "alpha crimson widget deluxe 99 the alpha red widget delivers shiny gizmo";
    let new_emb = encoder.encode(new_text);
    let z = model.encode(&Tensor::new(&[1, 32], new_emb));
    let (codes, _) = model.quantize_greedy(&z);
    println!("\nnew item {new_text:?}");
    println!("  cold-start index: {:?} (no retraining needed)", codes[0]);

    // Which existing items share its first-level code?
    let neighbours: Vec<&str> = ds
        .catalog
        .items
        .iter()
        .filter(|i| indices.of(i.id)[0] == codes[0][0])
        .take(3)
        .map(|i| i.title.as_str())
        .collect();
    println!("  level-1 neighbours: {neighbours:?}");
}
