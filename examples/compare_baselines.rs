//! Head-to-head: LC-Rec versus a classic ID-based recommender (SASRec) and
//! a generative semantic-ID baseline (TIGER) on the same dataset — a
//! miniature of the paper's Table III.
//!
//! ```text
//! cargo run --release --example compare_baselines
//! ```

use lc_rec::prelude::*;

fn main() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    println!("dataset: {}\n", ds.stats());

    // --- SASRec (ID-only collaborative baseline) -------------------------
    let mut rec_cfg = RecConfig::test();
    rec_cfg.epochs = 8;
    let pairs = TrainingPairs::build(&ds, rec_cfg.max_len);
    let mut sasrec = SasRec::new(ds.num_items(), rec_cfg);
    sasrec.fit(&pairs);
    let sas_metrics = evaluate_test(&ScoreRanker(&sasrec), &ds, 20);

    // --- Shared semantic indices for the generative models ---------------
    let mut encoder = TextEncoder::new(32, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let embeddings = encoder.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(32, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 12;
    rq.hidden = vec![24];
    rq.epochs = 20;
    let indices = build_indices(IndexerKind::LcRec, &embeddings, &rq);

    // --- TIGER (semantic IDs, no language alignment) ---------------------
    let mut tiger = Tiger::new(indices.clone(), TigerConfig::test());
    tiger.fit(&ds);
    let tiger_metrics = evaluate_test(&tiger, &ds, 20);

    // --- LC-Rec (semantic IDs + language alignment) ----------------------
    let mut cfg = LcRecConfig::test();
    cfg.train.epochs = 3;
    cfg.train.max_steps = Some(250);
    let mut lcrec = LcRec::build(&ds, indices, cfg);
    lcrec.fit(&ds);
    let ranker = LcRecRanker { model: &lcrec, builder: InstructionBuilder::new(&ds), template: 0 };
    let lcrec_metrics = evaluate_test(&ranker, &ds, 20);

    println!("{:<10} {:>7} {:>7} {:>7} {:>8} {:>8}", "model", "HR@1", "HR@5", "HR@10", "NDCG@5", "NDCG@10");
    for (name, m) in [
        ("SASRec", sas_metrics),
        ("TIGER", tiger_metrics),
        ("LC-Rec", lcrec_metrics),
    ] {
        println!(
            "{:<10} {:>7.4} {:>7.4} {:>7.4} {:>8.4} {:>8.4}",
            name, m.hr1, m.hr5, m.hr10, m.ndcg5, m.ndcg10
        );
    }
    println!("\n(tiny-scale demo; `repro --exp table3 --scale small` regenerates the full table)");
}
