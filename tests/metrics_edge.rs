//! Edge-case pins for `eval::metrics`: empty inputs, k beyond the candidate
//! list, duplicate items in a ranked list, and NDCG tie/rounding behavior.
//! Where current behavior is sane it is pinned; the one genuine panic found
//! (`top_k` on an empty / fully-filtered candidate set) is fixed and
//! regression-tested here.

use lc_rec::eval::metrics::{hit_at, mrr_at, ndcg_at, rank_of, top_k, top_k_filtered};
use lc_rec::eval::RankingMetrics;

#[test]
fn empty_ranked_list_scores_zero_everywhere() {
    // "Empty ground truth" in our leave-one-out protocol: the ranker
    // returned nothing. Every metric is 0, the example still counts.
    let ranked: Vec<u32> = Vec::new();
    assert_eq!(rank_of(&ranked, 3), None);
    assert_eq!(hit_at(&ranked, 3, 10), 0.0);
    assert_eq!(ndcg_at(&ranked, 3, 10), 0.0);
    assert_eq!(mrr_at(&ranked, 3, 10), 0.0);
    let mut m = RankingMetrics::default();
    m.push(&ranked, 3);
    let f = m.finalize();
    assert_eq!(f.as_row(), [0.0; 5]);
    assert_eq!(f.count, 1, "an empty ranking still counts as an evaluated example");
}

#[test]
fn k_zero_never_hits() {
    assert_eq!(hit_at(&[3, 1, 2], 3, 0), 0.0);
    assert_eq!(ndcg_at(&[3, 1, 2], 3, 0), 0.0);
    assert_eq!(mrr_at(&[3, 1, 2], 3, 0), 0.0);
}

#[test]
fn k_larger_than_candidate_list_clamps() {
    // 3 candidates, k = 10: metrics treat the short list as-is.
    let ranked = vec![7u32, 3, 9];
    assert_eq!(hit_at(&ranked, 9, 10), 1.0);
    assert_eq!(ndcg_at(&ranked, 9, 10), 1.0 / 4.0f64.log2());
    // top_k with k beyond the scored set returns everything, ranked.
    let scores = vec![0.1f32, 0.9, 0.5];
    assert_eq!(top_k(&scores, 10), vec![1, 2, 0]);
}

#[test]
fn duplicate_items_rank_at_first_occurrence() {
    // A generative ranker can emit the same item twice; the metrics must
    // credit the *best* (first) position and not double-count.
    let ranked = vec![5u32, 8, 5, 8, 2];
    assert_eq!(rank_of(&ranked, 8), Some(1));
    assert_eq!(hit_at(&ranked, 8, 2), 1.0);
    assert_eq!(ndcg_at(&ranked, 8, 5), 1.0 / 3.0f64.log2());
    let mut m = RankingMetrics::default();
    m.push(&ranked, 5);
    let f = m.finalize();
    assert_eq!(f.hr1, 1.0, "duplicate later in the list must not dilute the hit");
    assert!(f.ndcg5 <= 1.0);
}

#[test]
fn ndcg_tied_scores_break_by_index_order() {
    // Equal scores: the ranking sort is stable on index, so item 1 (first
    // tied index) outranks item 2, and NDCG reflects that pinned order.
    let scores = vec![0.1f32, 0.7, 0.7, 0.3];
    let ranked = top_k(&scores, 4);
    assert_eq!(ranked, vec![1, 2, 3, 0]);
    assert_eq!(ndcg_at(&ranked, 1, 4), 1.0); // rank 0 → 1/log2(2)
    assert_eq!(ndcg_at(&ranked, 2, 4), 1.0 / 3.0f64.log2()); // rank 1
}

#[test]
fn top_k_on_empty_scores_returns_empty() {
    // Regression: this used to panic in select_nth_unstable_by (index 0 of
    // an empty candidate list).
    let empty: Vec<f32> = Vec::new();
    assert!(top_k(&empty, 5).is_empty());
    assert!(top_k(&empty, 0).is_empty());
}

#[test]
fn top_k_filtered_with_everything_filtered_returns_empty() {
    // Regression: a `valid` mask rejecting every index also used to panic.
    let scores = vec![0.3f32, 0.9, 0.4];
    assert!(top_k_filtered(&scores, 5, |_| false).is_empty());
    assert!(top_k_filtered(&scores, 0, |_| true).is_empty());
    // Partial filtering still ranks the survivors.
    assert_eq!(top_k_filtered(&scores, 5, |i| i != 1), vec![2, 0]);
}
