//! Tests of the `lc-rec` facade crate itself: the prelude must expose a
//! complete, coherent public API (this is what a downstream user imports).

use lc_rec::prelude::*;

#[test]
fn prelude_covers_the_documented_pipeline() {
    // Every type the README pipeline uses must be reachable via the prelude.
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let _stats: lc_rec::data::Stats = ds.stats();
    let _enc = TextEncoder::new(8, 1);
    let _cfg = RqVaeConfig::small(8, ds.num_items());
    let _lc = LcRecConfig::test();
    let _tiger = TigerConfig::test();
    let _p5 = P5CidConfig::test();
    let _rec = RecConfig::test();
    let _neg = NegativeKind::Random;
    let _tasks = TaskSet::full();
}

#[test]
fn stats_display_is_human_readable() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let s = format!("{}", ds.stats());
    assert!(s.contains("users"), "{s}");
    assert!(s.contains("interactions"), "{s}");
    assert!(s.contains('%'), "{s}");
}

#[test]
fn negative_kind_labels_match_table5_columns() {
    assert_eq!(NegativeKind::Language.label(), "Language Neg.");
    assert_eq!(NegativeKind::Collaborative.label(), "Collaborative Neg.");
    assert_eq!(NegativeKind::Random.label(), "Random Neg.");
}

#[test]
fn crate_modules_are_re_exported() {
    // The per-crate module aliases exist and point at the same types.
    let v: lc_rec::text::Vocab = Vocab::build(["a b"], 1);
    assert_eq!(v.len(), 4 + 2);
    let t: lc_rec::tensor::Tensor = Tensor::zeros(&[2, 2]);
    assert_eq!(t.numel(), 4);
}

#[test]
fn index_formatting_matches_paper_notation() {
    let idx = ItemIndices::new(vec![4, 4, 4, 4], vec![vec![1, 2, 3, 0]]);
    assert_eq!(idx.format(0), "<a_1><b_2><c_3><d_0>");
    assert_eq!(idx.vocab_tokens(), 16);
}
