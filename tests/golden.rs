//! Golden-snapshot guard for the `IndexTrie` text serialization and the
//! `ExtendedVocab` index-token layout.
//!
//! Index tokens are the contract between the RQ-VAE indexer, the trie, and
//! every trained LM checkpoint: if the token-id layout or the trie's
//! canonical serialization drifts in a refactor, previously learned indices
//! silently remap. The fixture under `tests/fixtures/` pins both against a
//! fixed-seed item-index set.
//!
//! Regenerate intentionally with:
//! `LCREC_UPDATE_GOLDEN=1 cargo test --test golden`.

use lc_rec::core::ExtendedVocab;
use lc_rec::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const FIXTURE: &str = "tests/fixtures/trie_vocab_golden.txt";

/// A fixed-seed index set: 3 levels, codebooks of 6, 25 unique code paths.
/// Pure function of the seed — independent of any training code.
fn fixture_indices() -> ItemIndices {
    let mut rng = StdRng::seed_from_u64(0x601D_F1E1D);
    let mut set: BTreeSet<Vec<u16>> = BTreeSet::new();
    while set.len() < 25 {
        set.insert((0..3).map(|_| rng.random_range(0..6u16)).collect());
    }
    ItemIndices::new(vec![6, 6, 6], set.into_iter().collect())
}

/// Renders everything the fixture pins: the canonical trie serialization
/// plus the vocab's index-token layout (base size, per-item token ids, and
/// the `<x_c>` notation round-trip).
fn render_snapshot() -> String {
    let indices = fixture_indices();
    let trie = IndexTrie::build(&indices);
    let vocab = ExtendedVocab::new(Vocab::build(["recommend an excellent item"], 1), indices);

    let mut out = String::new();
    out.push_str(&trie.to_text());
    out.push_str(&format!(
        "vocab base={} total={} index_base={}\n",
        vocab.base().len(),
        vocab.len(),
        vocab.index_base()
    ));
    for item in 0..vocab.indices().len() as u32 {
        let toks = vocab.item_tokens(item);
        let strs: Vec<String> = toks.iter().map(|t| t.to_string()).collect();
        out.push_str(&format!("item {item}: [{}] {}\n", strs.join(","), vocab.decode(&toks)));
    }
    out
}

#[test]
fn golden_snapshot_matches_fixture() {
    let rendered = render_snapshot();
    if std::env::var("LCREC_UPDATE_GOLDEN").is_ok() {
        std::fs::write(FIXTURE, &rendered).expect("write golden fixture");
        return;
    }
    let expected = std::fs::read_to_string(FIXTURE).expect(
        "golden fixture missing — run LCREC_UPDATE_GOLDEN=1 cargo test --test golden",
    );
    assert_eq!(
        rendered, expected,
        "index-token layout or trie serialization changed; if intentional, \
         regenerate with LCREC_UPDATE_GOLDEN=1 cargo test --test golden"
    );
}

#[test]
fn trie_text_round_trips() {
    let indices = fixture_indices();
    let trie = IndexTrie::build(&indices);
    let text = trie.to_text();
    let parsed = IndexTrie::from_text(&text).expect("canonical text must parse");
    assert_eq!(parsed.to_text(), text, "to_text ∘ from_text must be the identity");
    assert_eq!(parsed.levels(), trie.levels());
    assert_eq!(parsed.num_nodes(), trie.num_nodes());
    for item in 0..indices.len() as u32 {
        let codes = indices.of(item);
        assert_eq!(parsed.item_at(codes), Some(item), "item {item} must survive the round trip");
    }
}

#[test]
fn trie_serialization_is_insertion_order_independent() {
    // The same contents inserted in reverse item order serialize to a
    // different item binding only where codes collide — with unique codes
    // (the fixture), the *paths* are identical and sorted.
    let indices = fixture_indices();
    let text = IndexTrie::build(&indices).to_text();
    let paths: Vec<&str> = text.lines().skip(1).collect();
    let mut sorted = paths.clone();
    sorted.sort_by_key(|line| {
        line.split('=')
            .next()
            .map(|p| {
                p.split('.')
                    .map(|c| c.parse::<u16>().unwrap_or(u16::MAX))
                    .collect::<Vec<u16>>()
            })
            .unwrap_or_default()
    });
    assert_eq!(paths, sorted, "DFS with sorted codes must emit paths in sorted order");
}

#[test]
fn from_text_rejects_malformed_input() {
    assert!(IndexTrie::from_text("").is_none(), "missing header");
    assert!(IndexTrie::from_text("trie levels=x\n").is_none(), "bad level count");
    assert!(IndexTrie::from_text("trie levels=2\n0.1.2=0\n").is_none(), "depth mismatch");
    assert!(IndexTrie::from_text("trie levels=2\n0.one=0\n").is_none(), "bad code");
    assert!(IndexTrie::from_text("trie levels=2\n0.1=zero\n").is_none(), "bad item id");
    let ok = IndexTrie::from_text("trie levels=2\n0.1=4\n\n2.3=7\n").expect("valid text");
    assert_eq!(ok.item_at(&[0, 1]), Some(4));
    assert_eq!(ok.item_at(&[2, 3]), Some(7));
}
