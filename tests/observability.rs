//! Contract tests for the `lcrec-obs` observability subsystem: span
//! nesting, the off-by-default gate, and — the load-bearing property —
//! bit-identical deterministic sections across thread counts.
//!
//! The registry and its gate are process-global, so every test takes
//! `GUARD` and leaves the gate disabled on exit.

use lc_rec::core::{constrained_beam_search_with, CausalLm, ExtendedVocab, LmConfig};
use lc_rec::obs;
use lc_rec::prelude::*;
use std::sync::{Mutex, MutexGuard};

static GUARD: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    match GUARD.lock() {
        Ok(g) => g,
        Err(p) => p.into_inner(),
    }
}

#[test]
fn spans_nest_by_thread_local_stack() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    {
        let _outer = obs::span("outer");
        for _ in 0..2 {
            let _inner = obs::span("inner");
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let outer = snap.span("outer").expect("outer span recorded");
    let inner = snap.span("outer/inner").expect("nested path recorded");
    assert_eq!(outer.count, 1);
    assert_eq!(inner.count, 2);
    assert!(snap.span("inner").is_none(), "nested span must not appear as a root");
    assert!(inner.total_ns > 0, "slept inside the span; elapsed must be non-zero");
    assert!(
        outer.total_ns >= inner.total_ns,
        "a parent span covers its children: outer {} < inner {}",
        outer.total_ns,
        inner.total_ns
    );
}

#[test]
fn gate_off_records_nothing() {
    let _l = lock();
    obs::set_enabled(false);
    obs::reset();
    {
        let _s = obs::span("ghost");
        obs::counter_add("ghost.counter", 7);
        obs::hist_record("ghost.hist", 3.0);
        obs::profile_record("ghost.profile", 0.5);
        let watch = obs::stopwatch();
        assert!(!watch.running());
        watch.stop("ghost.watch");
        // Instrumented library code must also record nothing while off.
        let pool = Pool::new(4);
        let sum: u64 = pool.map_reduce(64, |i| i as u64, 0, |a, b| a + b);
        assert_eq!(sum, 2016);
    }
    assert!(obs::snapshot().is_empty(), "LCREC_OBS off must record nothing at all");
}

/// Runs an instrumented workload — direct recording, pool fan-out with
/// worker-side recording, and a real constrained beam search — and returns
/// the deterministic section of the resulting snapshot.
fn instrumented_workload(threads: usize) -> String {
    obs::set_enabled(true);
    obs::reset();
    let pool = Pool::new(threads);

    // Worker-side counters/histograms through the pool's merge path.
    let sums = pool.map_range(100, |i| {
        obs::counter_add("test.work_items", 1);
        obs::hist_record("test.values", (i % 7) as f64);
        i as u64
    });
    assert_eq!(sums.len(), 100);

    // A real decode so beam/lm/par instrumentation all fire.
    let base = Vocab::build(["recommend something nice"], 1);
    let indices = ItemIndices::new(
        vec![3, 3],
        vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
    );
    let trie = IndexTrie::build(&indices);
    let vocab = ExtendedVocab::new(base, indices);
    let lm = CausalLm::new(LmConfig::test(vocab.len()));
    let prompt = vocab.render(&[Seg::Text("recommend".into())]);
    let hyps = constrained_beam_search_with(&pool, &lm, &vocab, &trie, &prompt, 4);
    assert_eq!(hyps.len(), 4);

    let snap = obs::snapshot();
    obs::set_enabled(false);
    snap.deterministic_json()
}

#[test]
fn deterministic_section_is_bit_identical_across_thread_counts() {
    let _l = lock();
    let serial = instrumented_workload(1);
    let parallel = instrumented_workload(4);
    assert!(!serial.is_empty());
    assert!(serial.contains("test.work_items"), "worker counters must merge");
    assert!(serial.contains("beam.expansions"), "beam counters must record");
    assert!(serial.contains("lm.decode_tokens"), "lm counters must record");
    assert_eq!(
        serial, parallel,
        "deterministic observability section must be bit-identical at 1 vs 4 threads"
    );
}

#[test]
fn full_snapshot_has_profile_but_deterministic_json_does_not() {
    let _l = lock();
    obs::set_enabled(true);
    obs::reset();
    let watch = obs::stopwatch();
    std::thread::sleep(std::time::Duration::from_millis(1));
    watch.stop("test.phase_s");
    obs::counter_add("test.count", 1);
    let snap = obs::snapshot();
    obs::set_enabled(false);

    let full = snap.to_json();
    assert!(full.contains("test.phase_s"));
    assert!(full.contains("test.count"));
    let det = snap.deterministic_json();
    assert!(det.contains("test.count"));
    assert!(
        !det.contains("test.phase_s"),
        "wall-clock records must stay out of the bit-compared section"
    );
    let table = snap.table();
    assert!(table.contains("test.phase_s") && table.contains("test.count"));
}
