//! End-to-end integration tests spanning every crate: data generation →
//! text embedding → RQ-VAE indexing → alignment tuning → constrained
//! generation → evaluation.

use lc_rec::prelude::*;

fn tiny_indices(ds: &Dataset) -> ItemIndices {
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    rq.epochs = 10;
    build_indices(IndexerKind::LcRec, &emb, &rq)
}

#[test]
fn full_pipeline_trains_and_ranks_end_to_end() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let indices = tiny_indices(&ds);
    assert!(indices.is_unique());

    let mut cfg = LcRecConfig::test();
    cfg.train.epochs = 8;
    cfg.train.batch = 16;
    cfg.train.lr = 1.5e-3;
    cfg.train.max_steps = Some(900);
    let mut model = LcRec::build(&ds, indices, cfg);
    let losses = model.fit(&ds);
    assert!(losses.iter().all(|l| l.is_finite()));

    assert!(losses.last().expect("epochs") < &losses[0], "tuning loss must drop: {losses:?}");

    let ranker = LcRecRanker { model: &model, builder: InstructionBuilder::new(&ds), template: 0 };
    let metrics = evaluate_test(&ranker, &ds, 20);
    // The ~40-item fixture is too small for ranking-quality thresholds to
    // be stable (random HR@10 is already 0.25); quality-vs-baseline claims
    // are validated at `--scale small` by the repro harness (see
    // EXPERIMENTS.md). Here we assert end-to-end mechanics: every user is
    // evaluated, outputs are real distinct items, and metrics clear the
    // random floor. (At this scale a 1-layer LM may legitimately converge
    // to a popularity ranking, so per-user diversity is not asserted.)
    assert_eq!(metrics.count, ds.num_users());
    assert!(metrics.hr10 >= 10.0 / ds.num_items() as f64, "HR@10 {:.4} below random floor", metrics.hr10);
    assert!(metrics.ndcg10 > 0.0);
    // Beam output is a full ranked list of distinct real items per user.
    let ranked = ranker.rank(0, ds.test_example(0).0, 10);
    let uniq: std::collections::HashSet<&u32> = ranked.iter().collect();
    assert_eq!(uniq.len(), ranked.len(), "beam must not repeat items");
}

#[test]
fn constrained_generation_only_emits_catalog_items() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let indices = tiny_indices(&ds);
    let mut cfg = LcRecConfig::test();
    cfg.train.max_steps = Some(30);
    let mut model = LcRec::build(&ds, indices, cfg);
    model.fit(&ds);
    let builder = InstructionBuilder::new(&ds);
    // Even a barely-trained model must only ever produce real items — the
    // guarantee comes from the trie, not the weights.
    for u in 0..10 {
        let (ctx, _) = ds.test_example(u);
        for hyp in model.recommend_prompt(&builder.seq_eval_prompt(ctx), 8) {
            assert!((hyp.item as usize) < ds.num_items(), "generated non-item {}", hyp.item);
        }
    }
}

#[test]
fn classic_and_generative_rankers_share_evaluation_protocol() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut rec_cfg = RecConfig::test();
    rec_cfg.epochs = 6;
    let pairs = TrainingPairs::build(&ds, rec_cfg.max_len);
    let mut sas = SasRec::new(ds.num_items(), rec_cfg);
    sas.fit(&pairs);
    let m1 = evaluate_test(&ScoreRanker(&sas), &ds, 20);
    assert_eq!(m1.count, ds.num_users());
    // Same protocol for a generative model.
    let mut tiger = Tiger::new(tiny_indices(&ds), TigerConfig::test());
    tiger.fit(&ds);
    let m2 = evaluate_test(&tiger, &ds, 20);
    assert_eq!(m2.count, ds.num_users());
    // Both models must beat the zero-skill floor on validation too.
    let v1 = evaluate_valid(&ScoreRanker(&sas), &ds, 20);
    assert!(v1.hr10 > 0.0);
}

#[test]
fn item_indices_transfer_between_tiger_and_lcrec() {
    // Both generative models consume the identical index structure; their
    // vocabularies must agree on the number of extra tokens.
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let indices = tiny_indices(&ds);
    let extra = indices.vocab_tokens();
    let tiger = Tiger::new(indices.clone(), TigerConfig::test());
    assert_eq!(tiger.indices().vocab_tokens(), extra);
    let model = LcRec::build(&ds, indices, LcRecConfig::test());
    assert_eq!(model.vocab().indices().vocab_tokens(), extra);
    assert_eq!(model.vocab().len(), model.vocab().base().len() + extra);
}

#[test]
fn pairwise_probe_ranks_trained_model_above_noise() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let scorer = TextSimilarityScorer::chatgpt(&ds);
    // Average over several negative draws: a single draw on the tiny
    // dataset (120 pairs) has a ±4.5% standard error, which made this
    // assertion flaky even for a genuinely informative scorer.
    let seeds = 1..=8u64;
    let mut acc = 0.0;
    for seed in seeds.clone() {
        let pairs = lc_rec::eval::build_negatives(&ds, NegativeKind::Random, &emb, &emb, seed);
        acc += lc_rec::eval::pairwise_accuracy(&scorer, &ds, &pairs);
    }
    acc /= seeds.count() as f64;
    // Text similarity against random negatives is informative (>50%).
    assert!(acc > 52.0, "accuracy {acc}");
}
