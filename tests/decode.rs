//! Decode fast-path contract tests: the fused KV-cached decode (scratch
//! buffers + inference-backend kernels + arena trie) must be a **pure
//! speedup** — bit-identical to the graph-backed baseline at every batch
//! size and thread count, with the arena trie node-for-node equivalent to
//! the pointer-node reference implementation on randomized ID sets.

use lc_rec::core::{
    constrained_beam_search_graph, constrained_beam_search_with,
    multi_constrained_beam_search_scratch, multi_constrained_beam_search_with, CausalLm,
    ExtendedVocab, LmConfig,
};
use lc_rec::data::Seg;
use lc_rec::par::Pool;
use lc_rec::rqvae::{IndexTrie, ItemIndices, PointerTrie};
use lc_rec::tensor::{BlockedBackend, InferenceBackend, ReferenceBackend};
use lc_rec::text::Vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

/// A 3-level, 12-item model big enough that beams diverge and pruning
/// actually cuts, small enough to decode in milliseconds.
fn setup() -> (CausalLm, ExtendedVocab, IndexTrie) {
    let base = Vocab::build(["the user bought several items recommend one more"], 1);
    let indices = ItemIndices::new(
        vec![4, 4, 4],
        vec![
            vec![0, 0, 0],
            vec![0, 0, 1],
            vec![0, 1, 2],
            vec![0, 3, 3],
            vec![1, 0, 0],
            vec![1, 2, 2],
            vec![1, 2, 3],
            vec![2, 0, 1],
            vec![2, 1, 1],
            vec![3, 0, 0],
            vec![3, 2, 0],
            vec![3, 3, 3],
        ],
    );
    let trie = IndexTrie::build(&indices);
    let vocab = ExtendedVocab::new(base, indices);
    let lm = CausalLm::new(LmConfig::test(vocab.len()));
    (lm, vocab, trie)
}

fn prompts(vocab: &ExtendedVocab, n: usize) -> Vec<Vec<u32>> {
    let texts = [
        "recommend one more",
        "the user bought items",
        "several items",
        "bought several items recommend",
        "the user",
        "recommend",
        "items recommend one",
        "user bought one",
    ];
    (0..n)
        .map(|i| vocab.render(&[Seg::Text(texts[i % texts.len()].into())]))
        .collect()
}

fn bits(hyps: &[lc_rec::core::Hypothesis]) -> Vec<(u32, u32)> {
    hyps.iter().map(|h| (h.item, h.logprob.to_bits())).collect()
}

/// The tentpole contract: fused batched decode equals the graph-backed
/// baseline bit for bit at every batch size × thread count combination.
#[test]
fn fused_decode_matches_graph_baseline_at_every_batch_and_thread_count() {
    let (lm, vocab, trie) = setup();
    let all_prompts = prompts(&vocab, 8);
    let width = 4usize;
    let oracle: Vec<Vec<(u32, u32)>> = all_prompts
        .iter()
        .map(|p| bits(&constrained_beam_search_graph(&lm, &vocab, &trie, p, width)))
        .collect();
    for batch in [1usize, 3, 8] {
        for threads in [1usize, 4] {
            let pool = Pool::new(threads);
            let widths = vec![width; batch];
            let got = multi_constrained_beam_search_with(
                &pool,
                &lm,
                &vocab,
                &trie,
                &all_prompts[..batch],
                &widths,
            );
            assert_eq!(got.len(), batch);
            for (pi, ranked) in got.iter().enumerate() {
                assert_eq!(
                    bits(ranked),
                    oracle[pi],
                    "batch {batch} × threads {threads}, prompt {pi}: fused batched decode \
                     must be bit-identical to the graph baseline"
                );
            }
            // The single-request fused path too, at this thread count.
            for (pi, p) in all_prompts[..batch].iter().enumerate() {
                let solo = constrained_beam_search_with(&pool, &lm, &vocab, &trie, p, width);
                assert_eq!(bits(&solo), oracle[pi], "single-request fused vs graph");
            }
        }
    }
}

/// The fused transformer step must produce bit-identical logits to the
/// reference (`advance_batch`) step for every slot, across batch sizes
/// and successive steps on the same caches.
#[test]
fn fused_advance_matches_reference_advance_bitwise() {
    let (lm, vocab, _trie) = setup();
    let all_prompts = prompts(&vocab, 8);
    let mut scratch = lm.new_scratch();
    for batch in [1usize, 3, 8] {
        let seqs: Vec<&[u32]> = all_prompts[..batch].iter().map(Vec::as_slice).collect();
        let mut ref_caches: Vec<_> = (0..batch).map(|_| lm.new_cache()).collect();
        let ref_first = lm.prefill_batch(&mut ref_caches, &seqs);
        let mut fused_caches: Vec<_> = (0..batch).map(|_| lm.new_cache()).collect();
        let fused_first = lm.prefill_batch_fused(&mut scratch, &mut fused_caches, &seqs);
        for (a, b) in ref_first.iter().zip(&fused_first) {
            let (ab, bb): (Vec<u32>, Vec<u32>) =
                (a.iter().map(|v| v.to_bits()).collect(), b.iter().map(|v| v.to_bits()).collect());
            assert_eq!(ab, bb, "prefill logits must be bit-identical (batch {batch})");
        }
        // Three decode steps, feeding each path the same tokens.
        for step in 0..3u32 {
            let toks: Vec<u32> = (0..batch as u32).map(|s| (s + step) % 4).collect();
            let mut ref_slots: Vec<_> = ref_caches.iter_mut().collect();
            let ref_rows = lm.advance_batch(&mut ref_slots, &toks);
            let mut fused_slots: Vec<_> = fused_caches.iter_mut().collect();
            let fused_flat = lm.advance_batch_fused(&mut scratch, &mut fused_slots, &toks);
            let vocab_n = lm.config().vocab;
            for (slot, (r, f)) in
                ref_rows.iter().zip(fused_flat.chunks_exact(vocab_n)).enumerate()
            {
                let (rb, fb): (Vec<u32>, Vec<u32>) = (
                    r.iter().map(|v| v.to_bits()).collect(),
                    f.iter().map(|v| v.to_bits()).collect(),
                );
                assert_eq!(
                    rb, fb,
                    "advance step {step}, batch {batch}, slot {slot}: fused logits must \
                     be bit-identical to the reference step"
                );
            }
        }
    }
}

/// Reusing one scratch across many decodes (the serving engine's pattern)
/// must give the same bits as a fresh scratch per call.
#[test]
fn scratch_reuse_is_bit_deterministic() {
    let (lm, vocab, trie) = setup();
    let all_prompts = prompts(&vocab, 4);
    let widths = vec![3usize; all_prompts.len()];
    let pool = Pool::new(2);
    let fresh =
        multi_constrained_beam_search_with(&pool, &lm, &vocab, &trie, &all_prompts, &widths);
    let mut scratch = lm.new_scratch();
    for round in 0..3 {
        let reused = multi_constrained_beam_search_scratch(
            &pool,
            &lm,
            &vocab,
            &trie,
            &all_prompts,
            &widths,
            &mut scratch,
        );
        for (a, b) in fresh.iter().zip(&reused) {
            assert_eq!(bits(a), bits(b), "round {round}: reused scratch changed results");
        }
    }
}

/// Both inference-backend kernels must match the reference bit for bit on
/// randomized shapes and values (including exact zeros, where the two
/// kernel contracts differ).
#[test]
fn backend_kernels_are_bit_identical_on_random_shapes() {
    let mut rng = StdRng::seed_from_u64(0xBEEF);
    for _ in 0..40 {
        let (m, k, n) =
            (rng.random_range(1..9), rng.random_range(1..70), rng.random_range(1..130));
        let fill = |rng: &mut StdRng, len: usize| -> Vec<f32> {
            (0..len)
                .map(|_| {
                    if rng.random_range(0..8) == 0 {
                        0.0
                    } else {
                        rng.random_range(-2.0f32..2.0)
                    }
                })
                .collect()
        };
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        for dense in [false, true] {
            let mut blocked = vec![0.0f32; m * n];
            let mut reference = vec![0.0f32; m * n];
            if dense {
                BlockedBackend.gemm_dense_acc(&a, &b, &mut blocked, m, k, n);
                ReferenceBackend.gemm_dense_acc(&a, &b, &mut reference, m, k, n);
            } else {
                BlockedBackend.gemm_acc(&a, &b, &mut blocked, m, k, n);
                ReferenceBackend.gemm_acc(&a, &b, &mut reference, m, k, n);
            }
            let (bb, rb): (Vec<u32>, Vec<u32>) = (
                blocked.iter().map(|v| v.to_bits()).collect(),
                reference.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(bb, rb, "m={m} k={k} n={n} dense={dense}");
        }
    }
}

/// Randomized code set for the trie property tests.
fn arb_codes(rng: &mut StdRng, levels: usize, k: u16, max: usize) -> Vec<Vec<u16>> {
    let want = rng.random_range(1..=max);
    let mut set: BTreeSet<Vec<u16>> = BTreeSet::new();
    for _ in 0..want * 8 {
        if set.len() == want {
            break;
        }
        set.insert((0..levels).map(|_| rng.random_range(0..k)).collect());
    }
    set.into_iter().collect()
}

/// Every reachable prefix of the trie, by walking `allowed` transitions.
fn all_prefixes(trie: &IndexTrie, levels: usize) -> Vec<Vec<u16>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::<u16>::new()];
    for _ in 0..levels {
        let mut next = Vec::new();
        for p in &frontier {
            for &c in trie.allowed_slice(p) {
                let mut q = p.clone();
                q.push(c);
                next.push(q);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

/// The arena/CSR trie must be node-for-node equivalent to the pointer-node
/// reference on randomized ID sets: same allowed codes at every reachable
/// prefix (and at illegal ones), same item resolution, same node count —
/// and its text serialization must round-trip to an equivalent trie.
#[test]
fn arena_trie_is_node_for_node_equivalent_to_pointer_trie() {
    let mut rng = StdRng::seed_from_u64(0xA2E7A);
    for case in 0..64 {
        let levels = rng.random_range(2usize..5);
        let codes = arb_codes(&mut rng, levels, 6, 50);
        let indices = ItemIndices::new(vec![6; levels], codes.clone());
        let arena = IndexTrie::build(&indices);
        let pointer = PointerTrie::build(&indices);
        assert_eq!(arena.levels(), pointer.levels());
        assert_eq!(arena.num_nodes(), pointer.num_nodes(), "case {case}: node counts differ");
        let prefixes = all_prefixes(&arena, levels);
        for p in &prefixes {
            assert_eq!(
                arena.allowed(p),
                pointer.allowed(p),
                "case {case}: allowed({p:?}) differs"
            );
            assert_eq!(
                arena.allowed_slice(p).to_vec(),
                pointer.allowed(p),
                "case {case}: allowed_slice({p:?}) differs from pointer allowed"
            );
            assert_eq!(arena.item_at(p), pointer.item_at(p), "case {case}: item_at({p:?})");
        }
        // Illegal lookups agree too: mutate a real path out of the set.
        if let Some(path) = codes.first() {
            let mut bad = path.clone();
            bad[levels - 1] = bad[levels - 1].wrapping_add(7) % 6 + 6;
            assert_eq!(arena.allowed(&bad), pointer.allowed(&bad));
            assert_eq!(arena.item_at(&bad), pointer.item_at(&bad));
            assert!(arena.item_at(&bad).is_none());
        }
        // Serialization round trip preserves every lookup.
        let text = arena.to_text();
        let back = IndexTrie::from_text(&text).expect("round trip must parse");
        assert_eq!(back.num_nodes(), arena.num_nodes());
        for p in &prefixes {
            assert_eq!(back.allowed(p), arena.allowed(p), "case {case}: round-trip allowed");
            assert_eq!(back.item_at(p), arena.item_at(p), "case {case}: round-trip item_at");
        }
        assert_eq!(back.to_text(), text, "case {case}: serialization must be a fixed point");
    }
}
