//! Tier-1 correctness gates, run by a plain `cargo test` at the workspace
//! root so they cannot be skipped:
//!
//! 1. the full finite-difference gradcheck table over every differentiable
//!    autograd op,
//! 2. the coverage gate that fails when a new public op in `graph.rs` lacks
//!    a gradcheck entry, and
//! 3. the workspace lint pass (no panic paths on decoding hot paths, no
//!    scaffolding macros, no `unsafe`) over the repository sources,
//! 4. the doc-coverage gate: every public `fn`/`struct`/`enum` in the
//!    covered crates must carry `///` docs, and the main entry points must
//!    ship `# Examples` doc-tests,
//! 5. the env-var gate: every `LCREC_*` environment read must be
//!    documented in `docs/ENVIRONMENT.md`,
//! 6. the call-graph panic-reachability pass (`panicscan`) and the
//!    determinism-hazard pass (`detlint`): zero unannotated findings, and
//! 7. the load-bearing-annotation gate: deleting any single
//!    `// lint: allow(…)` in the workspace must re-surface at least one
//!    finding — an allow that suppresses nothing cannot survive.

use lcrec_analysis::annot::Scope;
use lcrec_analysis::panicscan::SourceFile;
use lcrec_analysis::{detlint, panicscan};
use lcrec_tensor::gradcheck;
use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn gradcheck_table_passes() {
    for case in gradcheck::cases() {
        eprintln!("gradcheck case: {}", case.name);
        (case.run)();
    }
}

#[test]
fn gradcheck_table_covers_every_public_op() {
    let public = lcrec_analysis::parse::public_fn_names(gradcheck::GRAPH_SOURCE);
    assert!(public.len() > 30, "graph.rs parse looks wrong: {} pub fns", public.len());
    let covered = gradcheck::covered_ops();
    let exempt: BTreeSet<&str> = gradcheck::NON_DIFFERENTIABLE_FNS.iter().copied().collect();
    let missing: Vec<&String> = public
        .iter()
        .filter(|f| !exempt.contains(f.as_str()) && !covered.contains(f.as_str()))
        .collect();
    assert!(
        missing.is_empty(),
        "public graph ops without a gradcheck case: {missing:?} — add a case to \
         lcrec_tensor::gradcheck::cases() or, if genuinely non-differentiable, \
         to NON_DIFFERENTIABLE_FNS"
    );
}

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = lcrec_analysis::lint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "lint findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn public_api_is_fully_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::doccov::missing_docs_workspace(root);
    assert!(
        missing.is_empty(),
        "undocumented public items (add `///` docs):\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}

#[test]
fn entry_points_have_examples() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::doccov::missing_examples_workspace(root);
    assert!(
        missing.is_empty(),
        "entry points without `# Examples` doc-tests:\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}

#[test]
fn panic_reachability_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let r = panicscan::scan_workspace(root);
    assert!(
        r.findings.is_empty(),
        "panicscan findings (refactor to Result/Option or annotate with a reason):\n{}",
        r.findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}\n", f.file.display(), f.line, f.rule, f.detail))
            .collect::<String>()
    );
    assert!(r.fns_reached > 50, "suspiciously small reach ({}) — entry points broken?", r.fns_reached);
}

#[test]
fn determinism_hazards_are_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let r = detlint::scan_workspace(root);
    assert!(
        r.findings.is_empty(),
        "detlint findings (sort the iteration, move the read to its gate module, or \
         annotate with a reason):\n{}",
        r.findings
            .iter()
            .map(|f| format!("  {}:{}: [{}] {}\n", f.file.display(), f.line, f.rule, f.detail))
            .collect::<String>()
    );
}

#[test]
fn every_allow_annotation_is_load_bearing() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let files = panicscan::load_workspace(root);
    let base_p = panicscan::analyze(&files);
    let base_d = detlint::analyze(&files);
    assert!(base_p.findings.is_empty() && base_d.findings.is_empty(), "baseline not clean");
    let mut all: Vec<(std::path::PathBuf, usize, Scope)> = Vec::new();
    for a in base_p.allows.iter().chain(base_d.allows.iter()) {
        all.push((a.file.clone(), a.comment_line, a.scope));
    }
    assert!(!all.is_empty(), "no annotations found — parsing broken?");
    // The annotation marker, split so this test file can never match it.
    let marker = concat!("// lint", ": allow(");
    for (file, comment_line, scope) in all {
        let modified: Vec<SourceFile> = files
            .iter()
            .map(|f| {
                let raw = if f.rel == file {
                    f.raw
                        .lines()
                        .enumerate()
                        .map(|(i, l)| {
                            if i + 1 == comment_line {
                                match l.find(marker) {
                                    Some(at) => l[..at].trim_end().to_string(),
                                    None => l.to_string(),
                                }
                            } else {
                                l.to_string()
                            }
                        })
                        .collect::<Vec<String>>()
                        .join("\n")
                } else {
                    f.raw.clone()
                };
                SourceFile::new(f.rel.clone(), raw)
            })
            .collect();
        let findings = match scope {
            Scope::Panic => panicscan::analyze(&modified).findings,
            Scope::Det => detlint::analyze(&modified).findings,
        };
        assert!(
            !findings.is_empty(),
            "deleting the allow({}) at {}:{} surfaced no finding — the annotation is \
             dead weight and the pass should have flagged it as stale",
            match scope {
                Scope::Panic => "panic",
                Scope::Det => "det",
            },
            file.display(),
            comment_line
        );
    }
}

#[test]
fn env_reads_are_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::envdoc::undocumented_env_reads(root);
    assert!(
        missing.is_empty(),
        "env reads missing from docs/ENVIRONMENT.md:\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}
