//! Tier-1 correctness gates, run by a plain `cargo test` at the workspace
//! root so they cannot be skipped:
//!
//! 1. the full finite-difference gradcheck table over every differentiable
//!    autograd op,
//! 2. the coverage gate that fails when a new public op in `graph.rs` lacks
//!    a gradcheck entry, and
//! 3. the workspace lint pass (no panic paths on decoding hot paths, no
//!    scaffolding macros, no `unsafe`) over the repository sources,
//! 4. the doc-coverage gate: every public `fn`/`struct`/`enum` in the
//!    covered crates (par, tensor, core, obs, serve) must carry `///`
//!    docs, and the main entry points must ship `# Examples` doc-tests, and
//! 5. the env-var gate: every `LCREC_*` environment read must be
//!    documented in `docs/ENVIRONMENT.md`.

use lcrec_tensor::gradcheck;
use std::collections::BTreeSet;
use std::path::Path;

#[test]
fn gradcheck_table_passes() {
    for case in gradcheck::cases() {
        eprintln!("gradcheck case: {}", case.name);
        (case.run)();
    }
}

#[test]
fn gradcheck_table_covers_every_public_op() {
    let public = lcrec_analysis::parse::public_fn_names(gradcheck::GRAPH_SOURCE);
    assert!(public.len() > 30, "graph.rs parse looks wrong: {} pub fns", public.len());
    let covered = gradcheck::covered_ops();
    let exempt: BTreeSet<&str> = gradcheck::NON_DIFFERENTIABLE_FNS.iter().copied().collect();
    let missing: Vec<&String> = public
        .iter()
        .filter(|f| !exempt.contains(f.as_str()) && !covered.contains(f.as_str()))
        .collect();
    assert!(
        missing.is_empty(),
        "public graph ops without a gradcheck case: {missing:?} — add a case to \
         lcrec_tensor::gradcheck::cases() or, if genuinely non-differentiable, \
         to NON_DIFFERENTIABLE_FNS"
    );
}

#[test]
fn workspace_lint_is_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let findings = lcrec_analysis::lint::lint_workspace(root);
    assert!(
        findings.is_empty(),
        "lint findings:\n{}",
        findings.iter().map(|f| format!("  {f}\n")).collect::<String>()
    );
}

#[test]
fn public_api_is_fully_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::doccov::missing_docs_workspace(root);
    assert!(
        missing.is_empty(),
        "undocumented public items (add `///` docs):\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}

#[test]
fn entry_points_have_examples() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::doccov::missing_examples_workspace(root);
    assert!(
        missing.is_empty(),
        "entry points without `# Examples` doc-tests:\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}

#[test]
fn env_reads_are_documented() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let missing = lcrec_analysis::envdoc::undocumented_env_reads(root);
    assert!(
        missing.is_empty(),
        "env reads missing from docs/ENVIRONMENT.md:\n{}",
        missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
    );
}
