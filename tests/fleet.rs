//! Fleet-level serving contracts: the consistent-hash router must be
//! **bit-identical** to a direct engine at any shard count, refuse a
//! saturated fleet with a typed rejection (never a hang), finish in-flight
//! work on the old snapshot across a hot swap with zero dropped outcomes,
//! and stay deterministic — and exhaustively accounted — under seeded
//! chaos. See `docs/FLEET.md`.

use lc_rec::core::{CausalLm, ExtendedVocab};
use lc_rec::data::{ScaleConfig, ZipfSampler};
use lc_rec::fault::Mode;
use lc_rec::prelude::*;
use lc_rec::rqvae::{IndexTrie, ItemIndices};
use lc_rec::serve::{Reject, RouterReject};
use lc_rec::tensor::serialize::{load_params_file, save_params_file};
use lc_rec::text::Vocab;
use lcrec_bench::setup::scale_lm_config;

/// The test tier's synthetic catalog: 64 items with unique semantic IDs,
/// plus the trie and extended vocabulary the engines decode against.
fn catalog() -> (ScaleConfig, ExtendedVocab, IndexTrie) {
    let workload = ScaleConfig::tier_test();
    let (sizes, codes) = workload.synthetic_codes().expect("test tier validates");
    let idx = ItemIndices::new(sizes, codes);
    let base = Vocab::build([ServeConfig::default().template.as_str()], 1);
    let vocab = ExtendedVocab::new(base, idx);
    let trie = IndexTrie::build(vocab.indices());
    (workload, vocab, trie)
}

/// Zipf-replayed traffic keyed by user id, exactly as the fleet bench
/// drives it.
fn traffic(workload: &ScaleConfig, n: usize) -> Vec<(u64, Vec<u32>)> {
    let popularity = ZipfSampler::new(workload.num_items, workload.zipf_exponent)
        .expect("test tier validates");
    workload
        .replay()
        .expect("test tier validates")
        .take(n)
        .map(|user| (user as u64, workload.generate_user(&popularity, user)))
        .collect()
}

fn ranked_bits(ranked: &[lc_rec::core::Hypothesis]) -> Vec<(u32, u32)> {
    ranked.iter().map(|h| (h.item, h.logprob.to_bits())).collect()
}

fn shard_cfg(queue_cap: usize) -> ServeConfig {
    ServeConfig { max_batch: 4, queue_cap, max_wait_ms: 0, ..ServeConfig::default() }
}

/// Routes `traffic` through a router at `shards` and returns each
/// ticket's ranked bits, indexed by ticket (= arrival order).
fn route_bits(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    traffic: &[(u64, Vec<u32>)],
    shards: usize,
    faults: Option<(Mode, u64, u64)>,
) -> Vec<Vec<(u32, u32)>> {
    let cfg = RouterConfig {
        shards,
        shard: shard_cfg(traffic.len()),
        ..RouterConfig::default()
    };
    let mut router = Router::new(lm, vocab, trie, cfg);
    if let Some((mode, seed, rate)) = faults {
        router = router.with_faults(mode, seed, rate);
    }
    for (user, hist) in traffic {
        router.submit(*user, hist, 5).expect("per-shard queues sized to the load");
    }
    let outcomes = router.flush_outcomes();
    assert_eq!(outcomes.len(), traffic.len(), "every ticket resolves exactly once");
    assert_eq!(router.pending_len(), 0);
    assert_eq!(router.queue_depth(), 0);
    let mut bits = vec![Vec::new(); traffic.len()];
    for o in outcomes {
        let id = o.id() as usize;
        let response = o.completed().expect("no deadlines, no chaos: all complete");
        *bits.get_mut(id).expect("tickets are dense arrival indices") =
            ranked_bits(&response.ranked);
    }
    bits
}

#[test]
fn one_shard_router_matches_bare_engine_bit_for_bit() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let reqs = traffic(&workload, 10);

    let mut engine = Engine::new(&lm, &vocab, &trie, shard_cfg(reqs.len()));
    for (_, hist) in &reqs {
        engine.submit(hist, 5).expect("queue sized to the load");
    }
    let direct: Vec<Vec<(u32, u32)>> =
        engine.flush().iter().map(|r| ranked_bits(&r.ranked)).collect();

    let routed = route_bits(&lm, &vocab, &trie, &reqs, 1, None);
    assert_eq!(routed, direct, "a 1-shard router must be a bare engine, bit for bit");
}

#[test]
fn rankings_are_bit_identical_across_shard_counts() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let reqs = traffic(&workload, 12);
    let reference = route_bits(&lm, &vocab, &trie, &reqs, 1, None);
    for shards in [2usize, 4] {
        let bits = route_bits(&lm, &vocab, &trie, &reqs, shards, None);
        assert_eq!(bits, reference, "rankings changed at {shards} shards");
    }
}

#[test]
fn all_shards_saturated_returns_typed_rejection_and_recovers() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let cfg = RouterConfig {
        shards: 2,
        shard: ServeConfig { queue_cap: 1, max_wait_ms: u64::MAX, ..shard_cfg(1) },
        ..RouterConfig::default()
    };
    let mut router = Router::new(&lm, &vocab, &trie, cfg);
    let reqs = traffic(&workload, 8);

    // Fill both one-slot queues (admission falls through the ring), then
    // every further submit must come back as a typed rejection — not a
    // hang, not a panic, not a silent drop.
    let mut admitted = Vec::new();
    let mut saturated = 0usize;
    for (user, hist) in &reqs {
        match router.submit(*user, hist, 3) {
            Ok(ticket) => admitted.push(ticket),
            Err(RouterReject::AllShardsSaturated { attempts }) => {
                saturated += 1;
                assert_eq!(attempts.len(), 2, "every shard was attempted: {attempts:?}");
                for (_, refusal) in &attempts {
                    assert_eq!(refusal, &Reject::QueueFull { capacity: 1 });
                }
            }
            Err(other) => panic!("unexpected rejection: {other:?}"),
        }
    }
    assert_eq!(admitted.len(), 2, "one slot per shard");
    assert_eq!(saturated, reqs.len() - 2);

    // Draining the fleet frees capacity again.
    let outcomes = router.flush_outcomes();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(RouterOutcome::is_completed));
    let (user, hist) = reqs.first().expect("traffic is non-empty");
    assert!(router.submit(*user, hist, 3).is_ok());
}

#[test]
fn hot_swap_completes_in_flight_on_old_snapshot_with_zero_drops() {
    let (workload, vocab, trie) = catalog();
    let lm_cfg = scale_lm_config(None, vocab.len());
    let lm_old = CausalLm::new(lm_cfg.clone());

    // The "new checkpoint": same architecture, different weights, loaded
    // through the chunked file path exactly as a production swap would be.
    let mut src_cfg = lm_cfg.clone();
    src_cfg.seed = lm_cfg.seed.wrapping_add(99);
    let src = CausalLm::new(src_cfg);
    let dir = std::env::temp_dir().join(format!("lcrec-fleet-swap-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let ckpt = dir.join("next.bin");
    save_params_file(src.store(), &ckpt).expect("save checkpoint");
    let mut lm_new = CausalLm::new(lm_cfg.clone());
    load_params_file(lm_new.store_mut(), &ckpt).expect("chunked load");
    std::fs::remove_dir_all(&dir).ok();

    let reqs = traffic(&workload, 12);
    let (pre, post) = reqs.split_at(6);

    // Reference bits for both snapshots via direct engines.
    let direct = |lm: &CausalLm, reqs: &[(u64, Vec<u32>)]| -> Vec<Vec<(u32, u32)>> {
        let mut engine = Engine::new(lm, &vocab, &trie, shard_cfg(reqs.len()));
        for (_, hist) in reqs {
            engine.submit(hist, 5).expect("queue sized to the load");
        }
        engine.flush().iter().map(|r| ranked_bits(&r.ranked)).collect()
    };
    let old_bits = direct(&lm_old, pre);
    let new_bits = direct(&lm_new, post);
    let old_bits_of_post = direct(&lm_old, post);
    assert_ne!(
        new_bits, old_bits_of_post,
        "the checkpoint must actually change answers, or this test proves nothing"
    );

    let cfg = RouterConfig { shards: 2, shard: shard_cfg(reqs.len()), ..RouterConfig::default() };
    let mut router = Router::new(&lm_old, &vocab, &trie, cfg);
    let pre_tickets: Vec<u64> = pre
        .iter()
        .map(|(user, hist)| router.submit(*user, hist, 5).expect("fleet has room"))
        .collect();
    assert_eq!(router.queue_depth(), pre.len(), "pre-swap requests still queued");

    // Flip snapshots while those requests are in flight.
    let flushed = router.hot_swap(&lm_new, &vocab, &trie);
    assert!(flushed.is_empty(), "no previous standby generation existed");
    assert_eq!(router.epoch(), 1);
    assert_eq!(router.queue_depth(), pre.len(), "the swap cancels nothing");

    let post_tickets: Vec<u64> = post
        .iter()
        .map(|(user, hist)| router.submit(*user, hist, 5).expect("fleet has room"))
        .collect();
    let outcomes = router.flush_outcomes();

    // Zero dropped outcomes: every ticket resolves exactly once.
    assert_eq!(outcomes.len(), pre.len() + post.len());
    assert_eq!(router.pending_len(), 0);
    let mut seen: Vec<u64> = outcomes.iter().map(RouterOutcome::id).collect();
    seen.sort_unstable();
    let mut expected: Vec<u64> =
        pre_tickets.iter().chain(&post_tickets).copied().collect();
    expected.sort_unstable();
    assert_eq!(seen, expected);

    let bits_of = |ticket: u64| -> Vec<(u32, u32)> {
        let response = outcomes
            .iter()
            .find(|o| o.id() == ticket)
            .cloned()
            .and_then(RouterOutcome::completed)
            .expect("completed");
        ranked_bits(&response.ranked)
    };
    // In-flight (pre-swap) requests decoded on the OLD snapshot…
    for (ticket, want) in pre_tickets.iter().zip(&old_bits) {
        assert_eq!(&bits_of(*ticket), want, "pre-swap ticket {ticket} left the old snapshot");
    }
    // …while post-swap admissions decoded on the NEW one.
    for (ticket, want) in post_tickets.iter().zip(&new_bits) {
        assert_eq!(&bits_of(*ticket), want, "post-swap ticket {ticket} missed the new snapshot");
    }
}

#[test]
fn deadline_timeouts_hedge_until_the_budget_is_spent() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    // A zero deadline expires at every shard, so the request hedges
    // through its whole budget and must still end in exactly one typed
    // terminal outcome.
    let cfg = RouterConfig {
        shards: 2,
        hedge_attempts: 2,
        shard: ServeConfig { deadline_ms: Some(0), ..shard_cfg(4) },
        ..RouterConfig::default()
    };
    let mut router = Router::new(&lm, &vocab, &trie, cfg);
    let (user, hist) = traffic(&workload, 1).into_iter().next().expect("one request");
    let ticket = router.submit(user, &hist, 3).expect("admission is fine; decoding expires");
    let outcomes = router.flush_outcomes();
    assert_eq!(outcomes.len(), 1);
    match outcomes.first() {
        Some(RouterOutcome::TimedOut { id, hops, reason, .. }) => {
            assert_eq!(*id, ticket);
            assert_eq!(*hops, 3, "first admission + 2 hedges");
            assert_eq!(*reason, TimeoutReason::Deadline);
        }
        other => panic!("expected a terminal timeout, got {other:?}"),
    }
    assert_eq!(router.pending_len(), 0);
    assert_eq!(router.queue_depth(), 0);
}

#[test]
fn transient_faults_never_change_fleet_results() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let reqs = traffic(&workload, 8);
    let clean = route_bits(&lm, &vocab, &trie, &reqs, 2, None);
    for seed in [1u64, 2] {
        let faulty =
            route_bits(&lm, &vocab, &trie, &reqs, 2, Some((Mode::Transient, seed, 2)));
        assert_eq!(faulty, clean, "transient faults leaked into results at seed {seed}");
    }
}

/// One run's observable fleet history, for chaos determinism comparison.
fn chaos_trace(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    reqs: &[(u64, Vec<u32>)],
    seed: u64,
) -> Vec<String> {
    let cfg = RouterConfig {
        shards: 2,
        shard: shard_cfg(reqs.len()),
        ..RouterConfig::default()
    };
    let mut router =
        Router::new(lm, vocab, trie, cfg).with_faults(Mode::Chaos, seed, 4);
    let mut trace = Vec::new();
    let mut tickets = Vec::new();
    for (user, hist) in reqs {
        match router.submit(*user, hist, 3) {
            Ok(t) => tickets.push(t),
            Err(e) => trace.push(format!("rejected: {e}")),
        }
    }
    let mut outcomes = router.flush_outcomes();
    // Exhaustive accounting under chaos: exactly one terminal outcome per
    // admitted ticket, nothing pending, nothing queued.
    assert_eq!(outcomes.len(), tickets.len());
    assert_eq!(router.pending_len(), 0);
    assert_eq!(router.queue_depth(), 0);
    outcomes.sort_by_key(RouterOutcome::id);
    for o in &outcomes {
        match o {
            RouterOutcome::Completed { shard, hops, response } => trace.push(format!(
                "completed: id={} shard={shard} hops={hops} top={:?}",
                response.id,
                response.ranked.first().map(|h| h.item)
            )),
            RouterOutcome::TimedOut { id, shard, hops, reason, .. } => {
                trace.push(format!("timeout: id={id} shard={shard} hops={hops} reason={reason}"))
            }
        }
    }
    trace
}

#[test]
fn chaos_sweep_is_deterministic_and_exhaustively_accounted() {
    let (workload, vocab, trie) = catalog();
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let reqs = traffic(&workload, 10);
    for seed in [1u64, 2] {
        let first = chaos_trace(&lm, &vocab, &trie, &reqs, seed);
        let second = chaos_trace(&lm, &vocab, &trie, &reqs, seed);
        assert_eq!(first, second, "chaos at seed {seed} must replay identically");
        assert!(!first.is_empty());
    }
    // Different seeds produce different fleet histories (otherwise the
    // sweep isn't sweeping).
    assert_ne!(
        chaos_trace(&lm, &vocab, &trie, &reqs, 1),
        chaos_trace(&lm, &vocab, &trie, &reqs, 2)
    );
}

#[test]
fn ring_reshard_moves_keys_only_to_the_new_shard() {
    for shards in 1..6usize {
        let before = Ring::new(shards, 16, 0xf1ee7);
        let after = Ring::new(shards + 1, 16, 0xf1ee7);
        let mut moved = 0usize;
        for user in 0..512u64 {
            let (b, a) = (before.primary(user), after.primary(user));
            assert!(
                a == b || a == shards,
                "user {user} moved {b} → {a} when shard {shards} joined"
            );
            if a != b {
                moved += 1;
            }
        }
        assert!(moved > 0, "the new shard must take over some keys");
        assert!(
            moved < 512 * 2 / (shards + 1),
            "consistent hashing moved {moved}/512 keys at {shards}→{} shards",
            shards + 1
        );
    }
}
