//! Property-based tests (proptest) on cross-crate invariants: the index
//! trie, constrained decoding, Sinkhorn balance, metrics, and the
//! tokenizer round trip.

use lc_rec::prelude::*;
use lc_rec::rqvae::{uniform_assign, SinkhornConfig};
use proptest::prelude::*;

/// Strategy: a set of unique multi-level codes.
fn arb_codes(levels: usize, k: u16, n: usize) -> impl Strategy<Value = Vec<Vec<u16>>> {
    proptest::collection::hash_set(
        proptest::collection::vec(0..k, levels),
        1..=n,
    )
    .prop_map(|s| s.into_iter().collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trie_accepts_exactly_its_items(codes in arb_codes(3, 5, 40)) {
        let indices = ItemIndices::new(vec![5, 5, 5], codes.clone());
        let trie = IndexTrie::build(&indices);
        // Every inserted code path resolves to an item.
        for (i, c) in codes.iter().enumerate() {
            let item = trie.item_at(c).expect("inserted code must resolve");
            prop_assert_eq!(indices.of(item), c.as_slice());
            let _ = i;
        }
        // Walking only allowed() transitions always ends at a real item.
        let mut prefix = Vec::new();
        for _ in 0..3 {
            let allowed = trie.allowed(&prefix);
            prop_assert!(!allowed.is_empty());
            prefix.push(allowed[0]);
        }
        prop_assert!(trie.item_at(&prefix).is_some());
    }

    #[test]
    fn trie_rejects_mutated_codes(codes in arb_codes(3, 5, 30)) {
        let indices = ItemIndices::new(vec![5, 5, 5], codes.clone());
        let trie = IndexTrie::build(&indices);
        // A code outside the codebook range can never resolve.
        let mut bad = codes[0].clone();
        bad[2] = 63; // out of the 0..5 range used at build time
        prop_assert!(trie.item_at(&bad).is_none());
        // Wrong length never resolves.
        prop_assert!(trie.item_at(&codes[0][..2]).is_none());
    }

    #[test]
    fn sinkhorn_assignment_is_balanced(
        rows in 2usize..30,
        cols in 2usize..8,
        seed in 0u64..1000,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.random_range(0.0..10.0)).collect();
        let cost = Tensor::new(&[rows, cols], data);
        let assign = uniform_assign(&cost, SinkhornConfig::default());
        prop_assert_eq!(assign.len(), rows);
        let cap = rows.div_ceil(cols);
        let mut loads = vec![0usize; cols];
        for &a in &assign {
            prop_assert!((a as usize) < cols);
            loads[a as usize] += 1;
        }
        prop_assert!(loads.iter().all(|&l| l <= cap), "loads {:?} exceed cap {}", loads, cap);
    }

    #[test]
    fn hr_ndcg_are_bounded_and_consistent(
        ranked in proptest::collection::vec(0u32..100, 1..20),
        target in 0u32..100,
    ) {
        use lc_rec::eval::RankingMetrics;
        let mut m = RankingMetrics::default();
        m.push(&ranked, target);
        let f = m.finalize();
        for v in f.as_row() {
            prop_assert!((0.0..=1.0).contains(&v));
        }
        // HR@1 ≤ HR@5 ≤ HR@10 and NDCG@5 ≤ HR@5 (single relevant item).
        prop_assert!(f.hr1 <= f.hr5 + 1e-12);
        prop_assert!(f.hr5 <= f.hr10 + 1e-12);
        prop_assert!(f.ndcg5 <= f.hr5 + 1e-12);
        prop_assert!(f.ndcg10 <= f.hr10 + 1e-12);
    }

    #[test]
    fn vocab_round_trips_known_words(words in proptest::collection::vec("[a-z]{1,8}", 1..12)) {
        let corpus = words.join(" ");
        let vocab = Vocab::build([corpus.as_str()], 1);
        let ids = vocab.encode(&corpus);
        let decoded = vocab.decode(&ids);
        let original: Vec<&str> = corpus.split_whitespace().collect();
        let round: Vec<&str> = decoded.split_whitespace().collect();
        prop_assert_eq!(original, round);
    }

    #[test]
    fn softmax_rows_is_a_distribution(
        vals in proptest::collection::vec(-50.0f32..50.0, 4..40),
    ) {
        use lc_rec::tensor::softmax_rows;
        let cols = 4;
        let n = (vals.len() / cols) * cols;
        let mut out = vec![0.0; n];
        softmax_rows(&vals[..n], &mut out, cols);
        for row in out.chunks(cols) {
            let s: f32 = row.iter().sum();
            prop_assert!((s - 1.0).abs() < 1e-4);
            prop_assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

#[test]
fn extended_vocab_item_tokens_round_trip_for_all_items() {
    // Deterministic exhaustive check over a real learned index set.
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 9);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.epochs = 5;
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
    let trie = IndexTrie::build(&indices);
    for item in 0..ds.num_items() as u32 {
        assert_eq!(trie.item_at(indices.of(item)), Some(item), "item {item} must round-trip");
    }
}
