//! Property-style tests on cross-crate invariants: the index trie,
//! constrained decoding, Sinkhorn balance, metrics, and the tokenizer round
//! trip.
//!
//! Each test draws 64 randomized cases from a fixed-seed generator (the
//! offline stand-in for the original proptest strategies), so failures are
//! reproducible by construction.

use lc_rec::prelude::*;
use lc_rec::rqvae::{uniform_assign, SinkhornConfig};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeSet;

const CASES: usize = 64;

/// A non-empty set of unique multi-level codes, mimicking the original
/// `hash_set(vec(0..k, levels), 1..=n)` strategy.
fn arb_codes(rng: &mut StdRng, levels: usize, k: u16, n: usize) -> Vec<Vec<u16>> {
    let want = rng.random_range(1..=n);
    let mut set: BTreeSet<Vec<u16>> = BTreeSet::new();
    // Bounded attempts: duplicates are simply re-drawn, like hash_set does.
    for _ in 0..want * 8 {
        if set.len() == want {
            break;
        }
        set.insert((0..levels).map(|_| rng.random_range(0..k)).collect());
    }
    set.into_iter().collect()
}

#[test]
fn trie_accepts_exactly_its_items() {
    let mut rng = StdRng::seed_from_u64(0xC0DE5);
    for _ in 0..CASES {
        let codes = arb_codes(&mut rng, 3, 5, 40);
        let indices = ItemIndices::new(vec![5, 5, 5], codes.clone());
        let trie = IndexTrie::build(&indices);
        // Every inserted code path resolves to an item.
        for c in &codes {
            let item = trie.item_at(c).expect("inserted code must resolve");
            assert_eq!(indices.of(item), c.as_slice());
        }
        // Walking only allowed() transitions always ends at a real item.
        let mut prefix = Vec::new();
        for _ in 0..3 {
            let allowed = trie.allowed(&prefix);
            assert!(!allowed.is_empty());
            prefix.push(allowed[0]);
        }
        assert!(trie.item_at(&prefix).is_some());
    }
}

#[test]
fn trie_rejects_mutated_codes() {
    let mut rng = StdRng::seed_from_u64(0xBAD_C0DE);
    for _ in 0..CASES {
        let codes = arb_codes(&mut rng, 3, 5, 30);
        let indices = ItemIndices::new(vec![5, 5, 5], codes.clone());
        let trie = IndexTrie::build(&indices);
        // A code outside the codebook range can never resolve.
        let mut bad = codes[0].clone();
        bad[2] = 63; // out of the 0..5 range used at build time
        assert!(trie.item_at(&bad).is_none());
        // Wrong length never resolves.
        assert!(trie.item_at(&codes[0][..2]).is_none());
    }
}

#[test]
fn sinkhorn_assignment_is_balanced() {
    let mut rng = StdRng::seed_from_u64(0x51A7);
    for _ in 0..CASES {
        let rows = rng.random_range(2usize..30);
        let cols = rng.random_range(2usize..8);
        let data: Vec<f32> = (0..rows * cols).map(|_| rng.random_range(0.0..10.0)).collect();
        let cost = Tensor::new(&[rows, cols], data);
        let assign = uniform_assign(&cost, SinkhornConfig::default());
        assert_eq!(assign.len(), rows);
        let cap = rows.div_ceil(cols);
        let mut loads = vec![0usize; cols];
        for &a in &assign {
            assert!((a as usize) < cols);
            loads[a as usize] += 1;
        }
        assert!(loads.iter().all(|&l| l <= cap), "loads {loads:?} exceed cap {cap}");
    }
}

#[test]
fn hr_ndcg_are_bounded_and_consistent() {
    use lc_rec::eval::RankingMetrics;
    let mut rng = StdRng::seed_from_u64(0xAB);
    for _ in 0..CASES {
        let len = rng.random_range(1usize..20);
        let ranked: Vec<u32> = (0..len).map(|_| rng.random_range(0..100u32)).collect();
        let target = rng.random_range(0..100u32);
        let mut m = RankingMetrics::default();
        m.push(&ranked, target);
        let f = m.finalize();
        for v in f.as_row() {
            assert!((0.0..=1.0).contains(&v));
        }
        // HR@1 ≤ HR@5 ≤ HR@10 and NDCG@5 ≤ HR@5 (single relevant item).
        assert!(f.hr1 <= f.hr5 + 1e-12);
        assert!(f.hr5 <= f.hr10 + 1e-12);
        assert!(f.ndcg5 <= f.hr5 + 1e-12);
        assert!(f.ndcg10 <= f.hr10 + 1e-12);
    }
}

#[test]
fn vocab_round_trips_known_words() {
    let mut rng = StdRng::seed_from_u64(0x70C);
    for _ in 0..CASES {
        let nwords = rng.random_range(1usize..12);
        let words: Vec<String> = (0..nwords)
            .map(|_| {
                let len = rng.random_range(1usize..=8);
                (0..len).map(|_| (b'a' + rng.random_range(0..26u8)) as char).collect()
            })
            .collect();
        let corpus = words.join(" ");
        let vocab = Vocab::build([corpus.as_str()], 1);
        let ids = vocab.encode(&corpus);
        let decoded = vocab.decode(&ids);
        let original: Vec<&str> = corpus.split_whitespace().collect();
        let round: Vec<&str> = decoded.split_whitespace().collect();
        assert_eq!(original, round);
    }
}

#[test]
fn softmax_rows_is_a_distribution() {
    use lc_rec::tensor::softmax_rows;
    let mut rng = StdRng::seed_from_u64(0x50F7);
    for _ in 0..CASES {
        let len = rng.random_range(4usize..40);
        let vals: Vec<f32> = (0..len).map(|_| rng.random_range(-50.0f32..50.0)).collect();
        let cols = 4;
        let n = (vals.len() / cols) * cols;
        let mut out = vec![0.0; n];
        softmax_rows(&vals[..n], &mut out, cols);
        for row in out.chunks(cols) {
            let s: f32 = row.iter().sum();
            assert!((s - 1.0).abs() < 1e-4);
            assert!(row.iter().all(|&p| (0.0..=1.0).contains(&p)));
        }
    }
}

/// `log(sum(exp(logits)))` computed with *exactly* the float-op sequence the
/// beam's scoring phase uses (`fold` max, `iter().map().sum()`, `z.ln() + mx`)
/// so oracle scores are bit-comparable to beam scores.
fn beam_log_z(logits: &[f32]) -> f32 {
    let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = logits.iter().map(|&v| (v - mx).exp()).sum();
    z.ln() + mx
}

#[test]
fn beam_matches_exhaustive_oracle_when_width_covers_all_items() {
    use lc_rec::core::{
        constrained_beam_search, constrained_beam_search_graph, CausalLm, ExtendedVocab, LmConfig,
    };

    let mut rng = StdRng::seed_from_u64(0x0BEA_04AC);
    for case in 0..12 {
        let codes = arb_codes(&mut rng, 3, 4, 10);
        let n_items = codes.len();
        let indices = ItemIndices::new(vec![4, 4, 4], codes);
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(Vocab::build(["recommend an item"], 1), indices);
        let mut lm_cfg = LmConfig::test(vocab.len());
        lm_cfg.seed = 0x5EED + case as u64;
        let lm = CausalLm::new(lm_cfg);
        let prompt = vocab.render(&[Seg::Text("recommend".into())]);

        // Oracle: score every stored item by full-sequence teacher forcing,
        // replaying the beam's restricted log-softmax arithmetic verbatim.
        let mut oracle: Vec<(u32, f32)> = Vec::with_capacity(n_items);
        for item in 0..n_items as u32 {
            let item_codes: Vec<u16> = vocab.indices().of(item).to_vec();
            let mut cache = lm.new_cache();
            let mut logits = lm.prefill(&mut cache, &prompt);
            let mut lp = 0.0f32;
            for (level, &code) in item_codes.iter().enumerate() {
                let lz = beam_log_z(&logits);
                let tok = vocab.index_token(level, code);
                lp = lp + logits[tok as usize] - lz;
                logits = lm.advance(&mut cache, tok);
            }
            oracle.push((item, lp));
        }

        // Beam wide enough to hold every item: level-wise truncation can
        // never prune (candidates per level ≤ |items|), so the search is
        // exhaustive and must reproduce the oracle bit for bit.
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, n_items);
        assert_eq!(hyps.len(), n_items, "case {case}: beam must surface every item");
        // The graph-backed baseline drives the same search through full
        // tape re-forwards; it must agree with the fused path bit for bit.
        let graph = constrained_beam_search_graph(&lm, &vocab, &trie, &prompt, n_items);
        let fused_bits: Vec<(u32, u32)> =
            hyps.iter().map(|h| (h.item, h.logprob.to_bits())).collect();
        let graph_bits: Vec<(u32, u32)> =
            graph.iter().map(|h| (h.item, h.logprob.to_bits())).collect();
        assert_eq!(graph_bits, fused_bits, "case {case}: graph baseline vs fused path");
        let mut got: Vec<(u32, u32)> = fused_bits.clone();
        let mut want: Vec<(u32, u32)> =
            oracle.iter().map(|&(i, lp)| (i, lp.to_bits())).collect();
        // Canonical order (score desc, item asc) on both sides: ranking and
        // scores must agree exactly; only tie order is normalized away.
        got.sort_by(|a, b| {
            f32::from_bits(b.1)
                .partial_cmp(&f32::from_bits(a.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        want.sort_by(|a, b| {
            f32::from_bits(b.1)
                .partial_cmp(&f32::from_bits(a.1))
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.0.cmp(&b.0))
        });
        assert_eq!(got, want, "case {case}: beam ranking must equal exhaustive scoring");
        // And the beam's own order must already be sorted by score.
        for w in hyps.windows(2) {
            assert!(w[0].logprob >= w[1].logprob);
        }
    }
}

#[test]
fn extended_vocab_item_tokens_round_trip_for_all_items() {
    // Deterministic exhaustive check over a real learned index set.
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 9);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.epochs = 5;
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
    let trie = IndexTrie::build(&indices);
    for item in 0..ds.num_items() as u32 {
        assert_eq!(trie.item_at(indices.of(item)), Some(item), "item {item} must round-trip");
    }
}
