//! Scale-invariance suite: the properties that keep the scale tier
//! honest as workloads grow (ISSUE 8, docs/PERFORMANCE.md "Scale tiers").
//!
//! * streaming vs materialized generation are **bit-identical** (compared
//!   as raw little-endian bytes, not just structurally);
//! * streaming generation is O(1)-memory per user, guarded by a
//!   self-sampled RSS high-water probe;
//! * the chunked checkpoint writer/reader are **byte-identical** to the
//!   whole-buffer paths, and 200 seeded corruptions of a large-tier
//!   checkpoint are all rejected with typed errors and zero mutation;
//! * Zipf traffic replay matches its analytic frequency ranking;
//! * small-tier serving outputs are bit-identical at batch {1, 8} ×
//!   threads {1, 4};
//! * the arena `IndexTrie` matches the pointer reference node-for-node on
//!   a 50k-item synthetic vocabulary, including text round-trips.

use lc_rec::core::{CausalLm, ExtendedVocab, LmConfig};
use lc_rec::data::{ScaleConfig, ScaleError, ZipfSampler};
use lc_rec::par::Pool;
use lc_rec::rqvae::{IndexTrie, ItemIndices, PointerTrie};
use lc_rec::serve::{Engine, ServeConfig};
use lc_rec::tensor::serialize::{
    load_params, load_params_file, params_sealed_len, save_params, save_params_file,
};
use lc_rec::tensor::ParamStore;
use lc_rec::text::Vocab;
use lcrec_bench::setup::scale_lm_config;
use lcrec_bench::ScaleTier;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::Mutex;

/// Serializes the tests in this binary. The RSS high-water probe samples
/// process-wide memory, so concurrent test bodies would pollute its
/// readings; everything else is fast enough that the lost parallelism is
/// noise.
static GATE: Mutex<()> = Mutex::new(());

fn gate() -> std::sync::MutexGuard<'static, ()> {
    GATE.lock().unwrap_or_else(|e| e.into_inner())
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("lcrec-scale-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    dir
}

// ---------------------------------------------------------------------------
// Streaming generation
// ---------------------------------------------------------------------------

/// Length-prefixed little-endian flattening — the raw-bytes form the
/// bit-identity assertions compare.
fn seqs_as_bytes(seqs: impl Iterator<Item = Vec<u32>>) -> Vec<u8> {
    let mut out = Vec::new();
    for seq in seqs {
        out.extend_from_slice(&(seq.len() as u32).to_le_bytes());
        for v in seq {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    out
}

#[test]
fn streaming_generation_is_bit_identical_to_materialized() {
    let _g = gate();
    for cfg in [ScaleConfig::tier_test(), ScaleConfig::tier_small()] {
        let streamed = seqs_as_bytes(cfg.stream_users().expect("valid tier"));
        let materialized = seqs_as_bytes(cfg.materialize().expect("valid tier").into_iter());
        assert!(!streamed.is_empty());
        assert_eq!(
            streamed, materialized,
            "streaming and materialized generation must emit identical bytes"
        );
    }
}

/// Resident-set size in KiB from `/proc/self/statm` (Linux); `None`
/// elsewhere, which skips the probe's memory assertion.
fn rss_kib() -> Option<i64> {
    let statm = std::fs::read_to_string("/proc/self/statm").ok()?;
    let pages: i64 = statm.split_whitespace().nth(1)?.parse().ok()?;
    Some(pages * 4)
}

#[test]
fn streaming_generation_memory_stays_flat() {
    let _g = gate();
    // A population whose materialized form is tens of MB: if streaming
    // secretly collected it, the RSS samples below would show it.
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_items = 1_000;
    cfg.codebook_size = 32; // index capacity 1024 ≥ the catalog
    cfg.num_users = 400_000;
    let base = rss_kib();
    let mut peak_delta_kib: i64 = 0;
    let mut retained_bytes: u64 = 0;
    let mut checksum: u64 = 0;
    for (u, seq) in cfg.stream_users().expect("valid").enumerate() {
        // What materialize() would have to keep for this user: Vec header
        // + data. An underestimate (allocator slack, parent Vec ignored),
        // which only makes the assertion stricter.
        retained_bytes += 24 + 4 * seq.len() as u64;
        for &i in &seq {
            checksum = checksum.wrapping_mul(31).wrapping_add(i as u64);
        }
        if u % 20_000 == 0 {
            if let (Some(b), Some(now)) = (base, rss_kib()) {
                peak_delta_kib = peak_delta_kib.max(now - b);
            }
        }
    }
    assert!(checksum != 0, "the stream must actually emit data");
    let materialized_kib = (retained_bytes / 1024) as i64;
    assert!(
        materialized_kib > 8 * 1024,
        "probe workload too small to be meaningful: {materialized_kib} KiB"
    );
    if base.is_some() {
        assert!(
            peak_delta_kib < materialized_kib / 4,
            "streaming generation grew RSS by {peak_delta_kib} KiB against a \
             {materialized_kib} KiB materialized working set — is it buffering the population?"
        );
    }
}

#[test]
fn zipf_replay_matches_analytic_frequency_ranking() {
    let _g = gate();
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_users = 200;
    cfg.zipf_exponent = 1.1;
    let draws = 300_000usize;
    let mut counts = vec![0u64; cfg.num_users];
    for user in cfg.replay().expect("valid").take(draws) {
        counts[user] += 1;
    }
    // Frequency must fall with rank: compare well-separated ranks so
    // sampling noise cannot flip the order.
    for (a, b) in [(0usize, 4usize), (4, 16), (16, 64), (64, 199)] {
        assert!(
            counts[a] > counts[b],
            "rank {a} ({}) should outdraw rank {b} ({})",
            counts[a],
            counts[b]
        );
    }
    // And the head frequencies must match the analytic law quantitatively.
    let sampler = ZipfSampler::new(cfg.num_users, cfg.zipf_exponent).expect("valid");
    let total_weight: f64 = (0..cfg.num_users).map(|r| sampler.analytic_weight(r)).sum();
    for rank in 0..10 {
        let expected = sampler.analytic_weight(rank) / total_weight;
        let observed = counts[rank] as f64 / draws as f64;
        assert!(
            (observed - expected).abs() / expected < 0.25,
            "rank {rank}: observed {observed:.4} vs analytic {expected:.4}"
        );
    }
}

#[test]
fn scale_config_edge_cases_are_typed_errors_never_panics() {
    let _g = gate();
    // Zero users: generation is legally empty, replay has no one to sample.
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_users = 0;
    assert_eq!(cfg.stream_users().expect("valid").count(), 0);
    assert!(cfg.materialize().expect("valid").is_empty());
    assert_eq!(cfg.replay().err(), Some(ScaleError::NoUsers));

    // A single item is a valid (if dull) catalog: every draw is item 0.
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_items = 1;
    for seq in cfg.stream_users().expect("valid").take(50) {
        assert!(seq.iter().all(|&i| i == 0));
    }

    // Exponent 0 is uniform: every rank of a small catalog gets sampled.
    let uniform = ZipfSampler::new(10, 0.0).expect("valid");
    let mut rng = StdRng::seed_from_u64(3);
    let mut seen = [0u32; 10];
    for _ in 0..10_000 {
        seen[uniform.sample(&mut rng)] += 1;
    }
    assert!(seen.iter().all(|&c| c > 500), "uniform sampling must cover every rank: {seen:?}");

    // Extreme skew stays valid and concentrates on the head.
    let skewed = ZipfSampler::new(1_000, 8.0).expect("valid");
    let mut head = 0u32;
    for _ in 0..2_000 {
        if skewed.sample(&mut rng) == 0 {
            head += 1;
        }
    }
    assert!(head > 1_900, "exponent 8 should put >95% of mass on rank 0, got {head}/2000");

    // Degenerate shapes are typed errors implementing std::error::Error.
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_items = 0;
    assert_eq!(cfg.validate().err(), Some(ScaleError::NoItems));

    let mut cfg = ScaleConfig::tier_test();
    cfg.zipf_exponent = f64::NAN;
    assert!(matches!(cfg.validate().err(), Some(ScaleError::BadExponent { .. })));
    cfg.zipf_exponent = -1.0;
    assert!(matches!(cfg.validate().err(), Some(ScaleError::BadExponent { .. })));

    let mut cfg = ScaleConfig::tier_test();
    cfg.num_items = 100_000;
    cfg.levels = 2;
    cfg.codebook_size = 16; // capacity 256
    let err = cfg.synthetic_codes().expect_err("catalog exceeds index capacity");
    assert!(matches!(err, ScaleError::VocabExhausted { items: 100_000, capacity: 256 }));
    let dynerr: &dyn std::error::Error = &err;
    assert!(dynerr.to_string().contains("256"), "{dynerr}");
}

// ---------------------------------------------------------------------------
// Memory-bounded checkpoint I/O
// ---------------------------------------------------------------------------

fn store_bits(ps: &ParamStore) -> Vec<u32> {
    ps.ids().flat_map(|id| ps.value(id).data().iter().map(|x| x.to_bits())).collect()
}

/// An LM at the large serving tier — weights far beyond cache, the
/// checkpoint the chunked I/O exists for.
fn large_tier_lm(seed: u64) -> CausalLm {
    let mut cfg = LmConfig::large(256);
    cfg.seed = seed;
    CausalLm::new(cfg)
}

#[test]
fn chunked_checkpoint_io_is_byte_identical_to_whole_buffer_paths() {
    let _g = gate();
    let dir = temp_dir("bytes");
    let path = dir.join("large.lcr");
    let src = large_tier_lm(1);

    // Writer: the streamed file must be byte-for-byte what save_params
    // produces in memory.
    let mut whole = Vec::new();
    save_params(src.store(), &mut whole).expect("whole-buffer save");
    save_params_file(src.store(), &path).expect("streamed save");
    let streamed = std::fs::read(&path).expect("read back");
    assert_eq!(streamed.len() as u64, params_sealed_len(src.store()));
    assert_eq!(streamed, whole, "streamed and whole-buffer checkpoints must be identical bytes");

    // Reader: the chunked load restores bit-identical parameters, and the
    // two readers accept each other's files.
    let mut via_chunks = large_tier_lm(2);
    let n = load_params_file(via_chunks.store_mut(), &path).expect("chunked load");
    assert!(n > 0);
    assert_eq!(store_bits(via_chunks.store()), store_bits(src.store()));

    let mut via_buffer = large_tier_lm(3);
    load_params(via_buffer.store_mut(), &mut whole.as_slice()).expect("whole-buffer load");
    assert_eq!(store_bits(via_buffer.store()), store_bits(src.store()));

    // Round trip through the streamed writer again: a fixed point.
    let path2 = dir.join("resaved.lcr");
    save_params_file(via_chunks.store(), &path2).expect("re-save");
    assert_eq!(std::fs::read(&path2).expect("read"), whole);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn chunked_reader_rejects_200_seeded_corruptions_with_typed_errors() {
    let _g = gate();
    let dir = temp_dir("fuzz");
    let src = large_tier_lm(1);
    let good_path = dir.join("good.lcr");
    save_params_file(src.store(), &good_path).expect("save");
    let good = std::fs::read(&good_path).expect("read");

    // Sanity: the unmutated file round-trips.
    let mut dst = large_tier_lm(2);
    load_params_file(dst.store_mut(), &good_path).expect("clean load");

    let mut dst = large_tier_lm(3);
    let pristine = store_bits(dst.store());
    let mut rng = StdRng::seed_from_u64(0x5CA1E_F022);
    let bad_path = dir.join("bad.lcr");
    for case in 0..200 {
        let mut bytes = good.clone();
        match case % 5 {
            // Truncation anywhere (torn write).
            0 => bytes.truncate(rng.random_range(0..bytes.len())),
            // A single flipped bit anywhere (disk corruption).
            1 => {
                let i = rng.random_range(0..bytes.len());
                bytes[i] ^= 1 << rng.random_range(0..8);
            }
            // Corrupted magic.
            2 => bytes[rng.random_range(0..4)] = rng.random_range(0..=255),
            // A mangled count/shape field early in the payload.
            3 => {
                let i = rng.random_range(4..24);
                bytes[i] = 0xFF;
            }
            // Trailing garbage after the trailer.
            _ => bytes.extend_from_slice(&[0xAB; 3]),
        }
        if bytes == good {
            continue; // the mutation was an identity; nothing to assert
        }
        std::fs::write(&bad_path, &bytes).expect("write fuzz case");
        let err = load_params_file(dst.store_mut(), &bad_path)
            .expect_err("every corruption must be a typed error, not a panic");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "case {case}: {err}");
        assert_eq!(store_bits(dst.store()), pristine, "case {case} partially mutated the store");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

// ---------------------------------------------------------------------------
// Small-tier serving bit-identity
// ---------------------------------------------------------------------------

#[test]
fn small_tier_serving_is_bit_identical_across_batch_and_threads() {
    let _g = gate();
    let workload = ScaleConfig::tier_small();
    let (sizes, codes) = workload.synthetic_codes().expect("valid tier");
    let indices = ItemIndices::new(sizes, codes);
    let trie = IndexTrie::build(&indices);
    let base = Vocab::build([ServeConfig::default().template.as_str()], 1);
    let vocab = ExtendedVocab::new(base, indices);
    let lm = CausalLm::new(scale_lm_config(Some(ScaleTier::Small), vocab.len()));

    let popularity =
        ZipfSampler::new(workload.num_items, workload.zipf_exponent).expect("valid tier");
    let histories: Vec<Vec<u32>> = workload
        .replay()
        .expect("valid tier")
        .take(16)
        .map(|user| workload.generate_user(&popularity, user))
        .collect();

    let run = |max_batch: usize, threads: usize| -> Vec<Vec<(u32, u32)>> {
        let cfg = ServeConfig {
            max_batch,
            queue_cap: histories.len(),
            max_wait_ms: 0,
            ..ServeConfig::default()
        };
        let mut engine = Engine::with_pool(&lm, &vocab, &trie, cfg, Pool::new(threads));
        for hist in &histories {
            engine.submit(hist, 5).expect("queue sized to the load");
        }
        engine
            .flush()
            .iter()
            .map(|r| r.ranked.iter().map(|h| (h.item, h.logprob.to_bits())).collect())
            .collect()
    };

    let reference = run(1, 1);
    assert_eq!(reference.len(), histories.len());
    assert!(
        reference.iter().any(|r| !r.is_empty()),
        "the scale workload must produce recommendations"
    );
    for batch in [1usize, 8] {
        for threads in [1usize, 4] {
            assert_eq!(
                run(batch, threads),
                reference,
                "serving diverged at batch {batch} × threads {threads}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Arena trie at scale
// ---------------------------------------------------------------------------

/// Every reachable prefix of the trie, by walking `allowed` transitions.
fn all_prefixes(trie: &IndexTrie, levels: usize) -> Vec<Vec<u16>> {
    let mut out = vec![Vec::new()];
    let mut frontier = vec![Vec::<u16>::new()];
    for _ in 0..levels {
        let mut next = Vec::new();
        for p in &frontier {
            for &c in trie.allowed_slice(p) {
                let mut q = p.clone();
                q.push(c);
                next.push(q);
            }
        }
        out.extend(next.iter().cloned());
        frontier = next;
    }
    out
}

#[test]
fn arena_trie_matches_pointer_reference_on_50k_item_vocab() {
    let _g = gate();
    let mut cfg = ScaleConfig::tier_test();
    cfg.num_items = 50_000;
    cfg.levels = 3;
    cfg.codebook_size = 40; // capacity 64 000
    let (sizes, codes) = cfg.synthetic_codes().expect("valid shape");
    let indices = ItemIndices::new(sizes, codes);
    let arena = IndexTrie::build(&indices);
    let pointer = PointerTrie::build(&indices);

    assert_eq!(arena.levels(), pointer.levels());
    assert_eq!(arena.num_nodes(), pointer.num_nodes(), "node counts differ at 50k items");
    let prefixes = all_prefixes(&arena, cfg.levels);
    assert!(prefixes.len() > cfg.num_items, "walk must reach every leaf");
    for p in &prefixes {
        assert_eq!(arena.allowed_slice(p).to_vec(), pointer.allowed(p), "allowed({p:?}) differs");
        assert_eq!(arena.item_at(p), pointer.item_at(p), "item_at({p:?}) differs");
    }

    // Text round-trip at scale: parse back, spot-check lookups, and the
    // serialization must be a fixed point.
    let text = arena.to_text();
    let back = IndexTrie::from_text(&text).expect("round trip must parse");
    assert_eq!(back.num_nodes(), arena.num_nodes());
    for p in prefixes.iter().step_by(97) {
        assert_eq!(back.allowed_slice(p).to_vec(), arena.allowed_slice(p).to_vec());
        assert_eq!(back.item_at(p), arena.item_at(p));
    }
    assert_eq!(back.to_text(), text, "to_text must be a fixed point");
}
