//! Serial-vs-parallel equivalence: every `lcrec-par` consumer must return
//! **bit-identical** results at any thread count. Micro-batch boundaries
//! and reduction order are pure functions of the input size (never of the
//! worker count), so a 4-thread run replays the 1-thread arithmetic
//! exactly — these tests pin that contract for beam search, both training
//! loops, and the evaluation harness.

use lc_rec::prelude::*;
use lc_rec::seqrec::{train_next_item_with, NextItemModel};

fn tiny_indices(ds: &Dataset) -> ItemIndices {
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    rq.epochs = 6;
    build_indices(IndexerKind::LcRec, &emb, &rq)
}

/// All parameter values of a store as raw bit patterns, in id order.
fn param_bits(ps: &lc_rec::tensor::ParamStore) -> Vec<Vec<u32>> {
    ps.ids().map(|id| ps.value(id).data().iter().map(|v| v.to_bits()).collect()).collect()
}

#[test]
fn beam_search_topk_bit_identical_across_thread_counts() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let indices = tiny_indices(&ds);
    let mut cfg = LcRecConfig::test();
    cfg.train.max_steps = Some(20);
    let mut model = LcRec::build(&ds, indices, cfg);
    model.fit(&ds);
    let trie = IndexTrie::build(model.vocab().indices());
    let builder = InstructionBuilder::new(&ds);

    for u in 0..4usize.min(ds.num_users()) {
        let prompt = model.vocab().render(&builder.seq_eval_prompt(ds.test_example(u).0));
        let decode = |pool: &Pool| -> Vec<(u32, u32)> {
            lc_rec::core::constrained_beam_search_with(
                pool,
                model.lm(),
                model.vocab(),
                &trie,
                &prompt,
                10,
            )
            .into_iter()
            .map(|h| (h.item, h.logprob.to_bits()))
            .collect()
        };
        let serial = decode(&Pool::new(1));
        let parallel = decode(&Pool::new(4));
        assert_eq!(serial, parallel, "user {u}: top-k item ids / log-prob bits diverge");
        assert!(!serial.is_empty());
    }
}

#[test]
fn seqrec_training_step_parameters_bit_identical() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let pairs = TrainingPairs::build(&ds, 10);
    let mut cfg = RecConfig::test();
    cfg.epochs = 1;
    // Dropout on: micro-batch noise streams are seeded by chunk index, so
    // the masks must also match bit-for-bit across thread counts.
    cfg.dropout = 0.2;

    let run = |threads: usize| -> (Vec<u32>, Vec<Vec<u32>>) {
        let mut model = SasRec::new(ds.num_items(), cfg.clone());
        let losses = train_next_item_with(&Pool::new(threads), &mut model, &pairs);
        let loss_bits = losses.iter().map(|l| l.to_bits()).collect();
        (loss_bits, param_bits(model.store_mut()))
    };
    let (loss1, params1) = run(1);
    let (loss4, params4) = run(4);
    assert_eq!(loss1, loss4, "epoch losses diverge between 1 and 4 threads");
    assert_eq!(params1, params4, "trained parameters diverge between 1 and 4 threads");
}

#[test]
fn rqvae_training_bit_identical_across_thread_counts() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut cfg = RqVaeConfig::small(24, ds.num_items());
    cfg.levels = 3;
    cfg.codebook_size = 8;
    cfg.latent_dim = 8;
    cfg.hidden = vec![16];
    cfg.epochs = 3;

    let run = |threads: usize| -> (Vec<u32>, Vec<Vec<u16>>) {
        let mut rq = RqVae::new(cfg.clone());
        let report = rq.train_with(&Pool::new(threads), &emb);
        let bits = report.epoch_losses.iter().map(|l| l.to_bits()).collect();
        (bits, rq.build_indices(&emb).codes)
    };
    let (loss1, codes1) = run(1);
    let (loss4, codes4) = run(4);
    assert_eq!(loss1, loss4, "RQ-VAE epoch losses diverge between 1 and 4 threads");
    assert_eq!(codes1, codes4, "assigned semantic IDs diverge between 1 and 4 threads");
}

#[test]
fn evaluation_metrics_bit_identical_across_thread_counts() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let pairs = TrainingPairs::build(&ds, 10);
    let mut cfg = RecConfig::test();
    cfg.epochs = 2;
    let mut model = SasRec::new(ds.num_items(), cfg);
    model.fit(&pairs);
    let ranker = ScoreRanker(&model);

    let run = |threads: usize| -> (Vec<u64>, usize) {
        let m = lc_rec::eval::evaluate_test_with(&Pool::new(threads), &ranker, &ds, 10);
        (m.as_row().iter().map(|v| v.to_bits()).collect(), m.count)
    };
    let (row1, n1) = run(1);
    let (row4, n4) = run(4);
    assert_eq!(n1, ds.num_users());
    assert_eq!(n1, n4);
    assert_eq!(row1, row4, "HR/NDCG accumulation diverges between 1 and 4 threads");
}
