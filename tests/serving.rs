//! Serving-path equivalence and edge cases: the batched engine must return
//! **bit-identical** rankings and log-probs to direct one-request-at-a-time
//! constrained beam search, at every batch size, over mixed request loads —
//! plus the admission edge cases (empty history, overlong history,
//! queue-full rejection).

use lc_rec::prelude::*;
use lc_rec::serve::Reject;
use rand::{rngs::StdRng, Rng, SeedableRng};

fn tiny_model() -> (Dataset, LcRec) {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    rq.epochs = 6;
    let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
    // Untrained weights are deterministic and exercise the same decode
    // arithmetic; training time would buy these tests nothing.
    let model = LcRec::build(&ds, indices, LcRecConfig::test());
    (ds, model)
}

/// A random mix of request histories (varying lengths, arbitrary items).
fn request_mix(ds: &Dataset, n: usize, seed: u64) -> Vec<(Vec<u32>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.random_range(1..12);
            let hist: Vec<u32> =
                (0..len).map(|_| rng.random_range(0..ds.num_items() as u32)).collect();
            let k = rng.random_range(1..6);
            (hist, k)
        })
        .collect()
}

fn ranked_bits(ranked: &[lc_rec::core::Hypothesis]) -> Vec<(u32, u32)> {
    ranked.iter().map(|h| (h.item, h.logprob.to_bits())).collect()
}

#[test]
fn engine_matches_direct_beam_search_bit_for_bit() {
    let (ds, model) = tiny_model();
    let cfg = ServeConfig { max_batch: 4, beam: 6, ..ServeConfig::default() };
    let mut engine = Engine::for_model(&model, cfg.clone());
    let requests = request_mix(&ds, 6, 7);

    for (hist, k) in &requests {
        engine.submit(hist, *k).expect("queue has room");
    }
    let responses = engine.flush();
    assert_eq!(responses.len(), requests.len());

    // The reference path: render the same prompt, run single-request
    // constrained beam search at the same width, cut to top-k.
    let probe = Engine::for_model(&model, cfg.clone());
    for (resp, (hist, k)) in responses.iter().zip(&requests) {
        let prompt = probe.render_prompt(hist);
        let mut direct = lc_rec::core::constrained_beam_search_with(
            &Pool::new(1),
            model.lm(),
            model.vocab(),
            model.trie(),
            &prompt,
            k.max(&cfg.beam).to_owned(),
        );
        direct.truncate(*k);
        assert_eq!(
            ranked_bits(&resp.ranked),
            ranked_bits(&direct),
            "engine diverges from direct decode for history {hist:?} k={k}"
        );
        assert!(!resp.ranked.is_empty());
    }
}

#[test]
fn batch_size_never_changes_answers() {
    let (ds, model) = tiny_model();
    let requests = request_mix(&ds, 8, 13);

    let run = |max_batch: usize, threads: usize| -> Vec<Vec<(u32, u32)>> {
        let cfg = ServeConfig { max_batch, beam: 5, ..ServeConfig::default() };
        let mut engine = lc_rec::serve::Engine::with_pool(
            model.lm(),
            model.vocab(),
            model.trie(),
            cfg,
            Pool::new(threads),
        );
        for (hist, k) in &requests {
            engine.submit(hist, *k).expect("queue has room");
        }
        let responses = engine.flush();
        // flush preserves admission order, so rows line up across runs.
        responses.iter().map(|r| ranked_bits(&r.ranked)).collect()
    };

    let sequential = run(1, 1);
    for max_batch in [3, 8] {
        for threads in [1, 4] {
            let batched = run(max_batch, threads);
            assert_eq!(
                sequential, batched,
                "rankings/log-probs diverge at max_batch={max_batch} threads={threads}"
            );
        }
    }
}

#[test]
fn empty_history_is_served() {
    let (_ds, model) = tiny_model();
    let mut engine = Engine::for_model(&model, ServeConfig::default());
    engine.submit(&[], 3).expect("queue has room");
    let out = engine.flush();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].ranked.len(), 3, "an empty history still ranks the catalog");
}

#[test]
fn overlong_history_is_front_truncated_to_the_context_window() {
    let (ds, model) = tiny_model();
    let mut cfg = ServeConfig::default();
    // Let far more items through than the LM context can hold so the
    // token-level front-truncation (not just the item cap) must engage.
    cfg.max_hist_items = 512;
    let engine = Engine::for_model(&model, cfg.clone());
    let long: Vec<u32> = (0..600).map(|i| (i % ds.num_items()) as u32).collect();

    let prompt = engine.render_prompt(&long);
    let max_seq = model.lm().config().max_seq;
    let levels = model.vocab().indices().levels;
    assert_eq!(prompt.len(), max_seq - levels - 1, "prompt fills exactly the budget");
    assert_eq!(prompt[0], lc_rec::text::token::BOS, "BOS survives truncation");

    let mut engine = Engine::for_model(&model, cfg);
    engine.submit(&long, 4).expect("queue has room");
    let out = engine.flush();
    assert_eq!(out.len(), 1);
    assert_eq!(out[0].ranked.len(), 4);
    // Identical to decoding the truncated prompt directly.
    let mut direct = lc_rec::core::constrained_beam_search_with(
        &Pool::new(1),
        model.lm(),
        model.vocab(),
        model.trie(),
        &prompt,
        10,
    );
    direct.truncate(4);
    assert_eq!(ranked_bits(&out[0].ranked), ranked_bits(&direct));
}

#[test]
fn k_zero_is_rejected_with_a_typed_error() {
    let (_ds, model) = tiny_model();
    let mut engine = Engine::for_model(&model, ServeConfig::default());
    assert_eq!(engine.submit(&[0, 1], 0), Err(Reject::InvalidK { k: 0 }));
    let err = engine.submit(&[0, 1], 0).unwrap_err();
    assert!(err.to_string().contains("k = 0"), "{err}");
    // The rejection admits nothing: the queue stays empty and later
    // well-formed submissions are unaffected.
    assert_eq!(engine.queue_len(), 0);
    assert!(engine.submit(&[0, 1], 2).is_ok());
    assert_eq!(engine.flush().len(), 1);
}

#[test]
fn k_beyond_catalog_is_clamped_to_the_catalog() {
    let (ds, model) = tiny_model();
    let n_items = ds.num_items();
    let mut engine = Engine::for_model(&model, ServeConfig::default());
    engine.submit(&[0, 1], n_items + 50).expect("clamped, not rejected");
    engine.submit(&[0, 1], n_items).expect("exactly the catalog");
    let out = engine.flush();
    assert_eq!(out[0].ranked.len(), n_items, "never more results than items");
    // The clamped request ranks exactly what an exact-catalog request does.
    assert_eq!(ranked_bits(&out[0].ranked), ranked_bits(&out[1].ranked));
}

#[test]
fn shed_watermark_rejects_before_hard_capacity() {
    let (_ds, model) = tiny_model();
    let cfg =
        ServeConfig { queue_cap: 8, shed_watermark: Some(2), ..ServeConfig::default() };
    let mut engine = Engine::for_model(&model, cfg);
    engine.submit(&[0], 1).expect("below watermark");
    engine.submit(&[1], 1).expect("below watermark");
    assert_eq!(engine.submit(&[2], 1), Err(Reject::Shed { queued: 2 }));
    // Draining lowers the queue below the watermark again.
    assert_eq!(engine.flush().len(), 2);
    assert!(engine.submit(&[2], 1).is_ok());
}

#[test]
fn deadlines_resolve_as_typed_timeouts_never_silence() {
    let (_ds, model) = tiny_model();
    let mut engine = Engine::for_model(&model, ServeConfig::default());
    // An already-expired deadline (0 ms) must surface as a typed timeout.
    let late = engine.submit_with_deadline(&[0, 1], 3, Some(0)).expect("admitted");
    // An effectively infinite deadline must complete normally.
    let fine = engine.submit_with_deadline(&[0, 1], 3, Some(u64::MAX)).expect("admitted");
    let outcomes = engine.flush_outcomes();
    assert_eq!(outcomes.len(), 2, "every ticket resolves exactly once");
    assert_eq!(outcomes[0].id(), late);
    match &outcomes[0] {
        lc_rec::serve::Outcome::TimedOut { reason, waited_s, .. } => {
            assert_eq!(*reason, TimeoutReason::Deadline);
            assert!(*waited_s >= 0.0);
        }
        other => panic!("expired deadline must time out, got {other:?}"),
    }
    assert_eq!(outcomes[1].id(), fine);
    assert!(outcomes[1].is_completed(), "u64::MAX deadline never expires");
    // The completed-only views hide the timeout but keep the completion.
    let mut engine = Engine::for_model(&model, ServeConfig::default());
    engine.submit_with_deadline(&[0], 2, Some(0)).expect("admitted");
    engine.submit_with_deadline(&[1], 2, None).expect("admitted");
    let responses = engine.flush();
    assert_eq!(responses.len(), 1, "flush() filters the timed-out request");
}

#[test]
fn queue_full_rejection_reports_capacity_and_recovers() {
    let (_ds, model) = tiny_model();
    let cfg = ServeConfig { queue_cap: 3, ..ServeConfig::default() };
    let mut engine = Engine::for_model(&model, cfg);
    for i in 0..3 {
        engine.submit(&[i], 1).expect("under capacity");
    }
    assert_eq!(engine.submit(&[9], 1), Err(Reject::QueueFull { capacity: 3 }));
    // Draining restores capacity; rejected work can be resubmitted.
    assert_eq!(engine.flush().len(), 3);
    assert!(engine.submit(&[9], 1).is_ok());
    assert_eq!(engine.flush().len(), 1);
}
