//! Online catalog evolution contracts (`docs/CATALOG.md`): a
//! copy-on-write [`CatalogTrie`] grown one insert at a time must be
//! **node-for-node identical** to a full rebuild from the union catalog
//! under any insertion order; old snapshots must stay bit-stable (and
//! decode bit-identically) across growth; re-quantizing the training set
//! through [`CatalogUpdater`] must reproduce the original semantic IDs;
//! duplicate/colliding inserts must be typed errors, never silent
//! shadowing; absorption checkpoints must resume bit-identically; and an
//! 8-seed chaos sweep over the `serve.decode` and `ckpt.write` seams
//! during concurrent insert + serve must resolve every request to exactly
//! one typed outcome with no request ever observing a half-built
//! snapshot.

use lc_rec::core::{CatalogTrie, CausalLm, ExtendedVocab};
use lc_rec::data::{ScaleConfig, ZipfSampler};
use lc_rec::fault::Mode;
use lc_rec::prelude::*;
use lc_rec::rqvae::{CatalogUpdater, IndexError, IndexTrie, ItemIndices};
use lc_rec::seqrec::{
    absorb_begin, absorb_tick, absorb_with, load_absorb_checkpoint, save_absorb_checkpoint,
    NextItemModel,
};
use lc_rec::tensor::serialize::{save_params, save_params_atomic_with};
use lc_rec::text::Vocab;
use lcrec_bench::setup::scale_lm_config;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// The test tier's synthetic catalog: 64 items with unique semantic IDs.
fn synthetic_codes() -> (Vec<usize>, Vec<Vec<u16>>) {
    ScaleConfig::tier_test().synthetic_codes().expect("test tier validates")
}

/// Deterministic Fisher–Yates shuffle on a tiny xorshift stream, so the
/// property sweep needs no RNG crate and replays identically forever.
fn shuffle<T>(v: &mut [T], seed: u64) {
    let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
    for i in (1..v.len()).rev() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        v.swap(i, (s % (i as u64 + 1)) as usize);
    }
}

fn ranked_bits(ranked: &[lc_rec::core::Hypothesis]) -> Vec<(u32, u32)> {
    ranked.iter().map(|h| (h.item, h.logprob.to_bits())).collect()
}

/// Decodes `reqs` through a direct engine against `trie` and returns the
/// ranked bits in arrival order — the per-snapshot reference answer.
fn direct_bits(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    reqs: &[(u64, Vec<u32>)],
    k: usize,
) -> Vec<Vec<(u32, u32)>> {
    let cfg = ServeConfig {
        max_batch: 4,
        queue_cap: reqs.len().max(1),
        max_wait_ms: 0,
        ..ServeConfig::default()
    };
    let mut engine = Engine::new(lm, vocab, trie, cfg);
    for (_, hist) in reqs {
        engine.submit(hist, k).expect("queue sized to the load");
    }
    let mut responses = engine.flush();
    responses.sort_by_key(|r| r.id);
    responses.iter().map(|r| ranked_bits(&r.ranked)).collect()
}

/// Zipf-replayed traffic whose histories only reference base items — the
/// probe both the old and the grown snapshot must be able to answer.
fn base_traffic(workload: &ScaleConfig, n_base: u32, n: usize) -> Vec<(u64, Vec<u32>)> {
    let popularity = ZipfSampler::new(workload.num_items, workload.zipf_exponent)
        .expect("test tier validates");
    workload
        .replay()
        .expect("test tier validates")
        .filter_map(|user| {
            let hist: Vec<u32> = workload
                .generate_user(&popularity, user)
                .into_iter()
                .filter(|&i| i < n_base)
                .collect();
            if hist.is_empty() { None } else { Some((user as u64, hist)) }
        })
        .take(n)
        .collect()
}

// ---------------------------------------------------------------------------
// Differential: incremental growth vs full rebuild
// ---------------------------------------------------------------------------

/// The tentpole differential: for 50+ seeded insertion orders, a trie
/// grown insert-by-insert — from empty and from a half-populated base —
/// must materialize node-for-node equal to `IndexTrie::build` of the
/// union catalog, and serialize to byte-identical `to_text`.
#[test]
fn incremental_growth_matches_full_rebuild_across_insertion_orders() {
    let (sizes, codes) = synthetic_codes();
    let levels = sizes.len();
    let union = ItemIndices::new(sizes.clone(), codes.clone());
    let rebuild = IndexTrie::build(&union);
    let rebuild_text = rebuild.to_text();
    let half = codes.len() / 2;
    let base = ItemIndices::new(sizes, codes[..half].to_vec());

    for seed in 0..52u64 {
        // From scratch: every item arrives through the CoW insert path.
        let mut order: Vec<usize> = (0..codes.len()).collect();
        shuffle(&mut order, seed);
        let mut scratch = CatalogTrie::new(levels);
        for &i in &order {
            let codes_i = codes.get(i).expect("order indexes the catalog");
            scratch.insert(codes_i, i as u32).expect("unique synthetic paths");
        }
        assert_eq!(scratch.epoch(), codes.len() as u64, "one epoch per insert at seed {seed}");
        assert_eq!(scratch.materialize(), rebuild, "scratch growth diverged at seed {seed}");
        assert_eq!(scratch.snapshot().to_text(), rebuild_text, "bytes diverged at seed {seed}");

        // From a CSR-built base: only the tail arrives incrementally.
        let mut tail: Vec<usize> = (half..codes.len()).collect();
        shuffle(&mut tail, seed ^ 0xBEEF);
        let mut grown = CatalogTrie::from_indices(&base).expect("base is conflict-free");
        for &i in &tail {
            let codes_i = codes.get(i).expect("tail indexes the catalog");
            grown.insert(codes_i, i as u32).expect("unique synthetic paths");
        }
        assert_eq!(grown.materialize(), rebuild, "base+tail growth diverged at seed {seed}");
        assert_eq!(grown.snapshot().to_text(), rebuild_text, "bytes diverged at seed {seed}");
    }
}

/// Every epoch's snapshot serialization is captured during growth and
/// re-read after: structural sharing must never mutate a published epoch.
#[test]
fn every_past_epoch_stays_byte_stable_during_growth() {
    let (sizes, codes) = synthetic_codes();
    let mut trie = CatalogTrie::new(sizes.len());
    let mut texts = vec![trie.snapshot().to_text()];
    for (i, path) in codes.iter().enumerate() {
        trie.insert(path, i as u32).expect("unique synthetic paths");
        texts.push(trie.snapshot().to_text());
    }
    for (epoch, want) in texts.iter().enumerate() {
        let snap = trie.snapshot_at(epoch as u64).expect("published epochs stay valid");
        assert_eq!(&snap.to_text(), want, "epoch {epoch} drifted after later inserts");
    }
    assert!(trie.snapshot_at(codes.len() as u64 + 1).is_none(), "future epochs don't exist");
}

// ---------------------------------------------------------------------------
// Old-snapshot decode stability
// ---------------------------------------------------------------------------

/// Serving the epoch-0 snapshot must produce bit-identical rankings and
/// log-probs before and after the catalog grows — decode results are a
/// function of the snapshot, not of the trie's later history.
#[test]
fn old_snapshot_decodes_bit_identically_after_growth() {
    let (sizes, codes) = synthetic_codes();
    let n_base = codes.len() - codes.len() / 4;
    let base = ItemIndices::new(sizes.clone(), codes[..n_base].to_vec());
    let union = ItemIndices::new(sizes, codes.clone());
    let base_vocab = Vocab::build([ServeConfig::default().template.as_str()], 1);
    let vocab = ExtendedVocab::new(base_vocab, union);
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));
    let reqs = base_traffic(&ScaleConfig::tier_test(), n_base as u32, 8);

    let mut trie = CatalogTrie::from_indices(&base).expect("base is conflict-free");
    let before_trie = trie.materialize_at(0).expect("epoch 0 exists");
    let before = direct_bits(&lm, &vocab, &before_trie, &reqs, 5);

    for (i, path) in codes.iter().enumerate().skip(n_base) {
        trie.insert(path, i as u32).expect("unique synthetic paths");
    }

    let after_trie = trie.materialize_at(0).expect("epoch 0 outlives growth");
    assert_eq!(after_trie, before_trie, "epoch 0 changed shape under growth");
    let after = direct_bits(&lm, &vocab, &after_trie, &reqs, 5);
    assert_eq!(after, before, "old-snapshot decode drifted after inserts");
    // The new snapshot is a different trie, so at least its shape differs.
    assert_ne!(trie.materialize(), before_trie);
}

// ---------------------------------------------------------------------------
// Round-trip oracle: re-quantization reproduces the catalog
// ---------------------------------------------------------------------------

/// Round-trip oracle: quantize the whole training set greedily, then
/// push every item back through the [`CatalogUpdater`] admission pipeline
/// into an empty catalog — it must reproduce the original semantic IDs
/// bit-exactly, with every admission greedy and zero relocations.
#[test]
fn requantizing_the_training_set_reproduces_original_semantic_ids() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut cfg = RqVaeConfig::small(24, ds.num_items());
    cfg.levels = 3;
    cfg.codebook_size = 16;
    cfg.latent_dim = 8;
    cfg.hidden = vec![16];
    cfg.epochs = 8;
    let mut rq = RqVae::new(cfg);
    rq.train(&emb);

    // The original catalog: greedy nearest-codeword IDs for every item.
    // The precondition (a trained codebook separates this tiny catalog
    // without collisions) is asserted, not assumed — if it ever breaks,
    // the oracle below would be vacuous.
    let (greedy, _) = rq.quantize_greedy(&rq.encode(&emb));
    let original = ItemIndices::new(vec![16; 3], greedy);
    assert!(original.is_unique(), "fixture precondition: greedy IDs are collision-free");

    let mut updater =
        CatalogUpdater::new(&rq, ItemIndices::new(original.codebook_sizes.clone(), vec![]));
    for item in 0..ds.num_items() {
        let row = emb.row(item);
        let want = original.of(item as u32);
        assert_eq!(
            updater.quantize(row).expect("dimension matches").as_slice(),
            want,
            "re-quantizing item {item} changed its codes"
        );
        let adm = updater.admit(row).expect("free paths admit");
        assert_eq!(adm.item, item as u32, "ids assigned densely in admission order");
        assert_eq!(adm.codes.as_slice(), want, "admission moved item {item} off its codes");
        assert!(adm.greedy, "item {item} needed no conflict resolution");
        assert_eq!(adm.relocations, 0);
    }
    assert_eq!(updater.indices(), &original, "round trip lost or moved an item");
}

// ---------------------------------------------------------------------------
// Typed-error regressions: no silent shadowing
// ---------------------------------------------------------------------------

/// Inserting a duplicate item id, or a different item on an occupied
/// path, must come back as a typed [`IndexError`] — never silently
/// shadow the existing binding (the latent edge case this PR fixes).
#[test]
fn duplicate_and_colliding_inserts_are_typed_errors_not_shadowing() {
    let mut trie = CatalogTrie::new(2);
    trie.insert(&[1, 2], 7).expect("first insert is free");
    let epoch = trie.epoch();

    // Same item id again, even on a different path: DuplicateItem.
    match trie.insert(&[3, 0], 7) {
        Err(IndexError::DuplicateItem { item: 7 }) => {}
        other => panic!("expected DuplicateItem, got {other:?}"),
    }
    // Different item on the already-bound path: PathOccupied, and the
    // error names the incumbent so callers can resolve the conflict.
    match trie.insert(&[1, 2], 8) {
        Err(IndexError::PathOccupied { codes, bound: 7 }) => assert_eq!(codes, vec![1, 2]),
        other => panic!("expected PathOccupied, got {other:?}"),
    }
    // Wrong code-path depth: LevelMismatch.
    match trie.insert(&[1], 9) {
        Err(IndexError::LevelMismatch { expected: 2, got: 1 }) => {}
        other => panic!("expected LevelMismatch, got {other:?}"),
    }
    // Failed inserts publish nothing: no new epoch, binding intact.
    assert_eq!(trie.epoch(), epoch, "a rejected insert must not publish an epoch");
    assert_eq!(trie.snapshot().item_at(&[1, 2]), Some(7), "incumbent binding survived");

    // The batch builder rejects the same collision instead of silently
    // keeping the first writer (the old `from_paths` dedup behavior).
    let colliding = ItemIndices::new(vec![4; 2], vec![vec![1, 2], vec![1, 2]]);
    match IndexTrie::try_build(&colliding) {
        Err(IndexError::PathOccupied { codes, .. }) => assert_eq!(codes, vec![1, 2]),
        other => panic!("expected PathOccupied from try_build, got {other:?}"),
    }
    match CatalogTrie::from_indices(&colliding) {
        Err(IndexError::PathOccupied { .. }) => {}
        other => panic!("expected PathOccupied from from_indices, got {other:?}"),
    }
}

// ---------------------------------------------------------------------------
// Absorption: bounded fine-tune resumes bit-identically
// ---------------------------------------------------------------------------

/// Stop an absorption run mid-budget, checkpoint it, restore into a
/// fresh model and finish: the final parameters must be byte-identical
/// to an uninterrupted run of the same budget.
#[test]
fn absorb_checkpoint_resume_is_bit_identical() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let cfg = RecConfig::test();
    let pairs = TrainingPairs::build(&ds, cfg.max_len);
    let pool = Pool::new(1);
    let budget = 5u64;

    let mut uninterrupted = SasRec::new(ds.num_items(), cfg.clone());
    let full = absorb_with(&pool, &mut uninterrupted, &pairs, budget);
    assert_eq!(full.steps_done(), budget, "tiny dataset outlasts the budget");

    let mut first = SasRec::new(ds.num_items(), cfg.clone());
    let mut cursor = absorb_begin(&first, budget);
    for _ in 0..2 {
        assert!(absorb_tick(&pool, &mut first, &pairs, &mut cursor));
    }
    let mut blob = Vec::new();
    save_absorb_checkpoint(&first, &cursor, &mut blob).expect("in-memory write");

    let mut resumed = SasRec::new(ds.num_items(), cfg);
    let mut cursor =
        load_absorb_checkpoint(&mut resumed, &mut blob.as_slice()).expect("checkpoint parses");
    assert_eq!(cursor.steps_done(), 2);
    assert_eq!(cursor.max_steps(), budget);
    while absorb_tick(&pool, &mut resumed, &pairs, &mut cursor) {}
    assert_eq!(cursor.steps_done(), budget);

    let mut a = Vec::new();
    let mut b = Vec::new();
    save_params(uninterrupted.store(), &mut a).expect("in-memory write");
    save_params(resumed.store(), &mut b).expect("in-memory write");
    assert_eq!(a, b, "stop/checkpoint/resume diverged from the uninterrupted run");
}

// ---------------------------------------------------------------------------
// Chaos: concurrent insert + serve + checkpoint under injected faults
// ---------------------------------------------------------------------------

/// One seeded chaos run of the full evolution pipeline; returns the
/// canonical trace for determinism comparison. Inserts are interleaved
/// with admissions, the fleet swaps to the grown snapshot mid-traffic,
/// and a checkpoint is written through the `ckpt.write` fault seam.
/// Every completed response must match a full decode against exactly one
/// published snapshot — a mixed or half-built answer panics here.
#[allow(clippy::too_many_arguments)]
fn evolution_chaos_trace(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    base: &ItemIndices,
    new_items: &[(u32, Vec<u16>)],
    pre: &[(u64, Vec<u32>)],
    post: &[(u64, Vec<u32>)],
    refs: (&[Vec<(u32, u32)>], &[Vec<(u32, u32)>], &[Vec<(u32, u32)>]),
    ckpt: &std::path::Path,
    seed: u64,
) -> Vec<String> {
    let (ref_old_pre, ref_new_pre, ref_new_post) = refs;
    let mut ctrie = CatalogTrie::from_indices(base).expect("base is conflict-free");
    let trie0 = ctrie.materialize();
    let epoch0_text = ctrie.snapshot().to_text();
    let trie_new;
    let cfg = RouterConfig {
        shards: 2,
        shard: ServeConfig {
            max_batch: 4,
            queue_cap: pre.len() + post.len(),
            max_wait_ms: 0,
            ..ServeConfig::default()
        },
        ..RouterConfig::default()
    };
    let mut router = Router::new(lm, vocab, &trie0, cfg).with_faults(Mode::Chaos, seed, 3);
    let mut trace = Vec::new();

    // Admissions and catalog inserts interleave: the trie grows while the
    // fleet is decoding against its epoch-0 snapshot. Chaos may shed an
    // admission — that is a typed outcome too, recorded in the trace.
    let mut inserts = new_items.iter();
    let mut pre_tickets: Vec<(u64, usize)> = Vec::new();
    for (i, (user, hist)) in pre.iter().enumerate() {
        match router.submit(*user, hist, 5) {
            Ok(t) => pre_tickets.push((t, i)),
            Err(e) => trace.push(format!("rejected: req={i} {e}")),
        }
        if let Some((item, path)) = inserts.next() {
            let epoch = ctrie.insert(path, *item).expect("unique synthetic paths");
            trace.push(format!("insert: item={item} epoch={epoch}"));
        }
    }
    for (item, path) in inserts {
        let epoch = ctrie.insert(path, *item).expect("unique synthetic paths");
        trace.push(format!("insert: item={item} epoch={epoch}"));
    }
    // The snapshot the fleet is serving never moved.
    assert_eq!(
        ctrie.snapshot_at(0).expect("epoch 0 outlives growth").to_text(),
        epoch0_text,
        "concurrent inserts disturbed the served snapshot"
    );

    // Checkpoint through the chaos seam: the published file must hold a
    // complete checkpoint whether or not the injected faults won.
    let clean = {
        save_params_atomic_with(lm.store(), ckpt, &FaultPlan::disabled(), &Backoff::default())
            .expect("clean write");
        std::fs::read(ckpt).expect("published checkpoint readable")
    };
    let plan = FaultPlan::chaos(seed).with_rate(3);
    match save_params_atomic_with(lm.store(), ckpt, &plan, &Backoff::default()) {
        Ok(()) => trace.push("ckpt: ok".to_string()),
        Err(e) => trace.push(format!("ckpt: {}", e.kind())),
    }
    assert_eq!(
        std::fs::read(ckpt).expect("published checkpoint readable"),
        clean,
        "ckpt.write chaos tore the published checkpoint at seed {seed}"
    );

    // Roll the fleet to the grown snapshot mid-traffic.
    trie_new = ctrie.materialize();
    let mut outcomes = router.swap_catalog(lm, vocab, &trie_new, ctrie.epoch());
    assert_eq!(router.catalog_epoch(), new_items.len() as u64);
    let mut post_tickets: Vec<(u64, usize)> = Vec::new();
    for (i, (user, hist)) in post.iter().enumerate() {
        match router.submit(*user, hist, 5) {
            Ok(t) => post_tickets.push((t, i)),
            Err(e) => trace.push(format!("rejected: req={} {e}", pre.len() + i)),
        }
    }
    outcomes.extend(router.flush_outcomes());

    // Exhaustive accounting: exactly one typed outcome per admitted
    // ticket, nothing pending, nothing queued.
    assert_eq!(outcomes.len(), pre_tickets.len() + post_tickets.len());
    assert_eq!(router.pending_len(), 0);
    assert_eq!(router.queue_depth(), 0);
    let mut seen: Vec<u64> = outcomes.iter().map(RouterOutcome::id).collect();
    seen.sort_unstable();
    let mut expected: Vec<u64> =
        pre_tickets.iter().chain(&post_tickets).map(|&(t, _)| t).collect();
    expected.sort_unstable();
    assert_eq!(seen, expected, "outcome ids must be exactly the admitted tickets");

    outcomes.sort_by_key(RouterOutcome::id);
    for o in outcomes {
        let id = o.id();
        match o {
            RouterOutcome::Completed { response, .. } => {
                let bits = ranked_bits(&response.ranked);
                // A completed answer must equal a full decode against
                // exactly one published snapshot — hedged retries may
                // land a pre-swap ticket on the new snapshot, but never
                // on a mixture.
                let pre_req = pre_tickets.iter().find(|&&(t, _)| t == id).map(|&(_, i)| i);
                let snapshot = if let Some(i) = pre_req {
                    if Some(&bits) == ref_old_pre.get(i) {
                        "old"
                    } else if Some(&bits) == ref_new_pre.get(i) {
                        "new"
                    } else {
                        panic!("ticket {id} observed a half-built snapshot at seed {seed}");
                    }
                } else {
                    let (_, i) = post_tickets
                        .iter()
                        .find(|&&(t, _)| t == id)
                        .expect("every outcome maps to a ticket");
                    assert_eq!(
                        Some(&bits),
                        ref_new_post.get(*i),
                        "post-swap ticket {id} missed the grown snapshot at seed {seed}"
                    );
                    "new"
                };
                trace.push(format!("completed: id={id} snapshot={snapshot}"));
            }
            RouterOutcome::TimedOut { shard, hops, reason, .. } => {
                trace.push(format!("timeout: id={id} shard={shard} hops={hops} reason={reason}"));
            }
        }
    }
    trace
}

/// The 8-seed chaos sweep: decode and checkpoint faults during
/// concurrent insert + serve. Same-seed traces must replay bit-identically
/// and different seeds must actually explore different histories.
#[test]
fn chaos_sweep_during_evolution_is_typed_deterministic_and_snapshot_coherent() {
    let (sizes, codes) = synthetic_codes();
    let n_base = codes.len() - codes.len() / 4;
    let base = ItemIndices::new(sizes.clone(), codes[..n_base].to_vec());
    let union = ItemIndices::new(sizes, codes.clone());
    let new_items: Vec<(u32, Vec<u16>)> =
        (n_base..codes.len()).map(|i| (i as u32, codes[i].clone())).collect();
    let base_vocab = Vocab::build([ServeConfig::default().template.as_str()], 1);
    let vocab = ExtendedVocab::new(base_vocab, union.clone());
    let lm = CausalLm::new(scale_lm_config(None, vocab.len()));

    let workload = ScaleConfig::tier_test();
    let reqs = base_traffic(&workload, n_base as u32, 12);
    let (pre, post) = reqs.split_at(6);
    let trie0 = IndexTrie::build(&base);
    let trie_new = IndexTrie::build(&union);
    let ref_old_pre = direct_bits(&lm, &vocab, &trie0, pre, 5);
    let ref_new_pre = direct_bits(&lm, &vocab, &trie_new, pre, 5);
    let ref_new_post = direct_bits(&lm, &vocab, &trie_new, post, 5);

    let dir = std::env::temp_dir().join(format!("lcrec-evolution-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("mkdir");
    let mut traces = Vec::new();
    for seed in 1..=8u64 {
        let ckpt = dir.join(format!("chaos-{seed}.bin"));
        let run = |path: &std::path::Path| {
            evolution_chaos_trace(
                &lm,
                &vocab,
                &base,
                &new_items,
                pre,
                post,
                (&ref_old_pre, &ref_new_pre, &ref_new_post),
                path,
                seed,
            )
        };
        let first = run(&ckpt);
        let second = run(&ckpt);
        assert_eq!(first, second, "chaos at seed {seed} must replay identically");
        assert!(
            first.iter().any(|l| l.starts_with("insert:")),
            "the sweep must actually grow the catalog"
        );
        traces.push(first);
    }
    std::fs::remove_dir_all(&dir).ok();
    // The sweep is a sweep: at least two seeds see different histories.
    assert!(
        traces.windows(2).any(|w| w[0] != w[1]),
        "all 8 chaos seeds produced identical traces — the seam is not firing"
    );
    // And chaos is survivable: some requests complete despite the faults.
    assert!(
        traces.iter().flatten().any(|l| l.starts_with("completed:")),
        "no request ever completed under chaos"
    );
}
