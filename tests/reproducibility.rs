//! Determinism guarantees: identical seeds must give identical datasets,
//! indices, model initializations and evaluation numbers — the property
//! every experiment in EXPERIMENTS.md relies on.

use lc_rec::prelude::*;
use lc_rec::seqrec::common::NextItemModel;
use lc_rec::tensor::serialize::{load_params, save_params};

#[test]
fn datasets_are_bit_identical_under_seed() {
    let a = Dataset::generate(&DatasetConfig::tiny());
    let b = Dataset::generate(&DatasetConfig::tiny());
    assert_eq!(a.sequences, b.sequences);
    assert_eq!(a.num_items(), b.num_items());
    for (x, y) in a.catalog.items.iter().zip(&b.catalog.items) {
        assert_eq!(x.title, y.title);
        assert_eq!(x.description, y.description);
    }
}

#[test]
fn rqvae_indices_are_reproducible() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 1);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.epochs = 6;
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    let a = build_indices(IndexerKind::LcRec, &emb, &rq);
    let b = build_indices(IndexerKind::LcRec, &emb, &rq);
    assert_eq!(a.codes, b.codes);
}

#[test]
fn training_and_evaluation_are_deterministic() {
    let run = || {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut rec_cfg = RecConfig::test();
        rec_cfg.epochs = 3;
        let pairs = TrainingPairs::build(&ds, rec_cfg.max_len);
        let mut m = SasRec::new(ds.num_items(), rec_cfg);
        m.fit(&pairs);
        evaluate_test(&ScoreRanker(&m), &ds, 20)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same metrics");
}

#[test]
fn checkpoint_round_trip_preserves_scores() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut cfg = RecConfig::test();
    cfg.epochs = 2;
    let pairs = TrainingPairs::build(&ds, cfg.max_len);
    let mut trained = SasRec::new(ds.num_items(), cfg.clone());
    trained.fit(&pairs);
    let mut buf = Vec::new();
    save_params(trained.store_mut(), &mut buf).expect("save");

    // A fresh model with a different init seed: every weight differs until
    // the checkpoint is restored by name.
    let mut restore_cfg = cfg;
    restore_cfg.seed ^= 0xDEAD;
    let mut restored = SasRec::new(ds.num_items(), restore_cfg);
    let history = ds.test_example(0).0;
    assert_ne!(trained.score_all(0, history), restored.score_all(0, history));
    let n = load_params(restored.store_mut(), &mut buf.as_slice()).expect("load");
    assert!(n > 0, "checkpoint restored no parameters");
    assert_eq!(
        trained.score_all(0, history),
        restored.score_all(0, history),
        "scores must be bit-identical after restoring the checkpoint"
    );
}

#[test]
fn single_training_step_is_bit_identical_across_runs() {
    let step = || {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut cfg = RecConfig::test();
        cfg.epochs = 1;
        let pairs = TrainingPairs::build(&ds, cfg.max_len);
        let mut m = SasRec::new(ds.num_items(), cfg);
        let losses = m.fit(&pairs);
        let ps = m.store_mut();
        let params: Vec<Vec<f32>> = ps.ids().map(|id| ps.value(id).data().to_vec()).collect();
        (losses, params)
    };
    let (la, pa) = step();
    let (lb, pb) = step();
    assert_eq!(la, lb, "per-epoch losses must match bit-for-bit");
    assert_eq!(pa, pb, "every parameter must match bit-for-bit after one step");
}

#[test]
fn different_seeds_change_the_simulation() {
    let mut cfg = DatasetConfig::tiny();
    let a = Dataset::generate(&cfg);
    cfg.seed = 8888;
    let b = Dataset::generate(&cfg);
    assert_ne!(a.sequences, b.sequences);
}
