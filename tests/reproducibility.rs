//! Determinism guarantees: identical seeds must give identical datasets,
//! indices, model initializations and evaluation numbers — the property
//! every experiment in EXPERIMENTS.md relies on.

use lc_rec::prelude::*;

#[test]
fn datasets_are_bit_identical_under_seed() {
    let a = Dataset::generate(&DatasetConfig::tiny());
    let b = Dataset::generate(&DatasetConfig::tiny());
    assert_eq!(a.sequences, b.sequences);
    assert_eq!(a.num_items(), b.num_items());
    for (x, y) in a.catalog.items.iter().zip(&b.catalog.items) {
        assert_eq!(x.title, y.title);
        assert_eq!(x.description, y.description);
    }
}

#[test]
fn rqvae_indices_are_reproducible() {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 1);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.epochs = 6;
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    let a = build_indices(IndexerKind::LcRec, &emb, &rq);
    let b = build_indices(IndexerKind::LcRec, &emb, &rq);
    assert_eq!(a.codes, b.codes);
}

#[test]
fn training_and_evaluation_are_deterministic() {
    let run = || {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut rec_cfg = RecConfig::test();
        rec_cfg.epochs = 3;
        let pairs = TrainingPairs::build(&ds, rec_cfg.max_len);
        let mut m = SasRec::new(ds.num_items(), rec_cfg);
        m.fit(&pairs);
        evaluate_test(&ScoreRanker(&m), &ds, 20)
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "same seed, same metrics");
}

#[test]
fn different_seeds_change_the_simulation() {
    let mut cfg = DatasetConfig::tiny();
    let a = Dataset::generate(&cfg);
    cfg.seed = 8888;
    let b = Dataset::generate(&cfg);
    assert_ne!(a.sequences, b.sequences);
}
