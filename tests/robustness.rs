//! Chaos and property tests for the fault-injection robustness layer
//! (`docs/ROBUSTNESS.md`): with faults disabled the engine is bit-identical
//! to the fault-free baseline; under seeded chaos plans every request
//! resolves with a typed outcome, nothing panics, and identical seeds give
//! bit-identical outcome sequences. Checkpoint corruption always surfaces
//! as typed errors without partial mutation, and a training run interrupted
//! mid-epoch resumes bit-identically to an uninterrupted one.

use lc_rec::fault::{deadline_expired, Backoff, FaultPlan};
use lc_rec::prelude::*;
use lc_rec::serve::{Outcome, Reject};
use lc_rec::tensor::serialize::{load_params, save_params};
use rand::{rngs::StdRng, Rng, SeedableRng};

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

fn tiny_model() -> (Dataset, LcRec) {
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let mut enc = TextEncoder::new(24, 42);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let mut rq = RqVaeConfig::small(24, ds.num_items());
    rq.levels = 3;
    rq.codebook_size = 8;
    rq.latent_dim = 8;
    rq.hidden = vec![16];
    rq.epochs = 6;
    let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
    let model = LcRec::build(&ds, indices, LcRecConfig::test());
    (ds, model)
}

fn request_mix(ds: &Dataset, n: usize, seed: u64) -> Vec<(Vec<u32>, usize)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let len = rng.random_range(1..12);
            let hist: Vec<u32> =
                (0..len).map(|_| rng.random_range(0..ds.num_items() as u32)).collect();
            let k = rng.random_range(1..6);
            (hist, k)
        })
        .collect()
}

fn ranked_bits(ranked: &[lc_rec::core::Hypothesis]) -> Vec<(u32, u32)> {
    ranked.iter().map(|h| (h.item, h.logprob.to_bits())).collect()
}

/// A wall-clock-free canonical form of one run: typed rejections at submit
/// time plus the typed outcome of every admitted request. Latencies are
/// deliberately excluded — they are the only run-to-run nondeterminism.
#[derive(Debug, PartialEq, Eq)]
enum Canon {
    Rejected(u64, Reject),
    Completed(u64, Vec<(u32, u32)>),
    TimedOut(u64, lc_rec::serve::TimeoutReason),
}

/// Submits `requests` to an engine under `plan`, flushes, and returns the
/// canonical event sequence. Panics (the absence of which is the point)
/// propagate to the test harness.
fn chaos_run(
    model: &LcRec,
    requests: &[(Vec<u32>, usize)],
    plan: FaultPlan,
    max_batch: usize,
    threads: usize,
) -> Vec<Canon> {
    let cfg = ServeConfig { max_batch, beam: 5, queue_cap: 6, ..ServeConfig::default() };
    let mut engine = lc_rec::serve::Engine::with_pool(
        model.lm(),
        model.vocab(),
        model.trie(),
        cfg,
        Pool::new(threads),
    )
    .with_fault_plan(plan);
    let mut events = Vec::new();
    let mut tickets = Vec::new();
    for (i, (hist, k)) in requests.iter().enumerate() {
        match engine.submit(hist, *k) {
            Ok(id) => tickets.push(id),
            Err(reject) => events.push(Canon::Rejected(i as u64, reject)),
        }
        // Drain mid-stream occasionally so the bounded queue frees up and
        // step-path dispatch is exercised alongside flush.
        if i % 5 == 4 {
            for o in engine.flush_outcomes() {
                events.push(canon_outcome(o));
            }
        }
    }
    for o in engine.flush_outcomes() {
        events.push(canon_outcome(o));
    }
    // Full typed-outcome accounting: every ticket resolved exactly once.
    let mut resolved: Vec<u64> = events
        .iter()
        .filter_map(|e| match e {
            Canon::Completed(id, _) | Canon::TimedOut(id, _) => Some(*id),
            Canon::Rejected(..) => None,
        })
        .collect();
    resolved.sort_unstable();
    tickets.sort_unstable();
    assert_eq!(resolved, tickets, "typed-outcome accounting must be exhaustive");
    assert_eq!(engine.queue_len(), 0, "flush leaves nothing behind");
    events
}

fn canon_outcome(o: Outcome) -> Canon {
    match o {
        Outcome::Completed(r) => Canon::Completed(r.id, ranked_bits(&r.ranked)),
        Outcome::TimedOut { id, reason, .. } => Canon::TimedOut(id, reason),
    }
}

// ---------------------------------------------------------------------------
// Engine chaos suite
// ---------------------------------------------------------------------------

#[test]
fn disabled_faults_are_bit_identical_to_the_baseline() {
    let (ds, model) = tiny_model();
    let requests = request_mix(&ds, 6, 21);
    // A run under an explicitly disabled plan is the pre-robustness
    // baseline; the ambient engine (and a transient plan, whose seams all
    // recover internally) must match it bit for bit.
    let baseline = chaos_run(&model, &requests, FaultPlan::disabled(), 4, 1);
    assert!(
        baseline.iter().all(|e| matches!(e, Canon::Completed(..))),
        "no faults, watermarks or deadlines: everything completes"
    );
    let ambient = chaos_run(&model, &requests, FaultPlan::from_env(), 4, 1);
    let transient = chaos_run(&model, &requests, FaultPlan::transient(9), 4, 1);
    // The ambient plan may be transient (fault-matrix CI leg) but must
    // never change results; an explicit transient plan likewise.
    assert_eq!(baseline, ambient, "ambient plan changed results");
    assert_eq!(baseline, transient, "transient faults must recover invisibly");
    // And the completed rankings equal direct single-request decode.
    let cfg = ServeConfig { max_batch: 4, beam: 5, queue_cap: 6, ..ServeConfig::default() };
    let probe = Engine::for_model(&model, cfg.clone());
    for (event, (hist, k)) in baseline.iter().zip(&requests) {
        let Canon::Completed(_, bits) = event else { unreachable!() };
        let prompt = probe.render_prompt(hist);
        let mut direct = lc_rec::core::constrained_beam_search_with(
            &Pool::new(1),
            model.lm(),
            model.vocab(),
            model.trie(),
            &prompt,
            *k.max(&cfg.beam),
        );
        direct.truncate(*k);
        assert_eq!(bits, &ranked_bits(&direct), "diverged from direct decode");
    }
}

#[test]
fn chaos_sweep_resolves_every_request_with_a_typed_outcome() {
    let (ds, model) = tiny_model();
    let requests = request_mix(&ds, 12, 35);
    let mut saw_reject = false;
    let mut saw_timeout = false;
    let mut saw_completion = false;
    for seed in 0..8u64 {
        for max_batch in [1usize, 3, 8] {
            for threads in [1usize, 4] {
                // Raise the fault rate so 12 requests reliably hit seams.
                let run = || {
                    chaos_run(
                        &model,
                        &requests,
                        FaultPlan::chaos(seed).with_rate(3),
                        max_batch,
                        threads,
                    )
                };
                let a = run();
                let b = run();
                assert_eq!(
                    a, b,
                    "identical seed must give a bit-identical outcome sequence \
                     (seed {seed}, batch {max_batch}, threads {threads})"
                );
                for e in &a {
                    match e {
                        Canon::Rejected(..) => saw_reject = true,
                        Canon::TimedOut(..) => saw_timeout = true,
                        Canon::Completed(..) => saw_completion = true,
                    }
                }
            }
        }
    }
    assert!(saw_reject, "the sweep should inject at least one admission rejection");
    assert!(saw_timeout, "the sweep should inject at least one timeout");
    assert!(saw_completion, "chaos must not starve every request");
}

#[test]
fn thread_count_never_changes_chaos_outcomes() {
    let (ds, model) = tiny_model();
    let requests = request_mix(&ds, 9, 51);
    for seed in [2u64, 6] {
        for max_batch in [3usize, 8] {
            let serial =
                chaos_run(&model, &requests, FaultPlan::chaos(seed).with_rate(3), max_batch, 1);
            let parallel =
                chaos_run(&model, &requests, FaultPlan::chaos(seed).with_rate(3), max_batch, 4);
            assert_eq!(serial, parallel, "seed {seed} batch {max_batch}");
        }
    }
}

// ---------------------------------------------------------------------------
// Checkpoint corruption fuzzing
// ---------------------------------------------------------------------------

fn fuzz_store(seed: u64) -> ParamStore {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut ps = ParamStore::new();
    ps.add("enc.w", lc_rec::tensor::init::normal(&[6, 10], 1.0, &mut rng));
    ps.add_no_decay("enc.b", lc_rec::tensor::init::normal(&[10], 1.0, &mut rng));
    ps.add("emb", lc_rec::tensor::init::normal(&[17, 6], 1.0, &mut rng));
    ps
}

fn store_bits(ps: &ParamStore) -> Vec<u32> {
    ps.ids().flat_map(|id| ps.value(id).data().iter().map(|x| x.to_bits())).collect()
}

#[test]
fn load_params_fuzz_returns_typed_errors_and_never_partially_mutates() {
    let src = fuzz_store(1);
    let mut good = Vec::new();
    save_params(&src, &mut good).expect("save");
    // Sanity: the unmutated bytes round-trip.
    let mut dst = fuzz_store(2);
    load_params(&mut dst, &mut good.as_slice()).expect("clean load");

    let mut rng = StdRng::seed_from_u64(0xF0220);
    let mut dst = fuzz_store(3);
    let pristine = store_bits(&dst);
    for case in 0..200 {
        let mut bytes = good.clone();
        match case % 5 {
            // Truncation anywhere (torn write).
            0 => bytes.truncate(rng.random_range(0..bytes.len())),
            // A single flipped bit anywhere (disk corruption).
            1 => {
                let i = rng.random_range(0..bytes.len());
                bytes[i] ^= 1 << rng.random_range(0..8);
            }
            // Corrupted magic.
            2 => bytes[rng.random_range(0..4)] = rng.random_range(0..=255),
            // A mangled shape/count field early in the payload.
            3 => {
                let i = rng.random_range(4..24);
                bytes[i] = 0xFF;
            }
            // Trailing garbage after the trailer.
            _ => bytes.extend_from_slice(&[0xAB; 3]),
        }
        if bytes == good {
            continue; // the mutation was an identity; nothing to assert
        }
        let err = load_params(&mut dst, &mut bytes.as_slice())
            .expect_err("every corruption must be a typed error, not a panic");
        assert_eq!(err.kind(), std::io::ErrorKind::InvalidData, "case {case}: {err}");
        assert_eq!(store_bits(&dst), pristine, "case {case} partially mutated the store");
    }
}

// ---------------------------------------------------------------------------
// Backoff and deadline properties
// ---------------------------------------------------------------------------

#[test]
fn backoff_schedule_properties_hold_for_arbitrary_configs() {
    let mut rng = StdRng::seed_from_u64(77);
    for _ in 0..500 {
        let base = rng.random_range(0..100u64);
        let cap = rng.random_range(0..5000u64);
        let attempts = rng.random_range(0..20u32);
        let b = Backoff::new(base, cap, attempts);
        let delays: Vec<u64> = b.delays().collect();
        // Total attempts bounded (and ≥ 1 after clamping).
        assert!(b.max_attempts() >= 1);
        assert_eq!(delays.len(), b.max_attempts() as usize - 1);
        // Monotone non-decreasing and capped.
        for w in delays.windows(2) {
            assert!(w[0] <= w[1], "not monotone: {delays:?}");
        }
        let effective_cap = cap.max(base.max(1));
        assert!(delays.iter().all(|&d| d <= effective_cap), "cap violated: {delays:?}");
        // Saturating far past the shift width, never wrapping to zero.
        assert_eq!(b.delay_ms(500), effective_cap);
        assert_eq!(b.total_budget_ms(), delays.iter().sum::<u64>());
    }
}

#[test]
fn deadline_math_is_exact_at_the_boundary() {
    let mut rng = StdRng::seed_from_u64(78);
    for _ in 0..500 {
        let deadline = rng.random_range(0..1_000_000u64);
        let waited = rng.random_range(0..1_000_000u64);
        assert_eq!(deadline_expired(waited, deadline), waited >= deadline);
    }
    // Boundary and extremes.
    assert!(deadline_expired(0, 0), "a zero deadline is already expired");
    assert!(deadline_expired(5, 5), "the deadline instant itself counts as expired");
    assert!(!deadline_expired(4, 5));
    assert!(!deadline_expired(u64::MAX - 1, u64::MAX));
    assert!(deadline_expired(u64::MAX, u64::MAX));
}

#[test]
fn a_request_never_completes_past_its_deadline_without_a_timeout_record() {
    let (ds, model) = tiny_model();
    let requests = request_mix(&ds, 5, 90);
    // Deadline 0 is expired by construction at dispatch; across batch
    // shapes, no such request may ever surface as Completed.
    for max_batch in [1usize, 4] {
        let cfg = ServeConfig { max_batch, ..ServeConfig::default() };
        let mut engine = Engine::for_model(&model, cfg);
        let mut ids = Vec::new();
        for (hist, k) in &requests {
            ids.push(engine.submit_with_deadline(hist, *k, Some(0)).expect("admitted"));
        }
        let outcomes = engine.flush_outcomes();
        assert_eq!(outcomes.len(), ids.len());
        for o in &outcomes {
            match o {
                Outcome::TimedOut { reason, .. } => {
                    assert_eq!(*reason, lc_rec::serve::TimeoutReason::Deadline)
                }
                Outcome::Completed(r) => {
                    panic!("request {} completed past its deadline", r.id)
                }
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Mid-epoch train/resume bit-identity
// ---------------------------------------------------------------------------

fn clustered_embeddings(n_per: usize, dim: usize) -> Tensor {
    let mut rng = StdRng::seed_from_u64(5);
    let centers = lc_rec::tensor::init::normal(&[4, dim], 2.0, &mut rng);
    let mut rows = Vec::new();
    for c in 0..4 {
        for _ in 0..n_per {
            let noise = lc_rec::tensor::init::normal(&[dim], 0.15, &mut rng);
            let row: Vec<f32> =
                centers.row(c).iter().zip(noise.data()).map(|(a, b)| a + b).collect();
            rows.push(row);
        }
    }
    Tensor::from_rows(&rows)
}

fn small_rqvae_cfg(dim: usize) -> RqVaeConfig {
    let mut cfg = RqVaeConfig::small(dim, 40);
    cfg.latent_dim = 8;
    cfg.hidden = vec![16];
    cfg.levels = 3;
    cfg.codebook_size = 6;
    cfg.epochs = 3;
    cfg.batch = 16;
    cfg.seed = 11;
    cfg
}

#[test]
fn rqvae_interrupted_training_resumes_bit_identically() {
    let dim = 12;
    let emb = clustered_embeddings(10, dim);

    // Uninterrupted reference run.
    let mut a = RqVae::new(small_rqvae_cfg(dim));
    let report_a = a.train_with(&Pool::new(1), &emb);

    // Interrupted run: stop mid-epoch (3 batches in = epoch 1, batch 0 of
    // the 40-row / 16-batch layout), checkpoint, restore into a FRESH
    // model, and finish.
    let pool = Pool::new(1);
    let mut b = RqVae::new(small_rqvae_cfg(dim));
    let mut cursor = b.train_begin(&emb);
    for _ in 0..3 {
        assert!(b.train_tick(&pool, &emb, &mut cursor), "run is longer than 3 ticks");
    }
    assert!(
        cursor.epoch() > 0 || cursor.batch_in_epoch() > 0,
        "interruption must land mid-run"
    );
    let mut ckpt = Vec::new();
    b.save_train_checkpoint(&cursor, &mut ckpt).expect("checkpoint");
    drop((b, cursor)); // the interrupted process is gone

    let mut c = RqVae::new(small_rqvae_cfg(dim));
    let mut cursor = c.load_train_checkpoint(&mut ckpt.as_slice()).expect("restore");
    while c.train_tick(&pool, &emb, &mut cursor) {}
    let report_c = cursor.into_report();

    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(
        bits(&report_a.epoch_losses),
        bits(&report_c.epoch_losses),
        "per-epoch losses must match bit for bit"
    );
    assert_eq!(report_a.final_recon.to_bits(), report_c.final_recon.to_bits());
    // Final parameters identical: the encoders map embeddings to the
    // exact same latents, and the learned indices agree.
    let za = a.encode(&emb);
    let zc = c.encode(&emb);
    assert_eq!(
        za.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
        zc.data().iter().map(|x| x.to_bits()).collect::<Vec<_>>()
    );
    let ia = a.build_indices(&emb);
    let ic = c.build_indices(&emb);
    assert_eq!(ia.codes, ic.codes, "learned semantic IDs diverged after resume");
}

#[test]
fn seqrec_interrupted_training_resumes_bit_identically() {
    use lc_rec::seqrec::common::{
        load_train_checkpoint, save_train_checkpoint, train_begin, train_tick,
    };
    let ds = Dataset::generate(&DatasetConfig::tiny());
    let pairs = TrainingPairs::build(&ds, 10);
    let pool = Pool::new(1);

    // Uninterrupted reference run.
    let mut a = SasRec::new(ds.num_items(), RecConfig::test());
    let losses_a = lc_rec::seqrec::common::train_next_item_with(&pool, &mut a, &pairs);

    // Interrupted run: 5 batches in (mid-epoch for this fixture),
    // checkpoint, restore into a fresh model, finish.
    let mut b = SasRec::new(ds.num_items(), RecConfig::test());
    let mut cursor = train_begin(&b);
    for _ in 0..5 {
        assert!(train_tick(&pool, &mut b, &pairs, &mut cursor), "run longer than 5 ticks");
    }
    assert!(cursor.batch_in_epoch() > 0, "interruption must land mid-epoch");
    let mut ckpt = Vec::new();
    save_train_checkpoint(&b, &cursor, &mut ckpt).expect("checkpoint");
    drop((b, cursor));

    let mut c = SasRec::new(ds.num_items(), RecConfig::test());
    let mut cursor = load_train_checkpoint(&mut c, &mut ckpt.as_slice()).expect("restore");
    while train_tick(&pool, &mut c, &pairs, &mut cursor) {}
    let losses_c = cursor.into_losses();

    let bits = |v: &[f32]| v.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
    assert_eq!(bits(&losses_a), bits(&losses_c), "per-epoch losses diverged");
    // Final parameters identical: same scores for the same history.
    let hist = [0u32, 3, 1];
    let sa = lc_rec::seqrec::common::score_single(&a, &hist);
    let sc = lc_rec::seqrec::common::score_single(&c, &hist);
    assert_eq!(bits(&sa), bits(&sc), "scores diverged after resume");
}
