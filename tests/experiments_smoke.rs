//! Smoke tests for every experiment-reproduction function at tiny scale —
//! the same code paths `repro --scale small` runs for the checked-in
//! results, exercised end-to-end in minutes.

use lcrec_bench::experiments as exp;
use lcrec_bench::Scale;

#[test]
fn table2_renders() {
    let out = exp::table2(Scale::Tiny);
    assert!(out.markdown.contains("#Users"));
}

#[test]
fn table3_covers_all_eleven_methods() {
    let out = exp::table3(Scale::Tiny);
    for method in [
        "Caser", "HGN", "GRU4Rec", "BERT4Rec", "SASRec", "FMLP-Rec", "FDSA", "S3-Rec", "P5-CID",
        "TIGER", "LC-Rec",
    ] {
        assert!(out.markdown.contains(method), "missing {method}");
    }
    assert!(out.markdown.contains("Improvement of LC-Rec"));
}

#[test]
fn table4_ladder_has_five_rows() {
    let out = exp::table4(Scale::Tiny);
    for label in ["SEQ", "+MUT", "+ASY", "+ITE", "+PER"] {
        assert!(out.markdown.contains(label), "missing row {label}\n{}", out.markdown);
    }
}

#[test]
fn fig2_covers_all_indexing_schemes() {
    let out = exp::fig2(Scale::Tiny);
    for label in ["Vanilla ID", "Random Indices", "LC-Rec w/o USM", "LC-Rec"] {
        assert!(out.markdown.contains(label), "missing {label}");
    }
    assert!(out.markdown.contains("SEQ") && out.markdown.contains("w/ ALIGN"));
}

#[test]
fn fig3_compares_dssm_and_lcrec() {
    let out = exp::fig3(Scale::Tiny);
    assert!(out.markdown.contains("DSSM"));
    assert!(out.markdown.contains("Zero-Shot"));
}

#[test]
fn fig4_emits_csv_artifacts() {
    let out = exp::fig4(Scale::Tiny);
    assert_eq!(out.artifacts.len(), 2);
    for (name, csv) in &out.artifacts {
        assert!(name.ends_with(".csv"));
        assert!(csv.starts_with("x,y,group"));
        assert!(csv.lines().count() > 10);
    }
}

#[test]
fn table5_reports_three_negative_kinds() {
    let out = exp::table5(Scale::Tiny);
    for col in ["Language Neg.", "Collaborative Neg.", "Random Neg."] {
        assert!(out.markdown.contains(col));
    }
    for row in ["SASRec", "LLaMA", "ChatGPT", "LC-Rec (Title)"] {
        assert!(out.markdown.contains(row));
    }
}

#[test]
fn profile_emits_obs_artifact_with_nonzero_phases() {
    let out = exp::profile(Scale::Tiny);
    assert_eq!(out.artifacts.len(), 1);
    let (name, json) = &out.artifacts[0];
    assert_eq!(name, "obs_profile.json");
    for span in ["rqvae.train", "seqrec.train", "lm.train", "beam.decode", "eval.split"] {
        assert!(json.contains(span), "snapshot must cover the {span} phase\n{json}");
    }
    assert!(json.contains("par.chunks"), "pool counters must be recorded");
    assert!(
        !out.markdown.contains("NO"),
        "instrumented 1- vs 4-thread runs must stay bit-identical:\n{}",
        out.markdown
    );
}

#[test]
fn serve_reports_throughput_and_stays_bit_identical() {
    let out = exp::serve(Scale::Tiny);
    for col in ["max batch", "req/s", "mean latency", "bit-identical"] {
        assert!(out.markdown.contains(col), "missing column {col}\n{}", out.markdown);
    }
    assert!(
        !out.markdown.contains("NO"),
        "batched serving must stay bit-identical to the sequential baseline:\n{}",
        out.markdown
    );
}

#[test]
fn fig5_and_fig6_render_case_studies() {
    let f5 = exp::fig5(Scale::Tiny);
    assert!(f5.markdown.contains("titles from index prefixes"));
    assert!(f5.markdown.contains("related items"));
    let f6 = exp::fig6(Scale::Tiny);
    assert!(f6.markdown.contains("level 1"));
}
