//! # lcrec-par
//!
//! A small, dependency-free parallel-execution subsystem for the workspace:
//! a scoped thread pool built on `std::thread::scope` with a chunked work
//! queue and **deterministic ordered reduction**.
//!
//! Design rules (see DESIGN.md "Threading model"):
//!
//! * **Determinism is a hard requirement.** Work is split into chunks whose
//!   boundaries depend only on the input size — never on the thread count —
//!   and results are always reassembled (and reduced) in chunk-index order.
//!   Threads race only over *which worker computes which chunk*; the values
//!   and their combination order are identical at any thread count, so
//!   parallel and serial runs produce bit-identical floating-point results.
//! * **Serial fallback.** At `threads = 1` (or for single-chunk inputs) no
//!   threads are spawned and closures run inline on the caller's stack.
//! * **`LCREC_THREADS` override.** [`Pool::from_env`] reads the variable on
//!   every call; unset or unparsable values fall back to the machine's
//!   available parallelism.
//!
//! The pool is deliberately scoped (no long-lived worker threads, no
//! channels): each [`Pool::map`] call spawns workers for its own lifetime,
//! which keeps borrow scopes simple — closures may freely borrow the
//! caller's data — and leaves nothing running between calls.

#![warn(missing_docs)]

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Name of the environment variable overriding the worker-thread count.
pub const THREADS_ENV: &str = "LCREC_THREADS";

/// Thread count requested by the environment: `LCREC_THREADS` if set to a
/// positive integer, otherwise the machine's available parallelism
/// (clamped to at least 1).
pub fn threads_from_env() -> usize {
    match std::env::var(THREADS_ENV) {
        Ok(v) => match v.trim().parse::<usize>() {
            Ok(n) if n >= 1 => n,
            _ => default_threads(),
        },
        Err(_) => default_threads(),
    }
}

/// The machine's available parallelism (1 if it cannot be determined).
pub fn default_threads() -> usize {
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A deterministic scoped thread pool.
///
/// `Pool` is a lightweight handle (just a thread count); workers are
/// spawned per call via `std::thread::scope`, so a `Pool` can be freely
/// copied, stored in configs, or created ad hoc around a hot loop.
///
/// # Examples
///
/// ```
/// use lcrec_par::Pool;
///
/// let items: Vec<f32> = (0..100).map(|i| i as f32 * 0.1).collect();
/// let work = |i: usize, x: &f32| x.sin() * (i as f32 + 1.0);
///
/// // Results are in input order and bit-identical at any thread count.
/// let serial: Vec<f32> = Pool::serial().map(&items, work);
/// let parallel: Vec<f32> = Pool::new(4).map(&items, work);
/// assert_eq!(serial, parallel);
///
/// // Ordered reduction: same guarantee for fold-style aggregation.
/// let sum = Pool::new(4).map_reduce(items.len(), |i| items[i], 0.0f32, |a, b| a + b);
/// assert_eq!(sum.to_bits(), items.iter().sum::<f32>().to_bits());
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
}

impl Pool {
    /// A pool with exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Pool {
        Pool { threads: threads.max(1) }
    }

    /// A serial pool (1 thread; every call runs inline).
    pub fn serial() -> Pool {
        Pool { threads: 1 }
    }

    /// A pool sized by [`threads_from_env`] (`LCREC_THREADS` override,
    /// machine parallelism otherwise).
    pub fn from_env() -> Pool {
        Pool::new(threads_from_env())
    }

    /// Number of worker threads this pool uses.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool runs everything inline on the caller's thread.
    pub fn is_serial(&self) -> bool {
        self.threads == 1
    }

    /// Chunk size used for `n` items: small enough that each worker gets
    /// several chunks (dynamic load balancing), large enough to amortize
    /// queue traffic. Depends only on `n` and an internal constant — never
    /// on the thread count — so chunk boundaries (and therefore reduction
    /// order) are identical at any `LCREC_THREADS`.
    fn chunk_size(n: usize) -> usize {
        // 8 chunks per 4-way worker set at n=32 keeps the queue busy; the
        // constant is fixed so boundaries never move with the pool size.
        const TARGET_CHUNKS: usize = 16;
        n.div_ceil(TARGET_CHUNKS).max(1)
    }

    /// Applies `f(index, &item)` to every item and returns the results in
    /// input order. Bit-identical to the serial loop at any thread count.
    pub fn map<T, U, F>(&self, items: &[T], f: F) -> Vec<U>
    where
        T: Sync,
        U: Send,
        F: Fn(usize, &T) -> U + Sync,
    {
        self.map_range(items.len(), |i| f(i, &items[i])) // lint: allow(panic, reason = "map_range yields i in 0..items.len() by contract")
    }

    /// Applies `f(i)` for `i in 0..n` and returns the results in index
    /// order. The parallel path splits `0..n` into fixed chunks, hands them
    /// to workers through an atomic work queue, and reassembles the chunk
    /// outputs by chunk index — first-come-first-served scheduling never
    /// leaks into the output order.
    pub fn map_range<U, F>(&self, n: usize, f: F) -> Vec<U>
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
    {
        if n == 0 {
            return Vec::new();
        }
        let chunk = Self::chunk_size(n);
        let n_chunks = n.div_ceil(chunk);
        let obs_on = lcrec_obs::enabled();
        if obs_on {
            // Recorded identically on the serial and parallel paths (the
            // chunk count is a pure function of n), so the deterministic
            // observability section matches across LCREC_THREADS settings.
            lcrec_obs::counter_add("par.jobs", 1);
            lcrec_obs::counter_add("par.chunks", n_chunks as u64);
        }
        // Transient worker faults (`LCREC_FAULT`, default off): a chunk's
        // output can be "lost" and recomputed. Decisions are a stateless
        // function of the chunk index — never of which worker ran it or a
        // shared call counter — so the retry schedule, the final outputs
        // and the `par.fault_retries` counter are identical at any thread
        // count, including the inline serial path. The third attempt
        // always keeps its output, bounding the injected work.
        let plan = lcrec_fault::env_plan();
        let compute_chunk = |c: usize| -> Vec<U> {
            let start = c * chunk;
            let end = (start + chunk).min(n);
            let mut failures = 0u64;
            loop {
                let out: Vec<U> = (start..end).map(&f).collect();
                if failures >= 2
                    || !plan.should_fail_at(
                        lcrec_fault::seams::PAR_WORKER,
                        ((c as u64) << 2) | failures,
                    )
                {
                    return out;
                }
                failures += 1;
                lcrec_obs::counter_add("par.fault_retries", 1);
            }
        };
        if self.threads == 1 || n_chunks == 1 {
            let mut out = Vec::with_capacity(n);
            for c in 0..n_chunks {
                out.append(&mut compute_chunk(c));
            }
            return out;
        }
        let workers = self.threads.min(n_chunks);
        let next = AtomicUsize::new(0);
        let done: Mutex<Vec<(usize, Vec<U>)>> = Mutex::new(Vec::with_capacity(n_chunks));
        let locals: Mutex<Vec<(usize, lcrec_obs::LocalObs)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            let (next, done, locals, compute_chunk) = (&next, &done, &locals, &compute_chunk);
            for wi in 0..workers {
                s.spawn(move || {
                    let spawned = if obs_on { Some(Instant::now()) } else { None }; // lint: allow(det, reason = "obs-gated profiling timestamp; busy-time metrics never influence chunk assignment or outputs")
                    let mut busy = 0.0f64;
                    let mut local = lcrec_obs::LocalObs::new();
                    // Each worker drains chunks until the queue is empty,
                    // buffering its (chunk index, outputs) pairs locally so
                    // the shared lock is touched once per chunk.
                    loop {
                        let c = next.fetch_add(1, Ordering::Relaxed);
                        if c >= n_chunks {
                            break;
                        }
                        if obs_on {
                            local.profile_record("par.queue_depth", (n_chunks - c) as f64);
                        }
                        let t0 = if obs_on { Some(Instant::now()) } else { None }; // lint: allow(det, reason = "obs-gated profiling timestamp; busy-time metrics never influence chunk assignment or outputs")
                        let out: Vec<U> = compute_chunk(c);
                        if let Some(t0) = t0 {
                            busy += t0.elapsed().as_secs_f64();
                        }
                        let mut guard = match done.lock() {
                            Ok(g) => g,
                            // A poisoned lock only means another worker
                            // panicked; that panic propagates from scope()
                            // anyway, so the data is still sound to touch.
                            Err(p) => p.into_inner(),
                        };
                        guard.push((c, out));
                    }
                    if let Some(spawned) = spawned {
                        let total = spawned.elapsed().as_secs_f64();
                        local.profile_record("par.worker_busy_s", busy);
                        local.profile_record("par.worker_idle_s", (total - busy).max(0.0));
                        let mut guard = match locals.lock() {
                            Ok(g) => g,
                            Err(p) => p.into_inner(),
                        };
                        guard.push((wi, local));
                    }
                });
            }
        });
        if obs_on {
            let mut per_worker = match locals.into_inner() {
                Ok(v) => v,
                Err(p) => p.into_inner(),
            };
            // Merge worker buffers by spawn index, never completion order,
            // so registry contents are independent of scheduling.
            per_worker.sort_unstable_by_key(|(wi, _)| *wi);
            for (_, local) in per_worker {
                local.merge_global();
            }
        }
        let mut parts = match done.into_inner() {
            Ok(p) => p,
            Err(p) => p.into_inner(),
        };
        // Ordered reduction: chunk index, not completion order.
        parts.sort_unstable_by_key(|(c, _)| *c);
        let mut out = Vec::with_capacity(n);
        for (_, mut part) in parts {
            out.append(&mut part);
        }
        out
    }

    /// Maps every index and folds the results **in index order** — the
    /// deterministic reduction primitive. `fold` sees `f(0)`, `f(1)`, … in
    /// exactly that sequence regardless of which worker produced each value,
    /// so non-associative reductions (floating-point sums) are reproducible.
    pub fn map_reduce<U, A, F, R>(&self, n: usize, f: F, init: A, mut fold: R) -> A
    where
        U: Send,
        F: Fn(usize) -> U + Sync,
        R: FnMut(A, U) -> A,
    {
        let mut acc = init;
        for v in self.map_range(n, f) {
            acc = fold(acc, v);
        }
        acc
    }
}

impl Default for Pool {
    fn default() -> Self {
        Pool::from_env()
    }
}

/// Splits `0..n` into contiguous `(lo, hi)` ranges of at most `rows` items
/// each — the fixed micro-batch boundaries used for data-parallel gradient
/// accumulation. Boundaries are a pure function of `n` and `rows` (never of
/// the thread count), so downstream ordered reductions — and therefore
/// every trained parameter — are identical at any `LCREC_THREADS`.
pub fn micro_ranges(n: usize, rows: usize) -> Vec<(usize, usize)> {
    let rows = rows.max(1);
    (0..n).step_by(rows).map(|lo| (lo, (lo + rows).min(n))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_input_order() {
        for threads in [1, 2, 4, 9] {
            let pool = Pool::new(threads);
            let items: Vec<u64> = (0..257).collect();
            let out = pool.map(&items, |i, &x| x * 2 + i as u64);
            let expect: Vec<u64> = items.iter().enumerate().map(|(i, &x)| x * 2 + i as u64).collect();
            assert_eq!(out, expect, "threads={threads}");
        }
    }

    #[test]
    fn parallel_matches_serial_bitwise_on_floats() {
        // Chaotic per-item float work: any reordering of the reduction
        // would change the bits.
        let f = |i: usize| {
            let mut v = i as f32 * 0.37 + 0.01;
            for _ in 0..50 {
                v = (v * 1.7).sin() + 1.0 / (v.abs() + 0.3);
            }
            v
        };
        let serial = Pool::serial().map_reduce(300, f, 0.0f32, |a, b| a + b * b);
        for threads in [2, 3, 8] {
            let par = Pool::new(threads).map_reduce(300, f, 0.0f32, |a, b| a + b * b);
            assert_eq!(serial.to_bits(), par.to_bits(), "threads={threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        let pool = Pool::new(4);
        let empty: Vec<i32> = pool.map_range(0, |i| i as i32);
        assert!(empty.is_empty());
        assert_eq!(pool.map_range(1, |i| i + 10), vec![10]);
        assert_eq!(pool.map_range(3, |i| i), vec![0, 1, 2]);
    }

    #[test]
    fn thread_count_is_clamped() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(0).is_serial());
        assert_eq!(Pool::new(7).threads(), 7);
    }

    #[test]
    fn chunk_boundaries_ignore_thread_count() {
        // The internal chunking must be a pure function of n.
        assert_eq!(Pool::chunk_size(1), 1);
        assert_eq!(Pool::chunk_size(16), 1);
        assert_eq!(Pool::chunk_size(17), 2);
        assert_eq!(Pool::chunk_size(1000), 63);
    }

    #[test]
    fn map_reduce_folds_in_index_order() {
        let order = Pool::new(4).map_reduce(100, |i| i, Vec::new(), |mut acc, i| {
            acc.push(i);
            acc
        });
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn env_parsing_rules() {
        // Cannot mutate the process env safely under a threaded test
        // runner; exercise the parse contract through Pool::new semantics
        // and the documented fallback instead.
        assert!(threads_from_env() >= 1);
        assert!(default_threads() >= 1);
    }

    #[test]
    fn micro_ranges_cover_exactly_once() {
        assert_eq!(micro_ranges(0, 32), vec![]);
        assert_eq!(micro_ranges(5, 32), vec![(0, 5)]);
        assert_eq!(micro_ranges(64, 32), vec![(0, 32), (32, 64)]);
        assert_eq!(micro_ranges(70, 32), vec![(0, 32), (32, 64), (64, 70)]);
        assert_eq!(micro_ranges(3, 0), vec![(0, 1), (1, 2), (2, 3)], "rows clamps to 1");
    }

    #[test]
    fn closures_may_borrow_caller_state() {
        let data = vec![3u32; 64];
        let pool = Pool::new(4);
        let sum: u32 = pool.map_reduce(data.len(), |i| data[i], 0, |a, b| a + b);
        assert_eq!(sum, 192);
    }
}
