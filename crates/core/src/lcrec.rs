//! LC-Rec: the paper's model. Combines learned item indices (from
//! `lcrec-rqvae`), an extended-vocabulary causal LM, multi-task alignment
//! tuning (§III-C) and trie-constrained beam search for full ranking.

use crate::beam::{constrained_beam_search, Hypothesis};
use crate::lm::{train_lm_epochs, CausalLm, LmConfig, LmExample, LmTrainConfig};
use crate::vocab::ExtendedVocab;
use lcrec_data::{Dataset, InstructionBuilder, Seg, TaskSet};
use lcrec_eval::Ranker;
use lcrec_rqvae::{IndexTrie, ItemIndices};
use lcrec_tensor::Tensor;
use lcrec_text::token::BOS;
use lcrec_text::Vocab;

/// Full LC-Rec configuration.
#[derive(Clone, Debug)]
pub struct LcRecConfig {
    /// Model width.
    pub dim: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN hidden width.
    pub ff_hidden: usize,
    /// Maximum token-sequence length.
    pub max_seq: usize,
    /// Dropout during tuning.
    pub dropout: f32,
    /// Alignment-task selection (Table IV's knob).
    pub tasks: TaskSet,
    /// Optimization settings.
    pub train: LmTrainConfig,
    /// Beam width at inference (paper: 20).
    pub beam: usize,
    /// History items kept when rendering instructions (context-window
    /// budget; the paper's 2048-token window scales down with the model).
    pub max_hist_items: usize,
    /// Seed.
    pub seed: u64,
}

impl LcRecConfig {
    /// Defaults for the small presets.
    pub fn small() -> Self {
        LcRecConfig {
            dim: 48,
            layers: 2,
            heads: 4,
            ff_hidden: 96,
            max_seq: 112,
            dropout: 0.1,
            tasks: TaskSet::full(),
            train: LmTrainConfig::small(),
            beam: 20,
            max_hist_items: 8,
            seed: 777,
        }
    }

    /// A micro configuration for tests.
    pub fn test() -> Self {
        let mut c = Self::small();
        c.dim = 24;
        c.layers = 1;
        c.heads = 2;
        c.ff_hidden = 48;
        c.max_seq = 96;
        c.dropout = 0.0;
        c.train = LmTrainConfig { lr: 3e-3, epochs: 2, batch: 16, warmup: 5, max_steps: Some(60), seed: 7 };
        c.beam = 10;
        c
    }
}

/// A trained (or trainable) LC-Rec model.
#[derive(Debug)]
pub struct LcRec {
    cfg: LcRecConfig,
    lm: CausalLm,
    vocab: ExtendedVocab,
    trie: IndexTrie,
}

impl LcRec {
    /// Assembles the model: builds the word vocabulary from the dataset's
    /// instruction corpus, appends the index tokens, and initializes the LM.
    pub fn build(ds: &Dataset, indices: ItemIndices, cfg: LcRecConfig) -> Self {
        let builder = InstructionBuilder::new(ds);
        let corpus = builder.vocabulary_corpus();
        let base = Vocab::build(corpus.iter().map(String::as_str), 1);
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm_cfg = LmConfig {
            vocab: vocab.len(),
            dim: cfg.dim,
            layers: cfg.layers,
            heads: cfg.heads,
            ff_hidden: cfg.ff_hidden,
            max_seq: cfg.max_seq,
            dropout: cfg.dropout,
            seed: cfg.seed,
        };
        LcRec { cfg, lm: CausalLm::new(lm_cfg), vocab, trie }
    }

    /// The configuration.
    pub fn config(&self) -> &LcRecConfig {
        &self.cfg
    }

    /// The extended vocabulary.
    pub fn vocab(&self) -> &ExtendedVocab {
        &self.vocab
    }

    /// The underlying LM (benchmarks, embedding analysis).
    pub fn lm(&self) -> &CausalLm {
        &self.lm
    }

    /// The index trie constraining generation (serving, benchmarks).
    pub fn trie(&self) -> &IndexTrie {
        &self.trie
    }

    /// Caps an `Items` segment to the configured history budget.
    fn cap_segs(&self, segs: &[Seg]) -> Vec<Seg> {
        segs.iter()
            .map(|s| match s {
                Seg::Items(items) if items.len() > self.cfg.max_hist_items => {
                    Seg::Items(items[items.len() - self.cfg.max_hist_items..].to_vec())
                }
                other => other.clone(),
            })
            .collect()
    }

    /// Renders a prompt to tokens (BOS-prefixed).
    pub fn render_prompt(&self, segs: &[Seg]) -> Vec<u32> {
        let capped = self.cap_segs(segs);
        let mut tokens = vec![BOS];
        tokens.extend(self.vocab.render(&capped));
        if tokens.len() > self.cfg.max_seq - self.vocab.indices().levels - 1 {
            let keep = self.cfg.max_seq - self.vocab.indices().levels - 1;
            let excess = tokens.len() - keep;
            tokens.drain(1..1 + excess);
        }
        tokens
    }

    /// Alignment tuning (Eqn. 7) over the configured task set. Each epoch
    /// regenerates instructions with freshly sampled templates, matching
    /// the paper's anti-overfitting strategy. Returns per-epoch losses.
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let builder = InstructionBuilder::new(ds);
        let tasks = self.cfg.tasks;
        let probe = builder.epoch(tasks, 0).len();
        let cfg = self.cfg.train.clone();
        // Rendering borrows `self` immutably while training needs `&mut
        // self.lm`; pre-render per epoch through a local closure that only
        // touches vocab/config.
        let vocab = &self.vocab;
        let max_seq = self.cfg.max_seq;
        let max_hist = self.cfg.max_hist_items;
        let render = |prompt: &[Seg], response: &[Seg]| -> LmExample {
            let cap = |segs: &[Seg]| -> Vec<Seg> {
                segs.iter()
                    .map(|s| match s {
                        Seg::Items(items) if items.len() > max_hist => {
                            Seg::Items(items[items.len() - max_hist..].to_vec())
                        }
                        other => other.clone(),
                    })
                    .collect()
            };
            let (mut tokens, plen) = vocab.render_example(&cap(prompt), &cap(response));
            if tokens.len() > max_seq {
                let excess = tokens.len() - max_seq;
                let cut = excess.min(plen.saturating_sub(1));
                tokens.drain(1..1 + cut);
                tokens.truncate(max_seq);
                return (tokens, plen - cut);
            }
            (tokens, plen)
        };
        train_lm_epochs(&mut self.lm, &cfg, probe, |epoch| {
            builder
                .epoch(tasks, epoch as u64)
                .iter()
                .map(|ex| render(&ex.prompt, &ex.response))
                .collect()
        })
    }

    /// Full-ranking recommendation for an explicit prompt.
    pub fn recommend_prompt(&self, segs: &[Seg], beam: usize) -> Vec<Hypothesis> {
        let prompt = self.render_prompt(segs);
        constrained_beam_search(&self.lm, &self.vocab, &self.trie, &prompt, beam)
    }

    /// Greedy text generation for a prompt (case studies, Figure 5/6).
    pub fn generate_text(&self, segs: &[Seg], max_new: usize) -> String {
        let prompt = self.render_prompt(segs);
        let eos = lcrec_text::token::EOS;
        let out = self.lm.greedy(&prompt, max_new, |t| t == eos);
        self.vocab.decode(&out)
    }

    /// Log-probability of generating `item`'s indices after `prompt_segs`.
    pub fn score_item(&self, prompt_segs: &[Seg], item: u32) -> f32 {
        let prompt = self.render_prompt(prompt_segs);
        let cont = self.vocab.item_tokens(item);
        self.lm.sequence_logprob(&prompt, &cont)
    }

    /// Length-normalized log-probability of generating arbitrary text after
    /// a prompt (the "LC-Rec (Title)" scorer in Table V).
    pub fn score_text(&self, prompt_segs: &[Seg], text: &str) -> f32 {
        let prompt = self.render_prompt(prompt_segs);
        let cont = self.vocab.base().encode(text);
        if cont.is_empty() {
            return f32::NEG_INFINITY;
        }
        self.lm.sequence_logprob(&prompt, &cont) / cont.len() as f32
    }

    /// Saves the tuned LM weights (see `lcrec_tensor::serialize` for the
    /// format). The model must be rebuilt with the same configuration and
    /// indices before loading.
    pub fn save(&self, w: &mut impl std::io::Write) -> std::io::Result<()> {
        lcrec_tensor::serialize::save_params(self.lm.store(), w)
    }

    /// Restores LM weights saved by [`LcRec::save`]. Returns the number of
    /// parameters restored.
    pub fn load(&mut self, r: &mut impl std::io::Read) -> std::io::Result<usize> {
        lcrec_tensor::serialize::load_params(self.lm.store_mut(), r)
    }

    /// Token embeddings grouped for Figure 4: `(matrix, labels)` where
    /// label 0 = item-index token, 1 = word token used in item text.
    pub fn embedding_groups(&self, ds: &Dataset) -> (Tensor, Vec<u8>) {
        let emb = self.lm.token_embeddings();
        let base_len = self.vocab.index_base() as usize;
        // Word tokens that occur in item titles/descriptions.
        let mut is_item_word = vec![false; base_len];
        for item in &ds.catalog.items {
            for id in self.vocab.base().encode(&item.full_text()) {
                if (id as usize) < base_len {
                    is_item_word[id as usize] = true;
                }
            }
        }
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for t in 0..emb.rows() {
            if t >= base_len {
                rows.extend_from_slice(emb.row(t));
                labels.push(0u8);
            } else if is_item_word[t] {
                rows.extend_from_slice(emb.row(t));
                labels.push(1u8);
            }
        }
        (Tensor::new(&[labels.len(), emb.cols()], rows), labels)
    }
}

/// Bridges LC-Rec into the evaluation harness with a chosen SEQ template.
#[derive(Debug)]
pub struct LcRecRanker<'a> {
    /// The trained model.
    pub model: &'a LcRec,
    /// Instruction builder over the evaluation dataset.
    pub builder: InstructionBuilder<'a>,
    /// Which SEQ template to phrase prompts with.
    pub template: usize,
}

impl Ranker for LcRecRanker<'_> {
    fn rank(&self, _user: usize, history: &[u32], k: usize) -> Vec<u32> {
        let segs = self.builder.seq_eval_prompt_n(history, self.template);
        self.model
            .recommend_prompt(&segs, k.max(self.model.cfg.beam))
            .into_iter()
            .take(k)
            .map(|h| h.item)
            .collect()
    }

    fn name(&self) -> String {
        "LC-Rec".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;
    use lcrec_rqvae::{build_indices, IndexerKind, RqVaeConfig};
    use lcrec_text::TextEncoder;

    fn tiny_model(trained: bool) -> (Dataset, LcRec) {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut enc = TextEncoder::new(24, 3);
        let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
        let emb = enc.encode_batch(texts.iter().map(String::as_str));
        let mut rq = RqVaeConfig::small(24, ds.num_items());
        rq.epochs = 6;
        rq.levels = 3;
        rq.codebook_size = 8;
        rq.latent_dim = 8;
        rq.hidden = vec![16];
        let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
        let mut model = LcRec::build(&ds, indices, LcRecConfig::test());
        if trained {
            model.fit(&ds);
        }
        (ds, model)
    }

    #[test]
    fn fit_reduces_loss_and_recommends_real_items() {
        let (ds, model) = {
            let (ds, mut m) = tiny_model(false);
            let losses = m.fit(&ds);
            assert!(
                losses.last().expect("epochs") <= &losses[0],
                "loss should not increase: {losses:?}"
            );
            (ds, m)
        };
        let builder = InstructionBuilder::new(&ds);
        let (ctx, _) = ds.test_example(0);
        let segs = builder.seq_eval_prompt(ctx);
        let hyps = model.recommend_prompt(&segs, 10);
        assert!(!hyps.is_empty());
        for h in &hyps {
            assert!((h.item as usize) < ds.num_items());
        }
        // No duplicate items in the beam.
        let mut items: Vec<u32> = hyps.iter().map(|h| h.item).collect();
        items.sort_unstable();
        let before = items.len();
        items.dedup();
        assert_eq!(items.len(), before);
    }

    #[test]
    fn ranker_produces_k_results() {
        let (ds, model) = tiny_model(true);
        let ranker = LcRecRanker { model: &model, builder: InstructionBuilder::new(&ds), template: 0 };
        let (ctx, _) = ds.test_example(1);
        let ranked = ranker.rank(1, ctx, 5);
        assert_eq!(ranked.len(), 5);
    }

    #[test]
    fn score_item_is_finite_and_comparative() {
        let (ds, model) = tiny_model(true);
        let builder = InstructionBuilder::new(&ds);
        let (ctx, target) = ds.test_example(0);
        let segs = builder.seq_eval_prompt(ctx);
        let s = model.score_item(&segs, target);
        assert!(s.is_finite() && s < 0.0);
    }

    #[test]
    fn generate_text_emits_vocabulary_words() {
        let (_, model) = tiny_model(true);
        let out = model.generate_text(&[Seg::Text("please tell me what the following item is called".into()), Seg::Item(0)], 12);
        // Greedy decode may produce anything, but it must be decodable text.
        assert!(out.len() < 400);
    }

    #[test]
    fn history_capping_limits_prompt_length() {
        let (_, model) = tiny_model(false);
        let long: Vec<u32> = (0..40).map(|i| i % 5).collect();
        let tokens = model.render_prompt(&[Seg::Items(long)]);
        assert!(tokens.len() <= model.config().max_seq);
    }

    #[test]
    fn save_load_round_trips_recommendations() {
        let (ds, trained) = tiny_model(true);
        let builder = InstructionBuilder::new(&ds);
        let (ctx, _) = ds.test_example(0);
        let segs = builder.seq_eval_prompt(ctx);
        let before: Vec<u32> =
            trained.recommend_prompt(&segs, 8).into_iter().map(|h| h.item).collect();
        let mut buf = Vec::new();
        trained.save(&mut buf).expect("save");
        // A freshly built (untrained) model restores the trained weights.
        let (_, mut fresh) = tiny_model(false);
        let n = fresh.load(&mut buf.as_slice()).expect("load");
        assert!(n > 0);
        let after: Vec<u32> =
            fresh.recommend_prompt(&segs, 8).into_iter().map(|h| h.item).collect();
        assert_eq!(before, after, "checkpoint must reproduce the ranking");
    }

    #[test]
    fn embedding_groups_cover_index_tokens() {
        let (ds, model) = tiny_model(false);
        let (emb, labels) = model.embedding_groups(&ds);
        let idx_count = labels.iter().filter(|&&l| l == 0).count();
        assert_eq!(idx_count, model.vocab().indices().vocab_tokens());
        assert_eq!(emb.rows(), labels.len());
        assert!(labels.iter().any(|&l| l == 1), "some item-text words expected");
    }
}
