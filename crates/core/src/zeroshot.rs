//! Zero-shot language-only scorers — the Table-V stand-ins for untuned
//! LLaMA and ChatGPT.
//!
//! The paper probes untuned LLMs by asking them to pick between the true
//! next item and a hard negative; they do acceptably on language-similar
//! negatives and near-chance on collaborative ones, because all they can
//! use is text similarity. These scorers reproduce that behaviour
//! mechanistically: score = cosine between the history's aggregate text
//! embedding and the candidate's text embedding, plus calibrated decision
//! noise (an untuned chat model is a noisy text-similarity judge; the
//! "ChatGPT" variant is less noisy than the "LLaMA" one). The substitution
//! is documented in DESIGN.md.

use lcrec_data::Dataset;
use lcrec_eval::PairwiseScorer;
use lcrec_tensor::linalg::cosine;
use lcrec_tensor::Tensor;
use lcrec_text::TextEncoder;

/// A language-semantics-only pairwise scorer.
#[derive(Debug)]
pub struct TextSimilarityScorer {
    label: String,
    /// `[num_items, d]` item text embeddings.
    item_emb: Tensor,
    /// Standard deviation of the decision noise.
    noise: f32,
    seed: u64,
    /// How many most-recent history items inform the judgement (chat
    /// context is short).
    context: usize,
}

impl TextSimilarityScorer {
    /// Builds a scorer over the dataset's item texts.
    pub fn new(label: &str, ds: &Dataset, noise: f32, seed: u64) -> Self {
        // 128 dims: below ~64 the random word vectors are too correlated
        // (cosine noise ~1/sqrt(dim)) and the text-similarity signal drowns.
        let mut enc = TextEncoder::new(128, 11);
        let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
        let item_emb = enc.encode_batch(texts.iter().map(String::as_str));
        TextSimilarityScorer { label: label.to_string(), item_emb, noise, seed, context: 5 }
    }

    /// The untuned-LLaMA stand-in (noisier).
    pub fn llama(ds: &Dataset) -> Self {
        Self::new("LLaMA", ds, 0.35, 0xAAA)
    }

    /// The ChatGPT stand-in (a better but still text-only judge).
    pub fn chatgpt(ds: &Dataset) -> Self {
        Self::new("ChatGPT", ds, 0.22, 0xBBB)
    }

    fn history_embedding(&self, history: &[u32]) -> Vec<f32> {
        let d = self.item_emb.cols();
        let mut acc = vec![0.0f32; d];
        let recent = if history.len() > self.context {
            &history[history.len() - self.context..]
        } else {
            history
        };
        // Recency-weighted mean, as a chat prompt emphasizes recent items.
        let mut wsum = 0.0;
        for (rank, &i) in recent.iter().enumerate() {
            let w = 1.0 + rank as f32 * 0.5;
            wsum += w;
            for (a, &v) in acc.iter_mut().zip(self.item_emb.row(i as usize)) {
                *a += w * v;
            }
        }
        if wsum > 0.0 {
            acc.iter_mut().for_each(|a| *a /= wsum);
        }
        acc
    }

    fn deterministic_noise(&self, user: usize, item: u32) -> f32 {
        // Hash-derived standard-normal-ish noise so scores are reproducible.
        // SplitMix64 finalizer: a single xorshift round leaves (user, item)
        // keys that differ only in low bits visibly correlated, which skews
        // pairwise comparisons.
        let mut x = self
            .seed
            .wrapping_add((user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((item as u64).wrapping_mul(0xBF58_476D_1CE4_E5B9));
        x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        let x = x ^ (x >> 31);
        let mut s = 0.0f32;
        for shift in [0u32, 16, 32, 48] {
            s += ((x >> shift) & 0xFFFF) as f32 / 65535.0;
        }
        (s - 2.0) * (12.0f32 / 4.0).sqrt() * self.noise
    }
}

impl PairwiseScorer for TextSimilarityScorer {
    fn score(&self, user: usize, history: &[u32], item: u32) -> f64 {
        let h = self.history_embedding(history);
        let base = cosine(&h, self.item_emb.row(item as usize));
        (base + self.deterministic_noise(user, item)) as f64
    }

    fn name(&self) -> String {
        self.label.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn scorers_are_deterministic() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let s = TextSimilarityScorer::llama(&ds);
        let a = s.score(0, &[1, 2, 3], 5);
        let b = s.score(0, &[1, 2, 3], 5);
        assert_eq!(a, b);
    }

    #[test]
    fn same_category_items_score_higher_on_average() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        // Use a noise-free scorer to test the signal itself.
        let s = TextSimilarityScorer::new("probe", &ds, 0.0, 1);
        let mut same = 0.0;
        let mut diff = 0.0;
        let mut ns = 0;
        let mut nd = 0;
        for u in 0..ds.num_users().min(40) {
            let (ctx, _) = ds.test_example(u);
            let last_sub = ds.catalog.sub_of(*ctx.last().expect("non-empty"));
            for i in 0..ds.num_items() as u32 {
                let v = s.score(u, ctx, i);
                if ds.catalog.sub_of(i) == last_sub {
                    same += v;
                    ns += 1;
                } else {
                    diff += v;
                    nd += 1;
                }
            }
        }
        assert!(same / ns as f64 > diff / nd as f64, "text similarity must track categories");
    }

    #[test]
    fn chatgpt_variant_is_less_noisy_than_llama() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let llama = TextSimilarityScorer::llama(&ds);
        let gpt = TextSimilarityScorer::chatgpt(&ds);
        assert!(gpt.noise < llama.noise);
    }
}
