//! The decoder-only causal language model — the LLaMA substitute.
//!
//! Architecture (LLaMA-flavoured at reduced scale): token + learned absolute
//! position embeddings, pre-RMSNorm blocks with multi-head causal attention
//! and gated-SiLU feed-forward, a final RMSNorm, and a weight-tied LM head.
//! (The paper's backbone uses rotary embeddings; learned absolute positions
//! are an equivalent-capacity substitute at this scale — see DESIGN.md.)
//!
//! Two execution paths:
//! * **training** — define-by-run autograd graphs with teacher forcing and
//!   response-only loss (Eqn. 7);
//! * **inference** — a raw, allocation-light path with a per-sequence
//!   [`KvCache`], the optimization the paper highlights in §III-D2. The
//!   single-token step comes in two shapes sharing one implementation:
//!   [`CausalLm::advance`] (one sequence) and [`CausalLm::advance_batch`]
//!   (many sequences through one weight pass, each with its own cache
//!   slot). Per-row arithmetic is identical, so batched serving
//!   (`lcrec-serve`) is bit-identical to sequential decoding.

use lcrec_tensor::{
    init, matmul_acc, softmax_rows, AdamW, Graph, ParamId, ParamStore, Schedule, Tensor, Var,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

thread_local! {
    /// True while `prefill` drives `advance`, so the shared single-token
    /// path can split its tokens/sec accounting into prefill vs decode.
    static IN_PREFILL: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// LM hyperparameters.
#[derive(Clone, Debug)]
pub struct LmConfig {
    /// Vocabulary size (base words + index tokens).
    pub vocab: usize,
    /// Model width.
    pub dim: usize,
    /// Transformer blocks.
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// FFN hidden width.
    pub ff_hidden: usize,
    /// Maximum sequence length.
    pub max_seq: usize,
    /// Dropout during training.
    pub dropout: f32,
    /// Seed for initialization.
    pub seed: u64,
}

impl LmConfig {
    /// A configuration sized for the small dataset presets.
    pub fn small(vocab: usize) -> Self {
        LmConfig { vocab, dim: 48, layers: 2, heads: 4, ff_hidden: 96, max_seq: 112, dropout: 0.1, seed: 1234 }
    }

    /// A micro configuration for unit tests.
    pub fn test(vocab: usize) -> Self {
        LmConfig { vocab, dim: 16, layers: 1, heads: 2, ff_hidden: 32, max_seq: 48, dropout: 0.0, seed: 5 }
    }

    /// The scale-tier configuration: wide and deep enough that the weight
    /// set (reported by [`CausalLm::param_bytes`]) exceeds a typical
    /// last-level cache, so serving benchmarks at this tier exercise the
    /// memory system rather than replaying cache-resident GEMMs — the
    /// regime `results/scale.md` measures (see docs/PERFORMANCE.md,
    /// "Scale tiers").
    pub fn large(vocab: usize) -> Self {
        LmConfig { vocab, dim: 320, layers: 5, heads: 8, ff_hidden: 640, max_seq: 160, dropout: 0.1, seed: 1234 }
    }
}

#[derive(Debug)]
struct Block {
    norm1: ParamId,
    wq: ParamId,
    wk: ParamId,
    wv: ParamId,
    wo: ParamId,
    norm2: ParamId,
    w_gate: ParamId,
    w_up: ParamId,
    w_down: ParamId,
}

/// The causal LM.
#[derive(Debug)]
pub struct CausalLm {
    cfg: LmConfig,
    ps: ParamStore,
    tok_emb: ParamId,
    pos_emb: ParamId,
    blocks: Vec<Block>,
    final_norm: ParamId,
}

/// Per-sequence attention cache: keys/values for every layer and head.
#[derive(Clone)]
#[derive(Debug)]
pub struct KvCache {
    /// `k[layer]` is `[len, dim]` flattened (head-major within a row).
    k: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    len: usize,
}

impl KvCache {
    /// Number of cached positions.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if nothing is cached yet.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// Preallocated working memory for the fused decode fast path
/// ([`CausalLm::advance_batch_fused`]).
///
/// The reference step ([`CausalLm::advance_batch`]) allocates every
/// intermediate (`x`, q/k/v, attention context, FFN activations, logits)
/// fresh on each call; profiling (`results/profile.md`) shows that decode
/// dominates end-to-end cost, so those allocations sit on the hottest loop
/// of the system. A `DecodeScratch` hoists all of them into buffers that
/// are reused across decode steps — after the first step at a given batch
/// size the fused path performs **zero heap allocation** per token.
///
/// The scratch also caches the transpose of the tied LM head
/// (`tok_emb^T`), turning the per-token logit computation from
/// `vocab` scalar dot products into one dense matmul whose inner loop
/// runs contiguously over the vocabulary (see `docs/PERFORMANCE.md`).
///
/// # Lifecycle
///
/// Create one with [`CausalLm::new_scratch`] *after* the model is trained
/// and reuse it for any number of decode calls against that model: the
/// cached head transpose is a snapshot of `tok_emb` taken at construction,
/// so a scratch must not outlive a parameter update (create a fresh one
/// after further training). The serving engine holds one scratch for its
/// whole lifetime — it borrows the model immutably, so the parameters
/// cannot change underneath it — and the beam-search entry points create
/// one per call.
#[derive(Clone, Debug)]
pub struct DecodeScratch {
    /// `tok_emb` transposed to `[dim, vocab]` for the tied-head matmul.
    head_t: Vec<f32>,
    xs: Vec<f32>,
    xn: Vec<f32>,
    q: Vec<f32>,
    k: Vec<f32>,
    v: Vec<f32>,
    ctx: Vec<f32>,
    att: Vec<f32>,
    gate: Vec<f32>,
    up: Vec<f32>,
    hid: Vec<f32>,
    down: Vec<f32>,
    scores: Vec<f32>,
    probs: Vec<f32>,
    xf: Vec<f32>,
    logits: Vec<f32>,
}

/// Grows `buf` to `len` elements, all zero, without shrinking its
/// capacity — after warm-up this never allocates.
fn ensure_zeroed(buf: &mut Vec<f32>, len: usize) {
    buf.clear();
    buf.resize(len, 0.0);
}

impl CausalLm {
    /// Builds an untrained LM.
    pub fn new(cfg: LmConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let tok_emb = ps.add_no_decay("tok_emb", init::lm_default(&[cfg.vocab, cfg.dim], &mut rng));
        let pos_emb = ps.add_no_decay("pos_emb", init::lm_default(&[cfg.max_seq, cfg.dim], &mut rng));
        let blocks = (0..cfg.layers)
            .map(|l| Block {
                norm1: ps.add_no_decay(&format!("b{l}.norm1"), Tensor::full(&[cfg.dim], 1.0)),
                wq: ps.add(&format!("b{l}.wq"), init::xavier(&[cfg.dim, cfg.dim], &mut rng)),
                wk: ps.add(&format!("b{l}.wk"), init::xavier(&[cfg.dim, cfg.dim], &mut rng)),
                wv: ps.add(&format!("b{l}.wv"), init::xavier(&[cfg.dim, cfg.dim], &mut rng)),
                wo: ps.add(&format!("b{l}.wo"), init::xavier(&[cfg.dim, cfg.dim], &mut rng)),
                norm2: ps.add_no_decay(&format!("b{l}.norm2"), Tensor::full(&[cfg.dim], 1.0)),
                w_gate: ps.add(&format!("b{l}.w_gate"), init::xavier(&[cfg.dim, cfg.ff_hidden], &mut rng)),
                w_up: ps.add(&format!("b{l}.w_up"), init::xavier(&[cfg.dim, cfg.ff_hidden], &mut rng)),
                w_down: ps.add(&format!("b{l}.w_down"), init::xavier(&[cfg.ff_hidden, cfg.dim], &mut rng)),
            })
            .collect();
        let final_norm = ps.add_no_decay("final_norm", Tensor::full(&[cfg.dim], 1.0));
        CausalLm { cfg, ps, tok_emb, pos_emb, blocks, final_norm }
    }

    /// The configuration.
    pub fn config(&self) -> &LmConfig {
        &self.cfg
    }

    /// Total scalar parameters.
    pub fn num_params(&self) -> usize {
        self.ps.num_scalars()
    }

    /// Resident weight size in bytes (f32 scalars). The scale benchmark
    /// reports this to show whether a tier's weights fit in cache.
    pub fn param_bytes(&self) -> usize {
        self.num_params() * std::mem::size_of::<f32>()
    }

    /// The token-embedding matrix (for Figure 4's visualization).
    pub fn token_embeddings(&self) -> &Tensor {
        self.ps.value(self.tok_emb)
    }

    // ---------------------------------------------------------------- train

    /// Graph forward over `[b, t]` right-padded token rows → logits
    /// `[b*t, vocab]`.
    pub fn forward_logits(&self, g: &mut Graph, tokens: &[u32], b: usize, t: usize) -> Var {
        assert!(t <= self.cfg.max_seq, "sequence {t} exceeds max_seq {}", self.cfg.max_seq);
        let table = g.param(&self.ps, self.tok_emb);
        let x = g.embedding(table, tokens);
        let pos_table = g.param(&self.ps, self.pos_emb);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..t as u32).collect();
        let p = g.embedding(pos_table, &pos_ids);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        let mask = crate::mask_cache(t);
        for blk in &self.blocks {
            x = self.block_forward(g, blk, x, b, t, &mask);
        }
        let gamma = g.param(&self.ps, self.final_norm);
        let x = g.rms_norm(x, gamma, 1e-6);
        g.matmul_nt(x, table)
    }

    fn block_forward(&self, g: &mut Graph, blk: &Block, x: Var, b: usize, t: usize, mask: &Tensor) -> Var {
        let h = self.cfg.heads;
        let dh = self.cfg.dim / h;
        let g1 = g.param(&self.ps, blk.norm1);
        let xn = g.rms_norm(x, g1, 1e-6);
        let wq = g.param(&self.ps, blk.wq);
        let wk = g.param(&self.ps, blk.wk);
        let wv = g.param(&self.ps, blk.wv);
        let q = g.matmul(xn, wq);
        let k = g.matmul(xn, wk);
        let v = g.matmul(xn, wv);
        let qh = g.split_heads(q, b, t, h);
        let kh = g.split_heads(k, b, t, h);
        let vh = g.split_heads(v, b, t, h);
        let scores = g.bmm_nt(qh, kh);
        let scores = g.scale(scores, 1.0 / (dh as f32).sqrt());
        let flat = g.reshape(scores, &[b * h * t, t]);
        let masked = g.add_cycle_const(flat, mask);
        let resh = g.reshape(masked, &[b * h, t, t]);
        let probs = g.softmax(resh);
        let probs = g.dropout(probs, self.cfg.dropout);
        let ctx = g.bmm(probs, vh);
        let merged = g.merge_heads(ctx, b, t, h);
        let wo = g.param(&self.ps, blk.wo);
        let att = g.matmul(merged, wo);
        let att = g.dropout(att, self.cfg.dropout);
        let x = g.add(x, att);
        // Gated FFN.
        let g2 = g.param(&self.ps, blk.norm2);
        let xn2 = g.rms_norm(x, g2, 1e-6);
        let wg = g.param(&self.ps, blk.w_gate);
        let wu = g.param(&self.ps, blk.w_up);
        let wd = g.param(&self.ps, blk.w_down);
        let gate = g.matmul(xn2, wg);
        let gate = g.silu(gate);
        let up = g.matmul(xn2, wu);
        let hid = g.mul(gate, up);
        let down = g.matmul(hid, wd);
        let down = g.dropout(down, self.cfg.dropout);
        g.add(x, down)
    }

    /// Mutable parameter access (the trainer drives the optimizer).
    pub fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    /// Immutable parameter access.
    pub fn store(&self) -> &ParamStore {
        &self.ps
    }

    // ------------------------------------------------------------- inference

    /// An empty cache.
    pub fn new_cache(&self) -> KvCache {
        KvCache {
            k: vec![Vec::new(); self.cfg.layers],
            v: vec![Vec::new(); self.cfg.layers],
            len: 0,
        }
    }

    /// Feeds one token through the raw inference path, appending to the
    /// cache and returning the logits for the next position.
    ///
    /// This *is* [`CausalLm::advance_batch`] with a single slot, so the
    /// one-request path and the batched serving path share every
    /// instruction — there is no separate arithmetic to drift apart.
    pub fn advance(&self, cache: &mut KvCache, token: u32) -> Vec<f32> {
        let mut slots = [cache];
        self.advance_batch(&mut slots, &[token]).pop().unwrap_or_default()
    }

    /// Feeds one token into each of `b` independent sequences through a
    /// **single weight pass**: `caches[i]` receives `tokens[i]`, and slots
    /// may sit at different positions. Returns one logit row per slot, in
    /// slot order.
    ///
    /// The per-row arithmetic (RMS norm, attention over the slot's own
    /// cache, gated FFN, tied-head logits) is exactly the batch-1 path —
    /// the batched matmul accumulates strictly row by row — so batched and
    /// sequential decoding produce bit-identical logits. That contract is
    /// what lets the serving engine (`lcrec-serve`) batch requests without
    /// changing any ranking; `tests/serving.rs` pins it.
    pub fn advance_batch(&self, caches: &mut [&mut KvCache], tokens: &[u32]) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), tokens.len(), "one token per cache slot");
        let b = caches.len();
        if b == 0 {
            return Vec::new();
        }
        let obs_watch = lcrec_obs::stopwatch();
        let d = self.cfg.dim;
        let h = self.cfg.heads;
        let dh = d / h;
        let tok_table = self.ps.value(self.tok_emb);
        let pos_table = self.ps.value(self.pos_emb);
        let mut xs = vec![0.0f32; b * d];
        for ((&token, cache), row) in
            tokens.iter().zip(caches.iter()).zip(xs.chunks_exact_mut(d))
        {
            let pos = cache.len.min(self.cfg.max_seq - 1);
            row.copy_from_slice(tok_table.row(token as usize));
            for (xi, pi) in row.iter_mut().zip(pos_table.row(pos)) {
                *xi += pi;
            }
        }
        for (l, blk) in self.blocks.iter().enumerate() {
            let xn = rms_rows(&xs, self.ps.value(blk.norm1).data(), b);
            let q = batmat(&xn, self.ps.value(blk.wq), b);
            let k = batmat(&xn, self.ps.value(blk.wk), b);
            let v = batmat(&xn, self.ps.value(blk.wv), b);
            let scale = 1.0 / (dh as f32).sqrt();
            let mut ctx = vec![0.0f32; b * d];
            for (r, cache) in caches.iter_mut().enumerate() {
                cache.k[l].extend_from_slice(&k[r * d..(r + 1) * d]); // lint: allow(panic, reason = "l enumerates self.blocks, which sized every cache; batmat returns b*d values and r < b")
                cache.v[l].extend_from_slice(&v[r * d..(r + 1) * d]); // lint: allow(panic, reason = "l enumerates self.blocks, which sized every cache; batmat returns b*d values and r < b")
                let t = cache.len + 1;
                for head in 0..h {
                    let qh = &q[r * d + head * dh..r * d + (head + 1) * dh]; // lint: allow(panic, reason = "head < h and h * dh == d, so the slice stays inside row r of the b*d buffer")
                    // Scores over all of this slot's cached positions.
                    let mut scores = Vec::with_capacity(t);
                    for ti in 0..t {
                        let kh = &cache.k[l][ti * d + head * dh..ti * d + (head + 1) * dh]; // lint: allow(panic, reason = "cache.k[l] holds t rows of d values after the extend above; ti < t")
                        let dot: f32 = qh.iter().zip(kh).map(|(qv, kv)| qv * kv).sum();
                        scores.push(dot * scale);
                    }
                    let mut probs = vec![0.0f32; t];
                    softmax_rows(&scores, &mut probs, t);
                    let out = &mut ctx[r * d + head * dh..r * d + (head + 1) * dh]; // lint: allow(panic, reason = "ctx was allocated with b*d zeros; r < b and head < h with h * dh == d")
                    for (ti, &p) in probs.iter().enumerate() {
                        let vh = &cache.v[l][ti * d + head * dh..ti * d + (head + 1) * dh]; // lint: allow(panic, reason = "cache.v[l] holds t rows of d values after the extend above; ti < t")
                        for (o, &vv) in out.iter_mut().zip(vh) {
                            *o += p * vv;
                        }
                    }
                }
            }
            let att = batmat(&ctx, self.ps.value(blk.wo), b);
            for (xi, a) in xs.iter_mut().zip(&att) {
                *xi += a;
            }
            let xn2 = rms_rows(&xs, self.ps.value(blk.norm2).data(), b);
            let gate = batmat(&xn2, self.ps.value(blk.w_gate), b);
            let up = batmat(&xn2, self.ps.value(blk.w_up), b);
            let hid: Vec<f32> = gate
                .iter()
                .zip(&up)
                .map(|(&gv, &uv)| gv * lcrec_tensor::sigmoid(gv) * uv)
                .collect();
            let down = batmat(&hid, self.ps.value(blk.w_down), b);
            for (xi, dv) in xs.iter_mut().zip(&down) {
                *xi += dv;
            }
        }
        let mut out = Vec::with_capacity(b);
        for (cache, xrow) in caches.iter_mut().zip(xs.chunks_exact(d)) {
            cache.len += 1;
            let xf = rms_vec(xrow, self.ps.value(self.final_norm).data());
            // Tied head: logits = xf @ tok_emb^T.
            let mut logits = vec![0.0f32; self.cfg.vocab];
            for (vi, logit) in logits.iter_mut().enumerate() {
                let row = tok_table.row(vi);
                let mut acc = 0.0;
                for (a, w) in xf.iter().zip(row) {
                    acc += a * w;
                }
                *logit = acc;
            }
            out.push(logits);
        }
        if obs_watch.running() {
            // Prefill steps and decode steps share this path; split the
            // tokens/sec accounting by the phase flag prefill() sets.
            if IN_PREFILL.with(|c| c.get()) {
                lcrec_obs::counter_add("lm.prefill_tokens", b as u64);
                obs_watch.stop("lm.prefill_s");
            } else {
                lcrec_obs::counter_add("lm.decode_tokens", b as u64);
                obs_watch.stop("lm.decode_s");
            }
        }
        out
    }

    /// Runs all `tokens` through the cache; returns the logits after the
    /// last token.
    pub fn prefill(&self, cache: &mut KvCache, tokens: &[u32]) -> Vec<f32> {
        assert!(!tokens.is_empty(), "prefill needs at least one token");
        let was = IN_PREFILL.with(|c| c.replace(true));
        let mut logits = Vec::new();
        for &t in tokens {
            logits = self.advance(cache, t);
        }
        IN_PREFILL.with(|c| c.set(was));
        logits
    }

    /// Batched [`CausalLm::prefill`]: runs each sequence through its own
    /// cache in position lockstep — step `t` feeds token `t` of every
    /// sequence that still has one, sharing a single weight pass per step.
    /// Ragged lengths simply drop finished slots from later steps, so each
    /// slot sees exactly the arithmetic of a solo prefill (bit-identical
    /// logits and cache contents).
    ///
    /// Returns the logits after each sequence's last token, in slot order.
    /// An empty sequence yields an empty logit row (its cache untouched).
    pub fn prefill_batch(&self, caches: &mut [KvCache], seqs: &[&[u32]]) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), seqs.len(), "one cache per sequence");
        let was = IN_PREFILL.with(|c| c.replace(true));
        let longest = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        let mut outs = vec![Vec::new(); seqs.len()];
        for t in 0..longest {
            let mut slots: Vec<&mut KvCache> = Vec::new();
            let mut toks: Vec<u32> = Vec::new();
            // Live slots this step, each tagged with its output row and
            // whether `t` is its final token.
            let mut live: Vec<(usize, bool)> = Vec::new();
            for (i, (cache, seq)) in caches.iter_mut().zip(seqs).enumerate() {
                if let Some(&tok) = seq.get(t) {
                    slots.push(cache);
                    toks.push(tok);
                    live.push((i, t + 1 == seq.len()));
                }
            }
            let logits = self.advance_batch(&mut slots, &toks);
            for (row, &(i, last)) in logits.into_iter().zip(&live) {
                if last {
                    if let Some(out) = outs.get_mut(i) {
                        *out = row;
                    }
                }
            }
        }
        IN_PREFILL.with(|c| c.set(was));
        outs
    }

    /// Allocates a [`DecodeScratch`] for this model's current parameters,
    /// caching the tied-head transpose. See the scratch's lifecycle notes:
    /// create it after training, before decoding.
    pub fn new_scratch(&self) -> DecodeScratch {
        let tok_table = self.ps.value(self.tok_emb);
        DecodeScratch {
            head_t: tok_table.transposed().data().to_vec(),
            xs: Vec::new(),
            xn: Vec::new(),
            q: Vec::new(),
            k: Vec::new(),
            v: Vec::new(),
            ctx: Vec::new(),
            att: Vec::new(),
            gate: Vec::new(),
            up: Vec::new(),
            hid: Vec::new(),
            down: Vec::new(),
            scores: Vec::new(),
            probs: Vec::new(),
            xf: Vec::new(),
            logits: Vec::new(),
        }
    }

    /// The fused fast-path variant of [`CausalLm::advance_batch`]: one
    /// token into each of `b` cache slots through a single weight pass,
    /// with every intermediate living in `scratch` (no heap allocation
    /// after warm-up) and the matmuls routed through the process-wide
    /// [`lcrec_tensor::InferenceBackend`].
    ///
    /// Returns the `b * vocab` logit rows packed in slot order, borrowed
    /// from the scratch (they are overwritten by the next call).
    ///
    /// **Bit-identity contract:** for any cache states, batch size and
    /// backend, the returned logits and the updated caches are
    /// bit-identical to [`CausalLm::advance_batch`] — the fused path keeps
    /// the reference path's per-element accumulation order everywhere
    /// (`tests/decode.rs` pins this, and transitively the graph-path
    /// equivalence). The reference implementation stays as the semantics
    /// anchor and the training path is untouched.
    pub fn advance_batch_fused<'s>(
        &self,
        scratch: &'s mut DecodeScratch,
        caches: &mut [&mut KvCache],
        tokens: &[u32],
    ) -> &'s [f32] {
        assert_eq!(caches.len(), tokens.len(), "one token per cache slot");
        let b = caches.len();
        ensure_zeroed(&mut scratch.logits, b * self.cfg.vocab);
        if b == 0 {
            return &scratch.logits;
        }
        let obs_watch = lcrec_obs::stopwatch();
        let backend = lcrec_tensor::active_backend();
        let d = self.cfg.dim;
        let h = self.cfg.heads;
        let dh = d / h;
        let ff = self.cfg.ff_hidden;
        let tok_table = self.ps.value(self.tok_emb);
        let pos_table = self.ps.value(self.pos_emb);
        ensure_zeroed(&mut scratch.xs, b * d);
        ensure_zeroed(&mut scratch.xn, b * d);
        ensure_zeroed(&mut scratch.att, b * d);
        ensure_zeroed(&mut scratch.hid, b * ff);
        ensure_zeroed(&mut scratch.down, b * d);
        // Attention buffers sized to the deepest slot after this step (the
        // clamp to max_seq is positional only; callers may run longer).
        let tmax = caches.iter().map(|c| c.len + 1).max().unwrap_or(1);
        ensure_zeroed(&mut scratch.scores, tmax);
        ensure_zeroed(&mut scratch.probs, tmax);
        ensure_zeroed(&mut scratch.xf, b * d);
        for ((&token, cache), row) in
            tokens.iter().zip(caches.iter()).zip(scratch.xs.chunks_exact_mut(d))
        {
            let pos = cache.len.min(self.cfg.max_seq - 1);
            row.copy_from_slice(tok_table.row(token as usize));
            for (xi, pi) in row.iter_mut().zip(pos_table.row(pos)) {
                *xi += pi;
            }
        }
        for (l, blk) in self.blocks.iter().enumerate() {
            rms_rows_into(&scratch.xs, self.ps.value(blk.norm1).data(), &mut scratch.xn);
            ensure_zeroed(&mut scratch.q, b * d);
            ensure_zeroed(&mut scratch.k, b * d);
            ensure_zeroed(&mut scratch.v, b * d);
            backend.gemm_acc(&scratch.xn, self.ps.value(blk.wq).data(), &mut scratch.q, b, d, d);
            backend.gemm_acc(&scratch.xn, self.ps.value(blk.wk).data(), &mut scratch.k, b, d, d);
            backend.gemm_acc(&scratch.xn, self.ps.value(blk.wv).data(), &mut scratch.v, b, d, d);
            let scale = 1.0 / (dh as f32).sqrt();
            ensure_zeroed(&mut scratch.ctx, b * d);
            for (r, cache) in caches.iter_mut().enumerate() {
                cache.k[l].extend_from_slice(&scratch.k[r * d..(r + 1) * d]); // lint: allow(panic, reason = "l enumerates self.blocks, which sized every cache; scratch.k holds b*d values and r < b")
                cache.v[l].extend_from_slice(&scratch.v[r * d..(r + 1) * d]); // lint: allow(panic, reason = "l enumerates self.blocks, which sized every cache; scratch.v holds b*d values and r < b")
                let t = cache.len + 1;
                for head in 0..h {
                    let qh = &scratch.q[r * d + head * dh..r * d + (head + 1) * dh]; // lint: allow(panic, reason = "head < h and h * dh == d, so the slice stays inside row r of the b*d buffer")
                    // Scores over all of this slot's cached positions, into
                    // the preallocated score buffer (t <= max_seq by the
                    // cache-length clamp every caller maintains).
                    let scores = &mut scratch.scores[..t]; // lint: allow(panic, reason = "the buffer was sized to the max of every slot's len + 1 before the layer loop; t = cache.len + 1 for this slot")
                    for (ti, s) in scores.iter_mut().enumerate() {
                        let kh = &cache.k[l][ti * d + head * dh..ti * d + (head + 1) * dh]; // lint: allow(panic, reason = "cache.k[l] holds t rows of d values after the extend above; ti < t")
                        let dot: f32 = qh.iter().zip(kh).map(|(qv, kv)| qv * kv).sum();
                        *s = dot * scale;
                    }
                    let probs = &mut scratch.probs[..t]; // lint: allow(panic, reason = "t <= max_seq, the buffer's length")
                    softmax_rows(scores, probs, t);
                    let out = &mut scratch.ctx[r * d + head * dh..r * d + (head + 1) * dh]; // lint: allow(panic, reason = "ctx was sized to b*d zeros; r < b and head < h with h * dh == d")
                    for (ti, &p) in probs.iter().enumerate() {
                        let vh = &cache.v[l][ti * d + head * dh..ti * d + (head + 1) * dh]; // lint: allow(panic, reason = "cache.v[l] holds t rows of d values after the extend above; ti < t")
                        for (o, &vv) in out.iter_mut().zip(vh) {
                            *o += p * vv;
                        }
                    }
                }
            }
            scratch.att.fill(0.0);
            backend.gemm_acc(&scratch.ctx, self.ps.value(blk.wo).data(), &mut scratch.att, b, d, d);
            for (xi, a) in scratch.xs.iter_mut().zip(&scratch.att) {
                *xi += a;
            }
            rms_rows_into(&scratch.xs, self.ps.value(blk.norm2).data(), &mut scratch.xn);
            ensure_zeroed(&mut scratch.gate, b * ff);
            ensure_zeroed(&mut scratch.up, b * ff);
            backend.gemm_acc(&scratch.xn, self.ps.value(blk.w_gate).data(), &mut scratch.gate, b, d, ff);
            backend.gemm_acc(&scratch.xn, self.ps.value(blk.w_up).data(), &mut scratch.up, b, d, ff);
            for ((hv, &gv), &uv) in scratch.hid.iter_mut().zip(&scratch.gate).zip(&scratch.up) {
                *hv = gv * lcrec_tensor::sigmoid(gv) * uv;
            }
            scratch.down.fill(0.0);
            backend.gemm_acc(&scratch.hid, self.ps.value(blk.w_down).data(), &mut scratch.down, b, ff, d);
            for (xi, dv) in scratch.xs.iter_mut().zip(&scratch.down) {
                *xi += dv;
            }
        }
        for cache in caches.iter_mut() {
            cache.len += 1;
        }
        rms_rows_into(&scratch.xs, self.ps.value(self.final_norm).data(), &mut scratch.xf);
        // Tied head: logits = xf @ tok_emb^T, through the cached transpose
        // so the inner loop streams contiguously over the vocabulary. The
        // dense kernel keeps every `+ 0.0 * w` term, matching the scalar
        // dot loop of the reference path bit for bit.
        debug_assert_eq!(scratch.head_t.len(), d * self.cfg.vocab, "stale scratch: head transpose does not match the model (create the scratch after training)");
        backend.gemm_dense_acc(&scratch.xf, &scratch.head_t, &mut scratch.logits, b, d, self.cfg.vocab);
        if obs_watch.running() {
            if IN_PREFILL.with(|c| c.get()) {
                lcrec_obs::counter_add("lm.prefill_tokens", b as u64);
                obs_watch.stop("lm.prefill_s");
            } else {
                lcrec_obs::counter_add("lm.decode_tokens", b as u64);
                obs_watch.stop("lm.decode_s");
            }
        }
        &scratch.logits
    }

    /// The fused fast-path variant of [`CausalLm::prefill_batch`]: the
    /// same position-lockstep schedule, with every transformer step going
    /// through [`CausalLm::advance_batch_fused`]. Returns the logits after
    /// each sequence's last token, in slot order (empty rows for empty
    /// sequences), bit-identical to the reference prefill.
    pub fn prefill_batch_fused(
        &self,
        scratch: &mut DecodeScratch,
        caches: &mut [KvCache],
        seqs: &[&[u32]],
    ) -> Vec<Vec<f32>> {
        assert_eq!(caches.len(), seqs.len(), "one cache per sequence");
        let was = IN_PREFILL.with(|c| c.replace(true));
        let longest = seqs.iter().map(|s| s.len()).max().unwrap_or(0);
        let vocab = self.cfg.vocab;
        let mut outs = vec![Vec::new(); seqs.len()];
        for t in 0..longest {
            let mut slots: Vec<&mut KvCache> = Vec::new();
            let mut toks: Vec<u32> = Vec::new();
            let mut live: Vec<(usize, bool)> = Vec::new();
            for (i, (cache, seq)) in caches.iter_mut().zip(seqs).enumerate() {
                if let Some(&tok) = seq.get(t) {
                    slots.push(cache);
                    toks.push(tok);
                    live.push((i, t + 1 == seq.len()));
                }
            }
            let logits = self.advance_batch_fused(scratch, &mut slots, &toks);
            for (row, &(i, last)) in logits.chunks_exact(vocab.max(1)).zip(&live) {
                if last {
                    if let Some(out) = outs.get_mut(i) {
                        *out = row.to_vec();
                    }
                }
            }
        }
        IN_PREFILL.with(|c| c.set(was));
        outs
    }

    /// Log-probability of `continuation` given `prefix` (sums per-token
    /// log-softmax scores). Used for pairwise scoring (Table V).
    pub fn sequence_logprob(&self, prefix: &[u32], continuation: &[u32]) -> f32 {
        let mut cache = self.new_cache();
        let mut logits = self.prefill(&mut cache, prefix);
        let mut total = 0.0;
        for &tok in continuation {
            total += log_softmax_pick(&logits, tok);
            logits = self.advance(&mut cache, tok);
        }
        total
    }

    /// Greedy decoding until `stop` returns true or `max_new` tokens.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrec_core::{CausalLm, LmConfig};
    ///
    /// let lm = CausalLm::new(LmConfig::test(16));
    /// let out = lm.greedy(&[1, 2, 3], 4, |_| false);
    /// assert_eq!(out.len(), 4, "no stop token: decode all 4 requested");
    /// assert!(out.iter().all(|&t| (t as usize) < lm.config().vocab));
    /// ```
    pub fn greedy(&self, prefix: &[u32], max_new: usize, stop: impl Fn(u32) -> bool) -> Vec<u32> {
        let mut cache = self.new_cache();
        let mut logits = self.prefill(&mut cache, prefix);
        let mut out = Vec::new();
        for _ in 0..max_new {
            let next = argmax(&logits) as u32;
            if stop(next) {
                break;
            }
            out.push(next);
            if cache.len >= self.cfg.max_seq - 1 {
                break;
            }
            logits = self.advance(&mut cache, next);
        }
        out
    }

    /// Full-graph logits for a single sequence without a cache — the
    /// reference path the KV cache is benchmarked against (§III-D2).
    pub fn logits_uncached(&self, tokens: &[u32]) -> Vec<f32> {
        let t = tokens.len().min(self.cfg.max_seq);
        let toks = &tokens[tokens.len() - t..];
        let mut g = Graph::inference();
        let logits = self.forward_logits(&mut g, toks, 1, t);
        let all = g.value(logits);
        all.row(t - 1).to_vec()
    }
}

fn rms_vec(x: &[f32], gamma: &[f32]) -> Vec<f32> {
    let ms = x.iter().map(|v| v * v).sum::<f32>() / x.len() as f32;
    let r = 1.0 / (ms + 1e-6).sqrt();
    x.iter().zip(gamma).map(|(&v, &g)| v * r * g).collect()
}

/// Row-wise [`rms_vec`] over `b` packed rows of width `gamma.len()`.
fn rms_rows(xs: &[f32], gamma: &[f32], b: usize) -> Vec<f32> {
    let d = gamma.len();
    debug_assert_eq!(xs.len(), b * d);
    let mut out = Vec::with_capacity(b * d);
    for row in xs.chunks_exact(d.max(1)) {
        out.extend(rms_vec(row, gamma));
    }
    out
}

/// Allocation-free [`rms_rows`]: normalizes each packed row of `xs` into
/// the matching row of `out`, with exactly [`rms_vec`]'s arithmetic (same
/// mean-square reduction order, same per-element `v * r * g`), so the
/// fused decode path stays bit-identical to the reference path.
fn rms_rows_into(xs: &[f32], gamma: &[f32], out: &mut [f32]) {
    let d = gamma.len().max(1);
    debug_assert_eq!(xs.len(), out.len());
    for (row, orow) in xs.chunks_exact(d).zip(out.chunks_exact_mut(d)) {
        let ms = row.iter().map(|v| v * v).sum::<f32>() / row.len() as f32;
        let r = 1.0 / (ms + 1e-6).sqrt();
        for ((o, &v), &g) in orow.iter_mut().zip(row).zip(gamma) {
            *o = v * r * g;
        }
    }
}

/// `b` packed row-vectors times one weight matrix in a single `matmul_acc`
/// call. The kernel accumulates each output row independently, in the same
/// element order as the `m = 1` case, so a batch of `b` rows is
/// bit-identical to `b` separate single-row multiplies — the foundation of
/// the batched-equals-sequential decoding contract.
fn batmat(xs: &[f32], w: &Tensor, b: usize) -> Vec<f32> {
    let (rows, cols) = (w.dim(0), w.dim(1));
    debug_assert_eq!(xs.len(), b * rows);
    let mut out = vec![0.0f32; b * cols];
    matmul_acc(xs, w.data(), &mut out, b, rows, cols);
    out
}

fn argmax(xs: &[f32]) -> usize {
    let mut best = 0;
    let mut bv = f32::NEG_INFINITY;
    for (i, &x) in xs.iter().enumerate() {
        if x > bv {
            bv = x;
            best = i;
        }
    }
    best
}

/// `log softmax(logits)[pick]` computed stably.
pub fn log_softmax_pick(logits: &[f32], pick: u32) -> f32 {
    let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = logits.iter().map(|&v| (v - mx).exp()).sum();
    logits[pick as usize] - mx - z.ln()
}

/// Training configuration for instruction tuning.
#[derive(Clone, Debug)]
pub struct LmTrainConfig {
    /// Peak learning rate.
    pub lr: f32,
    /// Epochs over the instruction data.
    pub epochs: usize,
    /// Sequences per optimizer step.
    ///
    /// Batches are **not** i.i.d. draws from the epoch: each epoch the
    /// examples are shuffled and then *stably* sorted by token length (see
    /// [`dense_batch_order`]), and consecutive ranks form a batch. Batches
    /// therefore pack examples of similar length — "dense batches" with
    /// minimal padding, since the padded width is the longest example in
    /// the batch — while the shuffle still moves equal-length examples
    /// between batches from epoch to epoch.
    pub batch: usize,
    /// Warmup steps of the cosine schedule.
    pub warmup: usize,
    /// Optional hard cap on optimizer steps (budget control).
    pub max_steps: Option<usize>,
    /// Seed for shuffling.
    pub seed: u64,
}

impl LmTrainConfig {
    /// Defaults for the small presets (the paper uses lr 5e-5 at 7B scale;
    /// a model this small wants a proportionally larger rate).
    pub fn small() -> Self {
        LmTrainConfig { lr: 1.5e-3, epochs: 4, batch: 16, warmup: 30, max_steps: None, seed: 99 }
    }
}

/// One tokenized training example: tokens plus the prompt length whose
/// positions are excluded from the loss.
pub type LmExample = (Vec<u32>, usize);

/// The epoch ordering used by [`train_lm_epochs`]: a Fisher–Yates shuffle
/// followed by a **stable** sort on example length. Consecutive ranks form
/// a batch (see [`LmTrainConfig::batch`]), so batches stay *dense* —
/// examples of similar length share a batch and little padding is wasted —
/// while equal-length examples keep a fresh random order every epoch.
///
/// The returned vector is a permutation of `0..lengths.len()` with
/// `lengths[order[j]]` non-decreasing in `j`.
pub fn dense_batch_order(lengths: &[usize], rng: &mut StdRng) -> Vec<usize> {
    let mut order: Vec<usize> = (0..lengths.len()).collect();
    for i in (1..order.len()).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    order.sort_by_key(|&i| lengths[i]);
    order
}

/// Instruction-tunes the LM on a fixed example set (Eqn. 7: next-token CE
/// on response positions only). Returns mean loss per epoch.
pub fn train_lm(lm: &mut CausalLm, examples: &[LmExample], cfg: &LmTrainConfig) -> Vec<f32> {
    train_lm_epochs(lm, cfg, examples.len(), |_| examples.to_vec())
}

/// Instruction-tunes with a per-epoch example provider — the paper pairs
/// each datum with **one sampled template per epoch**, so the example set
/// is regenerated every epoch.
pub fn train_lm_epochs(
    lm: &mut CausalLm,
    cfg: &LmTrainConfig,
    examples_per_epoch: usize,
    mut provider: impl FnMut(usize) -> Vec<LmExample>,
) -> Vec<f32> {
    let max_seq = lm.config().max_seq;
    let pad = lcrec_text::token::PAD;
    let total_steps = cfg
        .max_steps
        .unwrap_or(usize::MAX)
        .min(cfg.epochs * examples_per_epoch.div_ceil(cfg.batch));
    let mut opt = AdamW::new(cfg.lr).with_schedule(Schedule::CosineWarmup {
        warmup: cfg.warmup,
        total: total_steps.max(cfg.warmup + 1),
        min_ratio: 0.1,
    });
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut epoch_losses = Vec::new();
    let mut steps = 0usize;
    let _span = lcrec_obs::span("lm.train");
    'outer: for epoch in 0..cfg.epochs {
        let _epoch_span = lcrec_obs::span("epoch");
        let examples = provider(epoch);
        if examples.is_empty() {
            epoch_losses.push(0.0);
            continue;
        }
        let lengths: Vec<usize> = examples.iter().map(|e| e.0.len()).collect();
        let order = dense_batch_order(&lengths, &mut rng);
        let mut sum = 0.0;
        let mut nb = 0usize;
        for chunk in order.chunks(cfg.batch) {
            // chunks() never yields an empty slice, so the max exists.
            let t = chunk.iter().map(|&i| examples[i].0.len()).max().unwrap_or(1).min(max_seq);
            let b = chunk.len();
            let mut tokens = vec![pad; b * t];
            let mut targets = vec![u32::MAX; b * t];
            for (row, &i) in chunk.iter().enumerate() {
                let (ex, prompt_len) = &examples[i];
                // Overlong examples lose their oldest (prompt) tokens; the
                // prompt boundary shifts left by the same amount.
                let cut = ex.len().saturating_sub(t);
                let ex = &ex[cut..];
                let plen = prompt_len.saturating_sub(cut).min(ex.len());
                for (j, &tok) in ex.iter().enumerate() {
                    tokens[row * t + j] = tok;
                    // Position j predicts token j+1; supervise only when
                    // the *predicted* token is inside the response.
                    if j + 1 < ex.len() && j + 1 >= plen {
                        targets[row * t + j] = ex[j + 1];
                    }
                }
            }
            let mut g = Graph::new();
            g.seed(cfg.seed ^ (steps as u64) << 8);
            let logits = lm.forward_logits(&mut g, &tokens, b, t);
            let loss = g.cross_entropy(logits, &targets, u32::MAX);
            sum += g.value(loss).item();
            nb += 1;
            let ps = lm.store_mut();
            ps.zero_grads();
            g.backward(loss, ps);
            ps.clip_grad_norm(1.0);
            opt.step(ps);
            lcrec_obs::counter_add("lm.train_steps", 1);
            steps += 1;
            if steps >= total_steps {
                epoch_losses.push(sum / nb as f32);
                break 'outer;
            }
        }
        epoch_losses.push(sum / nb.max(1) as f32);
    }
    epoch_losses
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cached_and_uncached_logits_agree() {
        let lm = CausalLm::new(LmConfig::test(30));
        let tokens = [1u32, 7, 3, 9, 2];
        let mut cache = lm.new_cache();
        let cached = lm.prefill(&mut cache, &tokens);
        let uncached = lm.logits_uncached(&tokens);
        for (a, b) in cached.iter().zip(&uncached) {
            assert!((a - b).abs() < 1e-3, "cached {a} vs graph {b}");
        }
    }

    #[test]
    fn lm_memorizes_a_tiny_mapping() {
        // Three prompt→response pairs; the LM must learn them exactly.
        let mut lm = CausalLm::new(LmConfig::test(20));
        let examples: Vec<LmExample> = vec![
            (vec![1, 10, 11, 5, 2], 3),
            (vec![1, 12, 13, 6, 2], 3),
            (vec![1, 14, 15, 7, 2], 3),
        ];
        let cfg = LmTrainConfig { lr: 5e-3, epochs: 120, batch: 3, warmup: 5, max_steps: None, seed: 1 };
        let losses = train_lm(&mut lm, &examples, &cfg);
        assert!(losses.last().expect("epochs") < &0.1, "final loss {:?}", losses.last());
        for (ex, plen) in &examples {
            let out = lm.greedy(&ex[..*plen], 1, |_| false);
            assert_eq!(out[0], ex[*plen], "wrong continuation for {ex:?}");
        }
    }

    #[test]
    fn sequence_logprob_prefers_trained_continuation() {
        let mut lm = CausalLm::new(LmConfig::test(20));
        let examples: Vec<LmExample> = vec![(vec![1, 10, 11, 5, 2], 3)];
        let cfg = LmTrainConfig { lr: 5e-3, epochs: 100, batch: 1, warmup: 5, max_steps: None, seed: 2 };
        train_lm(&mut lm, &examples, &cfg);
        let good = lm.sequence_logprob(&[1, 10, 11], &[5]);
        let bad = lm.sequence_logprob(&[1, 10, 11], &[6]);
        assert!(good > bad, "trained continuation should win: {good} vs {bad}");
    }

    #[test]
    fn greedy_stops_on_predicate() {
        let lm = CausalLm::new(LmConfig::test(10));
        let out = lm.greedy(&[1, 2], 20, |t| t == lcrec_text::token::EOS || true);
        assert!(out.is_empty(), "stop-on-first predicate halts immediately");
    }

    #[test]
    fn max_steps_caps_training() {
        let mut lm = CausalLm::new(LmConfig::test(20));
        let examples: Vec<LmExample> = (0..32).map(|i| (vec![1, 4 + (i % 8), 5, 2], 2)).collect();
        let cfg = LmTrainConfig { lr: 1e-3, epochs: 50, batch: 4, warmup: 2, max_steps: Some(3), seed: 3 };
        let losses = train_lm(&mut lm, &examples, &cfg);
        assert_eq!(losses.len(), 1, "training must stop within the first epoch");
    }

    #[test]
    fn batched_prefill_is_bit_identical_to_sequential() {
        let lm = CausalLm::new(LmConfig::test(30));
        let seqs: [&[u32]; 4] = [&[1, 7, 3], &[2, 4, 9, 5, 6], &[8], &[]];
        // Sequential reference: each sequence through its own solo prefill.
        let mut solo: Vec<Vec<f32>> = Vec::new();
        let mut solo_caches: Vec<KvCache> = Vec::new();
        for s in seqs {
            let mut cache = lm.new_cache();
            solo.push(if s.is_empty() { Vec::new() } else { lm.prefill(&mut cache, s) });
            solo_caches.push(cache);
        }
        // Batched: ragged lengths in one lockstep pass.
        let mut caches: Vec<KvCache> = (0..seqs.len()).map(|_| lm.new_cache()).collect();
        let batched = lm.prefill_batch(&mut caches, &seqs);
        for ((a, b), (ca, cb)) in batched.iter().zip(&solo).zip(caches.iter().zip(&solo_caches)) {
            assert_eq!(a.len(), b.len());
            for (x, y) in a.iter().zip(b) {
                assert_eq!(x.to_bits(), y.to_bits(), "logits must match bit for bit");
            }
            assert_eq!(ca.len(), cb.len(), "cache positions must agree");
        }
        // Continue decoding from the batched caches: still bit-identical.
        let next: Vec<u32> = vec![3, 1, 2];
        let mut slots: Vec<&mut KvCache> = caches.iter_mut().take(3).collect();
        let step = lm.advance_batch(&mut slots, &next);
        for (i, row) in step.iter().enumerate() {
            let reference = lm.advance(&mut solo_caches[i], next[i]);
            for (x, y) in row.iter().zip(&reference) {
                assert_eq!(x.to_bits(), y.to_bits());
            }
        }
    }

    #[test]
    fn advance_batch_with_empty_batch_is_a_no_op() {
        let lm = CausalLm::new(LmConfig::test(10));
        let mut slots: Vec<&mut KvCache> = Vec::new();
        assert!(lm.advance_batch(&mut slots, &[]).is_empty());
    }

    #[test]
    fn dense_batch_order_is_a_length_sorted_permutation() {
        let lengths: Vec<usize> = (0..40).map(|i| (i * 7 + 3) % 11).collect();
        let mut rng = StdRng::seed_from_u64(42);
        let order = dense_batch_order(&lengths, &mut rng);
        let mut seen = order.clone();
        seen.sort_unstable();
        assert_eq!(seen, (0..40).collect::<Vec<_>>(), "must be a permutation");
        for w in order.windows(2) {
            assert!(lengths[w[0]] <= lengths[w[1]], "lengths must be non-decreasing");
        }
    }

    #[test]
    fn dense_batch_order_shuffles_ties() {
        // All-equal lengths: the stable sort preserves the shuffle, so the
        // order must be a non-identity permutation (seeded, deterministic).
        let lengths = vec![5usize; 32];
        let mut rng = StdRng::seed_from_u64(7);
        let order = dense_batch_order(&lengths, &mut rng);
        assert_ne!(order, (0..32).collect::<Vec<_>>(), "ties must be shuffled");
        // Same seed → same order: the epoch ordering is reproducible.
        let mut rng2 = StdRng::seed_from_u64(7);
        assert_eq!(order, dense_batch_order(&lengths, &mut rng2));
    }

    #[test]
    fn num_params_counts_everything() {
        let lm = CausalLm::new(LmConfig::test(10));
        // tok 10*16 + pos 48*16 + block (norm 16*2 + 4*16*16 + gate/up 2*16*32 + down 32*16) + final 16
        let expect = 160 + 768 + (32 + 1024 + 1024 + 512) + 16;
        assert_eq!(lm.num_params(), expect);
    }
}
