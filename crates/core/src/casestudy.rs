//! Case-study instrumentation for Figures 5 and 6: generating item titles
//! from index prefixes, measuring how much each index level changes the
//! generated content, and producing related items from a single index.

use crate::lcrec::LcRec;
use lcrec_data::{Dataset, Seg};
use lcrec_tensor::linalg::cosine;
use lcrec_text::TextEncoder;

/// Generates the item title conditioned on only the first
/// `levels_used` index codes of `item` (Figure 5a). `levels_used = 0`
/// generates from the bare instruction.
pub fn title_from_prefix(model: &LcRec, item: u32, levels_used: usize) -> String {
    let codes = model.vocab().indices().of(item).to_vec();
    let prompt = [Seg::Text(
        "please tell me what the following item is called along with a brief description".into(),
    )];
    // Seg::Item renders a *full* index, so the partial prefix is spliced in
    // as raw index tokens.
    let mut tokens = model.render_prompt(&prompt);
    for (l, &c) in codes.iter().take(levels_used).enumerate() {
        tokens.push(model.vocab().index_token(l, c));
    }
    let eos = lcrec_text::token::EOS;
    let out = model.lm().greedy(&tokens, 24, |t| t == eos);
    model.vocab().decode(&out)
}

/// Figure 6: the proportion of generated-content change caused by each
/// index level, measured over `sample` items and normalized to sum to 1.
///
/// Change is measured as semantic distance between successive generations
/// (`1 − cosine` of text embeddings) rather than exact string difference:
/// at this model scale, surface wording fluctuates even when the semantics
/// have stabilized, and the paper's claim is about *content*. Level 1's
/// change is the distance from empty content (≡ 1).
pub fn level_change_proportions(model: &LcRec, ds: &Dataset, sample: usize) -> Vec<f32> {
    let h = model.vocab().indices().levels;
    let n = ds.num_items().min(sample);
    let mut enc = TextEncoder::new(32, 23);
    let mut changes = vec![0.0f32; h];
    for item in 0..n as u32 {
        let first = title_from_prefix(model, item, 1);
        let mut prev_emb = enc.encode(&first);
        changes[0] += 1.0; // establishing content from nothing
        for level in 2..=h {
            let cur = title_from_prefix(model, item, level);
            let cur_emb = enc.encode(&cur);
            let sim = cosine(&prev_emb, &cur_emb).clamp(-1.0, 1.0);
            changes[level - 1] += (1.0 - sim) / 2.0;
            prev_emb = cur_emb;
        }
    }
    let total: f32 = changes.iter().sum();
    if total > 0.0 {
        changes.iter_mut().for_each(|c| *c /= total);
    }
    changes
}

/// Figure 5b: the most related item **generated** from a source item's
/// indices (sequential prompt with a single-item history), versus the most
/// similar item by raw text-embedding cosine. The generated one reflects
/// joint language+collaborative semantics; the cosine one language only.
pub fn related_items(model: &LcRec, ds: &Dataset, source: u32) -> (Option<u32>, u32) {
    let segs = [
        Seg::Text("the user has interacted with the following items in chronological order".into()),
        Seg::Items(vec![source]),
        Seg::Text("recommend the next item for this user".into()),
    ];
    let generated = model
        .recommend_prompt(&segs, 5)
        .into_iter()
        .map(|h| h.item)
        .find(|&i| i != source);

    let mut enc = TextEncoder::new(32, 17);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    let emb = enc.encode_batch(texts.iter().map(String::as_str));
    let src = emb.row(source as usize).to_vec();
    let mut best = 0u32;
    let mut bs = f32::NEG_INFINITY;
    for i in 0..ds.num_items() as u32 {
        if i == source {
            continue;
        }
        let s = cosine(&src, emb.row(i as usize));
        if s > bs {
            bs = s;
            best = i;
        }
    }
    (generated, best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lcrec::LcRecConfig;
    use lcrec_data::DatasetConfig;
    use lcrec_rqvae::{build_indices, IndexerKind, RqVaeConfig};

    fn model() -> (Dataset, LcRec) {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut enc = TextEncoder::new(24, 3);
        let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
        let emb = enc.encode_batch(texts.iter().map(String::as_str));
        let mut rq = RqVaeConfig::small(24, ds.num_items());
        rq.epochs = 5;
        rq.levels = 3;
        rq.codebook_size = 8;
        rq.latent_dim = 8;
        rq.hidden = vec![16];
        let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
        let mut m = LcRec::build(&ds, indices, LcRecConfig::test());
        m.fit(&ds);
        (ds, m)
    }

    #[test]
    fn prefix_generation_is_deterministic_per_level() {
        let (_, m) = model();
        let a = title_from_prefix(&m, 0, 2);
        let b = title_from_prefix(&m, 0, 2);
        assert_eq!(a, b);
    }

    #[test]
    fn change_proportions_normalize_and_level1_dominates() {
        let (ds, m) = model();
        let p = level_change_proportions(&m, &ds, 10);
        assert_eq!(p.len(), 3);
        let sum: f32 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        // The first level always changes content, later levels at most as
        // often — the Figure-6 monotone-decrease shape.
        assert!(p[0] >= p[1] && p[0] >= p[2], "{p:?}");
    }

    #[test]
    fn related_items_exclude_source() {
        let (ds, m) = model();
        let (generated, textual) = related_items(&m, &ds, 2);
        assert_ne!(textual, 2);
        if let Some(gitem) = generated {
            assert_ne!(gitem, 2);
            assert!((gitem as usize) < ds.num_items());
        }
    }
}
