//! TIGER (Rajput et al., NeurIPS 2023) — the strongest generative baseline
//! in Table III. An encoder-decoder Transformer trained from scratch on
//! semantic-ID sequences only (no language): the encoder reads the
//! history's index tokens, the decoder generates the target item's codes
//! autoregressively with trie-constrained beam search.

use lcrec_data::Dataset;
use lcrec_eval::Ranker;
use lcrec_rqvae::{IndexTrie, ItemIndices};
use lcrec_tensor::nn::{Act, BlockConfig, Embedding, LayerNorm, Norm, TransformerBlock};
use lcrec_tensor::{AdamW, Graph, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// TIGER hyperparameters.
#[derive(Clone, Debug)]
pub struct TigerConfig {
    /// Model width.
    pub dim: usize,
    /// Encoder and decoder layers (each).
    pub layers: usize,
    /// Attention heads.
    pub heads: usize,
    /// Dropout.
    pub dropout: f32,
    /// History items kept.
    pub max_hist_items: usize,
    /// Learning rate.
    pub lr: f32,
    /// Epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Beam width.
    pub beam: usize,
    /// Seed.
    pub seed: u64,
}

impl TigerConfig {
    /// Defaults for the small presets.
    pub fn small() -> Self {
        TigerConfig { dim: 40, layers: 2, heads: 4, dropout: 0.1, max_hist_items: 8, lr: 1.5e-3, epochs: 20, batch: 48, beam: 20, seed: 31 }
    }

    /// Micro config for tests.
    pub fn test() -> Self {
        TigerConfig { dim: 16, layers: 1, heads: 2, dropout: 0.0, max_hist_items: 5, lr: 3e-3, epochs: 3, batch: 32, beam: 8, seed: 3 }
    }
}

/// The TIGER model. Vocabulary: `[PAD, BOS] ++ index tokens`.
#[derive(Debug)]
pub struct Tiger {
    cfg: TigerConfig,
    ps: ParamStore,
    emb: Embedding,
    enc_pos: Embedding,
    dec_pos: Embedding,
    encoder: Vec<TransformerBlock>,
    decoder: Vec<TransformerBlock>,
    enc_norm: LayerNorm,
    dec_norm: LayerNorm,
    indices: ItemIndices,
    trie: IndexTrie,
}

const BOS_T: u32 = 1;
const SPECIALS: u32 = 2;

impl Tiger {
    /// Builds an untrained TIGER over the given item indices.
    pub fn new(indices: ItemIndices, cfg: TigerConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let vocab = SPECIALS as usize + indices.vocab_tokens();
        let enc_len = cfg.max_hist_items * indices.levels;
        let bc = BlockConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 4,
            dropout: cfg.dropout,
            norm: Norm::Layer,
            act: Act::Relu,
        };
        let encoder =
            (0..cfg.layers).map(|l| TransformerBlock::new(&mut ps, &format!("enc{l}"), bc, &mut rng)).collect();
        let decoder = (0..cfg.layers)
            .map(|l| TransformerBlock::with_cross_attention(&mut ps, &format!("dec{l}"), bc, &mut rng))
            .collect();
        let trie = IndexTrie::build(&indices);
        Tiger {
            emb: Embedding::new(&mut ps, "emb", vocab, cfg.dim, &mut rng),
            enc_pos: Embedding::new(&mut ps, "enc_pos", enc_len.max(1), cfg.dim, &mut rng),
            dec_pos: Embedding::new(&mut ps, "dec_pos", indices.levels + 1, cfg.dim, &mut rng),
            enc_norm: LayerNorm::new(&mut ps, "enc_norm", cfg.dim),
            dec_norm: LayerNorm::new(&mut ps, "dec_norm", cfg.dim),
            encoder,
            decoder,
            cfg,
            ps,
            indices,
            trie,
        }
    }

    /// The index scheme in use.
    pub fn indices(&self) -> &ItemIndices {
        &self.indices
    }

    fn item_tokens(&self, item: u32) -> Vec<u32> {
        self.indices
            .of(item)
            .iter()
            .enumerate()
            .map(|(l, &c)| SPECIALS + self.indices.flat_token(l, c) as u32)
            .collect()
    }

    fn history_tokens(&self, history: &[u32]) -> Vec<u32> {
        let h = if history.len() > self.cfg.max_hist_items {
            &history[history.len() - self.cfg.max_hist_items..]
        } else {
            history
        };
        h.iter().flat_map(|&i| self.item_tokens(i)).collect()
    }

    /// Encoder pass over `[b, tm]` token rows.
    fn encode(&self, g: &mut Graph, tokens: &[u32], b: usize, tm: usize) -> Var {
        let x = self.emb.forward(g, &self.ps, tokens);
        let pos: Vec<u32> = (0..b).flat_map(|_| 0..tm as u32).collect();
        let p = self.enc_pos.forward(g, &self.ps, &pos);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        for blk in &self.encoder {
            x = blk.forward(g, &self.ps, x, b, tm, None, None);
        }
        self.enc_norm.forward(g, &self.ps, x)
    }

    /// Decoder pass: `dec_tokens` is `[b, td]` (BOS + codes so far), memory
    /// from the encoder. Returns logits `[b*td, vocab]`.
    fn decode(&self, g: &mut Graph, dec_tokens: &[u32], b: usize, td: usize, memory: Var, tm: usize) -> Var {
        let x = self.emb.forward(g, &self.ps, dec_tokens);
        let pos: Vec<u32> = (0..b).flat_map(|_| 0..td as u32).collect();
        let p = self.dec_pos.forward(g, &self.ps, &pos);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        let mask = crate::mask_cache(td);
        for blk in &self.decoder {
            x = blk.forward(g, &self.ps, x, b, td, Some(&mask), Some((memory, tm)));
        }
        let x = self.dec_norm.forward(g, &self.ps, x);
        let table = g.param(&self.ps, self.emb.table_id());
        g.matmul_nt(x, table)
    }

    /// Trains on (history → target codes) pairs from the dataset's training
    /// split with prefix augmentation. Returns per-epoch losses.
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let cfg = self.cfg.clone();
        let levels = self.indices.levels;
        let mut pairs: Vec<(Vec<u32>, u32)> = Vec::new();
        for u in 0..ds.num_users() {
            let seq = ds.train_seq(u);
            for end in 1..seq.len() {
                let start = end.saturating_sub(cfg.max_hist_items);
                pairs.push((seq[start..end].to_vec(), seq[end]));
            }
        }
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x7161);
        let mut opt = AdamW::new(cfg.lr);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.random_range(0..=i));
            }
            // Bucket by history length so encoder batches stay dense.
            let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
            for (i, (h, _)) in pairs.iter().enumerate() {
                by_len.entry(h.len()).or_default().push(i);
            }
            let mut sum = 0.0;
            let mut nb = 0;
            for (hlen, idxs) in by_len {
                for chunk in idxs.chunks(cfg.batch) {
                    let b = chunk.len();
                    let tm = hlen * levels;
                    let td = levels; // BOS + first H-1 codes predict H codes
                    let mut enc_tokens = Vec::with_capacity(b * tm);
                    let mut dec_tokens = Vec::with_capacity(b * td);
                    let mut targets = Vec::with_capacity(b * td);
                    for &i in chunk {
                        let (h, t) = &pairs[i];
                        enc_tokens.extend(self.history_tokens(h));
                        let codes = self.item_tokens(*t);
                        dec_tokens.push(BOS_T);
                        dec_tokens.extend(&codes[..levels - 1]);
                        targets.extend(&codes);
                    }
                    let mut g = Graph::new();
                    g.seed(cfg.seed ^ (epoch as u64) << 9);
                    let memory = self.encode(&mut g, &enc_tokens, b, tm);
                    let logits = self.decode(&mut g, &dec_tokens, b, td, memory, tm);
                    let loss = g.cross_entropy(logits, &targets, u32::MAX);
                    sum += g.value(loss).item();
                    nb += 1;
                    self.ps.zero_grads();
                    g.backward(loss, &mut self.ps);
                    self.ps.clip_grad_norm(1.0);
                    opt.step(&mut self.ps);
                }
            }
            losses.push(sum / nb.max(1) as f32);
        }
        losses
    }

    /// Trie-constrained beam search for one history → ranked items.
    pub fn recommend(&self, history: &[u32], beam: usize) -> Vec<(u32, f32)> {
        if history.is_empty() {
            return Vec::new();
        }
        let enc_tokens = self.history_tokens(history);
        let tm = enc_tokens.len();
        let levels = self.indices.levels;
        // Encoder runs once; its memory tensor is shared by all beams.
        let memory_val: Tensor = {
            let mut g = Graph::inference();
            let m = self.encode(&mut g, &enc_tokens, 1, tm);
            g.value(m).clone()
        };
        // Beams: (prefix codes, logprob).
        let mut beams: Vec<(Vec<u16>, f32)> = vec![(Vec::new(), 0.0)];
        for level in 0..levels {
            let td = level + 1;
            // Batch all beams through the decoder at once.
            let b = beams.len();
            let mut dec_tokens = Vec::with_capacity(b * td);
            for (prefix, _) in &beams {
                dec_tokens.push(BOS_T);
                for (l, &c) in prefix.iter().enumerate() {
                    dec_tokens.push(SPECIALS + self.indices.flat_token(l, c) as u32);
                }
            }
            let mut g = Graph::inference();
            let mut mem_rows = Vec::with_capacity(b * tm * self.cfg.dim);
            for _ in 0..b {
                mem_rows.extend_from_slice(memory_val.data());
            }
            let memory = g.constant(Tensor::new(&[b * tm, self.cfg.dim], mem_rows));
            let logits = self.decode(&mut g, &dec_tokens, b, td, memory, tm);
            let lv = g.value(logits);
            let vocab = lv.cols();
            let mut candidates: Vec<(usize, u16, f32)> = Vec::new();
            for (bi, (prefix, lp)) in beams.iter().enumerate() {
                let row = lv.row(bi * td + td - 1);
                let mx = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
                let z: f32 = row.iter().map(|&v| (v - mx).exp()).sum();
                let lz = z.ln() + mx;
                for code in self.trie.allowed(prefix) {
                    let tok = SPECIALS as usize + self.indices.flat_token(level, code);
                    debug_assert!(tok < vocab);
                    candidates.push((bi, code, lp + row[tok] - lz));
                }
            }
            if candidates.is_empty() {
                return Vec::new();
            }
            candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            candidates.truncate(beam);
            beams = candidates
                .into_iter()
                .map(|(bi, code, lp)| {
                    let mut prefix = beams[bi].0.clone();
                    prefix.push(code);
                    (prefix, lp)
                })
                .collect();
        }
        beams
            .into_iter()
            .filter_map(|(codes, lp)| self.trie.item_at(&codes).map(|i| (i, lp)))
            .collect()
    }
}

impl Ranker for Tiger {
    fn rank(&self, _user: usize, history: &[u32], k: usize) -> Vec<u32> {
        self.recommend(history, k.max(self.cfg.beam)).into_iter().take(k).map(|(i, _)| i).collect()
    }

    fn name(&self) -> String {
        "TIGER".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;
    use lcrec_rqvae::{build_indices, IndexerKind, RqVaeConfig};
    use lcrec_text::TextEncoder;

    fn setup() -> (Dataset, Tiger) {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut enc = TextEncoder::new(16, 5);
        let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
        let emb = enc.encode_batch(texts.iter().map(String::as_str));
        let mut rq = RqVaeConfig::small(16, ds.num_items());
        rq.epochs = 5;
        rq.levels = 3;
        rq.codebook_size = 8;
        rq.latent_dim = 8;
        rq.hidden = vec![16];
        let indices = build_indices(IndexerKind::LcRec, &emb, &rq);
        let t = Tiger::new(indices, TigerConfig::test());
        (ds, t)
    }

    #[test]
    fn tiger_trains_and_recommends_real_items() {
        let (ds, mut t) = setup();
        let losses = t.fit(&ds);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
        let (ctx, _) = ds.test_example(0);
        let recs = t.recommend(ctx, 8);
        assert!(!recs.is_empty());
        for (item, lp) in &recs {
            assert!((*item as usize) < ds.num_items());
            assert!(lp.is_finite());
        }
    }

    #[test]
    fn recommendations_are_unique_and_sorted() {
        let (ds, mut t) = setup();
        t.fit(&ds);
        let (ctx, _) = ds.test_example(2);
        let recs = t.recommend(ctx, 8);
        let mut items: Vec<u32> = recs.iter().map(|(i, _)| *i).collect();
        for w in recs.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        items.sort_unstable();
        let n = items.len();
        items.dedup();
        assert_eq!(items.len(), n);
    }

    #[test]
    fn empty_history_yields_nothing() {
        let (_, t) = setup();
        assert!(t.recommend(&[], 5).is_empty());
    }
}
