//! # lcrec-core
//!
//! The paper's primary contribution: **LC-Rec**, an LLM-based generative
//! recommender that integrates language and collaborative semantics via
//! learned item indices and multi-task alignment tuning — plus the
//! generative baselines it is compared against (TIGER, P5-CID), the
//! zero-shot language-only scorers of Table V, and the Figure-5/6 case
//! study instrumentation.

#![warn(missing_docs)]

pub mod beam;
pub mod casestudy;
pub mod lcrec;
pub mod lm;
pub mod p5cid;
pub mod snapshot;
pub mod tiger;
pub mod vocab;
pub mod zeroshot;

pub use beam::{
    constrained_beam_search, constrained_beam_search_graph, constrained_beam_search_with,
    multi_constrained_beam_search, multi_constrained_beam_search_scratch,
    multi_constrained_beam_search_with, Hypothesis,
};
pub use lcrec::{LcRec, LcRecConfig, LcRecRanker};
pub use lm::{
    dense_batch_order, train_lm, CausalLm, DecodeScratch, KvCache, LmConfig, LmTrainConfig,
};
pub use p5cid::{collaborative_indices, P5Cid, P5CidConfig};
pub use snapshot::{CatalogTrie, TrieSnapshot};
pub use tiger::{Tiger, TigerConfig};
pub use vocab::ExtendedVocab;
pub use zeroshot::TextSimilarityScorer;

use lcrec_tensor::Tensor;

/// A causal additive attention mask `[t, t]` (0 keep / −1e9 drop).
pub(crate) fn mask_cache(t: usize) -> Tensor {
    let mut m = Tensor::zeros(&[t, t]);
    for i in 0..t {
        for j in (i + 1)..t {
            m.data_mut()[i * t + j] = -1e9;
        }
    }
    m
}
