//! Copy-on-write catalog trie snapshots for online catalog evolution.
//!
//! The serving stack decodes against an immutable arena
//! [`IndexTrie`]; growing the catalog while the
//! fleet keeps answering requests therefore needs **snapshot semantics**:
//! in-flight batches must keep seeing the trie they started on while new
//! admissions see the grown one. [`CatalogTrie`] provides exactly that as
//! a *persistent* (append-only) trie with path copying: every insert
//! appends at most `levels + 1` fresh immutable nodes — the copied
//! root-to-leaf spine — and records a new root, while every unchanged
//! subtree is shared by node id with all earlier epochs. Old epochs are
//! bit-stable by construction because no node is ever mutated after it is
//! pushed (`tests/evolution.rs` pins this).
//!
//! A [`TrieSnapshot`] is a borrowed view of one epoch; its
//! [`materialize`](TrieSnapshot::materialize) rebuilds the canonical CSR
//! [`IndexTrie`] for that epoch — node-for-node identical to a full
//! rebuild from the union catalog — which is what the serving engines
//! borrow (the `Router::swap_catalog` path, see `docs/CATALOG.md`).

use lcrec_rqvae::{IndexError, IndexTrie, ItemIndices};
use std::collections::BTreeSet;

/// One immutable trie node: parallel ascending edge codes and child ids,
/// plus the bound item on full-depth leaves.
#[derive(Clone, Debug)]
struct Node {
    codes: Vec<u16>,
    children: Vec<u32>,
    item: Option<u32>,
}

impl Node {
    fn empty() -> Node {
        Node { codes: Vec::new(), children: Vec::new(), item: None }
    }
}

/// A copy-on-write prefix trie over semantic item IDs, with one root per
/// **epoch**: epoch 0 is the trie as built, and every successful
/// [`CatalogTrie::insert`] appends a new epoch whose root shares all
/// unchanged subtrees with the previous one. Old epochs stay valid and
/// bit-stable forever — the node arena is append-only.
///
/// Duplicate item ids and already-bound code paths are rejected with
/// typed [`IndexError`]s instead of silently shadowing the existing
/// binding (the regression `tests/evolution.rs` pins both).
///
/// # Examples
///
/// ```
/// use lcrec_core::CatalogTrie;
/// use lcrec_rqvae::{IndexTrie, ItemIndices};
///
/// let base = ItemIndices::new(vec![4, 4], vec![vec![0, 1], vec![2, 0]]);
/// let mut trie = CatalogTrie::from_indices(&base).expect("conflict-free");
/// assert_eq!(trie.epoch(), 0);
///
/// // Inserting a new item creates epoch 1; epoch 0 stays bit-stable.
/// let epoch = trie.insert(&[2, 3], 2).expect("free path");
/// assert_eq!(epoch, 1);
/// let old = trie.snapshot_at(0).expect("old epochs stay valid");
/// assert_eq!(old.item_at(&[2, 3]), None, "epoch 0 never sees the new item");
/// assert_eq!(trie.snapshot().item_at(&[2, 3]), Some(2));
///
/// // A materialized snapshot is node-for-node the full rebuild.
/// let union =
///     ItemIndices::new(vec![4, 4], vec![vec![0, 1], vec![2, 0], vec![2, 3]]);
/// assert_eq!(trie.materialize(), IndexTrie::build(&union));
/// ```
#[derive(Clone, Debug)]
pub struct CatalogTrie {
    levels: usize,
    /// Append-only node arena; entries are never mutated once pushed.
    nodes: Vec<Node>,
    /// Root node of each epoch, oldest first (never empty).
    roots: Vec<u32>,
    /// Item ids bound in any epoch (bindings are never removed).
    bound: BTreeSet<u32>,
}

impl CatalogTrie {
    /// An empty trie (epoch 0 holds no items) over `levels`-deep paths.
    pub fn new(levels: usize) -> CatalogTrie {
        CatalogTrie { levels, nodes: vec![Node::empty()], roots: vec![0], bound: BTreeSet::new() }
    }

    /// Builds epoch 0 from a whole catalog. Unlike
    /// [`IndexTrie::build`]'s silent first-insert-wins rule, a full-path
    /// conflict in `indices` is a typed [`IndexError::PathOccupied`].
    pub fn from_indices(indices: &ItemIndices) -> Result<CatalogTrie, IndexError> {
        let mut paths: Vec<(Vec<u16>, u32)> = indices
            .codes
            .iter()
            .enumerate()
            .map(|(item, codes)| (codes.clone(), item as u32))
            .collect();
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        for w in paths.windows(2) {
            if let [(pa, ia), (pb, _)] = w {
                if pa == pb {
                    return Err(IndexError::PathOccupied { codes: pa.clone(), bound: *ia });
                }
            }
        }
        let mut trie = CatalogTrie {
            levels: indices.levels,
            nodes: Vec::new(),
            roots: Vec::new(),
            bound: paths.iter().map(|p| p.1).collect(),
        };
        let root = trie.carve(0, &paths);
        trie.roots.push(root);
        Ok(trie)
    }

    /// Recursively carves sorted unique `paths` (all sharing their first
    /// `depth` codes) into one subtree; returns the subtree's node id.
    fn carve(&mut self, depth: usize, paths: &[(Vec<u16>, u32)]) -> u32 {
        if depth == self.levels {
            let item = paths.first().map(|p| p.1);
            self.nodes.push(Node { codes: Vec::new(), children: Vec::new(), item });
            return (self.nodes.len() - 1) as u32;
        }
        let mut codes = Vec::new();
        let mut children = Vec::new();
        let mut i = 0usize;
        while i < paths.len() {
            let code = paths.get(i).and_then(|p| p.0.get(depth)).copied().unwrap_or(0);
            let mut j = i + 1;
            while paths.get(j).and_then(|p| p.0.get(depth)).copied() == Some(code) {
                j += 1;
            }
            let child = self.carve(depth + 1, paths.get(i..j).unwrap_or(&[]));
            codes.push(code);
            children.push(child);
            i = j;
        }
        self.nodes.push(Node { codes, children, item: None });
        (self.nodes.len() - 1) as u32
    }

    /// Number of index levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The latest epoch (0-based; one new epoch per successful insert).
    pub fn epoch(&self) -> u64 {
        (self.roots.len() - 1) as u64
    }

    /// Number of items bound across all epochs.
    pub fn items_len(&self) -> usize {
        self.bound.len()
    }

    /// Total arena size — grows by at most `levels + 1` nodes per insert,
    /// which is what makes the structural sharing visible in benches.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Inserts one `codes → item` binding by path copying: the new epoch's
    /// root-to-leaf spine is freshly appended, everything else is shared
    /// with the previous epoch. Returns the new epoch number. Fails with
    /// [`IndexError::LevelMismatch`] on a wrong path depth,
    /// [`IndexError::DuplicateItem`] when `item` is already bound and
    /// [`IndexError::PathOccupied`] when another item owns the path —
    /// never silently shadowing an existing binding.
    pub fn insert(&mut self, codes: &[u16], item: u32) -> Result<u64, IndexError> {
        if codes.len() != self.levels {
            return Err(IndexError::LevelMismatch { expected: self.levels, got: codes.len() });
        }
        if self.bound.contains(&item) {
            return Err(IndexError::DuplicateItem { item });
        }
        // Walk the current root down, recording the existing node (if any)
        // at every depth; the walk also detects an occupied full path.
        let mut chain: Vec<Option<u32>> = Vec::with_capacity(self.levels + 1);
        let mut cur = self.roots.last().copied();
        chain.push(cur);
        for &c in codes {
            cur = cur.and_then(|n| self.child_of(n, c));
            chain.push(cur);
        }
        if let Some(leaf) = chain.last().copied().flatten() {
            // Full-depth nodes exist only when an item is bound to them.
            let bound = self.node(leaf).and_then(|n| n.item).unwrap_or(item);
            return Err(IndexError::PathOccupied { codes: codes.to_vec(), bound });
        }
        // Copy the spine bottom-up: fresh leaf, then one copied ancestor
        // per level with the edge toward the fresh child swapped in.
        self.nodes.push(Node { codes: Vec::new(), children: Vec::new(), item: Some(item) });
        let mut child_id = (self.nodes.len() - 1) as u32;
        for (depth, &code) in codes.iter().enumerate().rev() {
            let mut node = match chain.get(depth).copied().flatten().and_then(|n| self.node(n)) {
                Some(n) => n.clone(),
                None => Node::empty(),
            };
            match node.codes.binary_search(&code) {
                Ok(pos) => {
                    if let Some(slot) = node.children.get_mut(pos) {
                        *slot = child_id;
                    }
                }
                Err(pos) => {
                    node.codes.insert(pos, code);
                    node.children.insert(pos, child_id);
                }
            }
            self.nodes.push(node);
            child_id = (self.nodes.len() - 1) as u32;
        }
        self.roots.push(child_id);
        self.bound.insert(item);
        lcrec_obs::counter_add("catalog.inserts", 1);
        Ok(self.epoch())
    }

    /// A view of the latest epoch.
    pub fn snapshot(&self) -> TrieSnapshot<'_> {
        TrieSnapshot {
            trie: self,
            epoch: self.epoch(),
            root: self.roots.last().copied().unwrap_or(0),
        }
    }

    /// A view of an arbitrary epoch; `None` once `epoch` exceeds
    /// [`CatalogTrie::epoch`]. Old epochs stay valid forever.
    pub fn snapshot_at(&self, epoch: u64) -> Option<TrieSnapshot<'_>> {
        let root = self.roots.get(epoch as usize).copied()?;
        Some(TrieSnapshot { trie: self, epoch, root })
    }

    /// [`TrieSnapshot::materialize`] of the latest epoch.
    pub fn materialize(&self) -> IndexTrie {
        self.snapshot().materialize()
    }

    /// [`TrieSnapshot::materialize`] of an arbitrary epoch.
    pub fn materialize_at(&self, epoch: u64) -> Option<IndexTrie> {
        Some(self.snapshot_at(epoch)?.materialize())
    }

    fn node(&self, id: u32) -> Option<&Node> {
        self.nodes.get(id as usize)
    }

    /// The child of `id` along edge `code`, if present.
    fn child_of(&self, id: u32, code: u16) -> Option<u32> {
        let n = self.node(id)?;
        let pos = n.codes.binary_search(&code).ok()?;
        n.children.get(pos).copied()
    }
}

/// A borrowed, immutable view of one [`CatalogTrie`] epoch. All lookups
/// resolve against that epoch's root, so a snapshot taken before an
/// insert keeps answering exactly as it did — the contract the serving
/// layer's drain-on-old-snapshot hot swap relies on.
#[derive(Clone, Copy, Debug)]
pub struct TrieSnapshot<'a> {
    trie: &'a CatalogTrie,
    epoch: u64,
    root: u32,
}

impl<'a> TrieSnapshot<'a> {
    /// The epoch this snapshot views.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Number of index levels.
    pub fn levels(&self) -> usize {
        self.trie.levels
    }

    /// The node reached by `prefix` under this epoch's root.
    fn node_at(&self, prefix: &[u16]) -> Option<&'a Node> {
        let mut id = self.root;
        for &c in prefix {
            id = self.trie.child_of(id, c)?;
        }
        self.trie.node(id)
    }

    /// Legal next codes after `prefix`, ascending, as a borrowed slice
    /// (empty if the prefix is illegal or complete) — the same contract
    /// as [`IndexTrie::allowed_slice`].
    pub fn allowed_slice(&self, prefix: &[u16]) -> &'a [u16] {
        self.node_at(prefix).map(|n| n.codes.as_slice()).unwrap_or(&[])
    }

    /// Legal next codes after `prefix` as an owned vector.
    pub fn allowed(&self, prefix: &[u16]) -> Vec<u16> {
        self.allowed_slice(prefix).to_vec()
    }

    /// The item whose full index is `codes` in this epoch, if any.
    pub fn item_at(&self, codes: &[u16]) -> Option<u32> {
        if codes.len() != self.trie.levels {
            return None;
        }
        self.node_at(codes).and_then(|n| n.item)
    }

    /// Number of items bound in this epoch (a full DFS walk — fine for
    /// diagnostics, not a hot path).
    pub fn items_len(&self) -> usize {
        let mut count = 0usize;
        let mut stack = vec![(self.root, 0usize)];
        while let Some((id, depth)) = stack.pop() {
            let Some(node) = self.trie.node(id) else { continue };
            if depth == self.trie.levels {
                count += usize::from(node.item.is_some());
                continue;
            }
            for &child in &node.children {
                stack.push((child, depth + 1));
            }
        }
        count
    }

    /// Canonical text serialization, **byte-identical** to
    /// [`IndexTrie::to_text`] on the same contents: a `trie levels=L`
    /// header followed by one `c0.c1.….cL-1=item` line per stored item in
    /// ascending depth-first order.
    pub fn to_text(&self) -> String {
        let mut out = format!("trie levels={}\n", self.trie.levels);
        // Explicit DFS stack; edges are stored ascending, so push them
        // descending for the ascending code to pop first.
        let mut stack: Vec<(u32, Vec<u16>)> = vec![(self.root, Vec::new())];
        while let Some((id, path)) = stack.pop() {
            let Some(node) = self.trie.node(id) else { continue };
            if path.len() == self.trie.levels {
                if let Some(item) = node.item {
                    let codes: Vec<String> = path.iter().map(|c| c.to_string()).collect();
                    out.push_str(&format!("{}={}\n", codes.join("."), item));
                }
                continue;
            }
            for (&c, &child) in node.codes.iter().zip(&node.children).rev() {
                let mut next = path.clone();
                next.push(c);
                stack.push((child, next));
            }
        }
        out
    }

    /// Rebuilds this epoch as a canonical CSR [`IndexTrie`] — node-for-node
    /// identical to a full rebuild from the epoch's item set, which is the
    /// differential contract `tests/evolution.rs` pins. The serving
    /// engines borrow the materialized trie.
    pub fn materialize(&self) -> IndexTrie {
        IndexTrie::from_text(&self.to_text())
            .expect("TrieSnapshot::to_text emits IndexTrie::from_text's grammar by construction") // lint: allow(panic, reason = "the serializer and parser are a round-trip pair over the same canonical grammar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> ItemIndices {
        ItemIndices::new(
            vec![4, 4, 4],
            vec![vec![0, 1, 2], vec![0, 1, 3], vec![0, 2, 0], vec![3, 0, 0]],
        )
    }

    #[test]
    fn epoch_zero_matches_the_csr_build() {
        let idx = base();
        let trie = CatalogTrie::from_indices(&idx).expect("conflict-free");
        assert_eq!(trie.materialize(), IndexTrie::build(&idx));
        assert_eq!(trie.snapshot().to_text(), IndexTrie::build(&idx).to_text());
        assert_eq!(trie.epoch(), 0);
        assert_eq!(trie.items_len(), 4);
    }

    #[test]
    fn inserts_share_unchanged_subtrees() {
        let mut trie = CatalogTrie::from_indices(&base()).expect("conflict-free");
        let before = trie.num_nodes();
        trie.insert(&[0, 1, 0], 4).expect("free path");
        // Path copying appends at most levels + 1 nodes (here: a new leaf
        // plus copies of the three spine nodes).
        assert!(trie.num_nodes() <= before + 4, "insert copied too much");
        // The untouched [3, 0, 0] subtree is shared: both epochs resolve it.
        assert_eq!(trie.snapshot_at(0).and_then(|s| s.item_at(&[3, 0, 0])), Some(3));
        assert_eq!(trie.snapshot().item_at(&[3, 0, 0]), Some(3));
    }

    #[test]
    fn old_snapshots_stay_bit_stable() {
        let mut trie = CatalogTrie::from_indices(&base()).expect("conflict-free");
        let text0 = trie.snapshot().to_text();
        trie.insert(&[1, 1, 1], 4).expect("free path");
        trie.insert(&[2, 2, 2], 5).expect("free path");
        let old = trie.snapshot_at(0).expect("epoch 0 remains");
        assert_eq!(old.to_text(), text0, "epoch 0 bytes changed after inserts");
        assert_eq!(old.item_at(&[1, 1, 1]), None);
        assert_eq!(trie.snapshot().item_at(&[2, 2, 2]), Some(5));
        assert_eq!(trie.epoch(), 2);
    }

    #[test]
    fn duplicate_item_and_occupied_path_are_typed_errors() {
        let mut trie = CatalogTrie::from_indices(&base()).expect("conflict-free");
        assert_eq!(trie.insert(&[1, 1, 1], 2), Err(IndexError::DuplicateItem { item: 2 }));
        assert_eq!(
            trie.insert(&[0, 1, 2], 9),
            Err(IndexError::PathOccupied { codes: vec![0, 1, 2], bound: 0 })
        );
        assert_eq!(
            trie.insert(&[0, 1], 9),
            Err(IndexError::LevelMismatch { expected: 3, got: 2 })
        );
        // Failed inserts create no epoch and bind nothing.
        assert_eq!(trie.epoch(), 0);
        assert_eq!(trie.items_len(), 4);
    }

    #[test]
    fn empty_trie_grows_from_nothing() {
        let mut trie = CatalogTrie::new(2);
        assert_eq!(trie.snapshot().allowed_slice(&[]), &[] as &[u16]);
        trie.insert(&[1, 0], 0).expect("free path");
        assert_eq!(trie.snapshot().allowed(&[]), vec![1]);
        assert_eq!(trie.snapshot().item_at(&[1, 0]), Some(0));
        assert_eq!(trie.snapshot_at(0).map(|s| s.items_len()), Some(0));
    }
}
