//! P5-CID (Hua et al., SIGIR-AP 2023): P5's sequential task with
//! **collaborative indexing** — item indices derived from interaction
//! co-occurrence (not text), used by a generative LM that maps index
//! sequences to target indices. Implemented here as hierarchical k-means
//! over co-occurrence embeddings feeding the same causal-LM substrate as
//! LC-Rec, trained only on the sequential task with a minimal prompt.

use crate::beam::constrained_beam_search;
use crate::lm::{train_lm, CausalLm, LmConfig, LmExample, LmTrainConfig};
use crate::vocab::ExtendedVocab;
use lcrec_data::{Dataset, Seg};
use lcrec_eval::Ranker;
use lcrec_rqvae::kmeans::kmeans;
use lcrec_rqvae::{IndexTrie, ItemIndices};
use lcrec_tensor::Tensor;
use lcrec_text::Vocab;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Builds collaborative item indices: items are embedded by their
/// co-occurrence pattern (within a ±2 window, randomly projected to
/// `dim`), then recursively clustered with k-means into a `levels`-deep
/// tree of branching `k`; residual conflicts receive a suffix level, as
/// in the original collaborative-indexing scheme.
pub fn collaborative_indices(
    ds: &Dataset,
    levels: usize,
    k: usize,
    dim: usize,
    seed: u64,
) -> ItemIndices {
    let n = ds.num_items();
    let mut rng = StdRng::seed_from_u64(seed);
    // Random projection of co-occurrence rows: emb[i] += proj[j] whenever
    // i and j co-occur nearby (streaming, never materializing n×n).
    let proj: Vec<Vec<f32>> = (0..n)
        .map(|_| {
            let v = lcrec_tensor::init::normal(&[dim], 1.0, &mut rng);
            v.into_data()
        })
        .collect();
    let mut emb = vec![0.0f32; n * dim];
    for s in &ds.sequences {
        for (a, &ia) in s.iter().enumerate() {
            for &ib in &s[a + 1..(a + 3).min(s.len())] {
                if ia == ib {
                    continue;
                }
                for d in 0..dim {
                    emb[ia as usize * dim + d] += proj[ib as usize][d];
                    emb[ib as usize * dim + d] += proj[ia as usize][d];
                }
            }
        }
    }
    let mut embt = Tensor::new(&[n, dim], emb);
    lcrec_tensor::linalg::l2_normalize_rows(&mut embt);

    // Recursive k-means tree.
    let mut codes = vec![vec![0u16; levels]; n];
    let mut groups: Vec<Vec<usize>> = vec![(0..n).collect()];
    for level in 0..levels {
        let mut next = Vec::new();
        for group in groups {
            if group.is_empty() {
                continue;
            }
            let mut rows = Vec::with_capacity(group.len() * dim);
            for &i in &group {
                rows.extend_from_slice(embt.row(i));
            }
            let gx = Tensor::new(&[group.len(), dim], rows);
            let centers = kmeans(&gx, k.min(group.len().max(1)), 10, &mut rng);
            let mut sub: Vec<Vec<usize>> = vec![Vec::new(); k];
            for (slot, &i) in group.iter().enumerate() {
                let mut best = 0;
                let mut bd = f32::INFINITY;
                for c in 0..centers.rows() {
                    let d = lcrec_tensor::linalg::sq_dist(gx.row(slot), centers.row(c));
                    if d < bd {
                        bd = d;
                        best = c;
                    }
                }
                codes[i][level] = best as u16;
                sub[best].push(i);
            }
            next.extend(sub);
        }
        groups = next;
    }
    // Suffix level for uniqueness (the P5-CID conflict strategy).
    let mut by_full: std::collections::HashMap<Vec<u16>, usize> = Default::default();
    let mut suffix = vec![0u16; n];
    for i in 0..n {
        let e = by_full.entry(codes[i].clone()).or_insert(0);
        suffix[i] = *e as u16;
        *e += 1;
    }
    let max_suffix = suffix.iter().copied().max().unwrap_or(0) as usize + 1;
    let mut sizes = vec![k; levels];
    sizes.push(max_suffix);
    let full: Vec<Vec<u16>> = codes
        .into_iter()
        .enumerate()
        .map(|(i, mut c)| {
            c.push(suffix[i]);
            c
        })
        .collect();
    ItemIndices::new(sizes, full)
}

/// P5-CID configuration.
#[derive(Clone, Debug)]
pub struct P5CidConfig {
    /// Model width.
    pub dim: usize,
    /// Layers.
    pub layers: usize,
    /// Heads.
    pub heads: usize,
    /// Max history items.
    pub max_hist_items: usize,
    /// Training settings.
    pub train: LmTrainConfig,
    /// Beam width.
    pub beam: usize,
    /// Tree depth (before the suffix level).
    pub levels: usize,
    /// Branching factor.
    pub branch: usize,
    /// Seed.
    pub seed: u64,
}

impl P5CidConfig {
    /// Defaults for the small presets.
    pub fn small() -> Self {
        P5CidConfig {
            dim: 40,
            layers: 2,
            heads: 4,
            max_hist_items: 8,
            train: LmTrainConfig { lr: 1.5e-3, epochs: 12, batch: 32, warmup: 20, max_steps: None, seed: 41 },
            beam: 20,
            levels: 3,
            branch: 12,
            seed: 41,
        }
    }

    /// Micro config for tests.
    pub fn test() -> Self {
        let mut c = Self::small();
        c.dim = 16;
        c.layers = 1;
        c.heads = 2;
        c.branch = 6;
        c.train = LmTrainConfig { lr: 3e-3, epochs: 3, batch: 32, warmup: 4, max_steps: Some(50), seed: 2 };
        c.beam = 8;
        c
    }
}

/// The P5-CID model.
#[derive(Debug)]
pub struct P5Cid {
    cfg: P5CidConfig,
    lm: CausalLm,
    vocab: ExtendedVocab,
    trie: IndexTrie,
}

impl P5Cid {
    /// Builds the model (derives collaborative indices from the dataset).
    pub fn build(ds: &Dataset, cfg: P5CidConfig) -> Self {
        let indices = collaborative_indices(ds, cfg.levels, cfg.branch, 24, cfg.seed);
        // Minimal prompt vocabulary: P5's sequential prompt is a short fixed
        // phrase around the index sequence.
        let base = Vocab::build(["user history predict next item"], 1);
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm_cfg = LmConfig {
            vocab: vocab.len(),
            dim: cfg.dim,
            layers: cfg.layers,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 2,
            max_seq: 8 + (cfg.max_hist_items + 1) * (cfg.levels + 1) + 4,
            dropout: 0.1,
            seed: cfg.seed,
        };
        P5Cid { cfg, lm: CausalLm::new(lm_cfg), vocab, trie }
    }

    /// The collaborative indices.
    pub fn indices(&self) -> &ItemIndices {
        self.vocab.indices()
    }

    fn example(&self, hist: &[u32], target: u32) -> LmExample {
        let h = if hist.len() > self.cfg.max_hist_items {
            &hist[hist.len() - self.cfg.max_hist_items..]
        } else {
            hist
        };
        let prompt = [
            Seg::Text("user history".into()),
            Seg::Items(h.to_vec()),
            Seg::Text("predict next item".into()),
        ];
        self.vocab.render_example(&prompt, &[Seg::Item(target)])
    }

    /// Trains on the sequential task with prefix augmentation.
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let mut examples = Vec::new();
        for u in 0..ds.num_users() {
            let seq = ds.train_seq(u);
            for end in 1..seq.len() {
                examples.push(self.example(&seq[..end], seq[end]));
            }
        }
        let cfg = self.cfg.train.clone();
        train_lm(&mut self.lm, &examples, &cfg)
    }

    /// Constrained beam search for a history.
    pub fn recommend(&self, history: &[u32], beam: usize) -> Vec<(u32, f32)> {
        let (tokens, plen) = self.example(history, 0);
        let prompt = &tokens[..plen];
        constrained_beam_search(&self.lm, &self.vocab, &self.trie, prompt, beam)
            .into_iter()
            .map(|h| (h.item, h.logprob))
            .collect()
    }
}

impl Ranker for P5Cid {
    fn rank(&self, _user: usize, history: &[u32], k: usize) -> Vec<u32> {
        self.recommend(history, k.max(self.cfg.beam)).into_iter().take(k).map(|(i, _)| i).collect()
    }

    fn name(&self) -> String {
        "P5-CID".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn collaborative_indices_are_unique_and_structured() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let idx = collaborative_indices(&ds, 2, 4, 12, 1);
        assert!(idx.is_unique());
        assert_eq!(idx.levels, 3, "suffix level appended");
        // Co-occurring items should share prefixes more than random pairs:
        // level-1 sharing must be far above 1/k.
        assert!(idx.prefix_sharing(1) > 0.1);
    }

    #[test]
    fn p5cid_trains_and_recommends() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = P5Cid::build(&ds, P5CidConfig::test());
        let losses = m.fit(&ds);
        assert!(losses.last().expect("epochs") <= &losses[0], "{losses:?}");
        let (ctx, _) = ds.test_example(0);
        let recs = m.recommend(ctx, 8);
        assert!(!recs.is_empty());
        assert!(recs.iter().all(|(i, _)| (*i as usize) < ds.num_items()));
    }
}
