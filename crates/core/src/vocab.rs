//! The extended vocabulary: base word tokens plus the learned item-index
//! tokens, appended exactly as the paper adds OOV tokens to the LLaMA
//! tokenizer ("all tokens related to item indices are appended to the
//! tokenizer", §IV-A4).

use lcrec_data::Seg;
use lcrec_rqvae::ItemIndices;
use lcrec_text::token::{BOS, EOS, PAD};
use lcrec_text::Vocab;

/// Word vocabulary + index-token block.
#[derive(Debug)]
pub struct ExtendedVocab {
    base: Vocab,
    indices: ItemIndices,
}

impl ExtendedVocab {
    /// Combines a word vocabulary with learned item indices.
    pub fn new(base: Vocab, indices: ItemIndices) -> Self {
        ExtendedVocab { base, indices }
    }

    /// Total vocabulary size (words + specials + index tokens).
    pub fn len(&self) -> usize {
        self.base.len() + self.indices.vocab_tokens()
    }

    /// True if there are no word tokens beyond specials and no index tokens.
    pub fn is_empty(&self) -> bool {
        self.base.is_empty() && self.indices.vocab_tokens() == 0
    }

    /// The underlying word vocabulary.
    pub fn base(&self) -> &Vocab {
        &self.base
    }

    /// The item indices this vocabulary embeds.
    pub fn indices(&self) -> &ItemIndices {
        &self.indices
    }

    /// First token id of the index block.
    pub fn index_base(&self) -> u32 {
        self.base.len() as u32
    }

    /// The token id of `(level, code)`.
    pub fn index_token(&self, level: usize, code: u16) -> u32 {
        self.index_base() + self.indices.flat_token(level, code) as u32
    }

    /// Inverse of [`ExtendedVocab::index_token`]: which (level, code) a
    /// token id denotes, if it is an index token.
    pub fn token_index(&self, token: u32) -> Option<(usize, u16)> {
        let off = token.checked_sub(self.index_base())? as usize;
        if off >= self.indices.vocab_tokens() {
            return None;
        }
        let mut level = 0;
        let mut rest = off;
        while rest >= self.indices.codebook_sizes[level] {
            rest -= self.indices.codebook_sizes[level];
            level += 1;
        }
        Some((level, rest as u16))
    }

    /// Whether `token` is an item-index token.
    pub fn is_index_token(&self, token: u32) -> bool {
        self.token_index(token).is_some()
    }

    /// The index-token sequence of an item.
    pub fn item_tokens(&self, item: u32) -> Vec<u32> {
        self.indices
            .of(item)
            .iter()
            .enumerate()
            .map(|(l, &c)| self.index_token(l, c))
            .collect()
    }

    /// Renders instruction segments to token ids (no BOS/EOS added).
    pub fn render(&self, segs: &[Seg]) -> Vec<u32> {
        let mut out = Vec::new();
        for seg in segs {
            match seg {
                Seg::Text(t) => out.extend(self.base.encode(t)),
                Seg::Item(i) => out.extend(self.item_tokens(*i)),
                Seg::Items(items) => {
                    for &i in items {
                        out.extend(self.item_tokens(i));
                    }
                }
            }
        }
        out
    }

    /// Full example rendering: `BOS prompt … response EOS`, returning
    /// `(tokens, prompt_len)` where the first `prompt_len` positions are
    /// conditioning-only (no loss), per Eqn. (7).
    pub fn render_example(&self, prompt: &[Seg], response: &[Seg]) -> (Vec<u32>, usize) {
        let mut tokens = vec![BOS];
        tokens.extend(self.render(prompt));
        let prompt_len = tokens.len();
        tokens.extend(self.render(response));
        tokens.push(EOS);
        (tokens, prompt_len)
    }

    /// Decodes token ids to text, rendering index tokens in the paper's
    /// `<a_12>` notation and skipping PAD/BOS/EOS.
    pub fn decode(&self, tokens: &[u32]) -> String {
        let letters = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
        let mut out = String::new();
        let mut prev_was_index = false;
        for &t in tokens {
            if t == PAD || t == BOS || t == EOS {
                continue;
            }
            if let Some((level, code)) = self.token_index(t) {
                // Index tokens glue to each other but not to words.
                if !out.is_empty() && !prev_was_index {
                    out.push(' ');
                }
                out.push_str(&format!("<{}_{}>", letters[level % letters.len()], code));
                prev_was_index = true;
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(self.base.word(t));
                prev_was_index = false;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ExtendedVocab {
        let base = Vocab::build(["recommend the next item please"], 1);
        let indices = ItemIndices::new(
            vec![4, 4],
            vec![vec![0, 1], vec![2, 3], vec![1, 0]],
        );
        ExtendedVocab::new(base, indices)
    }

    #[test]
    fn layout_is_contiguous() {
        let v = sample();
        assert_eq!(v.len(), v.base().len() + 8);
        assert_eq!(v.index_token(0, 0), v.index_base());
        assert_eq!(v.index_token(1, 0), v.index_base() + 4);
    }

    #[test]
    fn token_index_round_trips() {
        let v = sample();
        for level in 0..2 {
            for code in 0..4u16 {
                let t = v.index_token(level, code);
                assert_eq!(v.token_index(t), Some((level, code)));
            }
        }
        assert_eq!(v.token_index(0), None, "PAD is not an index token");
        assert_eq!(v.token_index(v.index_base() + 8), None, "past the block");
    }

    #[test]
    fn item_tokens_follow_codes() {
        let v = sample();
        let t = v.item_tokens(1);
        assert_eq!(t, vec![v.index_token(0, 2), v.index_token(1, 3)]);
    }

    #[test]
    fn render_example_marks_prompt_region() {
        let v = sample();
        let (tokens, plen) = v.render_example(
            &[Seg::Text("recommend the next item".into()), Seg::Items(vec![0, 2])],
            &[Seg::Item(1)],
        );
        assert_eq!(tokens[0], BOS);
        assert_eq!(*tokens.last().expect("non-empty"), EOS);
        // BOS + 4 words + 2 items × 2 tokens = 9 prompt positions.
        assert_eq!(plen, 9);
        assert_eq!(tokens.len(), plen + 2 + 1);
    }

    #[test]
    fn decode_uses_paper_notation() {
        let v = sample();
        let (tokens, _) = v.render_example(&[Seg::Text("recommend".into())], &[Seg::Item(0)]);
        let s = v.decode(&tokens);
        assert_eq!(s, "recommend <a_0><b_1>");
    }
}
