//! Trie-constrained beam search over item-index tokens (paper §III-D2).
//!
//! Starting from a prefilled prompt cache, the decoder expands `H` levels.
//! At each level only codes that extend a real item prefix are legal
//! ("probabilities of tokens that may result in illegal item indices will
//! be assigned 0"); each surviving beam therefore maps to an actual item.
//! Beams share the prompt's KV cache by cloning, which is cheap at these
//! model sizes and exactly reproduces the paper's KV-cache optimization.
//!
//! Both per-level phases are data-parallel over an [`lcrec_par::Pool`]:
//! candidate scoring fans out over the surviving beams and the transformer
//! `advance` step fans out over the pruned candidates. Every fan-out
//! reassembles its results in input order, so parallel and serial runs
//! return bit-identical hypotheses (see DESIGN.md "Threading model").

use crate::lm::{CausalLm, KvCache};
use crate::vocab::ExtendedVocab;
use lcrec_par::Pool;
use lcrec_rqvae::IndexTrie;

/// One completed hypothesis.
#[derive(Clone, Debug)]
pub struct Hypothesis {
    /// The decoded item.
    pub item: u32,
    /// Sum of token log-probabilities.
    pub logprob: f32,
}

struct Beam {
    cache: KvCache,
    logits: Vec<f32>,
    prefix: Vec<u16>,
    logprob: f32,
}

/// Runs constrained beam search and returns up to `beam_size` items ranked
/// by log-probability. `prompt` must be non-empty. Parallelism comes from
/// the ambient [`Pool::from_env`] (`LCREC_THREADS`); see
/// [`constrained_beam_search_with`] for an explicit pool.
pub fn constrained_beam_search(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompt: &[u32],
    beam_size: usize,
) -> Vec<Hypothesis> {
    constrained_beam_search_with(&Pool::from_env(), lm, vocab, trie, prompt, beam_size)
}

/// [`constrained_beam_search`] with an explicit thread pool. Output is
/// bit-identical (item ids **and** log-probabilities) at every thread
/// count: candidate lists are flattened in beam order, the pruning sort is
/// stable, and per-candidate `advance` results are reassembled in candidate
/// order, so no first-come-first-served effect can leak into scores.
pub fn constrained_beam_search_with(
    pool: &Pool,
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompt: &[u32],
    beam_size: usize,
) -> Vec<Hypothesis> {
    assert!(beam_size > 0);
    let obs_on = lcrec_obs::enabled();
    let _span = lcrec_obs::span("beam.decode");
    let mut cache = lm.new_cache();
    let logits = lm.prefill(&mut cache, prompt);
    let mut beams =
        vec![Beam { cache, logits, prefix: Vec::new(), logprob: 0.0 }];
    for _level in 0..trie.levels() {
        if obs_on {
            lcrec_obs::counter_add("beam.trie_visits", beams.len() as u64);
        }
        let score_watch = lcrec_obs::stopwatch();
        // Phase 1 — candidate scoring, parallel over surviving beams.
        // Each beam's log-softmax over the full vocabulary is restricted to
        // legal codes (illegal tokens get probability 0).
        let per_beam: Vec<Vec<(usize, u16, f32)>> = pool.map(&beams, |bi, beam| {
            let allowed = trie.allowed(&beam.prefix);
            if allowed.is_empty() {
                return Vec::new();
            }
            let level = beam.prefix.len();
            let mx = beam.logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
            let z: f32 = beam.logits.iter().map(|&v| (v - mx).exp()).sum();
            let lz = z.ln() + mx;
            allowed
                .iter()
                .map(|&code| {
                    let tok = vocab.index_token(level, code);
                    (bi, code, beam.logprob + beam.logits[tok as usize] - lz)
                })
                .collect()
        });
        // (beam, code, logprob), flattened in beam order exactly as the
        // serial double loop would produce them.
        let mut candidates: Vec<(usize, u16, f32)> =
            per_beam.into_iter().flatten().collect();
        score_watch.stop("beam.score_s");
        if candidates.is_empty() {
            return Vec::new();
        }
        if obs_on {
            lcrec_obs::counter_add("beam.expansions", candidates.len() as u64);
            lcrec_obs::hist_record("beam.candidates_per_level", candidates.len() as f64);
        }
        candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
        candidates.truncate(beam_size);
        if obs_on {
            lcrec_obs::counter_add("beam.cache_advances", candidates.len() as u64);
        }
        let advance_watch = lcrec_obs::stopwatch();
        // Phase 2 — expansion, parallel over pruned candidates: each clones
        // its source KV cache and runs one transformer step.
        beams = pool.map(&candidates, |_, &(bi, code, logprob)| {
            let src = &beams[bi];
            let mut cache = src.cache.clone();
            let level = src.prefix.len();
            let tok = vocab.index_token(level, code);
            let logits = lm.advance(&mut cache, tok);
            let mut prefix = src.prefix.clone();
            prefix.push(code);
            Beam { cache, logits, prefix, logprob }
        });
        advance_watch.stop("beam.advance_s");
    }
    let mut out: Vec<Hypothesis> = beams
        .into_iter()
        .filter_map(|b| trie.item_at(&b.prefix).map(|item| Hypothesis { item, logprob: b.logprob }))
        .collect();
    out.sort_by(|a, b| b.logprob.partial_cmp(&a.logprob).unwrap_or(std::cmp::Ordering::Equal));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::LmConfig;
    use lcrec_rqvae::ItemIndices;
    use lcrec_text::Vocab;

    fn setup() -> (CausalLm, ExtendedVocab, IndexTrie) {
        let base = Vocab::build(["recommend something"], 1);
        let indices = ItemIndices::new(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
        );
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm = CausalLm::new(LmConfig::test(vocab.len()));
        (lm, vocab, trie)
    }

    #[test]
    fn all_results_are_real_items() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend something".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        assert_eq!(hyps.len(), 4, "beam must fill with the 4 existing items");
        let mut items: Vec<u32> = hyps.iter().map(|h| h.item).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 4, "no duplicates across beams");
    }

    #[test]
    fn results_are_sorted_by_logprob() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        for w in hyps.windows(2) {
            assert!(w[0].logprob >= w[1].logprob);
        }
        // Log-probabilities of a 2-level decode are sums of two log-probs.
        assert!(hyps.iter().all(|h| h.logprob < 0.0));
    }

    #[test]
    fn beam_one_is_greedy_over_legal_tokens() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("something".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 1);
        assert_eq!(hyps.len(), 1);
    }

    #[test]
    fn smaller_beam_scores_prefix_of_larger() {
        // The top hypothesis must be identical for beam sizes 2 and 4
        // whenever level-wise pruning doesn't cut the optimum at width 2 —
        // with 3 codes per level, width 4 covers everything, so compare
        // the best of width-4 against width-3 (still exhaustive at level 1).
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        let big = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        let small = constrained_beam_search(&lm, &vocab, &trie, &prompt, 3);
        assert_eq!(big[0].item, small[0].item);
    }
}
