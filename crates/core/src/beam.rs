//! Trie-constrained beam search over item-index tokens (paper §III-D2).
//!
//! Starting from a prefilled prompt cache, the decoder expands `H` levels.
//! At each level only codes that extend a real item prefix are legal
//! ("probabilities of tokens that may result in illegal item indices will
//! be assigned 0"); each surviving beam therefore maps to an actual item.
//! Beams share the prompt's KV cache by cloning, which is cheap at these
//! model sizes and exactly reproduces the paper's KV-cache optimization.
//!
//! Per level, candidate scoring fans out over the surviving beams on an
//! [`lcrec_par::Pool`] and reassembles in beam order; the transformer step
//! then runs **every** pruned candidate through one fused, allocation-free
//! weight pass ([`CausalLm::advance_batch_fused`]) against a reusable
//! [`DecodeScratch`]. Scoring applies **top-k pre-pruning**: each beam
//! keeps only its `beam_size` best legal continuations before the global
//! prune — provably without changing the result (see `score_beam`'s doc
//! comment) — so
//! the cross-beam sort never sees more than `beam_size²` candidates.
//! Parallel and serial runs return bit-identical hypotheses (see DESIGN.md
//! "Threading model").
//!
//! The serving path adds a second axis of batching:
//! [`multi_constrained_beam_search_with`] decodes many prompts at once,
//! sharing each transformer step across *every* request's surviving
//! candidates. Scoring, pruning and finalization reuse the single-request
//! helpers, so the batched decode is bit-identical to running
//! [`constrained_beam_search_with`] once per request — the contract
//! `tests/serving.rs` pins.
//!
//! [`constrained_beam_search_graph`] is the pre-KV-cache baseline: the
//! same search driven by full autograd-graph re-forwards
//! ([`CausalLm::logits_uncached`]) instead of cached fused steps. It
//! exists as the benchmark "before" ( `repro --exp decode`,
//! `results/decode.md`) and as the independent oracle the fast path is
//! bit-compared against (`tests/decode.rs`).

use crate::lm::{CausalLm, DecodeScratch, KvCache};
use crate::vocab::ExtendedVocab;
use lcrec_par::Pool;
use lcrec_rqvae::IndexTrie;

/// One completed hypothesis.
#[derive(Clone, Debug)]
pub struct Hypothesis {
    /// The decoded item.
    pub item: u32,
    /// Sum of token log-probabilities.
    pub logprob: f32,
}

struct Beam {
    cache: KvCache,
    logits: Vec<f32>,
    prefix: Vec<u16>,
    logprob: f32,
}

/// Scores one beam's legal continuations: the beam's log-softmax over the
/// full vocabulary restricted to the codes that extend a real item prefix
/// (illegal tokens get probability 0), **pre-pruned to the beam's `width`
/// best codes**. Returns `(code, cumulative logprob)` pairs in trie order
/// — every decode path shares this exact arithmetic, which keeps them all
/// bit-identical.
///
/// Top-k pre-pruning is exact: the global prune is a *stable* descending
/// sort truncated to `width`, so any candidate this beam drops is preceded
/// in the flattened candidate list by at least `width` same-beam
/// candidates with a strictly better score or an equal score and an
/// earlier position — the dropped candidate could never have survived the
/// global cut, and the survivors keep their original relative order, so
/// the pruned result is identical to scoring everything. (Ranking by raw
/// logit equals ranking by log-probability: the softmax normalizer and
/// the beam's cumulative score are constants within one beam.)
fn score_beam(
    trie: &IndexTrie,
    vocab: &ExtendedVocab,
    logits: &[f32],
    prefix: &[u16],
    logprob: f32,
    width: usize,
) -> Vec<(u16, f32)> {
    let allowed = trie.allowed_slice(prefix);
    if allowed.is_empty() || width == 0 {
        return Vec::new();
    }
    let level = prefix.len();
    // Trie intersection first: the legal codes with their raw logits.
    let mut legal: Vec<(u16, f32)> = allowed
        .iter()
        .filter_map(|&code| {
            // A token outside the logit table can only mean a vocab/trie
            // mismatch; skip the code instead of panicking mid-decode.
            let tok = vocab.index_token(level, code) as usize;
            logits.get(tok).map(|&l| (code, l))
        })
        .collect();
    // Top-k pre-pruning, stable: keep the `width` best by logit, ties to
    // the earlier code, survivors back in trie order.
    if legal.len() > width {
        let mut order: Vec<usize> = (0..legal.len()).collect();
        order.sort_by(|&a, &b| {
            legal[b] // lint: allow(panic, reason = "order enumerates legal's indices")
                .1
                .partial_cmp(&legal[a].1) // lint: allow(panic, reason = "order enumerates legal's indices")
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        order.truncate(width);
        order.sort_unstable();
        legal = order
            .into_iter()
            .filter_map(|i| legal.get(i).copied())
            .collect();
    }
    let mx = logits.iter().copied().fold(f32::NEG_INFINITY, f32::max);
    let z: f32 = logits.iter().map(|&v| (v - mx).exp()).sum();
    let lz = z.ln() + mx;
    legal.into_iter().map(|(code, l)| (code, logprob + l - lz)).collect()
}

/// The shared pruning rule: a *stable* descending sort on score followed by
/// truncation to the beam width. Candidates must arrive flattened in beam
/// order, so equal scores resolve identically on every path.
fn prune(candidates: &mut Vec<(usize, u16, f32)>, beam_size: usize) {
    candidates.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
    candidates.truncate(beam_size);
}

/// Maps finished `(prefix, logprob)` beams to ranked hypotheses
/// (descending log-probability).
fn finalize(trie: &IndexTrie, beams: Vec<(Vec<u16>, f32)>) -> Vec<Hypothesis> {
    let mut out: Vec<Hypothesis> = beams
        .into_iter()
        .filter_map(|(prefix, logprob)| {
            trie.item_at(&prefix).map(|item| Hypothesis { item, logprob })
        })
        .collect();
    out.sort_by(|a, b| b.logprob.partial_cmp(&a.logprob).unwrap_or(std::cmp::Ordering::Equal));
    out
}

/// Runs constrained beam search and returns up to `beam_size` items ranked
/// by log-probability. `prompt` must be non-empty. Parallelism comes from
/// the ambient [`Pool::from_env`] (`LCREC_THREADS`); see
/// [`constrained_beam_search_with`] for an explicit pool.
pub fn constrained_beam_search(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompt: &[u32],
    beam_size: usize,
) -> Vec<Hypothesis> {
    constrained_beam_search_with(&Pool::from_env(), lm, vocab, trie, prompt, beam_size)
}

/// [`constrained_beam_search`] with an explicit thread pool. Output is
/// bit-identical (item ids **and** log-probabilities) at every thread
/// count: candidate lists are flattened in beam order, the pruning sort is
/// stable, and the fused batched transformer step accumulates strictly row
/// by row, so no first-come-first-served effect can leak into scores.
pub fn constrained_beam_search_with(
    pool: &Pool,
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompt: &[u32],
    beam_size: usize,
) -> Vec<Hypothesis> {
    // A zero-width beam asks for nothing: return nothing rather than panic.
    // (The serving layer rejects `k = 0` with a typed error before it gets
    // here; this keeps the library call total for direct users too.)
    if beam_size == 0 {
        return Vec::new();
    }
    let obs_on = lcrec_obs::enabled();
    let _span = lcrec_obs::span("beam.decode");
    let mut scratch = lm.new_scratch();
    let mut cache = lm.new_cache();
    let logits = lm
        .prefill_batch_fused(&mut scratch, std::slice::from_mut(&mut cache), &[prompt])
        .pop()
        .unwrap_or_default();
    let mut beams =
        vec![Beam { cache, logits, prefix: Vec::new(), logprob: 0.0 }];
    let vocab_n = lm.config().vocab;
    for _level in 0..trie.levels() {
        if obs_on {
            lcrec_obs::counter_add("beam.trie_visits", beams.len() as u64);
        }
        let score_watch = lcrec_obs::stopwatch();
        // Phase 1 — candidate scoring, parallel over surviving beams.
        // Each beam's log-softmax over the full vocabulary is restricted to
        // legal codes (illegal tokens get probability 0) and pre-pruned to
        // the beam width (exact; see `score_beam`).
        let per_beam: Vec<Vec<(usize, u16, f32)>> = pool.map(&beams, |bi, beam| {
            score_beam(trie, vocab, &beam.logits, &beam.prefix, beam.logprob, beam_size)
                .into_iter()
                .map(|(code, logprob)| (bi, code, logprob))
                .collect()
        });
        // (beam, code, logprob), flattened in beam order exactly as the
        // serial double loop would produce them.
        let mut candidates: Vec<(usize, u16, f32)> =
            per_beam.into_iter().flatten().collect();
        score_watch.stop("beam.score_s");
        if candidates.is_empty() {
            return Vec::new();
        }
        if obs_on {
            lcrec_obs::counter_add("beam.expansions", candidates.len() as u64);
            lcrec_obs::hist_record("beam.candidates_per_level", candidates.len() as f64);
        }
        prune(&mut candidates, beam_size);
        if obs_on {
            lcrec_obs::counter_add("beam.cache_advances", candidates.len() as u64);
        }
        let advance_watch = lcrec_obs::stopwatch();
        // Phase 2 — one fused, allocation-free transformer step over every
        // pruned candidate, each on a clone of its source cache.
        let mut new_caches: Vec<KvCache> = candidates
            .iter()
            .map(|&(bi, _, _)| beams[bi].cache.clone()) // lint: allow(panic, reason = "bi was produced by enumerating this very `beams` vector in phase 1")
            .collect();
        let toks: Vec<u32> = candidates
            .iter()
            .map(|&(bi, code, _)| vocab.index_token(beams[bi].prefix.len(), code)) // lint: allow(panic, reason = "bi was produced by enumerating this very `beams` vector in phase 1")
            .collect();
        let mut slots: Vec<&mut KvCache> = new_caches.iter_mut().collect();
        let all_logits = lm.advance_batch_fused(&mut scratch, &mut slots, &toks);
        beams = candidates
            .iter()
            .zip(new_caches)
            .zip(all_logits.chunks_exact(vocab_n.max(1)))
            .map(|((&(bi, code, logprob), cache), row)| {
                let mut prefix = beams[bi].prefix.clone(); // lint: allow(panic, reason = "bi was produced by enumerating this very `beams` vector in phase 1")
                prefix.push(code);
                Beam { cache, logits: row.to_vec(), prefix, logprob }
            })
            .collect();
        advance_watch.stop("beam.advance_s");
    }
    finalize(trie, beams.into_iter().map(|b| (b.prefix, b.logprob)).collect())
}

/// The graph-backed baseline decode: the same constrained search, driven
/// by a full autograd-graph forward over the whole sequence at every step
/// ([`CausalLm::logits_uncached`]) instead of KV-cached fused steps — no
/// cache, fresh `Graph` node allocations per token, O(T²) attention work.
/// This is the paper's §III-D2 "before": the decode benchmark
/// (`repro --exp decode`) measures the fast path against it, and
/// `tests/decode.rs` pins that both return **bit-identical** hypotheses
/// (the two paths share `score_beam`/`prune`/`finalize`, and the graph
/// forward is bit-identical to the cached step).
///
/// `prompt` must be short enough that prompt + `levels` index tokens fit
/// the LM context window, as every in-contract caller (prompt rendering
/// budgets, serving) guarantees; beyond it the graph path truncates
/// history where the cached path clamps positions, and the two may
/// legitimately diverge.
pub fn constrained_beam_search_graph(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompt: &[u32],
    beam_size: usize,
) -> Vec<Hypothesis> {
    if beam_size == 0 {
        return Vec::new();
    }
    let _span = lcrec_obs::span("beam.decode_graph");
    struct GraphBeam {
        tokens: Vec<u32>,
        logits: Vec<f32>,
        prefix: Vec<u16>,
        logprob: f32,
    }
    let logits = lm.logits_uncached(prompt);
    let mut beams =
        vec![GraphBeam { tokens: prompt.to_vec(), logits, prefix: Vec::new(), logprob: 0.0 }];
    for _level in 0..trie.levels() {
        let mut candidates: Vec<(usize, u16, f32)> = Vec::new();
        for (bi, beam) in beams.iter().enumerate() {
            candidates.extend(
                score_beam(trie, vocab, &beam.logits, &beam.prefix, beam.logprob, beam_size)
                    .into_iter()
                    .map(|(code, logprob)| (bi, code, logprob)),
            );
        }
        if candidates.is_empty() {
            return Vec::new();
        }
        prune(&mut candidates, beam_size);
        beams = candidates
            .iter()
            .filter_map(|&(bi, code, logprob)| {
                // bi enumerates this very `beams` vector, so the lookup
                // always succeeds; `.get` keeps the baseline total anyway.
                let src = beams.get(bi)?;
                let mut tokens = src.tokens.clone();
                tokens.push(vocab.index_token(src.prefix.len(), code));
                // The whole sequence re-forwards through a fresh graph.
                let logits = lm.logits_uncached(&tokens);
                let mut prefix = src.prefix.clone();
                prefix.push(code);
                Some(GraphBeam { tokens, logits, prefix, logprob })
            })
            .collect();
    }
    finalize(trie, beams.into_iter().map(|b| (b.prefix, b.logprob)).collect())
}

/// Decodes several prompts at once with a uniform beam width; see
/// [`multi_constrained_beam_search_with`]. Parallelism comes from the
/// ambient [`Pool::from_env`] (`LCREC_THREADS`).
pub fn multi_constrained_beam_search(
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompts: &[Vec<u32>],
    beam_size: usize,
) -> Vec<Vec<Hypothesis>> {
    let widths = vec![beam_size; prompts.len()];
    multi_constrained_beam_search_with(&Pool::from_env(), lm, vocab, trie, prompts, &widths)
}

/// Multi-request trie-constrained beam search: decodes `prompts[i]` at
/// width `beam_sizes[i]`, all at once, and returns one ranked hypothesis
/// list per prompt (in prompt order). A zero width yields an empty list
/// for that prompt without disturbing the others.
///
/// The requests share the model's weight passes — prefill runs all prompts
/// in position lockstep through [`CausalLm::prefill_batch_fused`], and
/// each decode level runs *every* request's surviving candidates through a
/// single [`CausalLm::advance_batch_fused`] call — but never share any
/// state:
/// each request has its own KV caches, its own candidate list and its own
/// pruning cut. Scoring/pruning reuse the single-request helpers and the
/// batched transformer step is bit-identical per row, so the output equals
/// calling [`constrained_beam_search_with`] once per prompt, bit for bit,
/// at any batch composition and any thread count.
pub fn multi_constrained_beam_search_with(
    pool: &Pool,
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompts: &[Vec<u32>],
    beam_sizes: &[usize],
) -> Vec<Vec<Hypothesis>> {
    let mut scratch = lm.new_scratch();
    multi_constrained_beam_search_scratch(pool, lm, vocab, trie, prompts, beam_sizes, &mut scratch)
}

/// [`multi_constrained_beam_search_with`] against a caller-owned
/// [`DecodeScratch`], so a long-lived caller (the serving engine) reuses
/// one set of decode buffers — and one cached LM-head transpose — across
/// every batch instead of re-allocating per dispatch. The scratch must
/// have been created from `lm` by [`CausalLm::new_scratch`] after its
/// last parameter update. Results are bit-identical whichever scratch is
/// passed; the scratch holds no decode state between calls.
#[allow(clippy::too_many_arguments)]
pub fn multi_constrained_beam_search_scratch(
    pool: &Pool,
    lm: &CausalLm,
    vocab: &ExtendedVocab,
    trie: &IndexTrie,
    prompts: &[Vec<u32>],
    beam_sizes: &[usize],
    scratch: &mut DecodeScratch,
) -> Vec<Vec<Hypothesis>> {
    assert_eq!(prompts.len(), beam_sizes.len(), "one beam width per prompt");
    let n = prompts.len();
    if n == 0 {
        return Vec::new();
    }
    let obs_on = lcrec_obs::enabled();
    let _span = lcrec_obs::span("beam.decode_batch");
    let vocab_n = lm.config().vocab;
    // Batched prefill: every prompt advances through its own cache while
    // sharing each step's fused weight pass.
    let mut caches: Vec<KvCache> = (0..n).map(|_| lm.new_cache()).collect();
    let seqs: Vec<&[u32]> = prompts.iter().map(|p| p.as_slice()).collect();
    let first_logits = lm.prefill_batch_fused(scratch, &mut caches, &seqs);
    let mut requests: Vec<Vec<Beam>> = caches
        .into_iter()
        .zip(first_logits)
        .map(|(cache, logits)| vec![Beam { cache, logits, prefix: Vec::new(), logprob: 0.0 }])
        .collect();
    for _level in 0..trie.levels() {
        // Phase 1 — score every (request, beam) pair, parallel over the
        // flattened pair list; results reassemble in pair order, which is
        // exactly each request's serial beam order.
        let pairs: Vec<(usize, usize)> = requests
            .iter()
            .enumerate()
            .flat_map(|(ri, beams)| (0..beams.len()).map(move |bi| (ri, bi)))
            .collect();
        if pairs.is_empty() {
            break;
        }
        if obs_on {
            lcrec_obs::counter_add("beam.trie_visits", pairs.len() as u64);
        }
        let score_watch = lcrec_obs::stopwatch();
        let scored: Vec<Vec<(u16, f32)>> = pool.map(&pairs, |_, &(ri, bi)| {
            let beam = &requests[ri][bi]; // lint: allow(panic, reason = "(ri, bi) pairs were built by enumerating `requests` and its beam lists above")
            score_beam(trie, vocab, &beam.logits, &beam.prefix, beam.logprob, beam_sizes[ri]) // lint: allow(panic, reason = "ri < n and beam_sizes.len() == n is asserted at entry")
        });
        score_watch.stop("beam.score_s");
        let mut per_req: Vec<Vec<(usize, u16, f32)>> = vec![Vec::new(); n];
        for (&(ri, bi), cands) in pairs.iter().zip(&scored) {
            for &(code, logprob) in cands {
                per_req[ri].push((bi, code, logprob)); // lint: allow(panic, reason = "ri < n: pairs enumerate `requests`, which has n entries")
            }
        }
        // Jobs for the shared transformer step: (request, beam, code, lp),
        // each request pruned to its own width first.
        let mut jobs: Vec<(usize, usize, u16, f32)> = Vec::new();
        for (ri, mut cands) in per_req.into_iter().enumerate() {
            if obs_on && !cands.is_empty() {
                lcrec_obs::counter_add("beam.expansions", cands.len() as u64);
                lcrec_obs::hist_record("beam.candidates_per_level", cands.len() as f64);
            }
            prune(&mut cands, beam_sizes[ri]); // lint: allow(panic, reason = "ri < n and beam_sizes.len() == n is asserted at entry")
            jobs.extend(cands.into_iter().map(|(bi, code, logprob)| (ri, bi, code, logprob)));
        }
        if obs_on {
            lcrec_obs::counter_add("beam.cache_advances", jobs.len() as u64);
        }
        // Every request pruned to nothing (e.g. all widths zero): skip the
        // batched step this level; the empty beam lists end the loop above.
        if jobs.is_empty() {
            requests = (0..n).map(|_| Vec::new()).collect();
            continue;
        }
        let advance_watch = lcrec_obs::stopwatch();
        // Phase 2 — one batched transformer step over every surviving
        // candidate of every request, each on a clone of its source cache.
        let mut new_caches: Vec<KvCache> =
            jobs.iter().map(|&(ri, bi, _, _)| requests[ri][bi].cache.clone()).collect(); // lint: allow(panic, reason = "jobs carry (ri, bi) coordinates taken from this level's `requests` candidates")
        let toks: Vec<u32> = jobs
            .iter()
            .map(|&(ri, bi, code, _)| vocab.index_token(requests[ri][bi].prefix.len(), code)) // lint: allow(panic, reason = "jobs carry (ri, bi) coordinates taken from this level's `requests` candidates")
            .collect();
        let mut slots: Vec<&mut KvCache> = new_caches.iter_mut().collect();
        let all_logits = lm.advance_batch_fused(scratch, &mut slots, &toks);
        let mut next: Vec<Vec<Beam>> = Vec::with_capacity(n);
        next.resize_with(n, Vec::new);
        for ((&(ri, bi, code, logprob), cache), row) in
            jobs.iter().zip(new_caches).zip(all_logits.chunks_exact(vocab_n.max(1)))
        {
            let mut prefix = requests[ri][bi].prefix.clone(); // lint: allow(panic, reason = "jobs carry (ri, bi) coordinates taken from this level's `requests` candidates")
            prefix.push(code);
            next[ri].push(Beam { cache, logits: row.to_vec(), prefix, logprob }); // lint: allow(panic, reason = "next was sized to n slots and ri < n by construction")
        }
        requests = next;
        advance_watch.stop("beam.advance_s");
    }
    requests
        .into_iter()
        .map(|beams| finalize(trie, beams.into_iter().map(|b| (b.prefix, b.logprob)).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lm::LmConfig;
    use lcrec_rqvae::ItemIndices;
    use lcrec_text::Vocab;

    fn setup() -> (CausalLm, ExtendedVocab, IndexTrie) {
        let base = Vocab::build(["recommend something"], 1);
        let indices = ItemIndices::new(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
        );
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm = CausalLm::new(LmConfig::test(vocab.len()));
        (lm, vocab, trie)
    }

    #[test]
    fn all_results_are_real_items() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend something".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        assert_eq!(hyps.len(), 4, "beam must fill with the 4 existing items");
        let mut items: Vec<u32> = hyps.iter().map(|h| h.item).collect();
        items.sort_unstable();
        items.dedup();
        assert_eq!(items.len(), 4, "no duplicates across beams");
    }

    #[test]
    fn results_are_sorted_by_logprob() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        for w in hyps.windows(2) {
            assert!(w[0].logprob >= w[1].logprob);
        }
        // Log-probabilities of a 2-level decode are sums of two log-probs.
        assert!(hyps.iter().all(|h| h.logprob < 0.0));
    }

    #[test]
    fn beam_one_is_greedy_over_legal_tokens() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("something".into())]);
        let hyps = constrained_beam_search(&lm, &vocab, &trie, &prompt, 1);
        assert_eq!(hyps.len(), 1);
    }

    #[test]
    fn multi_request_matches_single_request_bit_for_bit() {
        let (lm, vocab, trie) = setup();
        let prompts: Vec<Vec<u32>> = ["recommend something", "recommend", "something"]
            .iter()
            .map(|t| vocab.render(&[lcrec_data::Seg::Text((*t).into())]))
            .collect();
        let widths = [4usize, 2, 3];
        for pool in [Pool::serial(), Pool::new(4)] {
            let batched =
                multi_constrained_beam_search_with(&pool, &lm, &vocab, &trie, &prompts, &widths);
            assert_eq!(batched.len(), prompts.len());
            for ((prompt, &w), got) in prompts.iter().zip(&widths).zip(&batched) {
                let solo = constrained_beam_search_with(&pool, &lm, &vocab, &trie, prompt, w);
                assert_eq!(got.len(), solo.len());
                for (a, b) in got.iter().zip(&solo) {
                    assert_eq!(a.item, b.item, "rankings must agree");
                    assert_eq!(a.logprob.to_bits(), b.logprob.to_bits(), "scores to the bit");
                }
            }
        }
    }

    #[test]
    fn multi_request_handles_empty_and_single_inputs() {
        let (lm, vocab, trie) = setup();
        assert!(multi_constrained_beam_search(&lm, &vocab, &trie, &[], 4).is_empty());
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        let one = multi_constrained_beam_search(&lm, &vocab, &trie, &[prompt.clone()], 4);
        let solo = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        assert_eq!(one.len(), 1);
        assert_eq!(one[0].len(), solo.len());
        for (a, b) in one[0].iter().zip(&solo) {
            assert_eq!((a.item, a.logprob.to_bits()), (b.item, b.logprob.to_bits()));
        }
    }

    #[test]
    fn zero_width_degrades_to_empty_without_panicking() {
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        assert!(constrained_beam_search(&lm, &vocab, &trie, &prompt, 0).is_empty());
        // All widths zero: the batched step is skipped entirely.
        let all_zero = multi_constrained_beam_search_with(
            &Pool::new(1),
            &lm,
            &vocab,
            &trie,
            &[prompt.clone(), prompt.clone()],
            &[0, 0],
        );
        assert_eq!(all_zero.len(), 2);
        assert!(all_zero.iter().all(Vec::is_empty));
        // A mixed batch: the zero-width slot is empty, the live slot is
        // bit-identical to decoding alone.
        let mixed = multi_constrained_beam_search_with(
            &Pool::new(1),
            &lm,
            &vocab,
            &trie,
            &[prompt.clone(), prompt.clone()],
            &[0, 4],
        );
        assert!(mixed[0].is_empty());
        let solo = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        assert_eq!(mixed[1].len(), solo.len());
        for (a, b) in mixed[1].iter().zip(&solo) {
            assert_eq!((a.item, a.logprob.to_bits()), (b.item, b.logprob.to_bits()));
        }
    }

    #[test]
    fn smaller_beam_scores_prefix_of_larger() {
        // The top hypothesis must be identical for beam sizes 2 and 4
        // whenever level-wise pruning doesn't cut the optimum at width 2 —
        // with 3 codes per level, width 4 covers everything, so compare
        // the best of width-4 against width-3 (still exhaustive at level 1).
        let (lm, vocab, trie) = setup();
        let prompt = vocab.render(&[lcrec_data::Seg::Text("recommend".into())]);
        let big = constrained_beam_search(&lm, &vocab, &trie, &prompt, 4);
        let small = constrained_beam_search(&lm, &vocab, &trie, &prompt, 3);
        assert_eq!(big[0].item, small[0].item);
    }
}
