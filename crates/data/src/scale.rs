//! Scale tier: parameterized large-catalog synthetic workloads.
//!
//! The [`DatasetConfig`](crate::DatasetConfig) presets model the *semantics*
//! of the paper's datasets at a size one CPU can train on. This module
//! models their *load shape* at production size: catalogs of 10⁵+ items,
//! user populations of 10⁶+, and power-law (Zipf) traffic — the regime
//! where batching, threading and the fused decode path must earn their
//! keep (`ROADMAP.md` item 1, `results/scale.md`).
//!
//! Two constraints drive the design:
//!
//! * **Streaming generation.** A million-user population must never be
//!   materialized: [`ScaleConfig::stream_users`] emits one user's
//!   interaction sequence at a time, each a pure function of
//!   `(seed, user)`, so memory stays O(catalog) + O(one user) no matter
//!   how many users are drawn. [`ScaleConfig::materialize`] is the
//!   whole-population reference the scale-invariance suite bit-compares
//!   against (`tests/scale.rs`).
//! * **Deterministic replay.** [`ScaleConfig::replay`] yields an open-loop
//!   stream of user ids whose visit frequencies follow the configured
//!   Zipf law — same seed, same traffic, bit for bit — so serving
//!   benchmarks at different tiers and batch sizes see *identical* load.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A typed reason a scale workload cannot be built. Every constructor on
/// [`ScaleConfig`] validates up front and returns one of these instead of
/// panicking — degenerate tiers are a caller error, not a crash.
#[derive(Clone, Debug, PartialEq)]
pub enum ScaleError {
    /// The catalog is empty; there is nothing to interact with.
    NoItems,
    /// Traffic replay over zero users cannot sample anyone.
    NoUsers,
    /// The Zipf exponent must be finite and non-negative
    /// (`0` = uniform, larger = more head-heavy).
    BadExponent {
        /// The rejected exponent.
        value: f64,
    },
    /// The index shape is degenerate (zero levels or an empty codebook).
    EmptyIndexShape,
    /// The catalog does not fit in the extended vocabulary: `codebook ^
    /// levels` distinct semantic IDs cannot cover `num_items` items.
    VocabExhausted {
        /// Items the configuration asks for.
        items: usize,
        /// Distinct indices the shape can express.
        capacity: usize,
    },
}

impl fmt::Display for ScaleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScaleError::NoItems => write!(f, "scale config has zero items"),
            ScaleError::NoUsers => {
                write!(f, "traffic replay needs at least one user to sample from")
            }
            ScaleError::BadExponent { value } => {
                write!(f, "Zipf exponent {value} must be finite and >= 0")
            }
            ScaleError::EmptyIndexShape => {
                write!(f, "index shape needs at least one level and a non-empty codebook")
            }
            ScaleError::VocabExhausted { items, capacity } => write!(
                f,
                "{items} items exceed the {capacity} distinct indices the extended \
                 vocabulary can express (codebook_size ^ levels); deepen or widen the index"
            ),
        }
    }
}

impl std::error::Error for ScaleError {}

/// Parameters of a scale-tier workload: catalog size, user population,
/// traffic skew and the semantic-index shape that sizes the extended
/// vocabulary.
///
/// # Examples
///
/// ```
/// use lcrec_data::scale::ScaleConfig;
///
/// let cfg = ScaleConfig::tier_test();
/// // Streaming generation never materializes the population…
/// let first: Vec<Vec<u32>> = cfg.stream_users().expect("valid tier").take(3).collect();
/// // …and is bit-identical to the materialized reference.
/// let all = cfg.materialize().expect("valid tier");
/// assert_eq!(&all[..3], &first[..]);
/// // Replayed traffic is deterministic under the seed.
/// let a: Vec<usize> = cfg.replay().expect("valid tier").take(8).collect();
/// let b: Vec<usize> = cfg.replay().expect("valid tier").take(8).collect();
/// assert_eq!(a, b);
/// ```
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    /// Items in the catalog. Item id doubles as popularity rank
    /// (id 0 is the head of the catalog).
    pub num_items: usize,
    /// Users in the population. User id doubles as traffic rank for
    /// replay (user 0 is the heaviest user).
    pub num_users: usize,
    /// Zipf exponent shared by item popularity and user traffic:
    /// `0` = uniform, `~1` = classic web traffic, larger = heavier head.
    pub zipf_exponent: f64,
    /// Mean interactions per user (shifted-geometric around this value).
    pub mean_seq_len: f32,
    /// Hard cap on interactions kept per user.
    pub max_seq_len: usize,
    /// Semantic-index levels `H` for the synthetic vocabulary.
    pub levels: usize,
    /// Codebook size `K` per level; capacity is `K ^ H` distinct IDs.
    pub codebook_size: usize,
    /// Master seed; every stream derived from this config is a pure
    /// function of it.
    pub seed: u64,
}

impl ScaleConfig {
    fn base(num_items: usize, num_users: usize, levels: usize, codebook_size: usize) -> Self {
        ScaleConfig {
            num_items,
            num_users,
            zipf_exponent: 1.05,
            mean_seq_len: 9.0,
            max_seq_len: 20,
            levels,
            codebook_size,
            seed: 0x5CA1E,
        }
    }

    /// Smallest tier: a cache-resident control point (~2k items, 5k users).
    pub fn tier_small() -> Self {
        Self::base(2_000, 5_000, 3, 32)
    }

    /// Middle tier: the catalog outgrows L2 (~20k items, 100k users).
    pub fn tier_medium() -> Self {
        Self::base(20_000, 100_000, 3, 64)
    }

    /// Large tier: 120k items, a million users — paired with
    /// `LmConfig::large`, model weights no longer fit in cache.
    pub fn tier_large() -> Self {
        Self::base(120_000, 1_000_000, 3, 64)
    }

    /// Micro tier for unit tests and smoke runs.
    pub fn tier_test() -> Self {
        Self::base(64, 200, 2, 16)
    }

    /// Distinct semantic IDs the index shape can express
    /// (`codebook_size ^ levels`, saturating).
    pub fn index_capacity(&self) -> usize {
        let mut cap = 1usize;
        for _ in 0..self.levels {
            cap = cap.saturating_mul(self.codebook_size);
        }
        cap
    }

    /// Validates the configuration, returning the first problem found.
    ///
    /// Zero *users* is deliberately legal here — an empty population
    /// streams nothing — but [`ScaleConfig::replay`] needs someone to
    /// sample and rejects it with [`ScaleError::NoUsers`].
    pub fn validate(&self) -> Result<(), ScaleError> {
        if self.num_items == 0 {
            return Err(ScaleError::NoItems);
        }
        if !self.zipf_exponent.is_finite() || self.zipf_exponent < 0.0 {
            return Err(ScaleError::BadExponent { value: self.zipf_exponent });
        }
        if self.levels == 0 || self.codebook_size == 0 {
            return Err(ScaleError::EmptyIndexShape);
        }
        if self.num_items > self.index_capacity() {
            return Err(ScaleError::VocabExhausted {
                items: self.num_items,
                capacity: self.index_capacity(),
            });
        }
        Ok(())
    }

    /// Synthetic conflict-free semantic codes: item `i`'s code sequence
    /// is `i` written in base `codebook_size`, most-significant level
    /// first. Distinct items get distinct digit strings, so the codes
    /// are unique by construction and share prefixes hierarchically —
    /// the shape the RQ-VAE learns, without training one at 10⁵ items.
    /// Returns `(codebook_sizes, codes)` ready for `ItemIndices::new`
    /// (built by the caller; `lcrec-data` sits below `lcrec-rqvae`).
    pub fn synthetic_codes(&self) -> Result<(Vec<usize>, Vec<Vec<u16>>), ScaleError> {
        self.validate()?;
        let mut codes = Vec::with_capacity(self.num_items);
        for item in 0..self.num_items {
            let mut digits = vec![0u16; self.levels];
            let mut rest = item;
            for d in digits.iter_mut().rev() {
                *d = (rest % self.codebook_size) as u16;
                rest /= self.codebook_size;
            }
            codes.push(digits);
        }
        Ok((vec![self.codebook_size; self.levels], codes))
    }

    /// One user's interaction sequence — a pure function of
    /// `(seed, user)`, identical whether reached by streaming,
    /// materializing, or direct random access.
    pub fn generate_user(&self, popularity: &ZipfSampler, user: usize) -> Vec<u32> {
        let mut rng =
            StdRng::seed_from_u64(self.seed ^ (user as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        // Shifted-geometric length around the configured mean, capped.
        let extra = self.mean_seq_len - 1.0;
        let p = 1.0 / extra.max(1.0);
        let mut len = 1usize;
        while len < self.max_seq_len && rng.random_range(0.0f32..1.0) > p {
            len += 1;
        }
        let mut seq = Vec::with_capacity(len);
        for _ in 0..len {
            seq.push(popularity.sample(&mut rng) as u32);
        }
        seq
    }

    /// Streaming generation: an iterator emitting each user's sequence in
    /// user order **without materializing the population** — memory stays
    /// O(catalog popularity table) + O(one sequence) regardless of
    /// `num_users` (the allocation high-water probe in `tests/scale.rs`
    /// guards this).
    pub fn stream_users(&self) -> Result<UserStream, ScaleError> {
        self.validate()?;
        Ok(UserStream {
            cfg: self.clone(),
            popularity: ZipfSampler::new(self.num_items, self.zipf_exponent)?,
            next: 0,
        })
    }

    /// Whole-population reference generation: collects every user's
    /// sequence into memory. Exists as the bit-identity oracle for
    /// [`ScaleConfig::stream_users`] and for workloads small enough to
    /// hold; at the large tiers, stream instead.
    pub fn materialize(&self) -> Result<Vec<Vec<u32>>, ScaleError> {
        self.validate()?;
        let popularity = ZipfSampler::new(self.num_items, self.zipf_exponent)?;
        let mut all = Vec::with_capacity(self.num_users);
        for user in 0..self.num_users {
            all.push(self.generate_user(&popularity, user));
        }
        Ok(all)
    }

    /// Deterministic open-loop traffic replay: an endless stream of user
    /// ids whose long-run visit frequencies follow the configured Zipf
    /// law over the population (user 0 heaviest). Drives the serving
    /// benchmarks; same seed, same traffic.
    pub fn replay(&self) -> Result<ReplaySampler, ScaleError> {
        self.validate()?;
        if self.num_users == 0 {
            return Err(ScaleError::NoUsers);
        }
        Ok(ReplaySampler {
            traffic: ZipfSampler::new(self.num_users, self.zipf_exponent)?,
            rng: StdRng::seed_from_u64(self.seed.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        })
    }
}

/// Iterator over per-user sequences in user order; see
/// [`ScaleConfig::stream_users`].
#[derive(Debug)]
pub struct UserStream {
    cfg: ScaleConfig,
    popularity: ZipfSampler,
    next: usize,
}

impl Iterator for UserStream {
    type Item = Vec<u32>;

    fn next(&mut self) -> Option<Vec<u32>> {
        if self.next >= self.cfg.num_users {
            return None;
        }
        let seq = self.cfg.generate_user(&self.popularity, self.next);
        self.next += 1;
        Some(seq)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.num_users - self.next;
        (left, Some(left))
    }
}

/// Endless deterministic user-id stream following the traffic Zipf law;
/// see [`ScaleConfig::replay`].
#[derive(Debug)]
pub struct ReplaySampler {
    traffic: ZipfSampler,
    rng: StdRng,
}

impl Iterator for ReplaySampler {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        Some(self.traffic.sample(&mut self.rng))
    }
}

/// Inverse-CDF sampler over ranks `0..n` with weight `1 / (rank+1)^s`:
/// exponent `0` is uniform, larger exponents concentrate mass on the
/// head. The cumulative table is built once (8 bytes per rank) and each
/// draw is one uniform plus a binary search — O(log n), allocation-free.
#[derive(Debug)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
    total: f64,
    exponent: f64,
}

impl ZipfSampler {
    /// Precomputes the cumulative weight table for `n` ranks.
    pub fn new(n: usize, exponent: f64) -> Result<Self, ScaleError> {
        if n == 0 {
            return Err(ScaleError::NoItems);
        }
        if !exponent.is_finite() || exponent < 0.0 {
            return Err(ScaleError::BadExponent { value: exponent });
        }
        let mut cumulative = Vec::with_capacity(n);
        let mut total = 0.0f64;
        for rank in 0..n {
            // powf underflows to 0 for extreme skew at deep ranks; the
            // head weight is exactly 1.0, so the total stays positive.
            total += 1.0 / ((rank + 1) as f64).powf(exponent);
            cumulative.push(total);
        }
        Ok(ZipfSampler { cumulative, total, exponent })
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// True if the sampler covers no ranks (unreachable via
    /// [`ZipfSampler::new`], which rejects `n = 0`).
    pub fn is_empty(&self) -> bool {
        self.cumulative.is_empty()
    }

    /// The analytic (unnormalized) weight of a rank — the oracle the
    /// frequency-ranking test compares empirical counts against.
    pub fn analytic_weight(&self, rank: usize) -> f64 {
        1.0 / ((rank + 1) as f64).powf(self.exponent)
    }

    /// Draws one rank. Deterministic given the RNG state.
    pub fn sample(&self, rng: &mut StdRng) -> usize {
        let u = rng.random_range(0.0..self.total);
        let i = self.cumulative.partition_point(|&c| c <= u);
        i.min(self.cumulative.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate_and_scale_up() {
        for cfg in [
            ScaleConfig::tier_test(),
            ScaleConfig::tier_small(),
            ScaleConfig::tier_medium(),
            ScaleConfig::tier_large(),
        ] {
            cfg.validate().expect("preset must validate");
        }
        assert!(ScaleConfig::tier_large().num_items > ScaleConfig::tier_medium().num_items);
        assert!(ScaleConfig::tier_medium().num_users > ScaleConfig::tier_small().num_users);
    }

    #[test]
    fn synthetic_codes_are_unique_and_in_range() {
        let cfg = ScaleConfig::tier_test();
        let (sizes, codes) = cfg.synthetic_codes().expect("valid");
        assert_eq!(sizes, vec![cfg.codebook_size; cfg.levels]);
        assert_eq!(codes.len(), cfg.num_items);
        let mut sorted = codes.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), codes.len(), "codes must be unique");
        for code in &codes {
            assert_eq!(code.len(), cfg.levels);
            for (&d, &k) in code.iter().zip(sizes.iter()) {
                assert!((d as usize) < k);
            }
        }
    }

    #[test]
    fn stream_is_a_pure_function_of_the_seed() {
        let cfg = ScaleConfig::tier_test();
        let a: Vec<Vec<u32>> = cfg.stream_users().expect("valid").collect();
        let b: Vec<Vec<u32>> = cfg.stream_users().expect("valid").collect();
        assert_eq!(a, b);
        let mut shifted = cfg.clone();
        shifted.seed ^= 1;
        let c: Vec<Vec<u32>> = shifted.stream_users().expect("valid").collect();
        assert_ne!(a, c, "a different seed must produce different traffic");
    }

    #[test]
    fn sequences_respect_bounds() {
        let cfg = ScaleConfig::tier_test();
        for seq in cfg.stream_users().expect("valid") {
            assert!(!seq.is_empty());
            assert!(seq.len() <= cfg.max_seq_len);
            for &i in &seq {
                assert!((i as usize) < cfg.num_items);
            }
        }
    }

    #[test]
    fn zipf_head_dominates_under_skew() {
        let s = ZipfSampler::new(100, 1.2).expect("valid");
        let mut rng = StdRng::seed_from_u64(7);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[50].max(1) * 5, "head {} vs mid {}", counts[0], counts[50]);
    }

    #[test]
    fn zipf_exponent_zero_is_uniform() {
        let s = ZipfSampler::new(10, 0.0).expect("valid");
        let mut rng = StdRng::seed_from_u64(11);
        let mut counts = vec![0usize; 10];
        for _ in 0..50_000 {
            counts[s.sample(&mut rng)] += 1;
        }
        let (lo, hi) = (4_000usize, 6_000usize);
        for (r, &c) in counts.iter().enumerate() {
            assert!(c > lo && c < hi, "rank {r} count {c} not uniform-ish");
        }
    }

    #[test]
    fn degenerate_configs_yield_typed_errors() {
        let mut cfg = ScaleConfig::tier_test();
        cfg.num_items = 0;
        assert_eq!(cfg.validate(), Err(ScaleError::NoItems));

        let mut cfg = ScaleConfig::tier_test();
        cfg.zipf_exponent = f64::NAN;
        assert!(matches!(cfg.validate(), Err(ScaleError::BadExponent { .. })));

        let mut cfg = ScaleConfig::tier_test();
        cfg.levels = 0;
        assert_eq!(cfg.validate(), Err(ScaleError::EmptyIndexShape));

        let mut cfg = ScaleConfig::tier_test();
        cfg.num_items = 10_000;
        cfg.levels = 2;
        cfg.codebook_size = 16; // capacity 256 < 10_000
        assert!(matches!(cfg.validate(), Err(ScaleError::VocabExhausted { .. })));
    }
}
