//! Item catalog generation: category placement, titles, descriptions.

use crate::config::DatasetConfig;
use lcrec_text::gen::{ItemProfile, TextGen};
use lcrec_text::taxonomy::{by_name, Taxonomy};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One synthetic item with its generated text.
#[derive(Clone, Debug)]
pub struct Item {
    /// Dense item id (index into [`Catalog::items`]).
    pub id: u32,
    /// Category/brand placement.
    pub profile: ItemProfile,
    /// Generated title.
    pub title: String,
    /// Generated description.
    pub description: String,
}

impl Item {
    /// Title and description joined — the text the encoder embeds,
    /// mirroring the paper's "title + description through LLaMA".
    pub fn full_text(&self) -> String {
        format!("{} {}", self.title, self.description)
    }
}

/// The full item catalog of a dataset.
#[derive(Debug)]
pub struct Catalog {
    /// All items, id-ordered.
    pub items: Vec<Item>,
    /// The domain taxonomy.
    pub taxonomy: &'static Taxonomy,
    /// Items grouped by flattened sub-category.
    pub by_sub: Vec<Vec<u32>>,
}

impl Catalog {
    /// Generates a catalog of `cfg.num_items` items. Sub-categories receive
    /// items with mild skew (some categories are bigger, as in real data),
    /// and each item gets deterministic text.
    pub fn generate(cfg: &DatasetConfig) -> Catalog {
        let taxonomy = by_name(cfg.domain)
            .unwrap_or_else(|| panic!("unknown domain {:?}", cfg.domain));
        let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0x51ED_2700).wrapping_add(1));
        let gen = TextGen::new(taxonomy);
        let nsubs = taxonomy.num_subs();
        // Skewed category sizes: weight_i ∝ 1/(1+i/3) over a shuffled order.
        let mut order: Vec<usize> = (0..nsubs).collect();
        for i in (1..nsubs).rev() {
            order.swap(i, rng.random_range(0..=i));
        }
        let weights: Vec<f64> = (0..nsubs).map(|i| 1.0 / (1.0 + i as f64 / 3.0)).collect();
        let wsum: f64 = weights.iter().sum();

        let mut items = Vec::with_capacity(cfg.num_items);
        let mut by_sub = vec![Vec::new(); nsubs];
        for id in 0..cfg.num_items {
            // Sample a sub-category from the skewed distribution.
            let mut u = rng.random_range(0.0..wsum);
            let mut pick = 0;
            for (rank, &w) in weights.iter().enumerate() {
                if u < w {
                    pick = order[rank];
                    break;
                }
                u -= w;
            }
            let (coarse, sub) = taxonomy.sub_coords(pick);
            let profile = ItemProfile {
                coarse,
                sub,
                brand: rng.random_range(0..taxonomy.brands.len()),
                variant: rng.random_range(1..60),
            };
            let mut item_rng = StdRng::seed_from_u64(cfg.seed ^ (id as u64).wrapping_mul(0x9E37));
            let title = gen.title(&profile, &mut item_rng);
            let description = gen.description(&profile, &mut item_rng);
            by_sub[pick].push(id as u32);
            items.push(Item { id: id as u32, profile, title, description });
        }
        Catalog { items, taxonomy, by_sub }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// The item with dense id `id`.
    pub fn item(&self, id: u32) -> &Item {
        &self.items[id as usize]
    }

    /// Flattened sub-category of an item.
    pub fn sub_of(&self, id: u32) -> usize {
        self.items[id as usize].profile.flat_sub(self.taxonomy)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_generates_requested_items() {
        let c = Catalog::generate(&DatasetConfig::tiny());
        assert_eq!(c.len(), 40);
        assert_eq!(c.by_sub.iter().map(Vec::len).sum::<usize>(), 40);
    }

    #[test]
    fn catalog_deterministic_under_seed() {
        let a = Catalog::generate(&DatasetConfig::tiny());
        let b = Catalog::generate(&DatasetConfig::tiny());
        assert_eq!(a.items.len(), b.items.len());
        for (x, y) in a.items.iter().zip(&b.items) {
            assert_eq!(x.title, y.title);
            assert_eq!(x.profile, y.profile);
        }
    }

    #[test]
    fn titles_are_unique_enough() {
        // Variant numbers and word sampling should avoid mass duplication.
        let c = Catalog::generate(&DatasetConfig::games_small());
        let titles: std::collections::HashSet<&str> =
            c.items.iter().map(|i| i.title.as_str()).collect();
        assert!(titles.len() as f32 > 0.95 * c.len() as f32,
                "{} unique of {}", titles.len(), c.len());
    }

    #[test]
    fn category_sizes_are_skewed_but_all_populated() {
        let c = Catalog::generate(&DatasetConfig::games_small());
        let sizes: Vec<usize> = c.by_sub.iter().map(Vec::len).collect();
        let max = *sizes.iter().max().expect("non-empty");
        let min = *sizes.iter().min().expect("non-empty");
        assert!(min > 0, "every sub-category should have items");
        assert!(max >= 2 * min, "expected skew, got sizes {sizes:?}");
    }
}
