//! User interaction simulation.
//!
//! Each simulated user holds a preference mixture over coarse categories and
//! walks the catalog with session-like persistence:
//!
//! * with `p_stay` the next item stays in the current sub-category
//!   (language-semantic continuity — similar text),
//! * with `p_bundle` it jumps inside a *bundle* (collaborative continuity —
//!   e.g. guitar → amplifier: items that co-occur without textual overlap),
//! * with `p_sibling` it moves to a sibling sub-category,
//! * otherwise the user re-samples from their preference mixture.
//!
//! Item choice inside a sub-category is popularity-skewed (Zipf). The result
//! is data where text predicts part of co-occurrence but not all of it —
//! the regime in which the paper's language+collaborative integration wins.

use crate::catalog::Catalog;
use crate::config::DatasetConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Raw interactions of one user, chronological.
pub type UserSeq = Vec<u32>;

/// Simulates all user sequences (before k-core filtering).
pub fn simulate(cfg: &DatasetConfig, catalog: &Catalog) -> Vec<UserSeq> {
    let mut rng = StdRng::seed_from_u64(cfg.seed.wrapping_mul(0xA5A5).wrapping_add(2));
    let tax = catalog.taxonomy;
    let ncoarse = tax.num_coarse();
    // Zipf weights per sub-category, precomputed.
    let zipf: Vec<Vec<f64>> = catalog
        .by_sub
        .iter()
        .map(|items| {
            (0..items.len()).map(|r| 1.0 / ((r + 1) as f64).powf(cfg.popularity_skew)).collect()
        })
        .collect();

    (0..cfg.num_users)
        .map(|u| {
            let mut urng = StdRng::seed_from_u64(cfg.seed ^ (u as u64).wrapping_mul(0x5DEECE66D));
            simulate_user(cfg, catalog, &zipf, ncoarse, &mut urng, &mut rng)
        })
        .collect()
}

fn simulate_user(
    cfg: &DatasetConfig,
    catalog: &Catalog,
    zipf: &[Vec<f64>],
    ncoarse: usize,
    urng: &mut StdRng,
    shared: &mut StdRng,
) -> UserSeq {
    let tax = catalog.taxonomy;
    // Preference mixture: 1-3 favourite coarse categories.
    let nfav = urng.random_range(1..=3usize.min(ncoarse));
    let mut favs = Vec::with_capacity(nfav);
    while favs.len() < nfav {
        let c = urng.random_range(0..ncoarse);
        if !favs.contains(&c) {
            favs.push(c);
        }
    }
    // Sequence length: shifted geometric around the configured mean.
    let extra = cfg.mean_seq_len - cfg.min_interactions as f32;
    let p = 1.0 / extra.max(1.0);
    let mut len = cfg.min_interactions;
    while urng.random_range(0.0f32..1.0) > p && len < cfg.max_seq_len * 3 {
        len += 1;
    }

    let mut seq = Vec::with_capacity(len);
    let mut current_sub: Option<usize> = None;
    while seq.len() < len {
        let sub = match current_sub {
            Some(s) => {
                let r: f32 = urng.random_range(0.0..1.0);
                if r < cfg.p_stay {
                    s
                } else if r < cfg.p_stay + cfg.p_bundle {
                    match tax.bundle_of(s) {
                        Some(bundle) => bundle[urng.random_range(0..bundle.len())],
                        None => s,
                    }
                } else if r < cfg.p_stay + cfg.p_bundle + cfg.p_sibling {
                    let (c, _) = tax.sub_coords(s);
                    let nsubs = tax.coarse[c].subs.len();
                    tax.sub_index(c, urng.random_range(0..nsubs))
                } else {
                    sample_from_mixture(tax, &favs, urng)
                }
            }
            None => sample_from_mixture(tax, &favs, urng),
        };
        current_sub = Some(sub);
        let pool = &catalog.by_sub[sub];
        if pool.is_empty() {
            current_sub = None;
            continue;
        }
        let item = pool[zipf_sample(&zipf[sub], shared)];
        // Avoid immediate repeats; retry once, then accept whatever comes.
        if seq.last() == Some(&item) {
            let retry = pool[zipf_sample(&zipf[sub], shared)];
            if Some(&retry) != seq.last() {
                seq.push(retry);
            }
            continue;
        }
        seq.push(item);
    }
    seq
}

fn sample_from_mixture(
    tax: &lcrec_text::Taxonomy,
    favs: &[usize],
    rng: &mut StdRng,
) -> usize {
    let c = favs[rng.random_range(0..favs.len())];
    tax.sub_index(c, rng.random_range(0..tax.coarse[c].subs.len()))
}

fn zipf_sample(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    let mut u = rng.random_range(0.0..total);
    for (i, &w) in weights.iter().enumerate() {
        if u < w {
            return i;
        }
        u -= w;
    }
    weights.len() - 1
}

/// Iterative k-core filter: removes users with fewer than `k` interactions
/// and items appearing fewer than `k` times, until stable. Returns the
/// retained sequences (original item ids) — the paper's "filter unpopular
/// users and items with less than five interactions".
pub fn k_core(sequences: Vec<UserSeq>, k: usize) -> Vec<UserSeq> {
    let mut seqs = sequences;
    loop {
        let mut item_count = std::collections::HashMap::new();
        for s in &seqs {
            for &i in s {
                *item_count.entry(i).or_insert(0usize) += 1;
            }
        }
        let mut changed = false;
        for s in &mut seqs {
            let before = s.len();
            s.retain(|i| item_count[i] >= k);
            if s.len() != before {
                changed = true;
            }
        }
        let before_users = seqs.len();
        seqs.retain(|s| s.len() >= k);
        if seqs.len() != before_users {
            changed = true;
        }
        if !changed {
            return seqs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    fn make() -> (DatasetConfig, Catalog) {
        let cfg = DatasetConfig::tiny();
        let cat = Catalog::generate(&cfg);
        (cfg, cat)
    }

    #[test]
    fn simulation_produces_min_lengths() {
        let (cfg, cat) = make();
        let seqs = simulate(&cfg, &cat);
        assert_eq!(seqs.len(), cfg.num_users);
        assert!(seqs.iter().all(|s| s.len() >= cfg.min_interactions));
    }

    #[test]
    fn no_immediate_repeats_dominate() {
        let (cfg, cat) = make();
        let seqs = simulate(&cfg, &cat);
        let (mut repeats, mut total) = (0usize, 0usize);
        for s in &seqs {
            for w in s.windows(2) {
                total += 1;
                if w[0] == w[1] {
                    repeats += 1;
                }
            }
        }
        assert!((repeats as f32) < 0.1 * total as f32, "{repeats}/{total} repeats");
    }

    #[test]
    fn sessions_have_category_persistence() {
        // Consecutive items should share a sub-category far more often than
        // random pairs would.
        let (cfg, cat) = make();
        let seqs = simulate(&cfg, &cat);
        let mut same = 0usize;
        let mut total = 0usize;
        for s in &seqs {
            for w in s.windows(2) {
                total += 1;
                if cat.sub_of(w[0]) == cat.sub_of(w[1]) {
                    same += 1;
                }
            }
        }
        let rate = same as f32 / total as f32;
        // 4 sub-categories in tiny ⇒ random ≈ heavily below p_stay.
        assert!(rate > 0.25, "persistence rate {rate}");
    }

    #[test]
    fn bundle_jumps_create_cross_category_links() {
        let (cfg, cat) = make();
        let seqs = simulate(&cfg, &cat);
        // In TINY, bundle 0 is subs {0, 2} (different coarse categories).
        let mut cross = 0usize;
        for s in &seqs {
            for w in s.windows(2) {
                let (a, b) = (cat.sub_of(w[0]), cat.sub_of(w[1]));
                if (a == 0 && b == 2) || (a == 2 && b == 0) {
                    cross += 1;
                }
            }
        }
        assert!(cross > 0, "expected bundle transitions between subs 0 and 2");
    }

    #[test]
    fn k_core_enforces_thresholds() {
        let seqs = vec![
            vec![0, 1, 2, 3, 4],       // fine if items survive
            vec![0, 1],                // too short -> dropped
            vec![0, 0, 0, 1, 1, 2, 3], // keeps frequent items
        ];
        let out = k_core(seqs, 3);
        for s in &out {
            assert!(s.len() >= 3);
        }
        let mut counts = std::collections::HashMap::new();
        for s in &out {
            for &i in s {
                *counts.entry(i).or_insert(0) += 1;
            }
        }
        for (&item, &c) in &counts {
            assert!(c >= 3, "item {item} appears {c} times");
        }
    }

    #[test]
    fn k_core_keeps_most_of_a_healthy_dataset() {
        let (cfg, cat) = make();
        let seqs = simulate(&cfg, &cat);
        let total_before: usize = seqs.iter().map(Vec::len).sum();
        let out = k_core(seqs, cfg.min_interactions);
        let total_after: usize = out.iter().map(Vec::len).sum();
        assert!(total_after as f32 > 0.6 * total_before as f32,
                "k-core kept only {total_after}/{total_before}");
    }
}
