//! Dataset assembly: simulation → k-core filtering → id remapping →
//! truncation → leave-one-out splits → Table II statistics.

use crate::catalog::{Catalog, Item};
use crate::config::DatasetConfig;
use crate::interactions::{k_core, simulate};

/// A fully prepared sequential-recommendation dataset.
#[derive(Debug)]
pub struct Dataset {
    /// The generating configuration.
    pub config: DatasetConfig,
    /// Filtered catalog with dense, remapped item ids.
    pub catalog: Catalog,
    /// Per-user chronological item sequences; every sequence has length in
    /// `[min_interactions, max_seq_len]`.
    pub sequences: Vec<Vec<u32>>,
}

/// Table II row: corpus statistics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Stats {
    /// Users after filtering.
    pub users: usize,
    /// Items after filtering.
    pub items: usize,
    /// Total interactions.
    pub interactions: usize,
    /// `1 - interactions / (users * items)`.
    pub sparsity: f64,
    /// Mean sequence length.
    pub avg_len: f64,
}

impl Dataset {
    /// Generates, filters and splits a dataset from a configuration.
    pub fn generate(cfg: &DatasetConfig) -> Dataset {
        let catalog = Catalog::generate(cfg);
        let raw = simulate(cfg, &catalog);
        let mut seqs = k_core(raw, cfg.min_interactions);
        // Keep the most recent `max_seq_len` interactions, as in the paper.
        for s in &mut seqs {
            if s.len() > cfg.max_seq_len {
                let cut = s.len() - cfg.max_seq_len;
                s.drain(..cut);
            }
        }
        // Remap surviving items to dense ids.
        let mut used = vec![false; catalog.len()];
        for s in &seqs {
            for &i in s {
                used[i as usize] = true;
            }
        }
        let mut remap = vec![u32::MAX; catalog.len()];
        let mut items: Vec<Item> = Vec::new();
        for (old, item) in catalog.items.into_iter().enumerate() {
            if used[old] {
                let new_id = items.len() as u32;
                remap[old] = new_id;
                let mut it = item;
                it.id = new_id;
                items.push(it);
            }
        }
        for s in &mut seqs {
            for i in s.iter_mut() {
                *i = remap[*i as usize];
            }
        }
        let taxonomy = catalog.taxonomy;
        let mut by_sub = vec![Vec::new(); taxonomy.num_subs()];
        for it in &items {
            by_sub[it.profile.flat_sub(taxonomy)].push(it.id);
        }
        Dataset {
            config: cfg.clone(),
            catalog: Catalog { items, taxonomy, by_sub },
            sequences: seqs,
        }
    }

    /// Number of users.
    pub fn num_users(&self) -> usize {
        self.sequences.len()
    }

    /// Number of items.
    pub fn num_items(&self) -> usize {
        self.catalog.len()
    }

    /// Leave-one-out **training** portion of user `u` (all but the last
    /// two interactions).
    pub fn train_seq(&self, u: usize) -> &[u32] {
        let s = &self.sequences[u];
        &s[..s.len() - 2]
    }

    /// Validation example: (context, target) with target = second-most-recent.
    pub fn valid_example(&self, u: usize) -> (&[u32], u32) {
        let s = &self.sequences[u];
        (&s[..s.len() - 2], s[s.len() - 2])
    }

    /// Test example: (context, target) with target = most recent item.
    pub fn test_example(&self, u: usize) -> (&[u32], u32) {
        let s = &self.sequences[u];
        (&s[..s.len() - 1], s[s.len() - 1])
    }

    /// Computes Table II statistics.
    pub fn stats(&self) -> Stats {
        let users = self.num_users();
        let items = self.num_items();
        let interactions: usize = self.sequences.iter().map(Vec::len).sum();
        let sparsity = 1.0 - interactions as f64 / (users as f64 * items as f64);
        let avg_len = interactions as f64 / users as f64;
        Stats { users, items, interactions, sparsity, avg_len }
    }
}

impl std::fmt::Display for Stats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} users, {} items, {} interactions, {:.2}% sparse, avg len {:.2}",
            self.users,
            self.items,
            self.interactions,
            self.sparsity * 100.0,
            self.avg_len
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        assert!(ds.num_users() > 50, "{} users survived", ds.num_users());
        assert!(ds.num_items() > 10);
        for s in &ds.sequences {
            assert!(s.len() >= ds.config.min_interactions);
            assert!(s.len() <= ds.config.max_seq_len);
            for &i in s {
                assert!((i as usize) < ds.num_items(), "dangling item id {i}");
            }
        }
    }

    #[test]
    fn splits_partition_each_sequence() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        for u in 0..ds.num_users() {
            let full = &ds.sequences[u];
            let train = ds.train_seq(u);
            let (vctx, vt) = ds.valid_example(u);
            let (tctx, tt) = ds.test_example(u);
            assert_eq!(train.len(), full.len() - 2);
            assert_eq!(vctx, train);
            assert_eq!(vt, full[full.len() - 2]);
            assert_eq!(tctx.len(), full.len() - 1);
            assert_eq!(tt, *full.last().expect("non-empty"));
        }
    }

    #[test]
    fn ids_are_dense_after_remap() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        for (i, item) in ds.catalog.items.iter().enumerate() {
            assert_eq!(item.id as usize, i);
        }
        // Every catalog item appears somewhere (it survived k-core).
        let mut seen = vec![false; ds.num_items()];
        for s in &ds.sequences {
            for &i in s {
                seen[i as usize] = true;
            }
        }
        assert!(seen.iter().all(|&b| b));
        // by_sub covers all items exactly once.
        let covered: usize = ds.catalog.by_sub.iter().map(Vec::len).sum();
        assert_eq!(covered, ds.num_items());
    }

    #[test]
    fn stats_are_consistent() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let st = ds.stats();
        assert_eq!(st.users, ds.num_users());
        assert_eq!(st.items, ds.num_items());
        assert!(st.sparsity > 0.5 && st.sparsity < 1.0);
        assert!(st.avg_len >= ds.config.min_interactions as f64);
    }

    #[test]
    fn small_presets_mirror_table2_ordering() {
        // Avg length around 8-10 and high sparsity, as in Table II.
        let ds = Dataset::generate(&DatasetConfig::instruments_small());
        let st = ds.stats();
        assert!(st.avg_len > 5.0 && st.avg_len < 15.0, "avg len {}", st.avg_len);
        assert!(st.sparsity > 0.95, "sparsity {}", st.sparsity);
    }
}
