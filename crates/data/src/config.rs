//! Dataset configurations and presets.
//!
//! The paper's datasets (Table II) are Amazon review subsets with 25k–50k
//! users and 10k–21k items. The `small` presets keep the relative shape
//! (user/item ratio, sparsity, average sequence length ≈ 8–9, max length 20)
//! at a scale a single CPU can train all eleven models on. The `paper`
//! presets document the full-scale knobs; they are constructible but not
//! exercised by the experiment harness.

/// Parameters of a synthetic dataset.
#[derive(Clone, Debug)]
pub struct DatasetConfig {
    /// Taxonomy name (see [`lcrec_text::taxonomy::by_name`]).
    pub domain: &'static str,
    /// Users to simulate before 5-core filtering.
    pub num_users: usize,
    /// Items in the catalog before filtering.
    pub num_items: usize,
    /// Mean interactions per user (geometric-ish distribution).
    pub mean_seq_len: f32,
    /// Maximum sequence length kept (most recent wins) — 20 in the paper.
    pub max_seq_len: usize,
    /// K-core threshold — 5 in the paper.
    pub min_interactions: usize,
    /// Probability that the next interaction stays in the same sub-category.
    pub p_stay: f32,
    /// Probability of a bundle jump (collaborative, cross-category link).
    pub p_bundle: f32,
    /// Probability of moving to a sibling sub-category (same coarse).
    pub p_sibling: f32,
    /// Zipf exponent for item popularity within a sub-category.
    pub popularity_skew: f64,
    /// Master seed.
    pub seed: u64,
}

impl DatasetConfig {
    fn base(domain: &'static str, users: usize, items: usize, seed: u64) -> Self {
        DatasetConfig {
            domain,
            num_users: users,
            num_items: items,
            mean_seq_len: 9.0,
            max_seq_len: 20,
            min_interactions: 5,
            p_stay: 0.30,
            p_bundle: 0.25,
            p_sibling: 0.20,
            popularity_skew: 1.05,
            seed,
        }
    }

    /// Small-scale "Musical Instruments" analogue.
    pub fn instruments_small() -> Self {
        Self::base("instruments", 600, 280, 101)
    }

    /// Small-scale "Arts, Crafts and Sewing" analogue.
    pub fn arts_small() -> Self {
        Self::base("arts", 900, 430, 202)
    }

    /// Small-scale "Video Games" analogue.
    pub fn games_small() -> Self {
        Self::base("games", 1_000, 380, 303)
    }

    /// Paper-scale "Musical Instruments" (documented; not run on one CPU).
    pub fn instruments_paper() -> Self {
        Self::base("instruments", 24_773, 9_923, 101)
    }

    /// Paper-scale "Arts, Crafts and Sewing".
    pub fn arts_paper() -> Self {
        Self::base("arts", 45_142, 20_957, 202)
    }

    /// Paper-scale "Video Games".
    pub fn games_paper() -> Self {
        Self::base("games", 50_547, 16_860, 303)
    }

    /// Tiny fixture for unit tests and criterion benches.
    pub fn tiny() -> Self {
        let mut c = Self::base("tiny", 120, 40, 7);
        c.mean_seq_len = 8.0;
        c
    }

    /// The three small presets in paper order.
    pub fn small_suite() -> Vec<DatasetConfig> {
        vec![Self::instruments_small(), Self::arts_small(), Self::games_small()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_preserve_paper_shape() {
        // More users than items, as in all three Amazon subsets.
        for c in DatasetConfig::small_suite() {
            assert!(c.num_users > c.num_items, "{}", c.domain);
            assert_eq!(c.max_seq_len, 20);
            assert_eq!(c.min_interactions, 5);
        }
        // Games is the largest, Instruments the smallest (Table II).
        let suite = DatasetConfig::small_suite();
        assert!(suite[2].num_users > suite[1].num_users || suite[2].num_items > suite[1].num_items);
        assert!(suite[0].num_users < suite[1].num_users);
    }

    #[test]
    fn transition_probabilities_form_subdistribution() {
        for c in DatasetConfig::small_suite() {
            assert!(c.p_stay + c.p_bundle + c.p_sibling < 1.0);
        }
    }
}
