//! Alignment-tuning instruction tasks (paper §III-C).
//!
//! Five task families are generated as *symbolic* examples — interleaved
//! text segments and item slots — which the LC-Rec model renders into token
//! ids using its extended vocabulary (item slot → 4 index tokens). Keeping
//! the examples symbolic here lets the same builders drive every indexing
//! scheme in the Figure-2 ablation.
//!
//! Following the paper's anti-overfitting strategy, each datum is combined
//! with **one sampled template per epoch** rather than all templates.

use crate::dataset::Dataset;
use lcrec_text::gen::{ItemProfile, TextGen};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A piece of an instruction or response.
#[derive(Clone, Debug, PartialEq)]
pub enum Seg {
    /// Literal text (already lowercase, tokenizer-ready).
    Text(String),
    /// An item reference, rendered as its index tokens (or vanilla-ID token).
    Item(u32),
    /// A whole interaction history of item references.
    Items(Vec<u32>),
}

/// The task family an example belongs to — mirrors Table IV's rows.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Task {
    /// Sequential item prediction (§III-C1) — the target task.
    Seq,
    /// Explicit index↔language mutual prediction (§III-C2).
    Mut,
    /// Asymmetric item prediction (§III-C3a).
    Asy,
    /// Item prediction from user intention (§III-C3b).
    Ite,
    /// Personalized preference inference (§III-C3c).
    Per,
}

/// One instruction-tuning example.
#[derive(Clone, Debug)]
pub struct Example {
    /// Task family.
    pub task: Task,
    /// The instruction (condition) segments.
    pub prompt: Vec<Seg>,
    /// The response (generation target) segments.
    pub response: Vec<Seg>,
}

/// Which task families to include — the ablation knob for Table IV.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TaskSet {
    /// Sequential item prediction.
    pub seq: bool,
    /// Mutual index↔language alignment.
    pub mutual: bool,
    /// Asymmetric item prediction.
    pub asy: bool,
    /// Intention-based item prediction.
    pub ite: bool,
    /// Preference inference.
    pub per: bool,
}

impl TaskSet {
    /// Only the target task — the "SEQ" ablation row.
    pub fn seq_only() -> Self {
        TaskSet { seq: true, mutual: false, asy: false, ite: false, per: false }
    }

    /// All five families — full LC-Rec.
    pub fn full() -> Self {
        TaskSet { seq: true, mutual: true, asy: true, ite: true, per: true }
    }

    /// The cumulative rows of Table IV: SEQ, +MUT, +ASY, +ITE, +PER.
    pub fn ablation_ladder() -> Vec<(&'static str, TaskSet)> {
        let mut t = Self::seq_only();
        let mut out = vec![("SEQ", t)];
        t.mutual = true;
        out.push(("+MUT", t));
        t.asy = true;
        out.push(("+ASY", t));
        t.ite = true;
        out.push(("+ITE", t));
        t.per = true;
        out.push(("+PER", t));
        out
    }
}

const SEQ_TEMPLATES: &[(&str, &str)] = &[
    ("the user has interacted with the following items in chronological order", "recommend the next item for this user"),
    ("given the interaction history", "predict the item the user will interact with next"),
    ("a user browsed these items in order", "which item should be recommended next"),
    ("here is what the user bought recently", "suggest another item the user may need"),
];

const MUT_TO_INDEX_TEMPLATES: &[&str] = &[
    "an item has the following content can you tell me which item it is",
    "identify the item that matches this text",
    "which item does this title and description refer to",
];

const MUT_TO_TEXT_TEMPLATES: &[&str] = &[
    "please tell me what the following item is called along with a brief description",
    "describe the item referred to by these indices",
    "what are the title and description of this item",
];

const ASY_TITLE_TEMPLATES: &[&str] = &[
    "based on the interaction history predict the title of the item the user may need next",
    "given these interacted items generate the name of the next suitable item",
];

const ASY_DESC_TEMPLATES: &[&str] = &[
    "here is the interaction history of the user tell me what features the user expects from the next item",
    "from these interactions describe the attributes the user is looking for next",
];

const ASY_TITLESEQ_TEMPLATES: &[&str] = &[
    "given the title sequence of the items the user interacted with recommend a suitable next item",
    "the user previously chose items with these names suggest the next item",
];

const ITE_QUERY_TEMPLATES: &[&str] = &[
    "suppose you are a search engine a user searches for the following can you select an item that answers the query",
    "a user describes what they want find an item that matches",
];

const ITE_HIST_TEMPLATES: &[&str] = &[
    "as a recommender system you are assisting a user who recently interacted with these items and now wants an item with the following characteristics please recommend one",
    "given the user history and the desired features below recommend a matching item",
];

const PER_TEMPLATES: &[&str] = &[
    "using the ordered list of the user s historical items estimate the user s preferences",
    "infer what this user likes from their interaction history",
];

fn pick<'a, T: ?Sized>(rng: &mut StdRng, xs: &'a [&'a T]) -> &'a T {
    xs[rng.random_range(0..xs.len())]
}

/// Builds the instruction examples of `tasks` for one training epoch,
/// sampling one template per datum. `epoch` varies the template/window
/// choices across epochs.
#[derive(Debug)]
pub struct InstructionBuilder<'a> {
    ds: &'a Dataset,
    gen: TextGen<'a>,
}

impl<'a> InstructionBuilder<'a> {
    /// A builder over a prepared dataset.
    pub fn new(ds: &'a Dataset) -> Self {
        InstructionBuilder { ds, gen: TextGen::new(ds.catalog.taxonomy) }
    }

    fn profiles(&self, items: &[u32]) -> Vec<ItemProfile> {
        items.iter().map(|&i| self.ds.catalog.item(i).profile).collect()
    }

    /// Generates one epoch of examples for the enabled tasks.
    pub fn epoch(&self, tasks: TaskSet, epoch: u64) -> Vec<Example> {
        let mut rng = StdRng::seed_from_u64(self.ds.config.seed ^ epoch.wrapping_mul(0xE0C4));
        let mut out = Vec::new();
        if tasks.seq {
            self.seq_examples(&mut out, &mut rng);
        }
        if tasks.mutual {
            self.mut_examples(&mut out, &mut rng);
        }
        if tasks.asy {
            self.asy_examples(&mut out, &mut rng);
        }
        if tasks.ite {
            self.ite_examples(&mut out, &mut rng);
        }
        if tasks.per {
            self.per_examples(&mut out, &mut rng);
        }
        // Shuffle so batches mix tasks.
        for i in (1..out.len()).rev() {
            out.swap(i, rng.random_range(0..=i));
        }
        out
    }

    fn seq_examples(&self, out: &mut Vec<Example>, rng: &mut StdRng) {
        // The target task gets full prefix augmentation (every window of
        // every training sequence), exactly like the classic baselines and
        // TIGER — at reduced dataset scale the LM needs the same number of
        // sequential examples to be comparable. Each window still pairs
        // with one sampled template per epoch (the paper's strategy).
        for u in 0..self.ds.num_users() {
            let train = self.ds.train_seq(u);
            for end in 2..=train.len() {
                let hist = &train[..end - 1];
                let target = train[end - 1];
                let (t1, t2) = SEQ_TEMPLATES[rng.random_range(0..SEQ_TEMPLATES.len())];
                out.push(Example {
                    task: Task::Seq,
                    prompt: vec![
                        Seg::Text(t1.to_string()),
                        Seg::Items(hist.to_vec()),
                        Seg::Text(t2.to_string()),
                    ],
                    response: vec![Seg::Item(target)],
                });
            }
        }
    }

    fn mut_examples(&self, out: &mut Vec<Example>, rng: &mut StdRng) {
        for item in &self.ds.catalog.items {
            let text = item.full_text();
            if rng.random_range(0.0f32..1.0) < 0.5 {
                let t = pick(rng, MUT_TO_INDEX_TEMPLATES);
                out.push(Example {
                    task: Task::Mut,
                    prompt: vec![Seg::Text(format!("{t} {text}"))],
                    response: vec![Seg::Item(item.id)],
                });
            } else {
                let t = pick(rng, MUT_TO_TEXT_TEMPLATES);
                out.push(Example {
                    task: Task::Mut,
                    prompt: vec![Seg::Text(t.to_string()), Seg::Item(item.id)],
                    response: vec![Seg::Text(text)],
                });
            }
        }
    }

    fn asy_examples(&self, out: &mut Vec<Example>, rng: &mut StdRng) {
        for u in 0..self.ds.num_users() {
            let train = self.ds.train_seq(u);
            if train.len() < 2 {
                continue;
            }
            let end = rng.random_range(2..=train.len());
            let hist = &train[..end - 1];
            let target = train[end - 1];
            let titem = self.ds.catalog.item(target);
            match rng.random_range(0..3u32) {
                0 => {
                    // Index history → target title.
                    let t = pick(rng, ASY_TITLE_TEMPLATES);
                    out.push(Example {
                        task: Task::Asy,
                        prompt: vec![Seg::Text(t.to_string()), Seg::Items(hist.to_vec())],
                        response: vec![Seg::Text(titem.title.clone())],
                    });
                }
                1 => {
                    // Index history → expected features (description).
                    let t = pick(rng, ASY_DESC_TEMPLATES);
                    out.push(Example {
                        task: Task::Asy,
                        prompt: vec![Seg::Text(t.to_string()), Seg::Items(hist.to_vec())],
                        response: vec![Seg::Text(titem.description.clone())],
                    });
                }
                _ => {
                    // Title history → target indices.
                    let t = pick(rng, ASY_TITLESEQ_TEMPLATES);
                    let titles: Vec<String> =
                        hist.iter().map(|&i| self.ds.catalog.item(i).title.clone()).collect();
                    out.push(Example {
                        task: Task::Asy,
                        prompt: vec![Seg::Text(format!("{t} {}", titles.join(" , ")))],
                        response: vec![Seg::Item(target)],
                    });
                }
            }
        }
    }

    fn ite_examples(&self, out: &mut Vec<Example>, rng: &mut StdRng) {
        for u in 0..self.ds.num_users() {
            let train = self.ds.train_seq(u);
            if train.len() < 2 {
                continue;
            }
            let end = rng.random_range(2..=train.len());
            let hist = &train[..end - 1];
            let target = train[end - 1];
            let profile = self.ds.catalog.item(target).profile;
            let intention = self.gen.intention(&profile, rng);
            if rng.random_range(0.0f32..1.0) < 0.5 {
                let t = pick(rng, ITE_QUERY_TEMPLATES);
                out.push(Example {
                    task: Task::Ite,
                    prompt: vec![Seg::Text(format!("{t} {intention}"))],
                    response: vec![Seg::Item(target)],
                });
            } else {
                let t = pick(rng, ITE_HIST_TEMPLATES);
                out.push(Example {
                    task: Task::Ite,
                    prompt: vec![
                        Seg::Text(t.to_string()),
                        Seg::Items(hist.to_vec()),
                        Seg::Text(intention),
                    ],
                    response: vec![Seg::Item(target)],
                });
            }
        }
    }

    fn per_examples(&self, out: &mut Vec<Example>, rng: &mut StdRng) {
        for u in 0..self.ds.num_users() {
            let train = self.ds.train_seq(u);
            if train.len() < 3 {
                continue;
            }
            let t = pick(rng, PER_TEMPLATES);
            let profiles = self.profiles(train);
            let pref = self.gen.preference(&profiles, rng);
            out.push(Example {
                task: Task::Per,
                prompt: vec![Seg::Text(t.to_string()), Seg::Items(train.to_vec())],
                response: vec![Seg::Text(pref)],
            });
        }
    }

    /// The fixed evaluation prompt for sequential recommendation (template 0,
    /// matching the paper's practice of reporting averages over templates —
    /// we report the canonical one and expose others via `seq_eval_prompt_n`).
    pub fn seq_eval_prompt(&self, history: &[u32]) -> Vec<Seg> {
        self.seq_eval_prompt_n(history, 0)
    }

    /// Evaluation prompt using template `n` (wrapping).
    pub fn seq_eval_prompt_n(&self, history: &[u32], n: usize) -> Vec<Seg> {
        let (t1, t2) = SEQ_TEMPLATES[n % SEQ_TEMPLATES.len()];
        vec![Seg::Text(t1.to_string()), Seg::Items(history.to_vec()), Seg::Text(t2.to_string())]
    }

    /// Number of distinct SEQ templates (for template-averaged evaluation).
    pub fn num_seq_templates(&self) -> usize {
        SEQ_TEMPLATES.len()
    }

    /// Evaluation prompt for intention-based retrieval (Figure 3): the
    /// intention of the test item is generated deterministically per user.
    pub fn intention_eval_prompt(&self, user: usize) -> (Vec<Seg>, u32) {
        let (_, target) = self.ds.test_example(user);
        let profile = self.ds.catalog.item(target).profile;
        let mut rng = StdRng::seed_from_u64(self.ds.config.seed ^ (user as u64) << 17);
        let intention = self.gen.intention(&profile, &mut rng);
        let t = ITE_QUERY_TEMPLATES[0];
        (vec![Seg::Text(format!("{t} {intention}"))], target)
    }

    /// The intention text alone (DSSM baseline input for Figure 3).
    pub fn intention_query(&self, user: usize) -> (String, u32) {
        let (_, target) = self.ds.test_example(user);
        let profile = self.ds.catalog.item(target).profile;
        let mut rng = StdRng::seed_from_u64(self.ds.config.seed ^ (user as u64) << 17);
        (self.gen.intention(&profile, &mut rng), target)
    }

    /// Text corpus for vocabulary construction: all item text, all template
    /// text, and samples of oracle text so every reachable word is in-vocab.
    pub fn vocabulary_corpus(&self) -> Vec<String> {
        let mut corpus = Vec::new();
        for item in &self.ds.catalog.items {
            corpus.push(item.full_text());
        }
        for (a, b) in SEQ_TEMPLATES {
            corpus.push(format!("{a} {b}"));
        }
        for t in MUT_TO_INDEX_TEMPLATES
            .iter()
            .chain(MUT_TO_TEXT_TEMPLATES)
            .chain(ASY_TITLE_TEMPLATES)
            .chain(ASY_DESC_TEMPLATES)
            .chain(ASY_TITLESEQ_TEMPLATES)
            .chain(ITE_QUERY_TEMPLATES)
            .chain(ITE_HIST_TEMPLATES)
            .chain(PER_TEMPLATES)
        {
            corpus.push((*t).to_string());
        }
        // Oracle texts cover intention/preference wording.
        let mut rng = StdRng::seed_from_u64(self.ds.config.seed ^ 0xC0FFEE);
        for item in &self.ds.catalog.items {
            corpus.push(self.gen.intention(&item.profile, &mut rng));
        }
        for u in 0..self.ds.num_users().min(256) {
            let profiles = self.profiles(self.ds.train_seq(u));
            corpus.push(self.gen.preference(&profiles, &mut rng));
        }
        corpus.push(", .".to_string());
        corpus
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::DatasetConfig;

    fn dataset() -> Dataset {
        Dataset::generate(&DatasetConfig::tiny())
    }

    #[test]
    fn seq_only_produces_all_prefix_windows() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        let ex = b.epoch(TaskSet::seq_only(), 0);
        let expected: usize = (0..ds.num_users())
            .map(|u| ds.train_seq(u).len().saturating_sub(1))
            .sum();
        assert_eq!(ex.len(), expected);
        assert!(ex.iter().all(|e| e.task == Task::Seq));
    }

    #[test]
    fn full_task_set_covers_all_families() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        let ex = b.epoch(TaskSet::full(), 0);
        for task in [Task::Seq, Task::Mut, Task::Asy, Task::Ite, Task::Per] {
            assert!(ex.iter().any(|e| e.task == task), "missing {task:?}");
        }
    }

    #[test]
    fn epochs_vary_but_are_reproducible() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        let e0a = b.epoch(TaskSet::full(), 0);
        let e0b = b.epoch(TaskSet::full(), 0);
        let e1 = b.epoch(TaskSet::full(), 1);
        assert_eq!(e0a.len(), e0b.len());
        let fmt = |ex: &[Example]| format!("{:?}", ex.iter().take(5).collect::<Vec<_>>());
        assert_eq!(fmt(&e0a), fmt(&e0b));
        assert_ne!(fmt(&e0a), fmt(&e1), "different epochs should differ");
    }

    #[test]
    fn seq_targets_come_from_training_region() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        for e in b.epoch(TaskSet::seq_only(), 3) {
            let Seg::Item(target) = e.response[0] else { panic!("seq response must be an item") };
            // Target must not be any user's held-out test item *for that
            // prompt's user*; weaker but checkable: target is a valid id.
            assert!((target as usize) < ds.num_items());
        }
    }

    #[test]
    fn ablation_ladder_is_cumulative() {
        let ladder = TaskSet::ablation_ladder();
        assert_eq!(ladder.len(), 5);
        assert_eq!(ladder[0].0, "SEQ");
        assert_eq!(ladder[4].1, TaskSet::full());
        for w in ladder.windows(2) {
            let count = |t: TaskSet| {
                [t.seq, t.mutual, t.asy, t.ite, t.per].iter().filter(|&&b| b).count()
            };
            assert_eq!(count(w[1].1), count(w[0].1) + 1);
        }
    }

    #[test]
    fn vocabulary_corpus_covers_template_and_item_words() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        let corpus = b.vocabulary_corpus();
        let vocab = lcrec_text::Vocab::build(corpus.iter().map(String::as_str), 1);
        // Every example's text must tokenize without UNKs.
        for e in b.epoch(TaskSet::full(), 0).iter().take(200) {
            for seg in e.prompt.iter().chain(&e.response) {
                if let Seg::Text(t) = seg {
                    assert_eq!(vocab.oov_rate(t), 0.0, "OOV in {t:?}");
                }
            }
        }
    }

    #[test]
    fn intention_eval_prompt_is_deterministic() {
        let ds = dataset();
        let b = InstructionBuilder::new(&ds);
        let (p1, t1) = b.intention_eval_prompt(0);
        let (p2, t2) = b.intention_eval_prompt(0);
        assert_eq!(t1, t2);
        assert_eq!(format!("{p1:?}"), format!("{p2:?}"));
    }
}
