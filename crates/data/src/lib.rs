//! # lcrec-data
//!
//! Dataset substrate for the LC-Rec reproduction: synthetic Amazon-like
//! catalogs, latent-preference interaction simulation with 5-core
//! filtering, leave-one-out splits, Table-II statistics, and the five
//! alignment-tuning instruction-task builders of paper §III-C.

#![warn(missing_docs)]

pub mod catalog;
pub mod config;
pub mod dataset;
pub mod instructions;
pub mod interactions;
pub mod scale;

pub use catalog::{Catalog, Item};
pub use config::DatasetConfig;
pub use dataset::{Dataset, Stats};
pub use instructions::{Example, InstructionBuilder, Seg, Task, TaskSet};
pub use scale::{ReplaySampler, ScaleConfig, ScaleError, UserStream, ZipfSampler};
