//! # lcrec-serve
//!
//! A batched inference engine for LC-Rec: recommendation requests (user
//! history → top-K item indices) are admitted into a bounded queue, grouped
//! by a max-batch-size / max-wait policy, and decoded **together** — one
//! weight pass per transformer step shared across every request's prefill
//! tokens and beam candidates ([`lcrec_core::multi_constrained_beam_search_with`]).
//!
//! Design contract (see `docs/SERVING.md` for the full lifecycle):
//!
//! * **Bit-identical to sequential decoding.** The batched LM step does
//!   per-row arithmetic identical to the one-request path, so a request's
//!   ranking and log-probabilities never depend on which other requests
//!   share its batch — at batch size 1, 3 or 8, answers match bit for bit
//!   (`tests/serving.rs`).
//! * **Graceful degradation.** `max_batch = 1` turns the engine into a
//!   plain sequential server; nothing else changes.
//! * **Backpressure, not buffering.** The admission queue is bounded
//!   ([`ServeConfig::queue_cap`]); a full queue rejects new requests with a
//!   typed reason ([`Reject::QueueFull`]) instead of growing without bound.
//! * **Every request ends in exactly one typed outcome.** Submission either
//!   returns a ticket or a typed [`Reject`] (queue full, load shed, invalid
//!   `k`); a ticketed request later resolves to exactly one [`Outcome`] —
//!   [`Outcome::Completed`] or [`Outcome::TimedOut`] — never a panic and
//!   never silence (`docs/ROBUSTNESS.md`).
//! * **Observable.** Every batch records a `serve.batch` span, batch-size
//!   histogram and per-request latency under the `LCREC_OBS` gate; faults,
//!   retries, sheds and timeouts have counters of their own.
//!
//! Batching knobs come from [`ServeConfig`] or the `LCREC_SERVE_BATCH`,
//! `LCREC_SERVE_QUEUE` and `LCREC_SERVE_WAIT_MS` environment variables
//! (documented in `docs/ENVIRONMENT.md`). Fault injection for the chaos
//! suite is wired through [`lcrec_fault::FaultPlan`] (`LCREC_FAULT`,
//! default off).

#![warn(missing_docs)]

pub mod router;

pub use router::{Ring, Router, RouterConfig, RouterOutcome, RouterReject, HEDGE_ENV, SHARDS_ENV};

use lcrec_core::{
    multi_constrained_beam_search_scratch, CausalLm, DecodeScratch, ExtendedVocab, Hypothesis,
    LcRec,
};
use lcrec_data::Seg;
use lcrec_fault::{deadline_expired, seams, Backoff, FaultPlan};
use lcrec_par::Pool;
use lcrec_rqvae::IndexTrie;
use lcrec_text::token::BOS;
use std::collections::VecDeque;
use std::fmt;
use std::time::Instant;

/// Environment variable overriding [`ServeConfig::max_batch`].
pub const BATCH_ENV: &str = "LCREC_SERVE_BATCH";
/// Environment variable overriding [`ServeConfig::queue_cap`].
pub const QUEUE_ENV: &str = "LCREC_SERVE_QUEUE";
/// Environment variable overriding [`ServeConfig::max_wait_ms`].
pub const WAIT_ENV: &str = "LCREC_SERVE_WAIT_MS";

/// Batching and admission policy for an [`Engine`].
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Most requests decoded in one shared weight pass. `1` degrades the
    /// engine to plain sequential serving (same answers, bit for bit).
    pub max_batch: usize,
    /// Admission-queue capacity; a full queue rejects new requests with
    /// [`Reject::QueueFull`] instead of buffering unboundedly.
    pub queue_cap: usize,
    /// Oldest-request wait (milliseconds) that forces dispatch of a
    /// partial batch. `0` means any queued request is immediately ready.
    pub max_wait_ms: u64,
    /// Beam width floor: each request decodes at `max(beam, k)` so the
    /// top-K cut always comes from a full-width ranked list.
    pub beam: usize,
    /// Instruction text rendered in front of the history items.
    pub template: String,
    /// History items kept per request (context-window budget; mirrors
    /// `LcRecConfig::max_hist_items`).
    pub max_hist_items: usize,
    /// Default per-request deadline in milliseconds, measured from
    /// admission. A request still queued (or reached in a batch) past its
    /// deadline resolves as [`Outcome::TimedOut`] instead of decoding.
    /// `None` (the default) disables deadlines entirely, preserving the
    /// pre-robustness behaviour bit for bit.
    pub deadline_ms: Option<u64>,
    /// Load-shedding watermark: when set and the queue already holds at
    /// least this many requests, `submit` rejects with [`Reject::Shed`]
    /// before the hard [`ServeConfig::queue_cap`] is reached. `None` (the
    /// default) disables shedding.
    pub shed_watermark: Option<usize>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 8,
            queue_cap: 64,
            max_wait_ms: 5,
            beam: 10,
            template: "recommend the next item".to_string(),
            max_hist_items: 8,
            deadline_ms: None,
            shed_watermark: None,
        }
    }
}

impl ServeConfig {
    /// Defaults overridden by the `LCREC_SERVE_BATCH`, `LCREC_SERVE_QUEUE`
    /// and `LCREC_SERVE_WAIT_MS` environment variables (unset or
    /// unparsable values keep the default; batch and queue clamp to ≥ 1).
    pub fn from_env() -> Self {
        let mut cfg = ServeConfig::default();
        if let Some(v) = env_usize(BATCH_ENV) {
            cfg.max_batch = v.max(1);
        }
        if let Some(v) = env_usize(QUEUE_ENV) {
            cfg.queue_cap = v.max(1);
        }
        if let Some(v) = env_usize(WAIT_ENV) {
            cfg.max_wait_ms = v as u64;
        }
        cfg
    }
}

/// Shared env-var parsing for this crate's gate module (`detlint` allows
/// environment reads only here, so [`router::RouterConfig::from_env`]
/// calls back into this helper).
pub(crate) fn env_usize(name: &str) -> Option<usize> {
    std::env::var(name).ok().and_then(|v| v.trim().parse::<usize>().ok())
}

/// Why a request was not admitted. Returned by [`Engine::submit`] so
/// callers can shed load explicitly instead of blocking.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The bounded admission queue is at capacity.
    QueueFull {
        /// The configured [`ServeConfig::queue_cap`] that was hit.
        capacity: usize,
    },
    /// The engine shed the request before the hard capacity: either the
    /// [`ServeConfig::shed_watermark`] was reached or admission pressure
    /// was injected by the active [`FaultPlan`].
    Shed {
        /// Requests already queued when the request was shed.
        queued: usize,
    },
    /// The requested `k` is unusable: zero asks for an empty ranking.
    /// (`k` larger than the catalog is clamped, not rejected.)
    InvalidK {
        /// The `k` the caller passed to [`Engine::submit`].
        k: usize,
    },
}

impl fmt::Display for Reject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Reject::QueueFull { capacity } => {
                write!(f, "admission queue full (capacity {capacity}); retry later")
            }
            Reject::Shed { queued } => {
                write!(f, "request shed under load ({queued} queued); retry later")
            }
            Reject::InvalidK { k } => {
                write!(f, "invalid top-k request (k = {k}); k must be at least 1")
            }
        }
    }
}

impl std::error::Error for Reject {}

/// Why a ticketed request timed out instead of completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TimeoutReason {
    /// The per-request deadline expired before decoding started.
    Deadline,
    /// Transient decode faults exhausted the bounded retry budget.
    RetriesExhausted,
}

impl fmt::Display for TimeoutReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimeoutReason::Deadline => write!(f, "deadline expired"),
            TimeoutReason::RetriesExhausted => write!(f, "retries exhausted"),
        }
    }
}

/// The final, typed resolution of one admitted request. Every ticket
/// returned by [`Engine::submit`] resolves to exactly one `Outcome` from
/// [`Engine::step_outcomes`] / [`Engine::flush_outcomes`] — the engine
/// never panics on a request and never drops one silently.
#[derive(Clone, Debug)]
pub enum Outcome {
    /// The request decoded successfully.
    Completed(Response),
    /// The request was abandoned with a typed reason.
    TimedOut {
        /// The ticket returned by [`Engine::submit`].
        id: u64,
        /// Seconds from admission to abandonment.
        waited_s: f64,
        /// Why the request did not complete.
        reason: TimeoutReason,
    },
}

impl Outcome {
    /// The ticket this outcome resolves.
    pub fn id(&self) -> u64 {
        match self {
            Outcome::Completed(r) => r.id,
            Outcome::TimedOut { id, .. } => *id,
        }
    }

    /// True for [`Outcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, Outcome::Completed(_))
    }

    /// The response, when the request completed.
    pub fn completed(self) -> Option<Response> {
        match self {
            Outcome::Completed(r) => Some(r),
            Outcome::TimedOut { .. } => None,
        }
    }
}

/// One completed request: the ranked recommendations plus serving metadata.
#[derive(Clone, Debug)]
pub struct Response {
    /// The ticket returned by [`Engine::submit`].
    pub id: u64,
    /// Top-K items, best first (K as requested at submit time).
    pub ranked: Vec<Hypothesis>,
    /// Seconds from admission to completion (queue wait + decode).
    pub latency_s: f64,
    /// How many requests shared this request's batch.
    pub batch_size: usize,
}

struct Pending {
    id: u64,
    history: Vec<u32>,
    k: usize,
    enqueued: Instant,
    deadline_ms: Option<u64>,
}

/// The batched inference engine.
///
/// Borrows a trained model's parts (LM, extended vocabulary, index trie) —
/// the engine adds no model state of its own, only the admission queue.
/// Requests go in via [`Engine::submit`]; batches come out via
/// [`Engine::step`] (policy-gated) or [`Engine::flush`] (drain everything).
///
/// # Examples
///
/// ```
/// use lcrec_core::{CausalLm, ExtendedVocab, LmConfig};
/// use lcrec_rqvae::{IndexTrie, ItemIndices};
/// use lcrec_serve::{Engine, ServeConfig};
/// use lcrec_text::Vocab;
///
/// // A miniature model: 4 items with 2-level semantic IDs.
/// let base = Vocab::build(["recommend the next item"], 1);
/// let indices = ItemIndices::new(
///     vec![3, 3],
///     vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
/// );
/// let trie = IndexTrie::build(&indices);
/// let vocab = ExtendedVocab::new(base, indices);
/// let lm = CausalLm::new(LmConfig::test(vocab.len()));
///
/// let mut engine = Engine::new(&lm, &vocab, &trie, ServeConfig::default());
/// let id = engine.submit(&[0, 2], 3).expect("queue has room");
/// let responses = engine.flush();
/// assert_eq!(responses.len(), 1);
/// assert_eq!(responses[0].id, id);
/// assert_eq!(responses[0].ranked.len(), 3, "top-3 of the 4 items");
/// ```
#[derive(Debug)]
pub struct Engine<'a> {
    lm: &'a CausalLm,
    vocab: &'a ExtendedVocab,
    trie: &'a IndexTrie,
    cfg: ServeConfig,
    pool: Pool,
    queue: VecDeque<Pending>,
    next_id: u64,
    plan: FaultPlan,
    backoff: Backoff,
    /// Decode buffers + the cached LM-head transpose, reused across every
    /// dispatched batch. Safe for the engine's whole lifetime: it borrows
    /// the LM immutably, so the parameters the scratch snapshotted cannot
    /// change while the engine exists.
    scratch: DecodeScratch,
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Pending").field("id", &self.id).field("k", &self.k).finish()
    }
}

impl<'a> Engine<'a> {
    /// An engine over explicit model parts, with parallelism from the
    /// ambient [`Pool::from_env`] (`LCREC_THREADS`).
    pub fn new(
        lm: &'a CausalLm,
        vocab: &'a ExtendedVocab,
        trie: &'a IndexTrie,
        cfg: ServeConfig,
    ) -> Self {
        Engine::with_pool(lm, vocab, trie, cfg, Pool::from_env())
    }

    /// [`Engine::new`] with an explicit thread pool.
    pub fn with_pool(
        lm: &'a CausalLm,
        vocab: &'a ExtendedVocab,
        trie: &'a IndexTrie,
        cfg: ServeConfig,
        pool: Pool,
    ) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be at least 1");
        assert!(cfg.queue_cap >= 1, "queue_cap must be at least 1");
        assert!(cfg.beam >= 1, "beam must be at least 1");
        Engine {
            lm,
            vocab,
            trie,
            cfg,
            pool,
            queue: VecDeque::new(),
            next_id: 0,
            plan: FaultPlan::from_env(),
            backoff: Backoff::default(),
            scratch: lm.new_scratch(),
        }
    }

    /// Replaces the engine's fault plan (defaults to
    /// [`FaultPlan::from_env`], i.e. disabled unless `LCREC_FAULT` is
    /// set). The chaos suite uses this to run explicit seeded plans
    /// without touching the environment.
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.plan = plan;
        self
    }

    /// Replaces the bounded retry policy used for transient decode
    /// faults (defaults to [`Backoff::default`]).
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// Replaces the fault plan in place. [`Router`] uses this to give
    /// every shard a plan derived from one spec but a shard-distinct
    /// seed, so replicas do not hiccup in lockstep.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.plan = plan;
    }

    /// An engine over a trained [`LcRec`] model's LM, vocabulary and trie.
    pub fn for_model(model: &'a LcRec, cfg: ServeConfig) -> Self {
        Engine::new(model.lm(), model.vocab(), model.trie(), cfg)
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.cfg
    }

    /// Requests currently waiting for a batch.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Admits a request (user `history` → top-`k` items) into the queue and
    /// returns its ticket, or rejects it with a typed reason: the bounded
    /// queue is at capacity ([`Reject::QueueFull`]), the engine is
    /// shedding load ([`Reject::Shed`]), or `k` is zero
    /// ([`Reject::InvalidK`]). A `k` beyond the catalog size is clamped to
    /// the catalog — every item ranked is still a real item. The request
    /// carries the config-default deadline ([`ServeConfig::deadline_ms`]);
    /// use [`Engine::submit_with_deadline`] for a per-request override.
    pub fn submit(&mut self, history: &[u32], k: usize) -> Result<u64, Reject> {
        self.submit_with_deadline(history, k, self.cfg.deadline_ms)
    }

    /// [`Engine::submit`] with an explicit per-request deadline
    /// (milliseconds from admission; `None` means no deadline), overriding
    /// [`ServeConfig::deadline_ms`].
    pub fn submit_with_deadline(
        &mut self,
        history: &[u32],
        k: usize,
        deadline_ms: Option<u64>,
    ) -> Result<u64, Reject> {
        if k == 0 {
            lcrec_obs::counter_add("serve.rejected", 1);
            return Err(Reject::InvalidK { k });
        }
        let k = k.min(self.vocab.indices().len());
        if self.queue.len() >= self.cfg.queue_cap {
            lcrec_obs::counter_add("serve.rejected", 1);
            return Err(Reject::QueueFull { capacity: self.cfg.queue_cap });
        }
        let watermark_hit =
            self.cfg.shed_watermark.is_some_and(|w| self.queue.len() >= w);
        if watermark_hit || self.plan.should_fail(seams::SERVE_ADMISSION) {
            lcrec_obs::counter_add("serve.shed", 1);
            return Err(Reject::Shed { queued: self.queue.len() });
        }
        let id = self.next_id;
        self.next_id += 1;
        lcrec_obs::counter_add("serve.requests", 1);
        self.queue.push_back(Pending {
            id,
            history: history.to_vec(),
            k,
            enqueued: Instant::now(), // lint: allow(det, reason = "arrival timestamps drive deadline/latency bookkeeping only; decode outputs stay bit-identical (pinned by tests/serving.rs)")
            deadline_ms,
        });
        Ok(id)
    }

    /// True when the batching policy would dispatch now: the queue holds a
    /// full batch, or the oldest request has waited at least
    /// [`ServeConfig::max_wait_ms`].
    pub fn ready(&self) -> bool {
        if self.queue.len() >= self.cfg.max_batch {
            return true;
        }
        match self.queue.front() {
            Some(oldest) => {
                oldest.enqueued.elapsed().as_millis() as u64 >= self.cfg.max_wait_ms
            }
            None => false,
        }
    }

    /// Dispatches **one** batch (the oldest `max_batch` requests) if the
    /// policy says so; returns the completed responses, or an empty vector
    /// when [`Engine::ready`] is false. Drive this from a serving loop;
    /// tests and offline use can call [`Engine::flush`] instead.
    ///
    /// Timed-out requests are dropped from this view; use
    /// [`Engine::step_outcomes`] for full typed-outcome accounting.
    pub fn step(&mut self) -> Vec<Response> {
        self.step_outcomes().into_iter().filter_map(Outcome::completed).collect()
    }

    /// Like [`Engine::step`], but returns **every** request's typed
    /// [`Outcome`] — completions and timeouts — in admission order.
    pub fn step_outcomes(&mut self) -> Vec<Outcome> {
        if !self.ready() {
            return Vec::new();
        }
        let n = self.queue.len().min(self.cfg.max_batch);
        let batch: Vec<Pending> = self.queue.drain(..n).collect();
        self.dispatch(batch)
    }

    /// Drains the whole queue in [`ServeConfig::max_batch`]-sized batches
    /// (ignoring the wait policy) and returns all responses in admission
    /// order.
    ///
    /// Timed-out requests are dropped from this view; use
    /// [`Engine::flush_outcomes`] for full typed-outcome accounting.
    pub fn flush(&mut self) -> Vec<Response> {
        self.flush_outcomes().into_iter().filter_map(Outcome::completed).collect()
    }

    /// Like [`Engine::flush`], but returns **every** request's typed
    /// [`Outcome`] — completions and timeouts — in admission order.
    pub fn flush_outcomes(&mut self) -> Vec<Outcome> {
        let mut out = Vec::new();
        while !self.queue.is_empty() {
            let n = self.queue.len().min(self.cfg.max_batch);
            let batch: Vec<Pending> = self.queue.drain(..n).collect();
            out.extend(self.dispatch(batch));
        }
        out
    }

    /// Renders one request's prompt exactly as `LcRec::render_prompt`
    /// does: history capped to [`ServeConfig::max_hist_items`], BOS +
    /// template text + item-index tokens, then front-truncated (dropping
    /// the oldest tokens after BOS) so prompt + one full index fits the
    /// LM's context window. Public so bit-identity tests can compare the
    /// engine against direct beam-search calls on the same tokens.
    pub fn render_prompt(&self, history: &[u32]) -> Vec<u32> {
        let capped = if history.len() > self.cfg.max_hist_items {
            &history[history.len() - self.cfg.max_hist_items..] // lint: allow(panic, reason = "the branch guard makes the start offset at most history.len()")
        } else {
            history
        };
        let segs =
            [Seg::Text(self.cfg.template.clone()), Seg::Items(capped.to_vec())];
        let mut tokens = vec![BOS];
        tokens.extend(self.vocab.render(&segs));
        let max_seq = self.lm.config().max_seq;
        // Saturate (and keep BOS) so a context window smaller than one item
        // index degrades to a maximally-truncated prompt instead of
        // underflowing.
        let budget = max_seq.saturating_sub(self.vocab.indices().levels + 1).max(1);
        if tokens.len() > budget {
            let excess = tokens.len() - budget;
            tokens.drain(1..1 + excess);
        }
        tokens
    }

    fn dispatch(&mut self, batch: Vec<Pending>) -> Vec<Outcome> {
        if batch.is_empty() {
            return Vec::new();
        }
        let _span = lcrec_obs::span("serve.batch");
        let obs_on = lcrec_obs::enabled();
        if obs_on {
            lcrec_obs::counter_add("serve.batches", 1);
            lcrec_obs::hist_record("serve.batch_size", batch.len() as f64);
        }
        let batch_size = batch.len();
        // Deadline sweep, in admission order: a request whose deadline has
        // already expired (or whose deadline seam fires under a chaos
        // plan) is abandoned before it costs any decode work.
        let mut slots: Vec<Option<Outcome>> = Vec::with_capacity(batch_size);
        slots.resize_with(batch_size, || None);
        let mut live: Vec<(usize, Pending)> = Vec::with_capacity(batch_size);
        for (i, p) in batch.into_iter().enumerate() {
            let waited_ms = p.enqueued.elapsed().as_millis() as u64;
            let expired = p.deadline_ms.is_some_and(|dl| deadline_expired(waited_ms, dl))
                || self.plan.should_fail(seams::SERVE_DEADLINE);
            if expired {
                lcrec_obs::counter_add("serve.timeouts", 1);
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(Outcome::TimedOut {
                        id: p.id,
                        waited_s: p.enqueued.elapsed().as_secs_f64(),
                        reason: TimeoutReason::Deadline,
                    });
                }
            } else {
                live.push((i, p));
            }
        }
        if live.is_empty() {
            return slots.into_iter().flatten().collect();
        }
        // Bounded retry against transient decode faults. Decoding itself
        // is deterministic, so a "failed attempt" costs one schedule slot
        // and one counter tick, never a repeated weight pass or a sleep —
        // the backoff delay is accounted, not slept. Under a transient
        // plan the burst cap guarantees success within the budget; only a
        // chaos plan can exhaust it.
        let mut failed = 0u32;
        while failed < self.backoff.max_attempts()
            && self.plan.should_fail(seams::SERVE_DECODE)
        {
            lcrec_obs::counter_add("serve.retries", 1);
            lcrec_obs::counter_add("serve.backoff_ms", self.backoff.delay_ms(failed));
            failed += 1;
        }
        if failed >= self.backoff.max_attempts() {
            for (i, p) in live {
                lcrec_obs::counter_add("serve.timeouts", 1);
                if let Some(slot) = slots.get_mut(i) {
                    *slot = Some(Outcome::TimedOut {
                        id: p.id,
                        waited_s: p.enqueued.elapsed().as_secs_f64(),
                        reason: TimeoutReason::RetriesExhausted,
                    });
                }
            }
            return slots.into_iter().flatten().collect();
        }
        let prompts: Vec<Vec<u32>> =
            live.iter().map(|(_, p)| self.render_prompt(&p.history)).collect();
        let widths: Vec<usize> =
            live.iter().map(|(_, p)| p.k.max(self.cfg.beam)).collect();
        let ranked_lists = multi_constrained_beam_search_scratch(
            &self.pool,
            self.lm,
            self.vocab,
            self.trie,
            &prompts,
            &widths,
            &mut self.scratch,
        );
        for ((i, pending), mut ranked) in live.into_iter().zip(ranked_lists) {
            ranked.truncate(pending.k);
            let latency_s = pending.enqueued.elapsed().as_secs_f64();
            if obs_on {
                lcrec_obs::profile_record("serve.request_s", latency_s);
            }
            if let Some(slot) = slots.get_mut(i) {
                *slot = Some(Outcome::Completed(Response {
                    id: pending.id,
                    ranked,
                    latency_s,
                    batch_size,
                }));
            }
        }
        slots.into_iter().flatten().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_core::LmConfig;
    use lcrec_rqvae::ItemIndices;
    use lcrec_text::Vocab;

    fn setup() -> (CausalLm, ExtendedVocab, IndexTrie) {
        let base = Vocab::build(["recommend the next item please"], 1);
        let indices = ItemIndices::new(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
        );
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm = CausalLm::new(LmConfig::test(vocab.len()));
        (lm, vocab, trie)
    }

    #[test]
    fn queue_full_rejects_with_capacity() {
        let (lm, vocab, trie) = setup();
        let cfg = ServeConfig { queue_cap: 2, ..ServeConfig::default() };
        let mut engine = Engine::new(&lm, &vocab, &trie, cfg);
        assert!(engine.submit(&[0], 1).is_ok());
        assert!(engine.submit(&[1], 1).is_ok());
        let err = engine.submit(&[2], 1).unwrap_err();
        assert_eq!(err, Reject::QueueFull { capacity: 2 });
        assert!(err.to_string().contains("capacity 2"));
        // Draining the queue frees capacity again.
        engine.flush();
        assert!(engine.submit(&[2], 1).is_ok());
    }

    #[test]
    fn step_respects_batch_and_wait_policy() {
        let (lm, vocab, trie) = setup();
        // A full batch dispatches immediately; a partial one only after
        // the (here: effectively infinite) wait.
        let cfg = ServeConfig { max_batch: 2, max_wait_ms: u64::MAX, ..ServeConfig::default() };
        let mut engine = Engine::new(&lm, &vocab, &trie, cfg);
        engine.submit(&[0], 2).expect("admitted");
        assert!(!engine.ready(), "partial batch must wait");
        assert!(engine.step().is_empty());
        engine.submit(&[1], 2).expect("admitted");
        assert!(engine.ready(), "full batch dispatches");
        let out = engine.step();
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].batch_size, 2);
        assert_eq!(engine.queue_len(), 0);
        // max_wait_ms = 0: anything queued is immediately ready.
        let cfg = ServeConfig { max_batch: 8, max_wait_ms: 0, ..ServeConfig::default() };
        let mut engine = Engine::new(&lm, &vocab, &trie, cfg);
        engine.submit(&[0], 1).expect("admitted");
        assert!(engine.ready());
        assert_eq!(engine.step().len(), 1);
    }

    #[test]
    fn responses_keep_admission_order_and_ids() {
        let (lm, vocab, trie) = setup();
        let cfg = ServeConfig { max_batch: 2, ..ServeConfig::default() };
        let mut engine = Engine::new(&lm, &vocab, &trie, cfg);
        let ids: Vec<u64> =
            (0..5).map(|i| engine.submit(&[i as u32 % 4], 2).expect("admitted")).collect();
        let out = engine.flush();
        assert_eq!(out.iter().map(|r| r.id).collect::<Vec<_>>(), ids);
        // 5 requests at max_batch 2 → batches of 2, 2, 1.
        assert_eq!(out.iter().map(|r| r.batch_size).collect::<Vec<_>>(), vec![2, 2, 2, 2, 1]);
        assert!(out.iter().all(|r| r.latency_s >= 0.0));
    }

    #[test]
    fn top_k_truncates_the_full_width_ranking() {
        let (lm, vocab, trie) = setup();
        let mut engine = Engine::new(&lm, &vocab, &trie, ServeConfig::default());
        engine.submit(&[0, 1], 2).expect("admitted");
        engine.submit(&[0, 1], 4).expect("admitted");
        let out = engine.flush();
        assert_eq!(out[0].ranked.len(), 2);
        assert_eq!(out[1].ranked.len(), 4, "all 4 items exist");
        // Same history → the k=2 list is a prefix of the k=4 list.
        for (a, b) in out[0].ranked.iter().zip(&out[1].ranked) {
            assert_eq!(a.item, b.item);
            assert_eq!(a.logprob.to_bits(), b.logprob.to_bits());
        }
    }

    #[test]
    fn from_env_falls_back_to_defaults() {
        // The test runner may or may not have the vars set; either way the
        // config must be well-formed (clamped to ≥ 1 where required).
        let cfg = ServeConfig::from_env();
        assert!(cfg.max_batch >= 1);
        assert!(cfg.queue_cap >= 1);
    }
}
