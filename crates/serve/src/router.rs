//! Multi-shard serving: a consistent-hash [`Router`] over N [`Engine`]
//! replicas.
//!
//! One [`Engine`] is one **shard**: a bounded admission queue plus batched
//! constrained decoding over a borrowed model snapshot. The [`Router`]
//! composes N of them behind a seeded consistent-hash ring
//! ([`Ring`]) so that
//!
//! * a fixed user id lands on the same shard run after run (the ring is a
//!   pure function of `(seed, shard, vnode)` — adding a shard moves only
//!   the keys the new shard takes over, see [`Ring`]);
//! * every shard keeps its **own** bounded queue and backpressure — one hot
//!   shard rejecting admissions never blocks the others;
//! * a shard's typed refusal ([`Reject::QueueFull`] / [`Reject::Shed`]) or
//!   typed abandonment ([`Outcome::TimedOut`]) triggers a **hedged retry**:
//!   the request is re-dispatched to the next distinct replica in ring
//!   order, bounded by [`RouterConfig::hedge_attempts`] and accounted
//!   against a [`Backoff`] schedule (delays are recorded, not slept —
//!   decoding is deterministic, so a retry costs a schedule slot, not a
//!   repeated weight pass);
//! * every submitted request still resolves to **exactly one** terminal
//!   outcome: a typed [`RouterReject`] at admission time, or later exactly
//!   one [`RouterOutcome`] — never a panic, never silence.
//!
//! Model **hot-swap** ([`Router::hot_swap`]) is snapshot-based: new
//! admissions go to fresh engines over the new model parts, while each
//! shard's previous engine is demoted to a *draining* standby whose
//! in-flight requests finish on the old snapshot. The swap never cancels
//! queued work and never mixes two snapshots inside one batch.
//!
//! The determinism contract extends one level up from the engine: rankings
//! are bit-identical across shard counts and router-vs-direct-engine
//! (`tests/fleet.rs`), the same way `lcrec-par` is bit-identical across
//! thread counts. See `docs/FLEET.md` for the ring layout, the hedging
//! policy and outcome taxonomy, and how to read `results/fleet.md`.

use crate::{Engine, Outcome, Reject, Response, ServeConfig, TimeoutReason};
use lcrec_core::{CausalLm, ExtendedVocab};
use lcrec_fault::{fnv1a64_extend, Backoff, FaultPlan, Mode, FNV1A64_BASIS};
use lcrec_rqvae::IndexTrie;
use std::collections::BTreeMap;
use std::fmt;

/// Environment variable overriding [`RouterConfig::shards`].
pub const SHARDS_ENV: &str = "LCREC_SHARDS";
/// Environment variable overriding [`RouterConfig::hedge_attempts`].
pub const HEDGE_ENV: &str = "LCREC_HEDGE_ATTEMPTS";

/// Sharding and hedging policy for a [`Router`].
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Engine replicas behind the ring. `1` degrades the router to a bare
    /// [`Engine`] with ticket renumbering (same answers, bit for bit).
    pub shards: usize,
    /// Virtual nodes per shard on the hash ring. More vnodes smooth the
    /// per-shard key share; the default (16) keeps the expected imbalance
    /// small without bloating the ring.
    pub vnodes: usize,
    /// Hedged re-dispatches allowed per request **after** its first
    /// admission. `0` disables hedging: a shard's timeout is final.
    pub hedge_attempts: u32,
    /// Seed for the ring's placement hash. Two routers with the same seed,
    /// shard count and vnodes route every user identically.
    pub seed: u64,
    /// Per-shard engine policy (batching, queue bound, deadlines); every
    /// shard gets its own copy, so queue capacity is *per shard*.
    pub shard: ServeConfig,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            shards: 2,
            vnodes: 16,
            hedge_attempts: 2,
            seed: 0xf1ee7,
            shard: ServeConfig::default(),
        }
    }
}

impl RouterConfig {
    /// Defaults overridden by the `LCREC_SHARDS` and
    /// `LCREC_HEDGE_ATTEMPTS` environment variables (unset or unparsable
    /// values keep the default; shards clamp to ≥ 1), with the per-shard
    /// engine policy from [`ServeConfig::from_env`].
    pub fn from_env() -> Self {
        let mut cfg = RouterConfig { shard: ServeConfig::from_env(), ..RouterConfig::default() };
        if let Some(v) = crate::env_usize(SHARDS_ENV) {
            cfg.shards = v.max(1);
        }
        if let Some(v) = crate::env_usize(HEDGE_ENV) {
            cfg.hedge_attempts = v.min(u32::MAX as usize) as u32;
        }
        cfg
    }
}

/// Why the router did not admit a request. Mirrors the engine-level
/// [`Reject`], lifted to the fleet: the router only refuses a request
/// after **every** replica in the user's ring order refused it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RouterReject {
    /// The requested `k` is unusable: zero asks for an empty ranking.
    InvalidK {
        /// The `k` the caller passed to [`Router::submit`].
        k: usize,
    },
    /// Every shard in the user's replica order refused admission; the
    /// per-shard refusals are preserved so callers can tell hard capacity
    /// ([`Reject::QueueFull`]) from load shedding ([`Reject::Shed`]).
    AllShardsSaturated {
        /// `(shard, refusal)` per attempted replica, in ring order.
        attempts: Vec<(usize, Reject)>,
    },
}

impl fmt::Display for RouterReject {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RouterReject::InvalidK { k } => {
                write!(f, "invalid top-k request (k = {k}); k must be at least 1")
            }
            RouterReject::AllShardsSaturated { attempts } => {
                write!(f, "all {} shard(s) rejected admission; retry later", attempts.len())
            }
        }
    }
}

impl std::error::Error for RouterReject {}

/// The final, typed resolution of one routed request. Every ticket
/// returned by [`Router::submit`] resolves to exactly one `RouterOutcome`
/// from [`Router::step_outcomes`] / [`Router::flush_outcomes`] — hedged
/// re-dispatches happen *inside* the router and never surface as extra
/// outcomes.
#[derive(Clone, Debug)]
pub enum RouterOutcome {
    /// The request decoded successfully on `shard`.
    Completed {
        /// The shard whose engine produced the response.
        shard: usize,
        /// Admissions this request took (1 = no hedging).
        hops: u32,
        /// The engine response, with its id rewritten to the router ticket.
        response: Response,
    },
    /// The request was abandoned after the hedge budget ran out.
    TimedOut {
        /// The ticket returned by [`Router::submit`].
        id: u64,
        /// The shard whose engine reported the final timeout.
        shard: usize,
        /// Admissions this request took before giving up.
        hops: u32,
        /// Seconds from the *final* admission to abandonment.
        waited_s: f64,
        /// Why the final attempt did not complete.
        reason: TimeoutReason,
    },
}

impl RouterOutcome {
    /// The router ticket this outcome resolves.
    pub fn id(&self) -> u64 {
        match self {
            RouterOutcome::Completed { response, .. } => response.id,
            RouterOutcome::TimedOut { id, .. } => *id,
        }
    }

    /// The shard that produced this outcome.
    pub fn shard(&self) -> usize {
        match self {
            RouterOutcome::Completed { shard, .. } => *shard,
            RouterOutcome::TimedOut { shard, .. } => *shard,
        }
    }

    /// Admissions the request took (1 = routed once, never hedged).
    pub fn hops(&self) -> u32 {
        match self {
            RouterOutcome::Completed { hops, .. } => *hops,
            RouterOutcome::TimedOut { hops, .. } => *hops,
        }
    }

    /// True for [`RouterOutcome::Completed`].
    pub fn is_completed(&self) -> bool {
        matches!(self, RouterOutcome::Completed { .. })
    }

    /// The response, when the request completed.
    pub fn completed(self) -> Option<Response> {
        match self {
            RouterOutcome::Completed { response, .. } => Some(response),
            RouterOutcome::TimedOut { .. } => None,
        }
    }
}

/// One routed-but-unresolved request.
#[derive(Clone, Debug)]
struct Route {
    history: Vec<u32>,
    k: usize,
    /// Admissions so far (1 after the first successful submit).
    hops: u32,
    /// The user's distinct-shard failover order, from [`Ring::replica_cycle`].
    replicas: Vec<usize>,
}

/// One shard: the live engine plus, right after a hot swap, the previous
/// generation still draining its queued work on the old snapshot.
#[derive(Debug)]
struct Shard<'a> {
    active: Engine<'a>,
    /// Engine-local ticket → router ticket for the active engine.
    active_tickets: BTreeMap<u64, u64>,
    /// Demoted engine + its ticket map; dropped once fully drained.
    draining: Option<(Engine<'a>, BTreeMap<u64, u64>)>,
}

/// Builds the per-shard fault plan: same mode and rate everywhere, but a
/// shard-distinct seed so replicas do not hiccup in lockstep.
fn shard_plan(spec: Option<(Mode, u64, u64)>, shard: usize) -> FaultPlan {
    let derive = |seed: u64| seed ^ (shard as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
    match spec {
        None => {
            let base = FaultPlan::from_env();
            match base.mode() {
                Mode::Off => FaultPlan::disabled(),
                Mode::Transient => FaultPlan::transient(derive(base.seed())),
                Mode::Chaos => FaultPlan::chaos(derive(base.seed())),
            }
        }
        Some((Mode::Off, _, _)) => FaultPlan::disabled(),
        Some((Mode::Transient, seed, rate)) => FaultPlan::transient(derive(seed)).with_rate(rate),
        Some((Mode::Chaos, seed, rate)) => FaultPlan::chaos(derive(seed)).with_rate(rate),
    }
}

/// A consistent-hash router over N [`Engine`] shards.
///
/// Users are partitioned across shards by a seeded [`Ring`]; each shard
/// keeps its own bounded queue and backpressure. Admission refusals and
/// timeouts hedge to the next ring replica (bounded by
/// [`RouterConfig::hedge_attempts`]); [`Router::hot_swap`] flips every
/// shard to a new model snapshot while in-flight work finishes on the old
/// one. Rankings are bit-identical to a direct [`Engine`] at any shard
/// count.
///
/// # Examples
///
/// ```
/// use lcrec_core::{CausalLm, ExtendedVocab, LmConfig};
/// use lcrec_rqvae::{IndexTrie, ItemIndices};
/// use lcrec_serve::{Router, RouterConfig};
/// use lcrec_text::Vocab;
///
/// // A miniature model: 4 items with 2-level semantic IDs.
/// let base = Vocab::build(["recommend the next item"], 1);
/// let indices = ItemIndices::new(
///     vec![3, 3],
///     vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
/// );
/// let trie = IndexTrie::build(&indices);
/// let vocab = ExtendedVocab::new(base, indices);
/// let lm = CausalLm::new(LmConfig::test(vocab.len()));
///
/// let cfg = RouterConfig { shards: 2, ..RouterConfig::default() };
/// let mut router = Router::new(&lm, &vocab, &trie, cfg);
/// let ticket = router.submit(7, &[0, 2], 3).expect("fleet has room");
/// let outcomes = router.flush_outcomes();
/// assert_eq!(outcomes.len(), 1);
/// assert_eq!(outcomes[0].id(), ticket);
/// assert!(outcomes[0].is_completed());
/// ```
#[derive(Debug)]
pub struct Router<'a> {
    cfg: RouterConfig,
    ring: Ring,
    shards: Vec<Shard<'a>>,
    /// Router ticket → route state, until the terminal outcome.
    pending: BTreeMap<u64, Route>,
    next_id: u64,
    backoff: Backoff,
    /// `(mode, seed, rate)` the per-shard fault plans are derived from;
    /// `None` falls back to the `LCREC_FAULT` environment plan.
    faults: Option<(Mode, u64, u64)>,
    epoch: u64,
    /// Catalog epoch of the trie snapshot new admissions decode against
    /// (see [`Router::swap_catalog`]); 0 until the first catalog swap.
    catalog_epoch: u64,
}

impl<'a> Router<'a> {
    /// A router over `cfg.shards` fresh engines sharing one model
    /// snapshot, partitioned by a seeded consistent-hash ring.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrec_core::{CausalLm, ExtendedVocab, LmConfig};
    /// use lcrec_rqvae::{IndexTrie, ItemIndices};
    /// use lcrec_serve::{Router, RouterConfig};
    /// use lcrec_text::Vocab;
    ///
    /// let base = Vocab::build(["recommend the next item"], 1);
    /// let indices = ItemIndices::new(vec![3], vec![vec![0], vec![1], vec![2]]);
    /// let trie = IndexTrie::build(&indices);
    /// let vocab = ExtendedVocab::new(base, indices);
    /// let lm = CausalLm::new(LmConfig::test(vocab.len()));
    ///
    /// let cfg = RouterConfig { shards: 4, ..RouterConfig::default() };
    /// let router = Router::new(&lm, &vocab, &trie, cfg);
    /// assert_eq!(router.shard_count(), 4);
    /// // The same user always routes to the same shard.
    /// assert_eq!(router.ring().primary(42), router.ring().primary(42));
    /// ```
    pub fn new(
        lm: &'a CausalLm,
        vocab: &'a ExtendedVocab,
        trie: &'a IndexTrie,
        cfg: RouterConfig,
    ) -> Self {
        assert!(cfg.shards >= 1, "a router needs at least one shard");
        assert!(cfg.vnodes >= 1, "a router needs at least one vnode per shard");
        let ring = Ring::new(cfg.shards, cfg.vnodes, cfg.seed);
        let shards = (0..cfg.shards)
            .map(|s| {
                let mut active = Engine::new(lm, vocab, trie, cfg.shard.clone());
                active.set_fault_plan(shard_plan(None, s));
                Shard { active, active_tickets: BTreeMap::new(), draining: None }
            })
            .collect();
        Router {
            cfg,
            ring,
            shards,
            pending: BTreeMap::new(),
            next_id: 0,
            backoff: Backoff::default(),
            faults: None,
            epoch: 0,
            catalog_epoch: 0,
        }
    }

    /// Replaces every shard's fault plan with one derived from
    /// `(mode, seed, rate)` — same mode and rate on each shard, but
    /// shard-distinct seeds so replicas fail independently. The chaos
    /// suite uses this for explicit seeded sweeps without touching the
    /// environment; the derivation is pure, so the same spec reproduces
    /// the same fleet-wide fault schedule (and survives hot swaps).
    pub fn with_faults(mut self, mode: Mode, seed: u64, rate: u64) -> Self {
        self.faults = Some((mode, seed, rate));
        for (s, sh) in self.shards.iter_mut().enumerate() {
            sh.active.set_fault_plan(shard_plan(self.faults, s));
            if let Some((eng, _)) = sh.draining.as_mut() {
                eng.set_fault_plan(shard_plan(self.faults, s));
            }
        }
        self
    }

    /// Replaces the hedge-delay schedule (defaults to
    /// [`Backoff::default`]). Delays are accounted to the
    /// `router.backoff_ms` counter, never slept.
    pub fn with_backoff(mut self, backoff: Backoff) -> Self {
        self.backoff = backoff;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &RouterConfig {
        &self.cfg
    }

    /// The consistent-hash ring routing users to shards.
    pub fn ring(&self) -> &Ring {
        &self.ring
    }

    /// Engine replicas behind the ring.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Requests queued across every engine (active and draining).
    pub fn queue_depth(&self) -> usize {
        self.shards
            .iter()
            .map(|sh| {
                sh.active.queue_len()
                    + sh.draining.as_ref().map(|(eng, _)| eng.queue_len()).unwrap_or(0)
            })
            .sum()
    }

    /// Tickets admitted but not yet resolved to a terminal outcome.
    pub fn pending_len(&self) -> usize {
        self.pending.len()
    }

    /// Model generations served so far minus one: starts at 0, increments
    /// on every [`Router::hot_swap`].
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The catalog epoch new admissions decode against — the value passed
    /// to the latest [`Router::swap_catalog`] call (0 before the first).
    pub fn catalog_epoch(&self) -> u64 {
        self.catalog_epoch
    }

    /// Routes a request (user id + history → top-`k` items) to the user's
    /// primary shard, falling through the ring's failover order when a
    /// shard refuses admission. Returns a fleet-wide ticket, or a typed
    /// [`RouterReject`] — [`RouterReject::AllShardsSaturated`] only after
    /// **every** replica refused, so callers see exactly one terminal
    /// resolution per request.
    ///
    /// # Examples
    ///
    /// ```
    /// use lcrec_core::{CausalLm, ExtendedVocab, LmConfig};
    /// use lcrec_rqvae::{IndexTrie, ItemIndices};
    /// use lcrec_serve::{Router, RouterConfig, RouterReject};
    /// use lcrec_text::Vocab;
    ///
    /// let base = Vocab::build(["recommend the next item"], 1);
    /// let indices = ItemIndices::new(vec![3], vec![vec![0], vec![1], vec![2]]);
    /// let trie = IndexTrie::build(&indices);
    /// let vocab = ExtendedVocab::new(base, indices);
    /// let lm = CausalLm::new(LmConfig::test(vocab.len()));
    ///
    /// let mut router = Router::new(&lm, &vocab, &trie, RouterConfig::default());
    /// assert!(matches!(
    ///     router.submit(7, &[0], 0),
    ///     Err(RouterReject::InvalidK { k: 0 })
    /// ));
    /// let ticket = router.submit(7, &[0, 1], 2).expect("fleet has room");
    /// let responses = router.flush();
    /// assert_eq!(responses.len(), 1);
    /// assert_eq!(responses[0].id, ticket);
    /// ```
    pub fn submit(
        &mut self,
        user: u64,
        history: &[u32],
        k: usize,
    ) -> Result<u64, RouterReject> {
        if k == 0 {
            lcrec_obs::counter_add("router.rejected", 1);
            return Err(RouterReject::InvalidK { k });
        }
        let cycle = self.ring.replica_cycle(user);
        let mut attempts: Vec<(usize, Reject)> = Vec::new();
        for (pos, &shard) in cycle.iter().enumerate() {
            let Some(sh) = self.shards.get_mut(shard) else { continue };
            match sh.active.submit(history, k) {
                Ok(local) => {
                    let ticket = self.next_id;
                    self.next_id += 1;
                    sh.active_tickets.insert(local, ticket);
                    self.pending.insert(
                        ticket,
                        Route { history: history.to_vec(), k, hops: 1, replicas: cycle.clone() },
                    );
                    lcrec_obs::counter_add("router.requests", 1);
                    if pos > 0 {
                        lcrec_obs::counter_add("router.redirects", pos as u64);
                    }
                    if lcrec_obs::enabled() {
                        lcrec_obs::hist_record("router.shard", shard as f64);
                        lcrec_obs::counter_add(&format!("router.shard{shard}.requests"), 1);
                    }
                    return Ok(ticket);
                }
                // k ≥ 1 was checked above, so the engine can only refuse
                // for capacity; keep the arm for exhaustiveness.
                Err(Reject::InvalidK { k }) => {
                    lcrec_obs::counter_add("router.rejected", 1);
                    return Err(RouterReject::InvalidK { k });
                }
                Err(refusal) => attempts.push((shard, refusal)),
            }
        }
        lcrec_obs::counter_add("router.saturated", 1);
        Err(RouterReject::AllShardsSaturated { attempts })
    }

    /// Steps every shard once — draining engines are flushed to
    /// completion, active engines dispatch at most one policy-gated batch
    /// — and returns the completed responses. Timed-out requests are
    /// dropped from this view; use [`Router::step_outcomes`] for full
    /// typed-outcome accounting.
    pub fn step(&mut self) -> Vec<Response> {
        self.step_outcomes().into_iter().filter_map(RouterOutcome::completed).collect()
    }

    /// Like [`Router::step`], but returns **every** terminal typed
    /// [`RouterOutcome`] this step produced. A timeout that still has
    /// hedge budget is re-dispatched internally instead of surfacing.
    pub fn step_outcomes(&mut self) -> Vec<RouterOutcome> {
        let mut out = Vec::new();
        self.sweep(false, &mut out);
        out
    }

    /// Drains every queue in the fleet — including hedged re-dispatches —
    /// and returns all completed responses. Timed-out requests are
    /// dropped from this view; use [`Router::flush_outcomes`] for full
    /// typed-outcome accounting.
    pub fn flush(&mut self) -> Vec<Response> {
        self.flush_outcomes().into_iter().filter_map(RouterOutcome::completed).collect()
    }

    /// Like [`Router::flush`], but returns **every** request's terminal
    /// typed [`RouterOutcome`]. Loops until no engine holds queued work,
    /// so hedged re-dispatches triggered by this flush also resolve; the
    /// loop terminates because every re-dispatch consumes bounded hedge
    /// budget.
    pub fn flush_outcomes(&mut self) -> Vec<RouterOutcome> {
        let mut out = Vec::new();
        loop {
            self.sweep(true, &mut out);
            if self.queue_depth() == 0 {
                break;
            }
        }
        out
    }

    /// Flips the fleet to a new model snapshot. Each shard's current
    /// engine is demoted to a draining standby — its already-admitted
    /// requests complete on the **old** snapshot — while a fresh engine
    /// over the new parts takes all new admissions. Any *previous*
    /// standby generation is flushed first; its terminal outcomes are
    /// returned (empty when back-to-back swaps don't overlap). No queued
    /// request is ever dropped by a swap, and no batch mixes snapshots.
    ///
    /// The borrowed parts must outlive the router, exactly as in
    /// [`Router::new`]; load a checkpoint into the new parts beforehand
    /// via the chunked `lcrec_tensor::load_params_file` path.
    pub fn hot_swap(
        &mut self,
        lm: &'a CausalLm,
        vocab: &'a ExtendedVocab,
        trie: &'a IndexTrie,
    ) -> Vec<RouterOutcome> {
        // Finish the previous standby generation before demoting another.
        let mut out = Vec::new();
        for s in 0..self.shards.len() {
            let local: Vec<Outcome> = self
                .shards
                .get_mut(s)
                .and_then(|sh| sh.draining.as_mut())
                .map(|(eng, _)| eng.flush_outcomes())
                .unwrap_or_default();
            for o in local {
                self.resolve(s, true, o, &mut out);
            }
        }
        self.retire_drained();
        for s in 0..self.shards.len() {
            let mut fresh = Engine::new(lm, vocab, trie, self.cfg.shard.clone());
            fresh.set_fault_plan(shard_plan(self.faults, s));
            let Some(sh) = self.shards.get_mut(s) else { continue };
            let old = std::mem::replace(&mut sh.active, fresh);
            let old_tickets = std::mem::take(&mut sh.active_tickets);
            sh.draining = Some((old, old_tickets));
        }
        self.epoch += 1;
        lcrec_obs::counter_add("router.swaps", 1);
        out
    }

    /// [`Router::hot_swap`] for **catalog growth**: flips the fleet to a
    /// trie materialized from a newer `lcrec_core::CatalogTrie` epoch
    /// (typically the same `lm`/`vocab` — the code space H × K does not
    /// change when items are admitted). In-flight batches finish decoding
    /// against the old snapshot's trie while new admissions see the grown
    /// one; `catalog_epoch` records which snapshot epoch the fleet now
    /// serves, and the `catalog.swaps` counter tracks roll-forwards.
    pub fn swap_catalog(
        &mut self,
        lm: &'a CausalLm,
        vocab: &'a ExtendedVocab,
        trie: &'a IndexTrie,
        catalog_epoch: u64,
    ) -> Vec<RouterOutcome> {
        let out = self.hot_swap(lm, vocab, trie);
        self.catalog_epoch = catalog_epoch;
        lcrec_obs::counter_add("catalog.swaps", 1);
        out
    }

    /// One pass over the fleet: drains each shard's standby engine, steps
    /// (or drains) its active engine, and resolves the local outcomes —
    /// hedging timeouts that still have budget.
    fn sweep(&mut self, drain_active: bool, out: &mut Vec<RouterOutcome>) {
        for s in 0..self.shards.len() {
            let mut local: Vec<(bool, Outcome)> = Vec::new();
            if let Some(sh) = self.shards.get_mut(s) {
                if let Some((eng, _)) = sh.draining.as_mut() {
                    local.extend(eng.flush_outcomes().into_iter().map(|o| (true, o)));
                }
                let fresh = if drain_active {
                    sh.active.flush_outcomes()
                } else {
                    sh.active.step_outcomes()
                };
                local.extend(fresh.into_iter().map(|o| (false, o)));
            }
            for (from_draining, o) in local {
                self.resolve(s, from_draining, o, out);
            }
        }
        self.retire_drained();
    }

    /// Maps one engine-local outcome back to its router ticket: a
    /// completion (or hedge-exhausted timeout) becomes the ticket's single
    /// terminal [`RouterOutcome`]; a timeout with budget left re-dispatches
    /// instead.
    fn resolve(&mut self, shard: usize, from_draining: bool, o: Outcome, out: &mut Vec<RouterOutcome>) {
        let local_id = o.id();
        let ticket = self.shards.get_mut(shard).and_then(|sh| {
            if from_draining {
                sh.draining.as_mut().and_then(|(_, map)| map.remove(&local_id))
            } else {
                sh.active_tickets.remove(&local_id)
            }
        });
        // Exhaustive accounting: every engine outcome maps to a ticket by
        // construction (inserted at submit, removed exactly once here).
        assert!(ticket.is_some(), "engine outcome without a router ticket (shard {shard})");
        let Some(ticket) = ticket else { return };
        match o {
            Outcome::Completed(mut response) => {
                let route = self.pending.remove(&ticket);
                assert!(route.is_some(), "completed ticket missing from the pending table");
                let hops = route.map(|r| r.hops).unwrap_or(1);
                response.id = ticket;
                lcrec_obs::counter_add("router.completed", 1);
                out.push(RouterOutcome::Completed { shard, hops, response });
            }
            Outcome::TimedOut { waited_s, reason, .. } => {
                if self.try_hedge(ticket, shard) {
                    return;
                }
                let route = self.pending.remove(&ticket);
                assert!(route.is_some(), "timed-out ticket missing from the pending table");
                let hops = route.map(|r| r.hops).unwrap_or(1);
                lcrec_obs::counter_add("router.exhausted", 1);
                out.push(RouterOutcome::TimedOut { id: ticket, shard, hops, waited_s, reason });
            }
        }
    }

    /// Re-dispatches a timed-out ticket to the next replica in its ring
    /// order (a fresh admission: the deadline clock restarts). Returns
    /// false when the hedge budget is spent or every replica refused —
    /// the caller then emits the terminal timeout.
    fn try_hedge(&mut self, ticket: u64, failed: usize) -> bool {
        let (history, k, cycle, hops) = match self.pending.get(&ticket) {
            Some(route) if route.hops < self.cfg.hedge_attempts.saturating_add(1) => {
                (route.history.clone(), route.k, route.replicas.clone(), route.hops)
            }
            _ => return false,
        };
        let len = cycle.len();
        if len == 0 {
            return false;
        }
        // Start clockwise *after* the shard that just failed the request.
        let start = cycle.iter().position(|&s| s == failed).map(|p| p + 1).unwrap_or(0);
        for &cand in cycle.iter().cycle().skip(start).take(len) {
            let Some(sh) = self.shards.get_mut(cand) else { continue };
            if let Ok(local) = sh.active.submit(&history, k) {
                sh.active_tickets.insert(local, ticket);
                if let Some(route) = self.pending.get_mut(&ticket) {
                    route.hops += 1;
                }
                lcrec_obs::counter_add("router.hedges", 1);
                lcrec_obs::counter_add(
                    "router.backoff_ms",
                    self.backoff.delay_ms(hops.saturating_sub(1)),
                );
                return true;
            }
        }
        false
    }

    /// Drops standby engines that have no queued work and no unresolved
    /// tickets left.
    fn retire_drained(&mut self) {
        for sh in &mut self.shards {
            let done = sh
                .draining
                .as_ref()
                .is_some_and(|(eng, map)| eng.queue_len() == 0 && map.is_empty());
            if done {
                sh.draining = None;
            }
        }
    }
}

fn point_hash(seed: u64, shard: usize, vnode: usize) -> u64 {
    let mut h = fnv1a64_extend(FNV1A64_BASIS, b"lcrec.ring.point");
    h = fnv1a64_extend(h, &seed.to_le_bytes());
    h = fnv1a64_extend(h, &(shard as u64).to_le_bytes());
    fnv1a64_extend(h, &(vnode as u64).to_le_bytes())
}

fn user_hash(seed: u64, user: u64) -> u64 {
    let h = fnv1a64_extend(FNV1A64_BASIS, b"lcrec.ring.user");
    fnv1a64_extend(fnv1a64_extend(h, &seed.to_le_bytes()), &user.to_le_bytes())
}

/// A seeded consistent-hash ring mapping user ids to shards.
///
/// Each shard contributes `vnodes` points at
/// `hash(seed, shard, vnode)` — a function that never looks at the total
/// shard count. A user maps to the shard owning the first point at or
/// after `hash(seed, user)` (wrapping). Because existing points never move
/// when a shard is added, growing the fleet from N to N+1 shards only
/// re-routes the users the new shard's points capture; everyone else keeps
/// their shard (pinned by `tests/fleet.rs`).
#[derive(Clone, Debug)]
pub struct Ring {
    /// `(point hash, shard)` sorted by hash — the clockwise ring order.
    points: Vec<(u64, usize)>,
    shards: usize,
    seed: u64,
}

impl Ring {
    /// Builds the ring for `shards` replicas with `vnodes` points each.
    pub fn new(shards: usize, vnodes: usize, seed: u64) -> Self {
        assert!(shards >= 1, "a ring needs at least one shard");
        assert!(vnodes >= 1, "a ring needs at least one vnode per shard");
        let mut points = Vec::with_capacity(shards * vnodes);
        for shard in 0..shards {
            for vnode in 0..vnodes {
                points.push((point_hash(seed, shard, vnode), shard));
            }
        }
        // Tie-break equal hashes by shard id so the ring order is total.
        points.sort_unstable();
        Ring { points, shards, seed }
    }

    /// Shard count this ring was built for.
    pub fn shards(&self) -> usize {
        self.shards
    }

    /// The seed the placement hash was derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The shard owning `user`: the first ring point at or after the
    /// user's hash, wrapping past the top of the hash space.
    pub fn primary(&self, user: u64) -> usize {
        let h = user_hash(self.seed, user);
        let pos = self.points.partition_point(|&(ph, _)| ph < h);
        self.points
            .get(pos)
            .or_else(|| self.points.first())
            .map(|&(_, shard)| shard)
            .unwrap_or(0)
    }

    /// Every distinct shard in clockwise ring order starting from the
    /// user's primary — the failover order hedged retries walk. Always
    /// contains all shards exactly once.
    pub fn replica_cycle(&self, user: u64) -> Vec<usize> {
        let h = user_hash(self.seed, user);
        let pos = self.points.partition_point(|&(ph, _)| ph < h);
        let mut cycle = Vec::with_capacity(self.shards);
        for &(_, shard) in self.points.iter().skip(pos).chain(self.points.iter().take(pos)) {
            if !cycle.contains(&shard) {
                cycle.push(shard);
                if cycle.len() == self.shards {
                    break;
                }
            }
        }
        cycle
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_core::LmConfig;
    use lcrec_rqvae::ItemIndices;
    use lcrec_text::Vocab;

    fn setup() -> (CausalLm, ExtendedVocab, IndexTrie) {
        let base = Vocab::build(["recommend the next item please"], 1);
        let indices = ItemIndices::new(
            vec![3, 3],
            vec![vec![0, 0], vec![0, 1], vec![1, 2], vec![2, 2]],
        );
        let trie = IndexTrie::build(&indices);
        let vocab = ExtendedVocab::new(base, indices);
        let lm = CausalLm::new(LmConfig::test(vocab.len()));
        (lm, vocab, trie)
    }

    #[test]
    fn ring_is_deterministic_and_covers_every_shard() {
        let a = Ring::new(4, 16, 7);
        let b = Ring::new(4, 16, 7);
        for user in 0..64u64 {
            assert_eq!(a.primary(user), b.primary(user));
            let cycle = a.replica_cycle(user);
            let mut sorted = cycle.clone();
            sorted.sort_unstable();
            assert_eq!(sorted, vec![0, 1, 2, 3], "cycle covers all shards: {cycle:?}");
            assert_eq!(cycle.first().copied(), Some(a.primary(user)));
        }
        // A different seed reshuffles placement.
        let c = Ring::new(4, 16, 8);
        assert!((0..64u64).any(|u| a.primary(u) != c.primary(u)));
    }

    #[test]
    fn adding_a_shard_only_moves_keys_to_the_new_shard() {
        let before = Ring::new(3, 16, 7);
        let after = Ring::new(4, 16, 7);
        for user in 0..256u64 {
            let (b, a) = (before.primary(user), after.primary(user));
            assert!(a == b || a == 3, "user {user} moved {b} → {a}, not to the new shard");
        }
    }

    #[test]
    fn every_user_routes_consistently_through_submit() {
        let (lm, vocab, trie) = setup();
        let cfg = RouterConfig { shards: 3, ..RouterConfig::default() };
        let mut router = Router::new(&lm, &vocab, &trie, cfg);
        let primary = router.ring().primary(5);
        let ticket = router.submit(5, &[0, 1], 2).expect("admitted");
        let out = router.flush_outcomes();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].id(), ticket);
        assert_eq!(out[0].shard(), primary);
        assert_eq!(out[0].hops(), 1);
        assert_eq!(router.pending_len(), 0);
    }

    #[test]
    fn from_env_is_well_formed() {
        let cfg = RouterConfig::from_env();
        assert!(cfg.shards >= 1);
    }

    #[test]
    fn zero_k_is_rejected_before_touching_the_ring() {
        let (lm, vocab, trie) = setup();
        let mut router = Router::new(&lm, &vocab, &trie, RouterConfig::default());
        assert_eq!(router.submit(1, &[0], 0), Err(RouterReject::InvalidK { k: 0 }));
        assert_eq!(router.queue_depth(), 0);
    }
}
