//! Shared infrastructure for the classic sequential-recommendation
//! baselines: training-pair construction with prefix augmentation,
//! length-bucketed batching (which keeps attention masks per-batch uniform
//! and avoids padding contamination entirely), training configuration, and
//! the score-based `Ranker` bridge into the evaluation harness.

use lcrec_data::Dataset;
use lcrec_eval::{top_k, Ranker};
use lcrec_par::Pool;
use lcrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Hyperparameters shared by the neural baselines.
#[derive(Clone, Debug)]
pub struct RecConfig {
    /// Embedding / model width.
    pub dim: usize,
    /// Transformer layers (where applicable).
    pub layers: usize,
    /// Attention heads (where applicable).
    pub heads: usize,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Dropout probability.
    pub dropout: f32,
    /// Maximum history length (the paper uses 20).
    pub max_len: usize,
    /// RNG seed.
    pub seed: u64,
}

impl RecConfig {
    /// Defaults sized for the small dataset presets on one CPU.
    pub fn small() -> Self {
        RecConfig {
            dim: 32,
            layers: 2,
            heads: 2,
            lr: 1e-3,
            epochs: 12,
            batch: 64,
            dropout: 0.2,
            max_len: 20,
            seed: 42,
        }
    }

    /// A micro config for unit tests.
    pub fn test() -> Self {
        RecConfig { dim: 16, layers: 1, heads: 2, lr: 3e-3, epochs: 4, batch: 32, dropout: 0.0, max_len: 10, seed: 7 }
    }
}

/// (history, target) supervision pairs with prefix augmentation: every
/// prefix of every training sequence contributes one pair.
#[derive(Debug)]
pub struct TrainingPairs {
    /// All pairs; histories are truncated to `max_len` most-recent items.
    pub pairs: Vec<(Vec<u32>, u32)>,
    /// Number of items (vocabulary for targets).
    pub num_items: usize,
}

impl TrainingPairs {
    /// Builds augmented pairs from the training split of `ds`.
    pub fn build(ds: &Dataset, max_len: usize) -> TrainingPairs {
        let mut pairs = Vec::new();
        for u in 0..ds.num_users() {
            let seq = ds.train_seq(u);
            for end in 1..seq.len() {
                let start = end.saturating_sub(max_len);
                pairs.push((seq[start..end].to_vec(), seq[end]));
            }
        }
        TrainingPairs { pairs, num_items: ds.num_items() }
    }

    /// Number of pairs.
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }
}

/// One length-uniform minibatch.
#[derive(Debug)]
pub struct Batch {
    /// Flattened histories, row-major `[b, len]`.
    pub hist: Vec<u32>,
    /// Batch size.
    pub b: usize,
    /// History length shared by the whole batch.
    pub len: usize,
    /// Target item per sequence.
    pub targets: Vec<u32>,
}

impl Batch {
    /// A sub-batch holding rows `lo..hi` — the micro-batch view used by
    /// data-parallel gradient accumulation.
    pub fn slice_rows(&self, lo: usize, hi: usize) -> Batch {
        Batch {
            hist: self.hist[lo * self.len..hi * self.len].to_vec(),
            b: hi - lo,
            len: self.len,
            targets: self.targets[lo..hi].to_vec(),
        }
    }
}

/// Produces length-bucketed, shuffled batches for one epoch. Sequences of
/// equal length are grouped so every batch is a dense `[b, len]` block.
pub fn epoch_batches(pairs: &TrainingPairs, batch_size: usize, seed: u64) -> Vec<Batch> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut by_len: std::collections::BTreeMap<usize, Vec<usize>> = Default::default();
    for (i, (h, _)) in pairs.pairs.iter().enumerate() {
        by_len.entry(h.len()).or_default().push(i);
    }
    let mut batches = Vec::new();
    for (len, mut idxs) in by_len {
        for i in (1..idxs.len()).rev() {
            idxs.swap(i, rng.random_range(0..=i));
        }
        for chunk in idxs.chunks(batch_size) {
            let mut hist = Vec::with_capacity(chunk.len() * len);
            let mut targets = Vec::with_capacity(chunk.len());
            for &i in chunk {
                hist.extend_from_slice(&pairs.pairs[i].0);
                targets.push(pairs.pairs[i].1);
            }
            batches.push(Batch { hist, b: chunk.len(), len, targets });
        }
    }
    // Shuffle batch order so lengths interleave.
    for i in (1..batches.len()).rev() {
        batches.swap(i, rng.random_range(0..=i));
    }
    batches
}

/// A causal additive attention mask `[t, t]`: position `i` may attend to
/// `j <= i`.
pub fn causal_mask(t: usize) -> Tensor {
    let mut m = Tensor::zeros(&[t, t]);
    for i in 0..t {
        for j in (i + 1)..t {
            m.data_mut()[i * t + j] = -1e9;
        }
    }
    m
}

/// A model that scores every item for a user context — all the classic
/// baselines implement this. `Sync` is required so [`ScoreRanker`] can
/// satisfy the harness's parallel [`Ranker`] bound.
pub trait ScoreModel: Sync {
    /// Scores for all items (higher = better).
    fn score_all(&self, user: usize, history: &[u32]) -> Vec<f32>;

    /// Display name (Table III row label).
    fn model_name(&self) -> &'static str;

    /// Trained item embeddings `[num_items, d]`, when the architecture has
    /// a single canonical item matrix (used for Table V's collaborative
    /// negatives).
    fn item_embeddings(&self) -> Option<Tensor> {
        None
    }
}

/// Bridges any [`ScoreModel`] into the evaluation harness.
#[derive(Debug)]
pub struct ScoreRanker<'a, M: ScoreModel>(pub &'a M);

impl<M: ScoreModel> Ranker for ScoreRanker<'_, M> {
    fn rank(&self, user: usize, history: &[u32], k: usize) -> Vec<u32> {
        let scores = self.0.score_all(user, history);
        top_k(&scores, k)
    }

    fn name(&self) -> String {
        self.0.model_name().to_string()
    }
}

/// A model trained by full-softmax cross-entropy over next-item targets —
/// the shared training scheme of the score-based baselines. `Sync` is
/// required so micro-batch loss graphs can differentiate concurrently
/// against the shared parameters.
pub trait NextItemModel: Sync {
    /// Builds logits `[b, num_items]` for a batch of histories.
    fn forward_logits(&self, g: &mut lcrec_tensor::Graph, batch: &Batch) -> lcrec_tensor::Var;

    /// The parameter store (read-only, for checkpointing).
    fn store(&self) -> &lcrec_tensor::ParamStore;

    /// The parameter store (mutable, for optimization).
    fn store_mut(&mut self) -> &mut lcrec_tensor::ParamStore;

    /// Model hyperparameters.
    fn config(&self) -> &RecConfig;
}

/// Fixed micro-batch row count for data-parallel gradient accumulation —
/// a pure constant (never derived from the thread count) so micro-batch
/// boundaries, per-chunk dropout streams and the gradient summation order
/// are identical at any `LCREC_THREADS`.
const MICRO_ROWS: usize = 16;

/// Runs the standard cross-entropy training loop; returns per-epoch mean
/// losses. Deterministic under the model's configured seed; uses the
/// ambient [`Pool::from_env`] (`LCREC_THREADS`) for data-parallel gradient
/// accumulation.
pub fn train_next_item<M: NextItemModel>(model: &mut M, pairs: &TrainingPairs) -> Vec<f32> {
    train_next_item_with(&Pool::from_env(), model, pairs)
}

/// [`train_next_item`] with an explicit thread pool. Each optimization
/// step splits its batch into fixed micro-batches
/// ([`lcrec_par::micro_ranges`]); every micro-batch differentiates its own
/// loss graph — scaled by `chunk_rows / batch_rows` so the gradients sum
/// to the full-batch mean-loss gradient, with a dropout stream seeded by
/// its chunk index — and the caller's thread sums the chunk gradients in
/// micro-batch order. Trained parameters are therefore bit-identical at
/// every thread count.
pub fn train_next_item_with<M: NextItemModel>(
    pool: &Pool,
    model: &mut M,
    pairs: &TrainingPairs,
) -> Vec<f32> {
    let _span = lcrec_obs::span("seqrec.train");
    let mut cursor = train_begin(model);
    while train_tick(pool, model, pairs, &mut cursor) {}
    cursor.into_losses()
}

/// Everything the next-item training loop carries across batches —
/// optimizer state, epoch/batch position and partial loss statistics —
/// so training can stop after any [`train_tick`] and resume from a
/// checkpoint bit-identically to an uninterrupted run. The per-epoch
/// batch order needs no RNG snapshot: [`epoch_batches`] re-derives it
/// from the config seed and the epoch number.
#[derive(Debug)]
pub struct SeqTrainCursor {
    opt: lcrec_tensor::AdamW,
    epoch: usize,
    batch: usize,
    sum: f32,
    losses: Vec<f32>,
}

impl SeqTrainCursor {
    /// The epoch the next [`train_tick`] will work in.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The batch index within the current epoch the next tick will run.
    pub fn batch_in_epoch(&self) -> usize {
        self.batch
    }

    /// Per-epoch mean losses so far (complete once ticking returns false).
    pub fn losses(&self) -> &[f32] {
        &self.losses
    }

    /// Consumes the cursor, yielding the per-epoch mean losses.
    pub fn into_losses(self) -> Vec<f32> {
        self.losses
    }

    /// The optimizer driving this run (shared with the absorb-loop
    /// checkpoint writer in `crate::absorb`).
    pub(crate) fn opt(&self) -> &lcrec_tensor::AdamW {
        &self.opt
    }

    pub(crate) fn to_blob(&self) -> Vec<u8> {
        let mut b = Vec::new();
        b.extend_from_slice(&(self.epoch as u64).to_le_bytes());
        b.extend_from_slice(&(self.batch as u64).to_le_bytes());
        b.extend_from_slice(&self.sum.to_le_bytes());
        b.extend_from_slice(&(self.losses.len() as u64).to_le_bytes());
        for &l in &self.losses {
            b.extend_from_slice(&l.to_le_bytes());
        }
        b
    }

    pub(crate) fn from_blob(opt: lcrec_tensor::AdamW, b: &[u8]) -> Option<SeqTrainCursor> {
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let s = b.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        };
        let mut pos = 0usize;
        let epoch = u64_at(&mut pos)? as usize;
        let batch = u64_at(&mut pos)? as usize;
        let sum = f32::from_le_bytes(b.get(pos..pos + 4)?.try_into().ok()?);
        pos += 4;
        let n = u64_at(&mut pos)? as usize;
        if n > b.len() {
            return None;
        }
        let mut losses = Vec::with_capacity(n);
        for _ in 0..n {
            losses.push(f32::from_le_bytes(b.get(pos..pos + 4)?.try_into().ok()?));
            pos += 4;
        }
        if pos != b.len() {
            return None;
        }
        Some(SeqTrainCursor { opt, epoch, batch, sum, losses })
    }
}

/// Starts a resumable training run at epoch 0, batch 0. Drive it with
/// [`train_tick`]; checkpoint at any batch boundary with
/// [`save_train_checkpoint`].
pub fn train_begin<M: NextItemModel>(model: &M) -> SeqTrainCursor {
    SeqTrainCursor {
        opt: lcrec_tensor::AdamW::new(model.config().lr),
        epoch: 0,
        batch: 0,
        sum: 0.0,
        losses: Vec::new(),
    }
}

/// Runs **one** training batch and returns `true` while more work
/// remains. Executes the exact computation of the corresponding batch in
/// [`train_next_item_with`]'s uninterrupted loop — same batch order
/// (re-derived per epoch from the seed), same dropout streams, same
/// gradient summation order — so any stop/resume sequence produces
/// bit-identical parameters.
pub fn train_tick<M: NextItemModel>(
    pool: &Pool,
    model: &mut M,
    pairs: &TrainingPairs,
    cursor: &mut SeqTrainCursor,
) -> bool {
    let cfg = model.config().clone();
    if cursor.epoch >= cfg.epochs {
        return false;
    }
    let epoch = cursor.epoch;
    let batches = epoch_batches(pairs, cfg.batch, cfg.seed ^ (epoch as u64 + 1));
    if cursor.batch < batches.len() {
        let batch = &batches[cursor.batch];
        let ranges = lcrec_par::micro_ranges(batch.b, MICRO_ROWS);
        lcrec_obs::counter_add("seqrec.micro_steps", ranges.len() as u64);
        lcrec_obs::counter_add("seqrec.batches", 1);
        let shared: &M = model;
        let parts = pool.map(&ranges, |ci, &(lo, hi)| {
            let sub = batch.slice_rows(lo, hi);
            let mut g = lcrec_tensor::Graph::new();
            g.seed(cfg.seed ^ (epoch as u64) << 20 ^ (ci as u64) << 40);
            let logits = shared.forward_logits(&mut g, &sub);
            let loss = g.cross_entropy(logits, &sub.targets, u32::MAX);
            let scaled = g.scale(loss, (hi - lo) as f32 / batch.b as f32);
            (g.value(scaled).item(), g.backward_collect(scaled))
        });
        let ps = model.store_mut();
        ps.zero_grads();
        for (loss_val, grads) in &parts {
            cursor.sum += loss_val;
            ps.accumulate_grads(grads);
        }
        ps.clip_grad_norm(5.0);
        cursor.opt.step(ps);
        cursor.batch += 1;
    }
    if cursor.batch >= batches.len() {
        cursor.losses.push(cursor.sum / batches.len().max(1) as f32);
        cursor.sum = 0.0;
        cursor.batch = 0;
        cursor.epoch += 1;
    }
    cursor.epoch < cfg.epochs
}

/// Writes a crash-safe mid-training snapshot of `model` and `cursor`
/// (parameters, AdamW state, loop position), sealed with the checkpoint
/// trailer from `lcrec_tensor::serialize`.
pub fn save_train_checkpoint<M: NextItemModel>(
    model: &M,
    cursor: &SeqTrainCursor,
    w: &mut impl std::io::Write,
) -> std::io::Result<()> {
    lcrec_tensor::serialize::save_train_state(model.store(), &cursor.opt, &cursor.to_blob(), w)
}

/// Restores a snapshot written by [`save_train_checkpoint`] into an
/// architecturally identical model and returns the cursor to continue
/// [`train_tick`]-ing from. On any corruption the model is left
/// untouched and a typed error is returned.
pub fn load_train_checkpoint<M: NextItemModel>(
    model: &mut M,
    r: &mut impl std::io::Read,
) -> std::io::Result<SeqTrainCursor> {
    let mut opt = lcrec_tensor::AdamW::new(model.config().lr);
    let extra = lcrec_tensor::serialize::load_train_state(model.store_mut(), &mut opt, r)?;
    SeqTrainCursor::from_blob(opt, &extra).ok_or_else(|| {
        std::io::Error::new(
            std::io::ErrorKind::InvalidData,
            "malformed seqrec training cursor in checkpoint",
        )
    })
}

/// Scores every item for a single history using `forward_logits` with a
/// batch of one (inference mode, dropout off).
pub fn score_single<M: NextItemModel>(model: &M, history: &[u32]) -> Vec<f32> {
    let cfg = model.config();
    let h = clip_history(history, cfg.max_len);
    let batch = Batch { hist: h.to_vec(), b: 1, len: h.len(), targets: vec![0] };
    let mut g = lcrec_tensor::Graph::inference();
    let logits = model.forward_logits(&mut g, &batch);
    g.value(logits).data().to_vec()
}

/// Truncates a history to its `max_len` most recent items.
pub fn clip_history(history: &[u32], max_len: usize) -> &[u32] {
    if history.len() > max_len {
        &history[history.len() - max_len..]
    } else {
        history
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn pairs_cover_all_prefixes() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let expected: usize =
            (0..ds.num_users()).map(|u| ds.train_seq(u).len() - 1).sum();
        assert_eq!(pairs.len(), expected);
        for (h, t) in &pairs.pairs {
            assert!(!h.is_empty() && h.len() <= 10);
            assert!((*t as usize) < ds.num_items());
        }
    }

    #[test]
    fn batches_are_length_uniform_and_complete() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let batches = epoch_batches(&pairs, 16, 3);
        let total: usize = batches.iter().map(|b| b.b).sum();
        assert_eq!(total, pairs.len());
        for b in &batches {
            assert_eq!(b.hist.len(), b.b * b.len);
            assert_eq!(b.targets.len(), b.b);
            assert!(b.b <= 16);
        }
    }

    #[test]
    fn epoch_batches_differ_by_seed() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let a = epoch_batches(&pairs, 16, 1);
        let b = epoch_batches(&pairs, 16, 2);
        let fa: Vec<usize> = a.iter().map(|x| x.len).collect();
        let fb: Vec<usize> = b.iter().map(|x| x.len).collect();
        assert!(fa != fb || a[0].targets != b[0].targets);
    }

    #[test]
    fn causal_mask_is_lower_triangular() {
        let m = causal_mask(4);
        for i in 0..4 {
            for j in 0..4 {
                let v = m.at(i, j);
                if j <= i {
                    assert_eq!(v, 0.0);
                } else {
                    assert!(v < -1e8);
                }
            }
        }
    }

    #[test]
    fn clip_history_keeps_most_recent() {
        let h = [1u32, 2, 3, 4, 5];
        assert_eq!(clip_history(&h, 3), &[3, 4, 5]);
        assert_eq!(clip_history(&h, 10), &h[..]);
    }
}
