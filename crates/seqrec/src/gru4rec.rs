//! GRU4Rec (Hidasi et al., ICLR 2016): a GRU encodes the item sequence;
//! the final hidden state scores all items through the tied embedding.

use crate::common::{
    score_single, train_next_item, Batch, NextItemModel, RecConfig, ScoreModel, TrainingPairs,
};
use lcrec_tensor::nn::{Embedding, GruCell};
use lcrec_tensor::{Graph, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The GRU4Rec model.
#[derive(Debug)]
pub struct Gru4Rec {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding,
    cell: GruCell,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    num_items: usize,
}

impl Gru4Rec {
    /// Builds an untrained GRU4Rec.
    pub fn new(num_items: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let item_emb = Embedding::new(&mut ps, "item_emb", num_items, cfg.dim, &mut rng);
        let cell = GruCell::new(&mut ps, "gru", cfg.dim, cfg.dim, &mut rng);
        Gru4Rec { cfg, ps, item_emb, cell, num_items }
    }

    /// Trains on next-item prediction.
    pub fn fit(&mut self, pairs: &TrainingPairs) -> Vec<f32> {
        train_next_item(self, pairs)
    }

    fn rep(&self, g: &mut Graph, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.len);
        let x = self.item_emb.forward(g, &self.ps, &batch.hist); // [b*l, d]
        let x = g.dropout(x, self.cfg.dropout);
        let mut h = g.constant(Tensor::zeros(&[b, self.cfg.dim]));
        for t in 0..l {
            // Column-t rows of the flattened [b, l] layout.
            let ids: Vec<u32> = (0..b as u32).map(|i| i * l as u32 + t as u32).collect();
            let xt = g.gather_rows(x, &ids);
            h = self.cell.step(g, &self.ps, xt, h);
        }
        h
    }
}

impl NextItemModel for Gru4Rec {
    fn forward_logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let rep = self.rep(g, batch);
        let table = g.param(&self.ps, self.item_emb.table_id());
        g.matmul_nt(rep, table)
    }

    fn store(&self) -> &ParamStore {
        &self.ps
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn config(&self) -> &RecConfig {
        &self.cfg
    }
}

impl ScoreModel for Gru4Rec {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        score_single(self, history)
    }

    fn model_name(&self) -> &'static str {
        "GRU4Rec"
    }

    fn item_embeddings(&self) -> Option<Tensor> {
        Some(self.item_emb.table(&self.ps).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::{Dataset, DatasetConfig};

    #[test]
    fn gru4rec_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = Gru4Rec::new(ds.num_items(), RecConfig::test());
        let losses = m.fit(&pairs);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn hidden_state_depends_on_sequence_order() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Gru4Rec::new(ds.num_items(), RecConfig::test());
        let pairs = TrainingPairs::build(&ds, 10);
        m.fit(&pairs);
        assert_ne!(m.score_all(0, &[1, 2, 3]), m.score_all(0, &[3, 2, 1]));
    }
}
