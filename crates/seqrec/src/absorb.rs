//! Bounded incremental fine-tuning ("absorption") of new catalog items.
//!
//! When the catalog grows online (see `docs/CATALOG.md`), the sequential
//! recommender should learn the new items **without retraining the
//! world**. The absorb loop wraps the resumable train/resume cursors of
//! [`crate::common`] with a hard step budget: run at most `max_steps`
//! optimizer batches over the post-admission training pairs, checkpoint
//! at any batch boundary, and resume bit-identically to an uninterrupted
//! run — the exact same contract as full training, just bounded.
//!
//! The budget is in *batches*, not epochs, so the serving side can absorb
//! N new items in K bounded steps on a schedule regardless of dataset
//! size (`repro --exp evolve` measures recall-on-new-items before and
//! after one absorption pass).

use crate::common::{train_begin, train_tick, NextItemModel, SeqTrainCursor, TrainingPairs};
use lcrec_par::Pool;

/// Everything a bounded absorption run carries across batches: the
/// underlying resumable [`SeqTrainCursor`] plus the step budget and how
/// much of it is spent. Checkpoint with [`save_absorb_checkpoint`] and
/// resume with [`load_absorb_checkpoint`]; any stop/resume sequence is
/// bit-identical to never stopping (`tests/evolution.rs` pins this).
#[derive(Debug)]
pub struct AbsorbCursor {
    inner: SeqTrainCursor,
    steps_done: u64,
    max_steps: u64,
}

impl AbsorbCursor {
    /// Optimizer batches run so far (≤ [`AbsorbCursor::max_steps`]).
    pub fn steps_done(&self) -> u64 {
        self.steps_done
    }

    /// The hard step budget this run was started with.
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// The underlying resumable training cursor (epoch/batch position and
    /// per-epoch losses so far).
    pub fn inner(&self) -> &SeqTrainCursor {
        &self.inner
    }
}

/// Starts a bounded absorption run: at most `max_steps` optimizer batches
/// over whatever pairs are passed to [`absorb_tick`]. Absorption is plain
/// (resumable) training with a budget, so the model keeps its existing
/// parameters — only the incremental gradient steps are applied.
pub fn absorb_begin<M: NextItemModel>(model: &M, max_steps: u64) -> AbsorbCursor {
    AbsorbCursor { inner: train_begin(model), steps_done: 0, max_steps }
}

/// Runs **one** absorption batch and returns `true` while budget and work
/// remain. Identical arithmetic to [`train_tick`] — same batch order,
/// dropout streams and gradient summation — so absorption inherits the
/// bit-identical stop/resume contract.
pub fn absorb_tick<M: NextItemModel>(
    pool: &Pool,
    model: &mut M,
    pairs: &TrainingPairs,
    cursor: &mut AbsorbCursor,
) -> bool {
    if cursor.steps_done >= cursor.max_steps {
        return false;
    }
    let more = train_tick(pool, model, pairs, &mut cursor.inner);
    cursor.steps_done += 1;
    lcrec_obs::counter_add("catalog.absorb_steps", 1);
    more && cursor.steps_done < cursor.max_steps
}

/// Runs a bounded absorption pass to completion (budget spent or training
/// finished) and returns the final cursor. Equivalent to
/// [`absorb_begin`] + [`absorb_tick`] in a loop.
pub fn absorb_with<M: NextItemModel>(
    pool: &Pool,
    model: &mut M,
    pairs: &TrainingPairs,
    max_steps: u64,
) -> AbsorbCursor {
    let _span = lcrec_obs::span("seqrec.absorb");
    let mut cursor = absorb_begin(model, max_steps);
    while absorb_tick(pool, model, pairs, &mut cursor) {}
    cursor
}

/// Writes a crash-safe mid-absorption snapshot: model parameters, AdamW
/// state, the inner training cursor and the step budget/progress, sealed
/// with the checkpoint trailer from `lcrec_tensor::serialize`.
pub fn save_absorb_checkpoint<M: NextItemModel>(
    model: &M,
    cursor: &AbsorbCursor,
    w: &mut impl std::io::Write,
) -> std::io::Result<()> {
    let mut extra = Vec::new();
    extra.extend_from_slice(&cursor.steps_done.to_le_bytes());
    extra.extend_from_slice(&cursor.max_steps.to_le_bytes());
    extra.extend_from_slice(&cursor.inner.to_blob());
    lcrec_tensor::serialize::save_train_state(model.store(), cursor.inner.opt(), &extra, w)
}

/// Restores a snapshot written by [`save_absorb_checkpoint`] into an
/// architecturally identical model and returns the cursor to continue
/// [`absorb_tick`]-ing from. On any corruption the model is left
/// untouched and a typed error is returned.
pub fn load_absorb_checkpoint<M: NextItemModel>(
    model: &mut M,
    r: &mut impl std::io::Read,
) -> std::io::Result<AbsorbCursor> {
    let mut opt = lcrec_tensor::AdamW::new(model.config().lr);
    let extra = lcrec_tensor::serialize::load_train_state(model.store_mut(), &mut opt, r)?;
    let malformed =
        || std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed absorb cursor");
    let steps_done =
        u64::from_le_bytes(extra.get(0..8).ok_or_else(malformed)?.try_into().map_err(|_| malformed())?);
    let max_steps =
        u64::from_le_bytes(extra.get(8..16).ok_or_else(malformed)?.try_into().map_err(|_| malformed())?);
    let inner = SeqTrainCursor::from_blob(opt, extra.get(16..).ok_or_else(malformed)?)
        .ok_or_else(malformed)?;
    Ok(AbsorbCursor { inner, steps_done, max_steps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::common::RecConfig;
    use crate::sasrec::SasRec;
    use lcrec_data::{Dataset, DatasetConfig};

    fn fixture() -> (SasRec, TrainingPairs) {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let cfg = RecConfig::test();
        let pairs = TrainingPairs::build(&ds, cfg.max_len);
        (SasRec::new(ds.num_items(), cfg), pairs)
    }

    #[test]
    fn budget_bounds_the_step_count() {
        let (mut model, pairs) = fixture();
        let pool = Pool::new(1);
        let cursor = absorb_with(&pool, &mut model, &pairs, 3);
        assert_eq!(cursor.steps_done(), 3);
        assert_eq!(cursor.max_steps(), 3);
    }

    #[test]
    fn absorption_is_prefix_of_full_training() {
        // K absorb steps must produce exactly the parameters of the first
        // K batches of an uninterrupted training run.
        let (mut absorbed, pairs) = fixture();
        let pool = Pool::new(1);
        absorb_with(&pool, &mut absorbed, &pairs, 4);

        let (mut trained, _) = fixture();
        let mut cursor = crate::common::train_begin(&trained);
        for _ in 0..4 {
            crate::common::train_tick(&pool, &mut trained, &pairs, &mut cursor);
        }
        let mut a = Vec::new();
        let mut b = Vec::new();
        lcrec_tensor::serialize::save_params(absorbed.store(), &mut a).expect("in-memory write");
        lcrec_tensor::serialize::save_params(trained.store(), &mut b).expect("in-memory write");
        assert_eq!(a, b, "absorption diverged from the training prefix");
    }
}
