//! S³-Rec (Zhou et al., CIKM 2020): self-supervised pretraining for
//! sequential recommendation via mutual-information maximization, followed
//! by next-item fine-tuning on a SASRec-style backbone.
//!
//! Of the paper's four pretext objectives we implement the two that carry
//! most of the benefit on attribute-rich data and are well-defined in our
//! substrate: **AAP** (item ↔ attribute alignment: an item embedding must
//! predict its category attributes) and **MIP** (masked item prediction
//! with a bidirectional pass). The ablation is noted in DESIGN.md.

use crate::common::{
    causal_mask, epoch_batches, score_single, Batch, NextItemModel, RecConfig, ScoreModel,
    TrainingPairs,
};
use lcrec_data::Dataset;
use lcrec_tensor::nn::{Act, BlockConfig, Embedding, LayerNorm, Norm, TransformerBlock};
use lcrec_tensor::{AdamW, Graph, ParamStore, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The S³-Rec model.
#[derive(Debug)]
pub struct S3Rec {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding, // [num_items + 1, d]; last row = mask token
    attr_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    attributes: Vec<u16>,
    num_items: usize,
    /// Pretraining epochs (fine-tuning uses `cfg.epochs`).
    pub pretrain_epochs: usize,
}

impl S3Rec {
    /// Builds an untrained S³-Rec over the dataset's category attributes.
    pub fn new(ds: &Dataset, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let num_items = ds.num_items();
        let num_attrs = ds.catalog.taxonomy.num_subs();
        let attributes: Vec<u16> =
            (0..num_items as u32).map(|i| ds.catalog.sub_of(i) as u16).collect();
        let bc = BlockConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 4,
            dropout: cfg.dropout,
            norm: Norm::Layer,
            act: Act::Gelu,
        };
        let blocks = (0..cfg.layers)
            .map(|l| TransformerBlock::new(&mut ps, &format!("block{l}"), bc, &mut rng))
            .collect();
        S3Rec {
            item_emb: Embedding::new(&mut ps, "item_emb", num_items + 1, cfg.dim, &mut rng),
            attr_emb: Embedding::new(&mut ps, "attr_emb", num_attrs, cfg.dim, &mut rng),
            pos_emb: Embedding::new(&mut ps, "pos_emb", cfg.max_len + 1, cfg.dim, &mut rng),
            blocks,
            final_norm: LayerNorm::new(&mut ps, "final_norm", cfg.dim),
            cfg,
            ps,
            attributes,
            num_items,
            pretrain_epochs: 4,
        }
    }

    fn mask_token(&self) -> u32 {
        self.num_items as u32
    }

    fn encode(&self, g: &mut Graph, tokens: &[u32], b: usize, l: usize, causal: bool) -> Var {
        let x = self.item_emb.forward(g, &self.ps, tokens);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..l as u32).collect();
        let p = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        let mask = causal.then(|| causal_mask(l));
        for blk in &self.blocks {
            x = blk.forward(g, &self.ps, x, b, l, mask.as_ref(), None);
        }
        self.final_norm.forward(g, &self.ps, x)
    }

    /// Pretrains with AAP + MIP, then fine-tunes on next-item prediction.
    /// Returns (pretrain losses, fine-tune losses).
    pub fn fit(&mut self, ds: &Dataset, pairs: &TrainingPairs) -> (Vec<f32>, Vec<f32>) {
        let pre = self.pretrain(ds, pairs);
        let fine = crate::common::train_next_item(self, pairs);
        (pre, fine)
    }

    fn pretrain(&mut self, _ds: &Dataset, pairs: &TrainingPairs) -> Vec<f32> {
        let cfg = self.cfg.clone();
        let mut opt = AdamW::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5353);
        let mut losses = Vec::with_capacity(self.pretrain_epochs);
        for epoch in 0..self.pretrain_epochs {
            let batches = epoch_batches(pairs, cfg.batch, cfg.seed ^ (epoch as u64 + 31));
            let mut sum = 0.0;
            for batch in &batches {
                let mut g = Graph::new();
                g.seed(cfg.seed ^ (epoch as u64) << 12);
                // --- AAP: every item embedding predicts its attribute. ---
                let uniq: Vec<u32> = {
                    let mut v: Vec<u32> = batch.hist.clone();
                    v.sort_unstable();
                    v.dedup();
                    v
                };
                let items = self.item_emb.forward(&mut g, &self.ps, &uniq);
                let attr_table = g.param(&self.ps, self.attr_emb.table_id());
                let attr_logits = g.matmul_nt(items, attr_table);
                let attr_targets: Vec<u32> =
                    uniq.iter().map(|&i| self.attributes[i as usize] as u32).collect();
                let aap = g.cross_entropy(attr_logits, &attr_targets, u32::MAX);
                // --- MIP: mask random positions, predict bidirectionally. ---
                let mut tokens = batch.hist.clone();
                let mut targets = vec![u32::MAX; tokens.len()];
                for (i, t) in tokens.iter_mut().enumerate() {
                    if rng.random_range(0.0f32..1.0) < 0.25 {
                        targets[i] = *t;
                        *t = self.mask_token();
                    }
                }
                let enc = self.encode(&mut g, &tokens, batch.b, batch.len, false);
                let table = g.param(&self.ps, self.item_emb.table_id());
                let items_only = g.slice_rows(table, 0, self.num_items);
                let mip_logits = g.matmul_nt(enc, items_only);
                let mip = g.cross_entropy(mip_logits, &targets, u32::MAX);
                let total = g.add(aap, mip);
                sum += g.value(total).item();
                self.ps.zero_grads();
                g.backward(total, &mut self.ps);
                self.ps.clip_grad_norm(5.0);
                opt.step(&mut self.ps);
            }
            losses.push(sum / batches.len().max(1) as f32);
        }
        losses
    }
}

impl NextItemModel for S3Rec {
    fn forward_logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let enc = self.encode(g, &batch.hist, batch.b, batch.len, true);
        let last: Vec<u32> =
            (0..batch.b as u32).map(|i| i * batch.len as u32 + (batch.len as u32 - 1)).collect();
        let rep = g.gather_rows(enc, &last);
        let table = g.param(&self.ps, self.item_emb.table_id());
        let items_only = g.slice_rows(table, 0, self.num_items);
        g.matmul_nt(rep, items_only)
    }

    fn store(&self) -> &ParamStore {
        &self.ps
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn config(&self) -> &RecConfig {
        &self.cfg
    }
}

impl ScoreModel for S3Rec {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        score_single(self, history)
    }

    fn model_name(&self) -> &'static str {
        "S3-Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn s3rec_pretrains_and_finetunes() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = S3Rec::new(&ds, RecConfig::test());
        m.pretrain_epochs = 2;
        let (pre, fine) = m.fit(&ds, &pairs);
        assert_eq!(pre.len(), 2);
        assert!(fine.last().expect("epochs") < &fine[0], "{fine:?}");
    }

    #[test]
    fn attribute_prediction_improves_during_pretraining() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = S3Rec::new(&ds, RecConfig::test());
        m.pretrain_epochs = 3;
        let pre = m.pretrain(&ds, &pairs);
        assert!(pre.last().expect("epochs") < &pre[0], "{pre:?}");
    }
}
