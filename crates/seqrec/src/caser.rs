//! Caser (Tang & Wang, WSDM 2018): treats the last `L` item embeddings as an
//! `L × d` image and applies horizontal convolutions (union-level patterns,
//! max-pooled over time) and vertical convolutions (weighted sums over time),
//! concatenated with a user embedding into the prediction layer.

use crate::common::{clip_history, epoch_batches, Batch, RecConfig, ScoreModel, TrainingPairs};
use lcrec_data::Dataset;
use lcrec_tensor::nn::{Embedding, Linear};
use lcrec_tensor::{AdamW, Graph, ParamStore, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The Caser model. Uses a fixed window of the `window` most recent items,
/// left-padded with a dedicated padding embedding row.
#[derive(Debug)]
pub struct Caser {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding, // [num_items + 1, d]; last row = padding
    user_emb: Embedding,
    /// One horizontal filter bank per height: `[h*d, filters]`.
    h_filters: Vec<(usize, Linear)>,
    /// Vertical filters `[n_v, window]` applied as a constant-group matmul
    /// is not possible (they are learned), so they are a Linear over time.
    v_filters: Linear,
    fc: Linear,
    window: usize,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    n_h: usize,
    n_v: usize,
    num_items: usize,
}

impl Caser {
    /// Builds an untrained Caser for `num_items` items and `num_users` users.
    pub fn new(num_items: usize, num_users: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let window = 5usize.min(cfg.max_len);
        let n_h = 8; // filters per height
        let n_v = 4;
        let item_emb = Embedding::new(&mut ps, "item_emb", num_items + 1, cfg.dim, &mut rng);
        let user_emb = Embedding::new(&mut ps, "user_emb", num_users.max(1), cfg.dim, &mut rng);
        let heights = [2usize, 3, 4];
        let h_filters = heights
            .iter()
            .filter(|&&h| h <= window)
            .map(|&h| {
                (h, Linear::new(&mut ps, &format!("hconv{h}"), h * cfg.dim, n_h, &mut rng))
            })
            .collect::<Vec<_>>();
        let v_filters = Linear::with_bias(&mut ps, "vconv", window, n_v, false, &mut rng);
        let conv_out = h_filters.len() * n_h + n_v * cfg.dim;
        let fc = Linear::new(&mut ps, "fc", conv_out + cfg.dim, cfg.dim, &mut rng);
        Caser { cfg, ps, item_emb, user_emb, h_filters, v_filters, fc, window, n_h, n_v, num_items }
    }

    fn pad_token(&self) -> u32 {
        self.num_items as u32
    }

    /// Fixed-window tokens for a history: the last `window` items,
    /// left-padded.
    fn window_tokens(&self, history: &[u32]) -> Vec<u32> {
        let h = clip_history(history, self.window);
        let mut out = vec![self.pad_token(); self.window - h.len()];
        out.extend_from_slice(h);
        out
    }

    fn rep(&self, g: &mut Graph, tokens: &[u32], users: &[u32], b: usize) -> Var {
        let l = self.window;
        let d = self.cfg.dim;
        let e = self.item_emb.forward(g, &self.ps, tokens); // [b*l, d]
        let e = g.dropout(e, self.cfg.dropout);
        let mut feats: Vec<Var> = Vec::new();
        // Horizontal convolutions: windows of h rows → Linear → ReLU →
        // max over time.
        for (h, filt) in &self.h_filters {
            let n_pos = l - h + 1;
            let mut ids = Vec::with_capacity(b * n_pos * h);
            for bi in 0..b {
                for p in 0..n_pos {
                    for o in 0..*h {
                        ids.push((bi * l + p + o) as u32);
                    }
                }
            }
            let windows = g.gather_rows(e, &ids); // [b*n_pos*h, d]
            let flat = g.reshape(windows, &[b * n_pos, h * d]);
            let conv = filt.forward(g, &self.ps, flat); // [b*n_pos, n_h]
            let act = g.relu(conv);
            feats.push(g.max_pool_rows(act, n_pos)); // [b, n_h]
        }
        // Vertical convolution: learned weighted sums over the time axis.
        // e viewed per sequence is [l, d]; v_filters maps time → n_v, i.e.
        // out = (V e) with V [n_v, l]. Implemented by transposing each
        // sequence block via reshape tricks: gather columns of time.
        // Build [b*d, l] by gathering (bi, :, dim j) — instead reshape:
        // use per-time gathers to assemble [b, l] slices per dim is costly;
        // simpler: treat V as Linear over the time axis applied to e^T.
        let vt = {
            // e: [b*l, d] → per sequence transpose to [d, l] stacked → [b*d, l]
            let mut ids = Vec::with_capacity(b * d * l);
            for bi in 0..b {
                for _dj in 0..d {
                    for t in 0..l {
                        ids.push((bi * l + t) as u32);
                    }
                }
            }
            // gather gives [b*d*l, d]; that duplicates — instead use
            // reshape+transpose per batch: cheaper path below.
            let _ = ids;
            // Per-batch transpose via slice + transpose + concat.
            let mut parts = Vec::with_capacity(b);
            for bi in 0..b {
                let block = g.slice_rows(e, bi * l, (bi + 1) * l); // [l, d]
                parts.push(g.transpose(block)); // [d, l]
            }
            g.concat_rows(&parts) // [b*d, l]
        };
        let v_out = self.v_filters.forward(g, &self.ps, vt); // [b*d, n_v]
        let v_flat = g.reshape(v_out, &[b, d * self.n_v]);
        feats.push(v_flat);
        let u = self.user_emb.forward(g, &self.ps, users); // [b, d]
        feats.push(u);
        let cat = g.concat_cols(&feats);
        let cat = g.dropout(cat, self.cfg.dropout);
        let z = self.fc.forward(g, &self.ps, cat);
        g.relu(z)
    }

    /// Trains Caser; needs the dataset to recover the user of each pair,
    /// so it builds its own (user, window, target) triples.
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let cfg = self.cfg.clone();
        // Build pairs annotated with user ids.
        let mut pairs = TrainingPairs { pairs: Vec::new(), num_items: ds.num_items() };
        let mut users = Vec::new();
        for u in 0..ds.num_users() {
            let seq = ds.train_seq(u);
            for end in 1..seq.len() {
                let start = end.saturating_sub(self.window);
                pairs.pairs.push((seq[start..end].to_vec(), seq[end]));
                users.push(u as u32);
            }
        }
        // Window tokens have fixed length, so plain chunking suffices; reuse
        // epoch_batches for shuffling by passing the fixed-size windows.
        let mut opt = AdamW::new(cfg.lr);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let order = epoch_batches(&pairs, cfg.batch, cfg.seed ^ (epoch as u64 + 5));
            let mut sum = 0.0;
            let mut nb = 0;
            for batch in &order {
                // Reconstruct users by matching targets is ambiguous; instead
                // recompute windows directly from the batch histories and use
                // user 0 — Caser's user term is most useful at paper scale;
                // at small scale we retain it but train it from per-pair
                // users below.
                let mut tokens = Vec::with_capacity(batch.b * self.window);
                for row in 0..batch.b {
                    let hist = &batch.hist[row * batch.len..(row + 1) * batch.len];
                    tokens.extend(self.window_tokens(hist));
                }
                let user_ids: Vec<u32> = find_users(&pairs, &users, batch);
                let mut g = Graph::new();
                g.seed(cfg.seed ^ (epoch as u64) << 16);
                let rep = self.rep(&mut g, &tokens, &user_ids, batch.b);
                let table = g.param(&self.ps, self.item_emb.table_id());
                let items_only = g.slice_rows(table, 0, self.num_items);
                let logits = g.matmul_nt(rep, items_only);
                let loss = g.cross_entropy(logits, &batch.targets, u32::MAX);
                sum += g.value(loss).item();
                nb += 1;
                self.ps.zero_grads();
                g.backward(loss, &mut self.ps);
                self.ps.clip_grad_norm(5.0);
                opt.step(&mut self.ps);
            }
            losses.push(sum / nb.max(1) as f32);
        }
        losses
    }
}

/// Recovers the user id of each batch row by matching (history, target)
/// back to the augmented pair list. Pairs are unique per (u, end) but the
/// same (hist, target) can occur for two users; any owner is equally valid
/// as supervision for the user embedding.
fn find_users(pairs: &TrainingPairs, users: &[u32], batch: &Batch) -> Vec<u32> {
    use std::collections::HashMap;
    let mut index: HashMap<(&[u32], u32), u32> = HashMap::new();
    for (i, (h, t)) in pairs.pairs.iter().enumerate() {
        index.entry((h.as_slice(), *t)).or_insert(users[i]);
    }
    (0..batch.b)
        .map(|row| {
            let h = &batch.hist[row * batch.len..(row + 1) * batch.len];
            index.get(&(h, batch.targets[row])).copied().unwrap_or(0)
        })
        .collect()
}

impl ScoreModel for Caser {
    fn score_all(&self, user: usize, history: &[u32]) -> Vec<f32> {
        let tokens = self.window_tokens(history);
        let mut g = Graph::inference();
        let rep = self.rep(&mut g, &tokens, &[user as u32], 1);
        let table = g.param(&self.ps, self.item_emb.table_id());
        let items_only = g.slice_rows(table, 0, self.num_items);
        let logits = g.matmul_nt(rep, items_only);
        g.value(logits).data().to_vec()
    }

    fn model_name(&self) -> &'static str {
        "Caser"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn caser_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Caser::new(ds.num_items(), ds.num_users(), RecConfig::test());
        let losses = m.fit(&ds);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn window_tokens_pad_short_histories() {
        let m = Caser::new(10, 5, RecConfig::test());
        let t = m.window_tokens(&[7, 8]);
        assert_eq!(t.len(), m.window);
        assert_eq!(&t[m.window - 2..], &[7, 8]);
        assert!(t[..m.window - 2].iter().all(|&x| x == 10));
    }

    #[test]
    fn scores_have_item_cardinality() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let m = Caser::new(ds.num_items(), ds.num_users(), RecConfig::test());
        assert_eq!(m.score_all(0, &[1, 2, 3]).len(), ds.num_items());
    }
}
