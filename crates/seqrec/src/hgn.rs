//! HGN (Ma et al., KDD 2019): hierarchical gating — a feature gate modulates
//! embedding dimensions, an instance gate weights sequence positions — plus
//! an item-item product term, aggregated with the user embedding.

use crate::common::{clip_history, epoch_batches, RecConfig, ScoreModel, TrainingPairs};
use lcrec_data::Dataset;
use lcrec_tensor::nn::{Embedding, Linear};
use lcrec_tensor::{AdamW, Graph, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The HGN model.
#[derive(Debug)]
pub struct Hgn {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding,
    user_emb: Embedding,
    /// Feature gate: `σ(E W1 + u W2)`.
    w1: Linear,
    w2: Linear,
    /// Instance gate: `σ(E' w3 + u w4)` → one weight per position.
    w3: Linear,
    w4: Linear,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    num_items: usize,
}

impl Hgn {
    /// Builds an untrained HGN.
    pub fn new(num_items: usize, num_users: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let d = cfg.dim;
        Hgn {
            item_emb: Embedding::new(&mut ps, "item_emb", num_items, d, &mut rng),
            user_emb: Embedding::new(&mut ps, "user_emb", num_users.max(1), d, &mut rng),
            w1: Linear::with_bias(&mut ps, "w1", d, d, true, &mut rng),
            w2: Linear::with_bias(&mut ps, "w2", d, d, false, &mut rng),
            w3: Linear::with_bias(&mut ps, "w3", d, 1, true, &mut rng),
            w4: Linear::with_bias(&mut ps, "w4", d, 1, false, &mut rng),
            cfg,
            ps,
            num_items,
        }
    }

    fn rep(&self, g: &mut Graph, hist: &[u32], users: &[u32], b: usize, l: usize) -> Var {
        let e = self.item_emb.forward(g, &self.ps, hist); // [b*l, d]
        let e = g.dropout(e, self.cfg.dropout);
        let u = self.user_emb.forward(g, &self.ps, users); // [b, d]
        // Tile user rows per position: [b*l, d].
        let tile_ids: Vec<u32> = (0..b as u32).flat_map(|i| std::iter::repeat_n(i, l)).collect();
        let u_tiled = g.gather_rows(u, &tile_ids);
        // Feature gating.
        let ew = self.w1.forward(g, &self.ps, e);
        let uw = self.w2.forward(g, &self.ps, u_tiled);
        let gate_in = g.add(ew, uw);
        let fgate = g.sigmoid(gate_in);
        let ef = g.mul(e, fgate);
        // Instance gating: per-position scalar.
        let iw = self.w3.forward(g, &self.ps, ef); // [b*l, 1]
        let uw2 = self.w4.forward(g, &self.ps, u_tiled); // [b*l, 1]
        let gsum = g.add(iw, uw2);
        let igate = g.sigmoid(gsum); // [b*l, 1]
        // Broadcast the scalar across d columns: igate @ ones[1, d].
        let ones = g.constant(Tensor::full(&[1, self.cfg.dim], 1.0));
        let igate_d = g.matmul(igate, ones);
        let egated = g.mul(ef, igate_d);
        // Aggregate: instance-gated average + user + item-item (avg of raw
        // embeddings, equivalent to Σ e_j · e_target under the tied head).
        let avg_gated = g.mean_pool_rows(egated, l); // [b, d]
        let avg_raw = g.mean_pool_rows(e, l);
        let s = g.add(avg_gated, u);
        g.add(s, avg_raw)
    }

    /// Trains HGN (needs user ids, hence the dataset).
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let cfg = self.cfg.clone();
        let mut pairs = TrainingPairs { pairs: Vec::new(), num_items: ds.num_items() };
        let mut owners = Vec::new();
        for u in 0..ds.num_users() {
            let seq = ds.train_seq(u);
            for end in 1..seq.len() {
                let start = end.saturating_sub(cfg.max_len);
                pairs.pairs.push((seq[start..end].to_vec(), seq[end]));
                owners.push(u as u32);
            }
        }
        let mut index = std::collections::HashMap::new();
        for (i, (h, t)) in pairs.pairs.iter().enumerate() {
            index.entry((h.clone(), *t)).or_insert(owners[i]);
        }
        let mut opt = AdamW::new(cfg.lr);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let batches = epoch_batches(&pairs, cfg.batch, cfg.seed ^ (epoch as u64 + 9));
            let mut sum = 0.0;
            for batch in &batches {
                let users: Vec<u32> = (0..batch.b)
                    .map(|row| {
                        let h = batch.hist[row * batch.len..(row + 1) * batch.len].to_vec();
                        index.get(&(h, batch.targets[row])).copied().unwrap_or(0)
                    })
                    .collect();
                let mut g = Graph::new();
                g.seed(cfg.seed ^ (epoch as u64) << 14);
                let rep = self.rep(&mut g, &batch.hist, &users, batch.b, batch.len);
                let table = g.param(&self.ps, self.item_emb.table_id());
                let logits = g.matmul_nt(rep, table);
                let loss = g.cross_entropy(logits, &batch.targets, u32::MAX);
                sum += g.value(loss).item();
                self.ps.zero_grads();
                g.backward(loss, &mut self.ps);
                self.ps.clip_grad_norm(5.0);
                opt.step(&mut self.ps);
            }
            losses.push(sum / batches.len().max(1) as f32);
        }
        losses
    }
}

impl ScoreModel for Hgn {
    fn score_all(&self, user: usize, history: &[u32]) -> Vec<f32> {
        let h = clip_history(history, self.cfg.max_len);
        let mut g = Graph::inference();
        let rep = self.rep(&mut g, h, &[user as u32], 1, h.len());
        let table = g.param(&self.ps, self.item_emb.table_id());
        let logits = g.matmul_nt(rep, table);
        g.value(logits).data().to_vec()
    }

    fn model_name(&self) -> &'static str {
        "HGN"
    }

    fn item_embeddings(&self) -> Option<Tensor> {
        Some(self.item_emb.table(&self.ps).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn hgn_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Hgn::new(ds.num_items(), ds.num_users(), RecConfig::test());
        let losses = m.fit(&ds);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn different_users_get_different_scores() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Hgn::new(ds.num_items(), ds.num_users(), RecConfig::test());
        m.fit(&ds);
        let a = m.score_all(0, &[1, 2]);
        let b = m.score_all(1, &[1, 2]);
        assert_ne!(a, b, "the user embedding must personalize scores");
    }
}
