//! FDSA (Zhang et al., IJCAI 2019): feature-level deeper self-attention —
//! two parallel self-attention streams, one over item embeddings, one over
//! item **feature** embeddings (here: the item's category), whose final
//! states are concatenated and projected for prediction.

use crate::common::{
    causal_mask, score_single, train_next_item, Batch, NextItemModel, RecConfig, ScoreModel,
    TrainingPairs,
};
use lcrec_data::Dataset;
use lcrec_tensor::nn::{Act, BlockConfig, Embedding, LayerNorm, Linear, Norm, TransformerBlock};
use lcrec_tensor::{Graph, ParamStore, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The FDSA model. Holds an item → feature (flattened sub-category) map.
#[derive(Debug)]
pub struct Fdsa {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding,
    feat_emb: Embedding,
    pos_emb: Embedding,
    item_blocks: Vec<TransformerBlock>,
    feat_blocks: Vec<TransformerBlock>,
    item_norm: LayerNorm,
    feat_norm: LayerNorm,
    proj: Linear,
    features: Vec<u16>,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    num_items: usize,
}

impl Fdsa {
    /// Builds an untrained FDSA over the dataset's category features.
    pub fn new(ds: &Dataset, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let num_items = ds.num_items();
        let num_feats = ds.catalog.taxonomy.num_subs();
        let features: Vec<u16> = (0..num_items as u32).map(|i| ds.catalog.sub_of(i) as u16).collect();
        let bc = BlockConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 4,
            dropout: cfg.dropout,
            norm: Norm::Layer,
            act: Act::Relu,
        };
        let item_blocks =
            (0..cfg.layers).map(|l| TransformerBlock::new(&mut ps, &format!("ib{l}"), bc, &mut rng)).collect();
        let feat_blocks =
            (0..cfg.layers).map(|l| TransformerBlock::new(&mut ps, &format!("fb{l}"), bc, &mut rng)).collect();
        Fdsa {
            item_emb: Embedding::new(&mut ps, "item_emb", num_items, cfg.dim, &mut rng),
            feat_emb: Embedding::new(&mut ps, "feat_emb", num_feats, cfg.dim, &mut rng),
            pos_emb: Embedding::new(&mut ps, "pos_emb", cfg.max_len, cfg.dim, &mut rng),
            item_blocks,
            feat_blocks,
            item_norm: LayerNorm::new(&mut ps, "item_norm", cfg.dim),
            feat_norm: LayerNorm::new(&mut ps, "feat_norm", cfg.dim),
            proj: Linear::new(&mut ps, "proj", cfg.dim * 2, cfg.dim, &mut rng),
            cfg,
            ps,
            features,
            num_items,
        }
    }

    /// Trains on next-item prediction.
    pub fn fit(&mut self, pairs: &TrainingPairs) -> Vec<f32> {
        train_next_item(self, pairs)
    }

    fn rep(&self, g: &mut Graph, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.len);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..l as u32).collect();
        let mask = causal_mask(l);
        let last: Vec<u32> = (0..b as u32).map(|i| i * l as u32 + (l as u32 - 1)).collect();

        // Item stream.
        let xi = self.item_emb.forward(g, &self.ps, &batch.hist);
        let p = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let xi = g.add(xi, p);
        let mut xi = g.dropout(xi, self.cfg.dropout);
        for blk in &self.item_blocks {
            xi = blk.forward(g, &self.ps, xi, b, l, Some(&mask), None);
        }
        let xi = self.item_norm.forward(g, &self.ps, xi);
        let item_last = g.gather_rows(xi, &last);

        // Feature stream.
        let feat_ids: Vec<u32> =
            batch.hist.iter().map(|&i| self.features[i as usize] as u32).collect();
        let xf = self.feat_emb.forward(g, &self.ps, &feat_ids);
        let p2 = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let xf = g.add(xf, p2);
        let mut xf = g.dropout(xf, self.cfg.dropout);
        for blk in &self.feat_blocks {
            xf = blk.forward(g, &self.ps, xf, b, l, Some(&mask), None);
        }
        let xf = self.feat_norm.forward(g, &self.ps, xf);
        let feat_last = g.gather_rows(xf, &last);

        let cat = g.concat_cols(&[item_last, feat_last]);
        self.proj.forward(g, &self.ps, cat)
    }
}

impl NextItemModel for Fdsa {
    fn forward_logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let rep = self.rep(g, batch);
        let table = g.param(&self.ps, self.item_emb.table_id());
        g.matmul_nt(rep, table)
    }

    fn store(&self) -> &ParamStore {
        &self.ps
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn config(&self) -> &RecConfig {
        &self.cfg
    }
}

impl ScoreModel for Fdsa {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        score_single(self, history)
    }

    fn model_name(&self) -> &'static str {
        "FDSA"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    #[test]
    fn fdsa_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = Fdsa::new(&ds, RecConfig::test());
        let losses = m.fit(&pairs);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn features_cover_all_items() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let m = Fdsa::new(&ds, RecConfig::test());
        assert_eq!(m.features.len(), ds.num_items());
        let nsubs = ds.catalog.taxonomy.num_subs() as u16;
        assert!(m.features.iter().all(|&f| f < nsubs));
    }
}
