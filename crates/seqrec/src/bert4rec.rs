//! BERT4Rec (Sun et al., CIKM 2019): a bidirectional Transformer trained
//! with the cloze (masked item) objective. At inference a `[MASK]` token is
//! appended to the history and the model predicts the item at that slot.

use crate::common::{clip_history, epoch_batches, RecConfig, ScoreModel, TrainingPairs};
use lcrec_tensor::nn::{Act, BlockConfig, Embedding, LayerNorm, Norm, TransformerBlock};
use lcrec_tensor::{AdamW, Graph, ParamStore, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// The BERT4Rec model. The item vocabulary gains one `[MASK]` token whose
/// id is `num_items`.
#[derive(Debug)]
pub struct Bert4Rec {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding, // [num_items + 1, d]; last row = MASK
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    num_items: usize,
    /// Probability of masking each position during training.
    pub mask_prob: f32,
}

impl Bert4Rec {
    /// Builds an untrained BERT4Rec.
    pub fn new(num_items: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let item_emb = Embedding::new(&mut ps, "item_emb", num_items + 1, cfg.dim, &mut rng);
        let pos_emb = Embedding::new(&mut ps, "pos_emb", cfg.max_len + 1, cfg.dim, &mut rng);
        let bc = BlockConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 4,
            dropout: cfg.dropout,
            norm: Norm::Layer,
            act: Act::Gelu,
        };
        let blocks = (0..cfg.layers)
            .map(|l| TransformerBlock::new(&mut ps, &format!("block{l}"), bc, &mut rng))
            .collect();
        let final_norm = LayerNorm::new(&mut ps, "final_norm", cfg.dim);
        Bert4Rec { cfg, ps, item_emb, pos_emb, blocks, final_norm, num_items, mask_prob: 0.3 }
    }

    fn mask_token(&self) -> u32 {
        self.num_items as u32
    }

    /// Bidirectional encoding of `[b, l]` token rows → `[b*l, d]`.
    fn encode(&self, g: &mut Graph, tokens: &[u32], b: usize, l: usize) -> Var {
        let x = self.item_emb.forward(g, &self.ps, tokens);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..l as u32).collect();
        let p = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        for blk in &self.blocks {
            x = blk.forward(g, &self.ps, x, b, l, None, None);
        }
        self.final_norm.forward(g, &self.ps, x)
    }

    /// Trains with the cloze objective on full training histories
    /// (one masked copy per pair per epoch). Returns per-epoch losses.
    pub fn fit(&mut self, pairs: &TrainingPairs) -> Vec<f32> {
        let cfg = self.cfg.clone();
        let mut opt = AdamW::new(cfg.lr);
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xBE27);
        let mut losses = Vec::with_capacity(cfg.epochs);
        for epoch in 0..cfg.epochs {
            let batches = epoch_batches(pairs, cfg.batch, cfg.seed ^ (epoch as u64 + 77));
            let mut sum = 0.0;
            let mut count = 0usize;
            for batch in &batches {
                // Extend each history with its target (the cloze setup sees
                // whole sequences), then mask random positions.
                let l = batch.len + 1;
                let mut tokens = Vec::with_capacity(batch.b * l);
                let mut targets = Vec::with_capacity(batch.b * l);
                for (row, &t) in batch.targets.iter().enumerate() {
                    let hist = &batch.hist[row * batch.len..(row + 1) * batch.len];
                    let full: Vec<u32> = hist.iter().copied().chain([t]).collect();
                    let mut masked_any = false;
                    for (j, &tok) in full.iter().enumerate() {
                        let mask =
                            rng.random_range(0.0f32..1.0) < self.mask_prob || (j + 1 == l && !masked_any);
                        if mask {
                            tokens.push(self.mask_token());
                            targets.push(tok);
                            masked_any = true;
                        } else {
                            tokens.push(tok);
                            targets.push(u32::MAX);
                        }
                    }
                }
                let mut g = Graph::new();
                g.seed(cfg.seed ^ (epoch as u64) << 18);
                let enc = self.encode(&mut g, &tokens, batch.b, l);
                // Predict only real items (exclude the MASK row itself).
                let table = g.param(&self.ps, self.item_emb.table_id());
                let items_only = g.slice_rows(table, 0, self.num_items);
                let logits = g.matmul_nt(enc, items_only);
                let loss = g.cross_entropy(logits, &targets, u32::MAX);
                sum += g.value(loss).item();
                count += 1;
                self.ps.zero_grads();
                g.backward(loss, &mut self.ps);
                self.ps.clip_grad_norm(5.0);
                opt.step(&mut self.ps);
            }
            losses.push(sum / count.max(1) as f32);
        }
        losses
    }
}

impl ScoreModel for Bert4Rec {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        let h = clip_history(history, self.cfg.max_len);
        let mut tokens = h.to_vec();
        tokens.push(self.mask_token());
        let l = tokens.len();
        let mut g = Graph::inference();
        let enc = self.encode(&mut g, &tokens, 1, l);
        let last = g.slice_rows(enc, l - 1, l);
        let table = g.param(&self.ps, self.item_emb.table_id());
        let items_only = g.slice_rows(table, 0, self.num_items);
        let logits = g.matmul_nt(last, items_only);
        g.value(logits).data().to_vec()
    }

    fn model_name(&self) -> &'static str {
        "BERT4Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::{Dataset, DatasetConfig};

    #[test]
    fn bert4rec_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = Bert4Rec::new(ds.num_items(), RecConfig::test());
        let losses = m.fit(&pairs);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
        let scores = m.score_all(0, &[1, 2, 3]);
        assert_eq!(scores.len(), ds.num_items());
    }

    #[test]
    fn mask_token_is_out_of_item_range() {
        let m = Bert4Rec::new(30, RecConfig::test());
        assert_eq!(m.mask_token(), 30);
        // Scores never include the mask pseudo-item.
        assert_eq!(m.score_all(0, &[0, 1]).len(), 30);
    }

    #[test]
    fn bidirectional_context_affects_predictions() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = Bert4Rec::new(ds.num_items(), RecConfig::test());
        m.fit(&pairs);
        // Changing an early history item changes the mask-slot scores.
        let a = m.score_all(0, &[0, 5, 6]);
        let b = m.score_all(0, &[1, 5, 6]);
        assert_ne!(a, b);
    }
}
