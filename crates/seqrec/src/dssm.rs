//! DSSM (Huang et al., CIKM 2013): a two-tower retrieval model — query
//! tower and item tower each embed a bag of words and pass it through an
//! MLP; relevance is the scaled cosine of the two representations. Trained
//! with in-batch softmax on (intention query, target item) pairs.
//!
//! This is the Figure-3 baseline: it retrieves items for user-intention
//! queries using textual similarity alone.

use lcrec_data::Dataset;
use lcrec_data::InstructionBuilder;
use lcrec_tensor::nn::{Embedding, Linear};
use lcrec_tensor::{AdamW, Graph, ParamStore, Tensor, Var};
use lcrec_text::Vocab;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// DSSM configuration.
#[derive(Clone, Debug)]
pub struct DssmConfig {
    /// Word-embedding / tower width.
    pub dim: usize,
    /// Hidden width of the towers.
    pub hidden: usize,
    /// Softmax temperature (logits are `cos/τ`).
    pub temperature: f32,
    /// Learning rate.
    pub lr: f32,
    /// Training epochs.
    pub epochs: usize,
    /// Batch size (also the number of in-batch negatives + 1).
    pub batch: usize,
    /// Seed.
    pub seed: u64,
}

impl DssmConfig {
    /// Defaults for the small presets.
    pub fn small() -> Self {
        DssmConfig { dim: 32, hidden: 48, temperature: 0.1, lr: 2e-3, epochs: 8, batch: 64, seed: 99 }
    }
}

/// The DSSM two-tower model.
#[derive(Debug)]
pub struct Dssm {
    cfg: DssmConfig,
    ps: ParamStore,
    word_emb: Embedding,
    q1: Linear,
    q2: Linear,
    i1: Linear,
    i2: Linear,
    vocab: Vocab,
    /// Tokenized item titles.
    item_tokens: Vec<Vec<u32>>,
    /// Cached item representations after training.
    item_reps: Option<Tensor>,
}

impl Dssm {
    /// Builds an untrained DSSM over the dataset's item titles.
    pub fn new(ds: &Dataset, cfg: DssmConfig) -> Self {
        let builder = InstructionBuilder::new(ds);
        let corpus = builder.vocabulary_corpus();
        let vocab = Vocab::build(corpus.iter().map(String::as_str), 1);
        let item_tokens: Vec<Vec<u32>> =
            ds.catalog.items.iter().map(|it| vocab.encode(&it.title)).collect();
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        Dssm {
            word_emb: Embedding::new(&mut ps, "word_emb", vocab.len(), cfg.dim, &mut rng),
            q1: Linear::new(&mut ps, "q1", cfg.dim, cfg.hidden, &mut rng),
            q2: Linear::new(&mut ps, "q2", cfg.hidden, cfg.dim, &mut rng),
            i1: Linear::new(&mut ps, "i1", cfg.dim, cfg.hidden, &mut rng),
            i2: Linear::new(&mut ps, "i2", cfg.hidden, cfg.dim, &mut rng),
            cfg,
            ps,
            vocab,
            item_tokens,
            item_reps: None,
        }
    }

    /// Mean word embedding of a token bag (zero vector when empty).
    fn bag(&self, g: &mut Graph, tokens: &[u32]) -> Var {
        if tokens.is_empty() {
            return g.constant(Tensor::zeros(&[1, self.cfg.dim]));
        }
        let e = self.word_emb.forward(g, &self.ps, tokens);
        g.mean_pool_rows(e, tokens.len())
    }

    /// Stacked bags for many token lists (one row each).
    fn bags(&self, g: &mut Graph, lists: &[&[u32]]) -> Var {
        let rows: Vec<Var> = lists.iter().map(|t| self.bag(g, t)).collect();
        g.concat_rows(&rows)
    }

    fn tower(&self, g: &mut Graph, x: Var, first: &Linear, second: &Linear) -> Var {
        let h = first.forward(g, &self.ps, x);
        let h = g.tanh(h);
        second.forward(g, &self.ps, h)
    }

    /// Trains on (intention query, target item) pairs generated from the
    /// training region of each user sequence.
    pub fn fit(&mut self, ds: &Dataset) -> Vec<f32> {
        let gen = lcrec_text::TextGen::new(ds.catalog.taxonomy);
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xD55);
        // Build training pairs: query text → item.
        let mut pairs: Vec<(Vec<u32>, u32)> = Vec::new();
        for u in 0..ds.num_users() {
            let train = ds.train_seq(u);
            if train.is_empty() {
                continue;
            }
            let target = train[rng.random_range(0..train.len())];
            let q = gen.intention(&ds.catalog.item(target).profile, &mut rng);
            pairs.push((self.vocab.encode(&q), target));
        }
        let mut opt = AdamW::new(self.cfg.lr);
        let mut losses = Vec::with_capacity(self.cfg.epochs);
        for epoch in 0..self.cfg.epochs {
            for i in (1..pairs.len()).rev() {
                pairs.swap(i, rng.random_range(0..=i));
            }
            let mut sum = 0.0;
            let mut nb = 0;
            for chunk in pairs.chunks(self.cfg.batch) {
                if chunk.len() < 2 {
                    continue; // in-batch softmax needs negatives
                }
                let mut g = Graph::new();
                g.seed(self.cfg.seed ^ (epoch as u64) << 10);
                let qlists: Vec<&[u32]> = chunk.iter().map(|(q, _)| q.as_slice()).collect();
                let ilists: Vec<&[u32]> =
                    chunk.iter().map(|(_, t)| self.item_tokens[*t as usize].as_slice()).collect();
                let qb = self.bags(&mut g, &qlists);
                let ib = self.bags(&mut g, &ilists);
                let qr = self.tower(&mut g, qb, &self.q1, &self.q2);
                let ir = self.tower(&mut g, ib, &self.i1, &self.i2);
                // Cosine similarity matrix via normalized reps.
                let qn = normalize_rows(&mut g, qr);
                let inorm = normalize_rows(&mut g, ir);
                let sims = g.matmul_nt(qn, inorm);
                let logits = g.scale(sims, 1.0 / self.cfg.temperature);
                let targets: Vec<u32> = (0..chunk.len() as u32).collect();
                let loss = g.cross_entropy(logits, &targets, u32::MAX);
                sum += g.value(loss).item();
                nb += 1;
                self.ps.zero_grads();
                g.backward(loss, &mut self.ps);
                self.ps.clip_grad_norm(5.0);
                opt.step(&mut self.ps);
            }
            losses.push(sum / nb.max(1) as f32);
        }
        self.cache_item_reps();
        losses
    }

    fn cache_item_reps(&mut self) {
        let mut g = Graph::inference();
        let lists: Vec<&[u32]> = self.item_tokens.iter().map(Vec::as_slice).collect();
        let bags = self.bags(&mut g, &lists);
        let reps = self.tower(&mut g, bags, &self.i1, &self.i2);
        let normed = normalize_rows(&mut g, reps);
        self.item_reps = Some(g.value(normed).clone());
    }

    /// Scores all items for a free-text query (cosine in rep space).
    pub fn score_query(&self, query: &str) -> Vec<f32> {
        let reps = self.item_reps.as_ref().expect("call fit() before score_query()");
        let tokens = self.vocab.encode(query);
        let mut g = Graph::inference();
        let bag = self.bag(&mut g, &tokens);
        let qr = self.tower(&mut g, bag, &self.q1, &self.q2);
        let qn = normalize_rows(&mut g, qr);
        let q = g.value(qn);
        let mut scores = Vec::with_capacity(reps.rows());
        for i in 0..reps.rows() {
            scores.push(q.row(0).iter().zip(reps.row(i)).map(|(a, b)| a * b).sum());
        }
        scores
    }

    /// The model's display name.
    pub fn model_name(&self) -> &'static str {
        "DSSM"
    }
}

/// L2-normalizes each row inside the graph (differentiably):
/// `x * rsqrt(rowdot(x,x) + ε)` broadcast over columns.
fn normalize_rows(g: &mut Graph, x: Var) -> Var {
    let d = g.shape(x)[1];
    let sq = g.mul(x, x);
    let ones = g.constant(Tensor::full(&[d, 1], 1.0));
    let norms_sq = g.matmul(sq, ones); // [n, 1]
    let eps = g.add_scalar(norms_sq, 1e-8);
    let inv = g.rsqrt(eps);
    let onesd = g.constant(Tensor::full(&[1, d], 1.0));
    let inv_d = g.matmul(inv, onesd);
    g.mul(x, inv_d)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    fn tiny_cfg() -> DssmConfig {
        DssmConfig { dim: 16, hidden: 24, temperature: 0.1, lr: 3e-3, epochs: 4, batch: 32, seed: 3 }
    }

    #[test]
    fn dssm_learns_query_item_alignment() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Dssm::new(&ds, tiny_cfg());
        let losses = m.fit(&ds);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn trained_dssm_retrieves_textually_similar_items() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Dssm::new(&ds, tiny_cfg());
        m.fit(&ds);
        // Query using an item's own title should rank that item highly.
        let probe = 3u32;
        let title = ds.catalog.item(probe).title.clone();
        let scores = m.score_query(&title);
        let rank = lcrec_eval::top_k(&scores, ds.num_items())
            .iter()
            .position(|&i| i == probe)
            .expect("present");
        assert!(rank < ds.num_items() / 3, "own-title query ranked {rank}");
    }

    #[test]
    fn score_query_is_unit_bounded() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let mut m = Dssm::new(&ds, tiny_cfg());
        m.fit(&ds);
        let scores = m.score_query("shiny red widget");
        assert!(scores.iter().all(|s| s.abs() <= 1.0 + 1e-3), "cosine-bounded");
    }
}
