//! SASRec (Kang & McAuley, ICDM 2018): unidirectional Transformer over the
//! item sequence; the representation at the last position scores all items
//! through the tied item-embedding matrix.

use crate::common::{
    causal_mask, score_single, train_next_item, Batch, NextItemModel, RecConfig, ScoreModel,
    TrainingPairs,
};
use lcrec_tensor::nn::{Act, BlockConfig, Embedding, LayerNorm, Norm, TransformerBlock};
use lcrec_tensor::{Graph, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The SASRec model.
#[derive(Debug)]
pub struct SasRec {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding,
    pos_emb: Embedding,
    blocks: Vec<TransformerBlock>,
    final_norm: LayerNorm,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    num_items: usize,
}

impl SasRec {
    /// Builds an untrained SASRec for `num_items` items.
    pub fn new(num_items: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let item_emb = Embedding::new(&mut ps, "item_emb", num_items, cfg.dim, &mut rng);
        let pos_emb = Embedding::new(&mut ps, "pos_emb", cfg.max_len, cfg.dim, &mut rng);
        let bc = BlockConfig {
            dim: cfg.dim,
            heads: cfg.heads,
            ff_hidden: cfg.dim * 4,
            dropout: cfg.dropout,
            norm: Norm::Layer,
            act: Act::Relu,
        };
        let blocks = (0..cfg.layers)
            .map(|l| TransformerBlock::new(&mut ps, &format!("block{l}"), bc, &mut rng))
            .collect();
        let final_norm = LayerNorm::new(&mut ps, "final_norm", cfg.dim);
        SasRec { cfg, ps, item_emb, pos_emb, blocks, final_norm, num_items }
    }

    /// Trains on next-item prediction; returns per-epoch losses.
    pub fn fit(&mut self, pairs: &TrainingPairs) -> Vec<f32> {
        train_next_item(self, pairs)
    }

    /// Sequence representation `[b, d]` at the last position.
    fn rep(&self, g: &mut Graph, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.len);
        let x = self.item_emb.forward(g, &self.ps, &batch.hist);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..l as u32).collect();
        let p = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        let mask = causal_mask(l);
        for blk in &self.blocks {
            x = blk.forward(g, &self.ps, x, b, l, Some(&mask), None);
        }
        let x = self.final_norm.forward(g, &self.ps, x);
        let last: Vec<u32> = (0..b as u32).map(|i| i * l as u32 + (l as u32 - 1)).collect();
        g.gather_rows(x, &last)
    }
}

impl NextItemModel for SasRec {
    fn forward_logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let rep = self.rep(g, batch);
        let table = g.param(&self.ps, self.item_emb.table_id());
        g.matmul_nt(rep, table)
    }

    fn store(&self) -> &ParamStore {
        &self.ps
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn config(&self) -> &RecConfig {
        &self.cfg
    }
}

impl ScoreModel for SasRec {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        score_single(self, history)
    }

    fn model_name(&self) -> &'static str {
        "SASRec"
    }

    fn item_embeddings(&self) -> Option<Tensor> {
        Some(self.item_emb.table(&self.ps).clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::{Dataset, DatasetConfig};

    #[test]
    fn sasrec_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = SasRec::new(ds.num_items(), RecConfig::test());
        let losses = m.fit(&pairs);
        assert!(
            losses.last().expect("has epochs") < &losses[0],
            "loss should drop: {losses:?}"
        );
        let scores = m.score_all(0, ds.test_example(0).0);
        assert_eq!(scores.len(), ds.num_items());
        lcrec_tensor::sanitize::assert_all_finite("sasrec scores", &scores);
    }

    #[test]
    fn sasrec_scoring_is_order_sensitive() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = SasRec::new(ds.num_items(), RecConfig::test());
        m.fit(&pairs);
        let a = m.score_all(0, &[0, 1, 2]);
        let b = m.score_all(0, &[2, 1, 0]);
        assert_ne!(a, b, "reversing the history must change scores");
    }

    #[test]
    fn exposes_item_embeddings_for_table5() {
        let m = SasRec::new(25, RecConfig::test());
        let e = m.item_embeddings().expect("sasrec has an item matrix");
        assert_eq!(e.shape(), &[25, RecConfig::test().dim]);
    }
}
