//! FMLP-Rec (Zhou et al., WWW 2022): an all-MLP model whose mixing layer is
//! a learnable filter in the frequency domain — FFT along time, elementwise
//! complex multiplication with learned filters, inverse FFT — followed by a
//! position-wise FFN, both with residual connections and LayerNorm.
//!
//! The DFT/IDFT are exact (matrix form, see
//! [`lcrec_tensor::linalg::rdft_matrices`]) and enter autograd as constant
//! linear maps.

use crate::common::{
    score_single, train_next_item, Batch, NextItemModel, RecConfig, ScoreModel, TrainingPairs,
};
use lcrec_tensor::nn::{Embedding, FeedForward, LayerNorm, Act};
use lcrec_tensor::{linalg::rdft_matrices, Graph, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

#[derive(Debug)]
struct FilterLayer {
    /// Real filter weights `[nf, d]` for a given sequence length bucket.
    real: ParamId,
    /// Imaginary filter weights `[nf, d]`.
    imag: ParamId,
    norm1: LayerNorm,
    ffn: FeedForward,
    norm2: LayerNorm,
}

/// The FMLP-Rec model. Because batches are length-bucketed, the model keeps
/// one filter per possible sequence length (1..=max_len); filters are tiny
/// (`nf × d`) so this costs little and keeps the DFT exact per length.
#[derive(Debug)]
pub struct FmlpRec {
    cfg: RecConfig,
    ps: ParamStore,
    item_emb: Embedding,
    pos_emb: Embedding,
    /// `layers[len-1]` holds the blocks for sequence length `len`.
    layers_by_len: Vec<Vec<FilterLayer>>,
    /// Cached (cos, sin, inv_cos, inv_sin) DFT matrices per length.
    dft: Vec<(Tensor, Tensor, Tensor, Tensor)>,
    #[allow(dead_code)] // retained for diagnostics / future scoring filters
    num_items: usize,
}

impl FmlpRec {
    /// Builds an untrained FMLP-Rec.
    pub fn new(num_items: usize, cfg: RecConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let item_emb = Embedding::new(&mut ps, "item_emb", num_items, cfg.dim, &mut rng);
        let pos_emb = Embedding::new(&mut ps, "pos_emb", cfg.max_len, cfg.dim, &mut rng);
        let mut layers_by_len = Vec::with_capacity(cfg.max_len);
        let mut dft = Vec::with_capacity(cfg.max_len);
        for len in 1..=cfg.max_len {
            let nf = len / 2 + 1;
            let mut blocks = Vec::with_capacity(cfg.layers);
            for l in 0..cfg.layers {
                blocks.push(FilterLayer {
                    real: ps.add(
                        &format!("filt_r_{len}_{l}"),
                        Tensor::full(&[nf, cfg.dim], 1.0), // identity-ish start
                    ),
                    imag: ps.add(&format!("filt_i_{len}_{l}"), Tensor::zeros(&[nf, cfg.dim])),
                    norm1: LayerNorm::new(&mut ps, &format!("n1_{len}_{l}"), cfg.dim),
                    ffn: FeedForward::new(
                        &mut ps,
                        &format!("ffn_{len}_{l}"),
                        cfg.dim,
                        cfg.dim * 4,
                        Act::Gelu,
                        &mut rng,
                    ),
                    norm2: LayerNorm::new(&mut ps, &format!("n2_{len}_{l}"), cfg.dim),
                });
            }
            layers_by_len.push(blocks);
            if len >= 2 {
                let (fc, fs, inv) = rdft_matrices(len);
                let inv_c = slice_cols(&inv, 0, nf);
                let inv_s = slice_cols(&inv, nf, 2 * nf);
                dft.push((fc, fs, inv_c, inv_s));
            } else {
                // len == 1: DFT is the identity on one sample.
                dft.push((
                    Tensor::full(&[1, 1], 1.0),
                    Tensor::zeros(&[1, 1]),
                    Tensor::full(&[1, 1], 1.0),
                    Tensor::zeros(&[1, 1]),
                ));
            }
        }
        FmlpRec { cfg, ps, item_emb, pos_emb, layers_by_len, dft, num_items }
    }

    /// Trains on next-item prediction.
    pub fn fit(&mut self, pairs: &TrainingPairs) -> Vec<f32> {
        train_next_item(self, pairs)
    }

    fn rep(&self, g: &mut Graph, batch: &Batch) -> Var {
        let (b, l) = (batch.b, batch.len);
        let x = self.item_emb.forward(g, &self.ps, &batch.hist);
        let pos_ids: Vec<u32> = (0..b).flat_map(|_| 0..l as u32).collect();
        let p = self.pos_emb.forward(g, &self.ps, &pos_ids);
        let x = g.add(x, p);
        let mut x = g.dropout(x, self.cfg.dropout);
        let (fc, fs, inv_c, inv_s) = &self.dft[l - 1];
        for layer in &self.layers_by_len[l - 1] {
            // Frequency-domain filtering with residual + LayerNorm.
            let xr = g.group_matmul_const(fc, x); // [b*nf, d]
            let xi = g.group_matmul_const(fs, x);
            let wr = g.param(&self.ps, layer.real);
            let wi = g.param(&self.ps, layer.imag);
            // (xr + i·xi)(wr + i·wi) = (xr·wr − xi·wi) + i(xr·wi + xi·wr)
            let rr = g.mul_cycle(xr, wr);
            let ii = g.mul_cycle(xi, wi);
            let yr = g.sub(rr, ii);
            let ri = g.mul_cycle(xr, wi);
            let ir = g.mul_cycle(xi, wr);
            let yi = g.add(ri, ir);
            let rec_r = g.group_matmul_const(inv_c, yr); // [b*l, d]
            let rec_i = g.group_matmul_const(inv_s, yi);
            let filtered = g.add(rec_r, rec_i);
            let filtered = g.dropout(filtered, self.cfg.dropout);
            let res = g.add(x, filtered);
            let normed = layer.norm1.forward(g, &self.ps, res);
            // FFN with residual + LayerNorm.
            let ff = layer.ffn.forward(g, &self.ps, normed);
            let ff = g.dropout(ff, self.cfg.dropout);
            let res2 = g.add(normed, ff);
            x = layer.norm2.forward(g, &self.ps, res2);
        }
        let last: Vec<u32> = (0..b as u32).map(|i| i * l as u32 + (l as u32 - 1)).collect();
        g.gather_rows(x, &last)
    }
}

fn slice_cols(t: &Tensor, start: usize, end: usize) -> Tensor {
    let cols = t.cols();
    let mut out = Vec::with_capacity(t.rows() * (end - start));
    for r in 0..t.rows() {
        out.extend_from_slice(&t.data()[r * cols + start..r * cols + end]);
    }
    Tensor::new(&[t.rows(), end - start], out)
}

impl NextItemModel for FmlpRec {
    fn forward_logits(&self, g: &mut Graph, batch: &Batch) -> Var {
        let rep = self.rep(g, batch);
        let table = g.param(&self.ps, self.item_emb.table_id());
        g.matmul_nt(rep, table)
    }

    fn store(&self) -> &ParamStore {
        &self.ps
    }

    fn store_mut(&mut self) -> &mut ParamStore {
        &mut self.ps
    }

    fn config(&self) -> &RecConfig {
        &self.cfg
    }
}

impl ScoreModel for FmlpRec {
    fn score_all(&self, _user: usize, history: &[u32]) -> Vec<f32> {
        score_single(self, history)
    }

    fn model_name(&self) -> &'static str {
        "FMLP-Rec"
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::{Dataset, DatasetConfig};

    #[test]
    fn fmlp_learns_tiny_dataset() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let pairs = TrainingPairs::build(&ds, 10);
        let mut m = FmlpRec::new(ds.num_items(), RecConfig::test());
        let losses = m.fit(&pairs);
        assert!(losses.last().expect("epochs") < &losses[0], "{losses:?}");
    }

    #[test]
    fn identity_filters_pass_signal_through() {
        // With real=1, imag=0 (the initialization), the filter layer's
        // frequency path is an exact identity: DFT → ×1 → IDFT.
        let m = FmlpRec::new(20, RecConfig::test());
        let l = 6;
        let (fc, fs, inv_c, inv_s) = &m.dft[l - 1];
        let x = lcrec_tensor::init::normal(&[l, 4], 1.0, &mut StdRng::seed_from_u64(1));
        let mut g = Graph::inference();
        let xv = g.constant(x.clone());
        let xr = g.group_matmul_const(fc, xv);
        let xi = g.group_matmul_const(fs, xv);
        let rc = g.group_matmul_const(inv_c, xr);
        let ri = g.group_matmul_const(inv_s, xi);
        let rec = g.add(rc, ri);
        for (a, b) in x.data().iter().zip(g.value(rec).data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn handles_length_one_histories() {
        let ds = Dataset::generate(&DatasetConfig::tiny());
        let m = FmlpRec::new(ds.num_items(), RecConfig::test());
        let scores = m.score_all(0, &[3]);
        assert_eq!(scores.len(), ds.num_items());
        lcrec_tensor::sanitize::assert_all_finite("fmlp scores", &scores);
    }
}
