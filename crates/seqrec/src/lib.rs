//! # lcrec-seqrec
//!
//! The classic sequential-recommendation baselines of the paper's Table III
//! (Caser, HGN, GRU4Rec, BERT4Rec, SASRec, FMLP-Rec, FDSA, S³-Rec) plus the
//! DSSM retrieval baseline of Figure 3 — all implemented from scratch on
//! the `lcrec-tensor` autograd engine with a shared training/evaluation
//! interface.

#![warn(missing_docs)]

pub mod absorb;
pub mod bert4rec;
pub mod caser;
pub mod common;
pub mod dssm;
pub mod fdsa;
pub mod fmlp;
pub mod gru4rec;
pub mod hgn;
pub mod s3rec;
pub mod sasrec;

pub use absorb::{
    absorb_begin, absorb_tick, absorb_with, load_absorb_checkpoint, save_absorb_checkpoint,
    AbsorbCursor,
};
pub use bert4rec::Bert4Rec;
pub use caser::Caser;
pub use common::{
    score_single, train_next_item, train_next_item_with, NextItemModel, RecConfig, ScoreModel,
    ScoreRanker, TrainingPairs,
};
pub use dssm::{Dssm, DssmConfig};
pub use fdsa::Fdsa;
pub use fmlp::FmlpRec;
pub use gru4rec::Gru4Rec;
pub use hgn::Hgn;
pub use s3rec::S3Rec;
pub use sasrec::SasRec;
