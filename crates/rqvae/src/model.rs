//! The RQ-VAE item-index learner (paper §III-B, Algorithm 1).
//!
//! An MLP encoder maps the item text embedding `e` to a latent `z`; `H`
//! codebooks quantize `z` residually (coarse → fine); an MLP decoder
//! reconstructs `e` from the quantized latent. Losses follow Eqn. (3)–(5):
//! reconstruction + per-level codebook/commitment terms with stop-gradients,
//! trained with AdamW (lr 1e-3), straight-through estimation for the
//! quantization step.
//!
//! Uniform semantic mapping (USM): during training, the **last** level's
//! assignment in each batch is solved as entropic optimal transport with
//! uniform codeword marginals via Sinkhorn-Knopp instead of nearest
//! neighbour (Algorithm 1 line 6). At index-construction time a second
//! stage resolves any remaining full-index conflicts by redistributing
//! last-level codes inside each conflicting prefix group.

use crate::indices::ItemIndices;
use crate::kmeans::kmeans;
use crate::sinkhorn::{sinkhorn_plan, SinkhornConfig};
use lcrec_par::Pool;
use lcrec_tensor::linalg::sq_dist;
use lcrec_tensor::nn::Linear;
use lcrec_tensor::{AdamW, Graph, ParamId, ParamStore, Tensor, Var};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::BTreeMap;

/// Fixed micro-batch row count for data-parallel gradient accumulation.
/// A pure constant (never derived from the thread count) so micro-batch
/// boundaries — and the gradient summation order — are identical at any
/// `LCREC_THREADS`.
const MICRO_ROWS: usize = 64;

/// RQ-VAE hyperparameters. Defaults mirror the paper at reduced scale.
#[derive(Clone, Debug)]
pub struct RqVaeConfig {
    /// Input (text-embedding) dimension.
    pub input_dim: usize,
    /// Latent dimension (the paper uses 32).
    pub latent_dim: usize,
    /// Hidden widths of the MLP encoder/decoder.
    pub hidden: Vec<usize>,
    /// Number of quantization levels `H` (paper: 4).
    pub levels: usize,
    /// Codebook size `K` per level (paper: 256; scaled presets use less).
    pub codebook_size: usize,
    /// Commitment coefficient β (paper: 0.25).
    pub beta: f32,
    /// Learning rate (paper: 1e-3).
    pub lr: f32,
    /// Training epochs over the item set.
    pub epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Whether the last level uses uniform semantic mapping during training.
    pub usm: bool,
    /// Sinkhorn configuration for USM.
    pub sinkhorn: SinkhornConfig,
    /// RNG seed.
    pub seed: u64,
}

impl RqVaeConfig {
    /// A configuration sized for the small dataset presets.
    ///
    /// The paper uses H=4, K=256 for 10k–21k items (a ~10⁵× overprovisioned
    /// code space). Scaled to a few hundred items, H=3 with K ≈
    /// `items^0.55` keeps a ~30–50× overprovisioned space and the same
    /// coarse-to-fine structure while keeping constrained decoding sharp.
    pub fn small(input_dim: usize, num_items: usize) -> Self {
        let k = ((num_items as f32).powf(0.55).ceil() as usize).clamp(8, 64);
        RqVaeConfig {
            input_dim,
            latent_dim: 24,
            hidden: vec![48],
            levels: 3,
            codebook_size: k,
            beta: 0.25,
            lr: 1e-3,
            epochs: 60,
            batch: 256,
            usm: true,
            sinkhorn: SinkhornConfig::default(),
            seed: 0xCAFE,
        }
    }
}

/// A trained RQ-VAE.
#[derive(Debug)]
pub struct RqVae {
    cfg: RqVaeConfig,
    ps: ParamStore,
    encoder: Vec<Linear>,
    decoder: Vec<Linear>,
    codebooks: Vec<ParamId>,
}

/// Diagnostics from one training run.
#[derive(Clone, Debug, Default)]
pub struct TrainReport {
    /// Mean total loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Final reconstruction loss.
    pub final_recon: f32,
}

/// Everything the RQ-VAE training loop carries across batches, packaged
/// so training can stop after any [`RqVae::train_tick`] and resume from a
/// checkpoint bit-identically to an uninterrupted run: the optimizer
/// (moments + schedule step), the shuffle RNG stream, the persistent
/// item order, the epoch/batch position, and the partial report.
#[derive(Debug)]
pub struct TrainCursor {
    opt: AdamW,
    rng: StdRng,
    order: Vec<usize>,
    epoch: usize,
    chunk: usize,
    epoch_loss: f32,
    batches: usize,
    report: TrainReport,
}

impl TrainCursor {
    /// The epoch the next [`RqVae::train_tick`] will work in.
    pub fn epoch(&self) -> usize {
        self.epoch
    }

    /// The batch index within the current epoch the next tick will run.
    pub fn batch_in_epoch(&self) -> usize {
        self.chunk
    }

    /// The report accumulated so far (complete once ticking returns false).
    pub fn report(&self) -> &TrainReport {
        &self.report
    }

    /// Consumes the cursor, yielding the final [`TrainReport`].
    pub fn into_report(self) -> TrainReport {
        self.report
    }

    /// Serializes the non-tensor loop state (the tensor state — params and
    /// AdamW moments — travels in the enclosing train-state sections).
    fn to_blob(&self) -> Vec<u8> {
        let mut b = Vec::new();
        for s in self.rng.state() {
            b.extend_from_slice(&s.to_le_bytes());
        }
        b.extend_from_slice(&(self.epoch as u64).to_le_bytes());
        b.extend_from_slice(&(self.chunk as u64).to_le_bytes());
        b.extend_from_slice(&self.epoch_loss.to_le_bytes());
        b.extend_from_slice(&(self.batches as u64).to_le_bytes());
        b.extend_from_slice(&self.report.final_recon.to_le_bytes());
        b.extend_from_slice(&(self.report.epoch_losses.len() as u64).to_le_bytes());
        for &l in &self.report.epoch_losses {
            b.extend_from_slice(&l.to_le_bytes());
        }
        b.extend_from_slice(&(self.order.len() as u64).to_le_bytes());
        for &i in &self.order {
            b.extend_from_slice(&(i as u32).to_le_bytes());
        }
        b
    }

    fn from_blob(opt: AdamW, b: &[u8]) -> Option<TrainCursor> {
        let mut pos = 0usize;
        let u64_at = |pos: &mut usize| -> Option<u64> {
            let s = b.get(*pos..*pos + 8)?;
            *pos += 8;
            Some(u64::from_le_bytes(s.try_into().ok()?))
        };
        let f32_at = |pos: &mut usize| -> Option<f32> {
            let s = b.get(*pos..*pos + 4)?;
            *pos += 4;
            Some(f32::from_le_bytes(s.try_into().ok()?))
        };
        let rng_state =
            [u64_at(&mut pos)?, u64_at(&mut pos)?, u64_at(&mut pos)?, u64_at(&mut pos)?];
        let epoch = u64_at(&mut pos)? as usize;
        let chunk = u64_at(&mut pos)? as usize;
        let epoch_loss = f32_at(&mut pos)?;
        let batches = u64_at(&mut pos)? as usize;
        let final_recon = f32_at(&mut pos)?;
        let n_losses = u64_at(&mut pos)? as usize;
        if n_losses > b.len() {
            return None;
        }
        let mut epoch_losses = Vec::with_capacity(n_losses);
        for _ in 0..n_losses {
            epoch_losses.push(f32_at(&mut pos)?);
        }
        let n_order = u64_at(&mut pos)? as usize;
        if n_order > b.len() {
            return None;
        }
        let mut order = Vec::with_capacity(n_order);
        for _ in 0..n_order {
            let s = b.get(pos..pos + 4)?;
            pos += 4;
            order.push(u32::from_le_bytes(s.try_into().ok()?) as usize);
        }
        if pos != b.len() {
            return None;
        }
        Some(TrainCursor {
            opt,
            rng: StdRng::from_state(rng_state),
            order,
            epoch,
            chunk,
            epoch_loss,
            batches,
            report: TrainReport { epoch_losses, final_recon },
        })
    }
}

impl RqVae {
    /// Builds an untrained model.
    pub fn new(cfg: RqVaeConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut ps = ParamStore::new();
        let mut encoder = Vec::new();
        let mut dims = vec![cfg.input_dim];
        dims.extend(&cfg.hidden);
        dims.push(cfg.latent_dim);
        for w in dims.windows(2) {
            let i = encoder.len();
            encoder.push(Linear::new(&mut ps, &format!("enc{i}"), w[0], w[1], &mut rng));
        }
        let mut decoder = Vec::new();
        let mut ddims = vec![cfg.latent_dim];
        ddims.extend(cfg.hidden.iter().rev());
        ddims.push(cfg.input_dim);
        for w in ddims.windows(2) {
            let i = decoder.len();
            decoder.push(Linear::new(&mut ps, &format!("dec{i}"), w[0], w[1], &mut rng));
        }
        let codebooks = (0..cfg.levels)
            .map(|l| {
                ps.add_no_decay(
                    &format!("codebook{l}"),
                    lcrec_tensor::init::normal(&[cfg.codebook_size, cfg.latent_dim], 0.1, &mut rng),
                )
            })
            .collect();
        RqVae { cfg, ps, encoder, decoder, codebooks }
    }

    /// The configuration.
    pub fn config(&self) -> &RqVaeConfig {
        &self.cfg
    }

    fn run_mlp(&self, g: &mut Graph, layers: &[Linear], mut x: Var) -> Var {
        for (i, l) in layers.iter().enumerate() {
            x = l.forward(g, &self.ps, x);
            if i + 1 < layers.len() {
                x = g.relu(x);
            }
        }
        x
    }

    /// Encodes embeddings to latents without recording gradients.
    pub fn encode(&self, e: &Tensor) -> Tensor {
        let mut g = Graph::inference();
        let x = g.constant(e.clone());
        let z = self.run_mlp(&mut g, &self.encoder, x);
        g.value(z).clone()
    }

    /// Greedy residual quantization (Eqn. 1–2) of latents `z: [n, d]` →
    /// per-item codes plus the quantized latents.
    pub fn quantize_greedy(&self, z: &Tensor) -> (Vec<Vec<u16>>, Tensor) {
        let n = z.rows();
        let d = z.cols();
        let mut residual = z.clone();
        let mut zq = Tensor::zeros(&[n, d]);
        let mut codes = vec![Vec::with_capacity(self.cfg.levels); n];
        for l in 0..self.cfg.levels {
            let book = self.ps.value(self.codebooks[l]);
            for i in 0..n {
                let (c, _) = nearest(book, residual.row(i));
                codes[i].push(c as u16);
                let cw = book.row(c);
                let (rrow, qrow) = (residual.row_mut(i), ());
                let _ = qrow;
                for (j, r) in rrow.iter_mut().enumerate() {
                    *r -= cw[j];
                }
                let qrow = zq.row_mut(i);
                for (j, q) in qrow.iter_mut().enumerate() {
                    *q += cw[j];
                }
            }
        }
        (codes, zq)
    }

    /// Residual quantization with USM on the last level (Algorithm 1):
    /// levels `1..H-1` greedy, level `H` via batch Sinkhorn with uniform
    /// codeword marginals.
    pub fn quantize_usm(&self, z: &Tensor) -> (Vec<Vec<u16>>, Tensor) {
        let n = z.rows();
        let d = z.cols();
        let mut residual = z.clone();
        let mut zq = Tensor::zeros(&[n, d]);
        let mut codes = vec![Vec::with_capacity(self.cfg.levels); n];
        for l in 0..self.cfg.levels {
            let book = self.ps.value(self.codebooks[l]);
            let chosen: Vec<usize> = if l + 1 < self.cfg.levels || !self.cfg.usm {
                (0..n).map(|i| nearest(book, residual.row(i)).0).collect()
            } else {
                // Cost matrix over the batch, then balanced assignment.
                let k = self.cfg.codebook_size;
                let mut cost = Vec::with_capacity(n * k);
                for i in 0..n {
                    let r = residual.row(i);
                    for c in 0..k {
                        cost.push(sq_dist(r, book.row(c)));
                    }
                }
                let cost = Tensor::new(&[n, k], cost);
                let plan = sinkhorn_plan(&cost, self.cfg.sinkhorn);
                crate::sinkhorn::balanced_assign(&plan).into_iter().map(|c| c as usize).collect()
            };
            for i in 0..n {
                let c = chosen[i];
                codes[i].push(c as u16);
                let cw = book.row(c).to_vec();
                for (j, r) in residual.row_mut(i).iter_mut().enumerate() {
                    *r -= cw[j];
                }
                for (j, q) in zq.row_mut(i).iter_mut().enumerate() {
                    *q += cw[j];
                }
            }
        }
        (codes, zq)
    }

    /// Initializes each codebook with k-means over the residuals the
    /// untrained encoder produces — the residual-quantizer warm start.
    pub fn warm_start(&mut self, embeddings: &Tensor) {
        let z = self.encode(embeddings);
        let mut residual = z;
        let mut rng = StdRng::seed_from_u64(self.cfg.seed ^ 0xBEEF);
        for l in 0..self.cfg.levels {
            let centers = kmeans(&residual, self.cfg.codebook_size, 15, &mut rng);
            // Subtract the nearest centre to form the next level's residuals.
            for i in 0..residual.rows() {
                let (c, _) = nearest(&centers, residual.row(i));
                let cw = centers.row(c).to_vec();
                for (j, r) in residual.row_mut(i).iter_mut().enumerate() {
                    *r -= cw[j];
                }
            }
            *self.ps.value_mut(self.codebooks[l]) = centers;
        }
    }

    /// Trains encoder, decoder and codebooks on the item embeddings
    /// `e: [num_items, input_dim]`, using the ambient [`Pool::from_env`]
    /// (`LCREC_THREADS`) for data-parallel gradient accumulation.
    pub fn train(&mut self, embeddings: &Tensor) -> TrainReport {
        self.train_with(&Pool::from_env(), embeddings)
    }

    /// [`RqVae::train`] with an explicit thread pool. Training is
    /// bit-identical at every thread count: micro-batch boundaries are a
    /// pure function of the batch size and gradients are summed in
    /// micro-batch order (see DESIGN.md "Threading model").
    ///
    /// Implemented as [`RqVae::train_begin`] + [`RqVae::train_tick`] run
    /// to completion, so an uninterrupted run and a
    /// checkpoint-and-resume run execute the exact same sequence of
    /// shuffles and optimizer steps.
    pub fn train_with(&mut self, pool: &Pool, embeddings: &Tensor) -> TrainReport {
        let _span = lcrec_obs::span("rqvae.train");
        let mut cursor = self.train_begin(embeddings);
        while self.train_tick(pool, embeddings, &mut cursor) {}
        cursor.into_report()
    }

    /// Warm-starts the codebooks and returns a fresh [`TrainCursor`] at
    /// epoch 0, batch 0. Drive it with [`RqVae::train_tick`]; checkpoint
    /// it at any batch boundary with [`RqVae::save_train_checkpoint`].
    pub fn train_begin(&mut self, embeddings: &Tensor) -> TrainCursor {
        {
            let _warm = lcrec_obs::span("warm_start");
            self.warm_start(embeddings);
        }
        TrainCursor {
            opt: AdamW::new(self.cfg.lr),
            rng: StdRng::seed_from_u64(self.cfg.seed ^ 0x7777),
            order: (0..embeddings.rows()).collect(),
            epoch: 0,
            chunk: 0,
            epoch_loss: 0.0,
            batches: 0,
            report: TrainReport::default(),
        }
    }

    /// Runs **one** training batch (re-shuffling at each epoch boundary,
    /// exactly like the uninterrupted loop) and returns `true` while more
    /// work remains. The cursor captures everything the loop carries
    /// across batches — optimizer moments, RNG stream, shuffled order,
    /// partial epoch statistics — so stopping after any tick and resuming
    /// from a checkpoint is bit-identical to never stopping.
    pub fn train_tick(
        &mut self,
        pool: &Pool,
        embeddings: &Tensor,
        cursor: &mut TrainCursor,
    ) -> bool {
        if cursor.epoch >= self.cfg.epochs {
            return false;
        }
        let n = embeddings.rows();
        if cursor.chunk == 0 {
            for i in (1..n).rev() {
                cursor.order.swap(i, cursor.rng.random_range(0..=i));
            }
            cursor.epoch_loss = 0.0;
            cursor.batches = 0;
        }
        if n > 0 {
            let lo = cursor.chunk * self.cfg.batch;
            let hi = (lo + self.cfg.batch).min(n);
            let batch = gather(embeddings, &cursor.order[lo..hi]);
            let (loss, recon) = self.train_step(pool, &batch, &mut cursor.opt);
            cursor.epoch_loss += loss;
            cursor.report.final_recon = recon;
            cursor.batches += 1;
            cursor.chunk += 1;
        }
        if cursor.chunk * self.cfg.batch >= n {
            cursor
                .report
                .epoch_losses
                .push(cursor.epoch_loss / cursor.batches.max(1) as f32);
            cursor.epoch += 1;
            cursor.chunk = 0;
        }
        cursor.epoch < self.cfg.epochs
    }

    /// Writes a crash-safe mid-training snapshot: model parameters, AdamW
    /// state and the cursor (epoch, batch, RNG stream, shuffled order,
    /// partial report), sealed with the checkpoint trailer from
    /// `lcrec_tensor::serialize`.
    pub fn save_train_checkpoint(
        &self,
        cursor: &TrainCursor,
        w: &mut impl std::io::Write,
    ) -> std::io::Result<()> {
        lcrec_tensor::serialize::save_train_state(&self.ps, &cursor.opt, &cursor.to_blob(), w)
    }

    /// Restores a snapshot written by [`RqVae::save_train_checkpoint`]
    /// into this (architecturally identical) model and returns the cursor
    /// to continue [`RqVae::train_tick`]-ing from. On any corruption the
    /// model is left untouched and a typed error is returned. Resuming
    /// skips [`RqVae::warm_start`] — the checkpointed parameters already
    /// contain its effect.
    pub fn load_train_checkpoint(
        &mut self,
        r: &mut impl std::io::Read,
    ) -> std::io::Result<TrainCursor> {
        let mut opt = AdamW::new(self.cfg.lr);
        let extra = lcrec_tensor::serialize::load_train_state(&mut self.ps, &mut opt, r)?;
        TrainCursor::from_blob(opt, &extra).ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                "malformed RQ-VAE training cursor in checkpoint",
            )
        })
    }

    /// One optimization step on a batch; returns (total loss, recon loss).
    ///
    /// The batch-level phases stay whole-batch: USM quantization is a
    /// batch-global balanced assignment (Sinkhorn over all rows) and the
    /// optimizer step touches every parameter once. Only the differentiable
    /// loss graphs are data-parallel: rows split into fixed micro-batches
    /// ([`lcrec_par::micro_ranges`]), each micro-batch differentiates its
    /// own graph against the shared `&ParamStore`, and the per-chunk
    /// gradients are summed on the caller's thread **in micro-batch order**
    /// via [`ParamStore::accumulate_grads`]. Each chunk's loss is scaled by
    /// `chunk_rows / batch_rows`, so the summed gradient equals the
    /// full-batch mean-loss gradient.
    fn train_step(&mut self, pool: &Pool, e: &Tensor, opt: &mut AdamW) -> (f32, f32) {
        let n = e.rows();
        // Quantize outside the tape (indices are discrete) on the whole
        // batch, then re-enter per micro-batch via the straight-through
        // trick: zq_st = z + const(zq - z).
        let z_val = self.encode(e);
        let (codes, zq_val) = {
            let _q = lcrec_obs::span("quantize");
            self.quantize_usm(&z_val)
        };
        let ranges = lcrec_par::micro_ranges(n, MICRO_ROWS);
        lcrec_obs::counter_add("rqvae.micro_steps", ranges.len() as u64);
        lcrec_obs::counter_add("rqvae.batches", 1);
        let parts = pool.map(&ranges, |_, &(lo, hi)| {
            self.micro_step(e, &zq_val, &codes, lo, hi, (hi - lo) as f32 / n as f32)
        });
        self.ps.zero_grads();
        let mut loss_val = 0.0;
        let mut recon_val = 0.0;
        for (l, r, grads) in &parts {
            loss_val += l;
            recon_val += r;
            self.ps.accumulate_grads(grads);
        }
        self.ps.clip_grad_norm(5.0);
        opt.step(&mut self.ps);
        (loss_val, recon_val)
    }

    /// Builds and differentiates the loss graph for batch rows `lo..hi`;
    /// returns the chunk's scaled (total loss, recon loss) contributions
    /// and its parameter gradients. Runs against `&self` only, so chunks
    /// can execute concurrently.
    fn micro_step(
        &self,
        e: &Tensor,
        zq_val: &Tensor,
        codes: &[Vec<u16>],
        lo: usize,
        hi: usize,
        frac: f32,
    ) -> (f32, f32, Vec<(ParamId, Tensor)>) {
        let rows: Vec<usize> = (lo..hi).collect();
        let e_chunk = gather(e, &rows);
        let mut g = Graph::new();
        let ev = g.constant(e_chunk);
        let z = self.run_mlp(&mut g, &self.encoder, ev);
        let z_val = g.value(z).clone();
        let mut delta = gather(zq_val, &rows);
        for (d, zv) in delta.data_mut().iter_mut().zip(z_val.data()) {
            *d -= zv;
        }
        let delta_c = g.constant(delta);
        let zq_st = g.add(z, delta_c);
        let recon = self.run_mlp(&mut g, &self.decoder, zq_st);
        let recon_loss = g.mse(recon, ev);

        // Per-level residual/codebook losses (Eqn. 4).
        let mut total = recon_loss;
        let mut residual_val = z_val.clone();
        // r_i as a graph value: z - const(prefix of codewords).
        let mut prefix = Tensor::zeros(&[hi - lo, self.cfg.latent_dim]);
        for l in 0..self.cfg.levels {
            let book_var = g.param(&self.ps, self.codebooks[l]);
            let ids: Vec<u32> = codes[lo..hi].iter().map(|c| c[l] as u32).collect();
            let chosen = g.gather_rows(book_var, &ids); // differentiable into codebook
            // Term 1: ||sg[r_i] - v||² — train the codebook towards residuals.
            let r_const = g.constant(residual_val.clone());
            let codebook_term = g.mse(chosen, r_const);
            // Term 2 (commitment): β ||r_i - sg[v]||² — pull encoder to codes.
            let prefix_c = g.constant(prefix.clone());
            let r_graph = g.sub(z, prefix_c);
            let chosen_vals: Tensor = {
                let book = self.ps.value(self.codebooks[l]);
                let mut d = Vec::with_capacity(ids.len() * self.cfg.latent_dim);
                for &i in &ids {
                    d.extend_from_slice(book.row(i as usize));
                }
                Tensor::new(&[ids.len(), self.cfg.latent_dim], d)
            };
            let chosen_c = g.constant(chosen_vals.clone());
            let commit_raw = g.mse(r_graph, chosen_c);
            let commit = g.scale(commit_raw, self.cfg.beta);
            let level = g.add(codebook_term, commit);
            total = g.add(total, level);
            // Advance residuals and prefix for the next level.
            for ((r, p), c) in residual_val
                .data_mut()
                .iter_mut()
                .zip(prefix.data_mut())
                .zip(chosen_vals.data())
            {
                *r -= c;
                *p += c;
            }
        }
        let scaled = g.scale(total, frac);
        let loss_val = g.value(scaled).item();
        let recon_val = g.value(recon_loss).item() * frac;
        let grads = g.backward_collect(scaled);
        (loss_val, recon_val, grads)
    }

    /// Constructs final item indices (two-stage, paper §III-B2):
    /// greedy assignment per Eqn. (1), then per-prefix-group conflict
    /// resolution that redistributes last-level codes uniformly.
    pub fn build_indices(&self, embeddings: &Tensor) -> ItemIndices {
        let z = self.encode(embeddings);
        let (mut codes, _) = self.quantize_greedy(&z);
        if self.cfg.usm {
            self.resolve_conflicts(&z, &mut codes);
        } else {
            // Ablation variant handled by the indexer layer (suffix IDs).
        }
        ItemIndices::new(vec![self.cfg.codebook_size; self.cfg.levels], codes)
    }

    /// Residual of item `i` entering level `level` (z minus the chosen
    /// codewords of all earlier levels). Shared with the incremental
    /// admission path (`crate::catalog`), which must reproduce the exact
    /// training-time arithmetic.
    pub(crate) fn residual_at(
        &self,
        z: &Tensor,
        codes: &[Vec<u16>],
        i: usize,
        level: usize,
    ) -> Vec<f32> {
        let mut r = z.row(i).to_vec();
        for (l, &code) in codes[i][..level].iter().enumerate() {
            let cw = self.ps.value(self.codebooks[l]);
            for (j, rr) in r.iter_mut().enumerate() {
                *rr -= cw.at(code as usize, j);
            }
        }
        r
    }

    /// Redistributes last-level codes inside groups of items that share all
    /// `H` codes (paper §III-B2). Within each (H-1)-prefix cohort the
    /// conflicting items receive distinct unused codes, ordered by a
    /// Sinkhorn-balanced transport over their last-level residuals. Cohorts
    /// larger than the codebook overflow into sibling prefixes by moving an
    /// item's level-(H-2) code to its next-nearest codeword, which
    /// guarantees progress; the round budget bounds pathological cases.
    fn resolve_conflicts(&self, z: &Tensor, codes: &mut [Vec<u16>]) {
        let h = self.cfg.levels;
        let k = self.cfg.codebook_size;
        let book = self.ps.value(self.codebooks[h - 1]);
        for round in 0..(2 * k + 4) {
            // Conflicting items grouped by their (H-1)-prefix cohort.
            // BTreeMap, not HashMap: overflow handling mutates sibling
            // cohorts, so the iteration order of `by_prefix` affects the
            // final codes — a HashMap's RandomState order would make
            // index construction differ run to run.
            let mut groups: BTreeMap<Vec<u16>, Vec<usize>> = BTreeMap::new();
            for (i, c) in codes.iter().enumerate() {
                groups.entry(c.clone()).or_default().push(i);
            }
            let mut by_prefix: BTreeMap<Vec<u16>, Vec<usize>> = BTreeMap::new();
            for (full, items) in groups.into_iter().filter(|(_, v)| v.len() > 1) {
                by_prefix.entry(full[..h - 1].to_vec()).or_default().extend(items);
            }
            if by_prefix.is_empty() {
                return;
            }
            for (prefix, mut items) in by_prefix {
                items.sort_unstable();
                // Last-level codes reserved by non-conflicting cohort members.
                let mut used: Vec<bool> = vec![false; k];
                for (i, c) in codes.iter().enumerate() {
                    if c[..h - 1] == prefix[..] && !items.contains(&i) {
                        used[c[h - 1] as usize] = true;
                    }
                }
                let free: Vec<u16> =
                    (0..k as u16).filter(|&c| !used[c as usize]).collect();
                let fit = items.len().min(free.len());
                if fit > 0 {
                    // Transport the first `fit` items onto the free codes.
                    let mut cost = Vec::with_capacity(fit * free.len());
                    for &i in items.iter().take(fit) {
                        let r = self.residual_at(z, codes, i, h - 1);
                        for &c in &free {
                            cost.push(sq_dist(&r, book.row(c as usize)));
                        }
                    }
                    let cost = Tensor::new(&[fit, free.len()], cost);
                    let plan = sinkhorn_plan(&cost, self.cfg.sinkhorn);
                    let assign = crate::sinkhorn::balanced_assign(&plan);
                    // Capacity may exceed 1 when fit < free; enforce
                    // uniqueness greedily as a final pass.
                    let mut taken = vec![false; free.len()];
                    for (slot, &i) in items.iter().take(fit).enumerate() {
                        let mut pick = assign[slot] as usize;
                        if taken[pick] {
                            pick = (0..free.len()).find(|&c| !taken[c]).expect("fit <= free");
                        }
                        taken[pick] = true;
                        codes[i][h - 1] = free[pick];
                    }
                }
                // Overflow: move level-(H-2) codes toward later-ranked
                // neighbours so the items land in sibling cohorts.
                if items.len() > fit && h >= 2 {
                    let up_book = self.ps.value(self.codebooks[h - 2]);
                    for &i in items.iter().skip(fit) {
                        let r = self.residual_at(z, codes, i, h - 2);
                        let mut ranked: Vec<usize> = (0..k).collect();
                        ranked.sort_by(|&a, &b| {
                            sq_dist(&r, up_book.row(a))
                                .partial_cmp(&sq_dist(&r, up_book.row(b)))
                                .unwrap_or(std::cmp::Ordering::Equal)
                        });
                        // Walk further down the ranking every round.
                        let next = ranked[(1 + round) % k];
                        codes[i][h - 2] = next as u16;
                        // Re-seat the last level greedily in the new cohort.
                        let r_last = self.residual_at(z, codes, i, h - 1);
                        let mut best = 0u16;
                        let mut bd = f32::INFINITY;
                        for c in 0..k {
                            let d = sq_dist(&r_last, book.row(c));
                            if d < bd {
                                bd = d;
                                best = c as u16;
                            }
                        }
                        codes[i][h - 1] = best;
                    }
                }
            }
        }
    }

    /// Decodes quantized latents back to embedding space (diagnostics).
    pub fn decode(&self, zq: &Tensor) -> Tensor {
        let mut g = Graph::inference();
        let x = g.constant(zq.clone());
        let y = self.run_mlp(&mut g, &self.decoder, x);
        g.value(y).clone()
    }

    /// Codebook tensor at a level (read-only).
    pub fn codebook(&self, level: usize) -> &Tensor {
        self.ps.value(self.codebooks[level])
    }
}

/// Index and squared distance of the codeword closest to `row`. Shared
/// with the incremental admission path (`crate::catalog`).
pub(crate) fn nearest(book: &Tensor, row: &[f32]) -> (usize, f32) {
    let mut best = 0;
    let mut bd = f32::INFINITY;
    for c in 0..book.rows() {
        let d = sq_dist(row, book.row(c));
        if d < bd {
            bd = d;
            best = c;
        }
    }
    (best, bd)
}

fn gather(x: &Tensor, rows: &[usize]) -> Tensor {
    let d = x.cols();
    let mut out = Vec::with_capacity(rows.len() * d);
    for &r in rows {
        out.extend_from_slice(x.row(r));
    }
    Tensor::new(&[rows.len(), d], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_tensor::init;
    use std::collections::HashMap;

    /// Synthetic embeddings with 4 clear clusters.
    fn clustered(n_per: usize, dim: usize) -> Tensor {
        let mut rng = StdRng::seed_from_u64(5);
        let centers = init::normal(&[4, dim], 2.0, &mut rng);
        let mut rows = Vec::new();
        for c in 0..4 {
            for _ in 0..n_per {
                let noise = init::normal(&[dim], 0.15, &mut rng);
                let row: Vec<f32> =
                    centers.row(c).iter().zip(noise.data()).map(|(a, b)| a + b).collect();
                rows.push(row);
            }
        }
        Tensor::from_rows(&rows)
    }

    fn tiny_cfg(dim: usize) -> RqVaeConfig {
        RqVaeConfig {
            input_dim: dim,
            latent_dim: 8,
            hidden: vec![16],
            levels: 3,
            codebook_size: 6,
            // Stronger commitment + a smaller lr than the defaults: on this
            // 40-item fixture a weak beta lets the encoder norm drift faster
            // than the codebooks can track, so total loss oscillates upward
            // even while reconstruction improves.
            beta: 1.0,
            lr: 1e-3,
            epochs: 25,
            batch: 32,
            usm: true,
            sinkhorn: SinkhornConfig::default(),
            seed: 11,
        }
    }

    #[test]
    fn training_reduces_loss() {
        let e = clustered(10, 12);
        let mut m = RqVae::new(tiny_cfg(12));
        let report = m.train(&e);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().expect("non-empty");
        assert!(last < first, "loss did not drop: {first} -> {last}");
        lcrec_tensor::sanitize::assert_all_finite("rqvae epoch losses", &report.epoch_losses);
    }

    #[test]
    fn indices_are_unique_after_usm() {
        let e = clustered(12, 12);
        let mut m = RqVae::new(tiny_cfg(12));
        m.train(&e);
        let idx = m.build_indices(&e);
        assert!(idx.is_unique(), "{} conflicts remain", idx.conflicts());
        assert_eq!(idx.len(), e.rows());
    }

    #[test]
    fn first_level_codes_follow_clusters() {
        // Items in the same synthetic cluster should mostly share their
        // level-1 code — the "meaningful IDs" property.
        let e = clustered(12, 12);
        let mut m = RqVae::new(tiny_cfg(12));
        m.train(&e);
        let idx = m.build_indices(&e);
        let mut agree = 0usize;
        let mut total = 0usize;
        for cluster in 0..4 {
            let base = cluster * 12;
            // Majority level-1 code of this cluster.
            let mut counts = HashMap::new();
            for i in 0..12 {
                *counts.entry(idx.of((base + i) as u32)[0]).or_insert(0usize) += 1;
            }
            let majority = counts.values().copied().max().expect("non-empty");
            agree += majority;
            total += 12;
        }
        let purity = agree as f32 / total as f32;
        assert!(purity > 0.7, "cluster purity {purity}");
    }

    #[test]
    fn quantize_greedy_matches_codebook_arithmetic() {
        let e = clustered(4, 12);
        let m = RqVae::new(tiny_cfg(12));
        let z = m.encode(&e);
        let (codes, zq) = m.quantize_greedy(&z);
        // zq must equal the sum of the chosen codewords.
        for (i, c) in codes.iter().enumerate() {
            let mut sum = vec![0.0f32; 8];
            for (l, &code) in c.iter().enumerate() {
                for (j, s) in sum.iter_mut().enumerate() {
                    *s += m.codebook(l).at(code as usize, j);
                }
            }
            for (a, b) in sum.iter().zip(zq.row(i)) {
                assert!((a - b).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn reconstruction_beats_zero_baseline() {
        let e = clustered(10, 12);
        let mut m = RqVae::new(tiny_cfg(12));
        m.train(&e);
        let z = m.encode(&e);
        let (_, zq) = m.quantize_usm(&z);
        let rec = m.decode(&zq);
        let err: f32 = rec
            .data()
            .iter()
            .zip(e.data())
            .map(|(a, b)| (a - b) * (a - b))
            .sum::<f32>()
            / e.numel() as f32;
        let var: f32 = {
            let mean = e.mean();
            e.data().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / e.numel() as f32
        };
        assert!(err < var, "reconstruction MSE {err} vs variance {var}");
    }

    #[test]
    fn usm_spreads_last_level_codes() {
        let e = clustered(12, 12);
        let mut m = RqVae::new(tiny_cfg(12));
        m.train(&e);
        let z = m.encode(&e);
        let (codes, _) = m.quantize_usm(&z);
        let mut counts = vec![0usize; 6];
        for c in &codes {
            counts[c[2] as usize] += 1;
        }
        let max = *counts.iter().max().expect("non-empty");
        // 48 items over 6 codes: uniform is 8; allow slack but forbid collapse.
        assert!(max <= 8, "last-level counts {counts:?}");
    }
}
