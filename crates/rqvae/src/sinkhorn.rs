//! Sinkhorn-Knopp solver for the uniform-semantic-mapping constraint
//! (paper Eqn. 6).
//!
//! The last RQ level's assignment is cast as entropic optimal transport:
//! rows are residual vectors, columns are codewords, cost is squared
//! distance, row marginals are `1/n` and column marginals `1/K` (uniform —
//! every codeword receives the same mass). The solver returns the transport
//! plan `q(c_H = k | r_H)`.

use lcrec_tensor::Tensor;

/// Configuration of the Sinkhorn iteration.
#[derive(Clone, Copy, Debug)]
pub struct SinkhornConfig {
    /// Entropic regularization ε; smaller is sharper but less stable.
    pub epsilon: f32,
    /// Number of row/column scaling sweeps.
    pub iterations: usize,
}

impl Default for SinkhornConfig {
    fn default() -> Self {
        SinkhornConfig { epsilon: 0.05, iterations: 50 }
    }
}

/// Runs Sinkhorn-Knopp on a `[n, k]` cost matrix with uniform marginals.
/// Returns the transport plan as a `[n, k]` tensor whose rows sum to `1/n`
/// and columns to `1/k` (up to convergence tolerance).
pub fn sinkhorn_plan(cost: &Tensor, cfg: SinkhornConfig) -> Tensor {
    let n = cost.rows();
    let k = cost.cols();
    assert!(n > 0 && k > 0, "empty cost matrix");
    // Stabilize: subtract the row minimum before exponentiating.
    let mut kmat = vec![0.0f32; n * k];
    for (i, row) in cost.data().chunks_exact(k).enumerate() {
        let mn = row.iter().copied().fold(f32::INFINITY, f32::min);
        for (j, &c) in row.iter().enumerate() {
            kmat[i * k + j] = (-(c - mn) / cfg.epsilon).exp().max(1e-30);
        }
    }
    let r = 1.0 / n as f32; // row marginal
    let c = 1.0 / k as f32; // column marginal
    let mut u = vec![1.0f32; n];
    let mut v = vec![1.0f32; k];
    for _ in 0..cfg.iterations {
        // u_i = r / (K v)_i
        for i in 0..n {
            let mut s = 0.0;
            for j in 0..k {
                s += kmat[i * k + j] * v[j];
            }
            u[i] = r / s.max(1e-30);
        }
        // v_j = c / (K^T u)_j
        for j in 0..k {
            let mut s = 0.0;
            for i in 0..n {
                s += kmat[i * k + j] * u[i];
            }
            v[j] = c / s.max(1e-30);
        }
    }
    let mut plan = vec![0.0f32; n * k];
    for i in 0..n {
        for j in 0..k {
            plan[i * k + j] = u[i] * kmat[i * k + j] * v[j];
        }
    }
    Tensor::new(&[n, k], plan)
}

/// Balanced hard assignment from a transport plan: rows are assigned to
/// columns greedily by descending plan mass, respecting a per-column
/// capacity of `ceil(n / k)`. Every row receives exactly one column, and no
/// column exceeds its capacity — the discrete counterpart of Eqn. (6)'s
/// uniform constraint.
pub fn balanced_assign(plan: &Tensor) -> Vec<u16> {
    let n = plan.rows();
    let k = plan.cols();
    let cap = n.div_ceil(k);
    // Sort all (row, col) cells by descending mass.
    let mut cells: Vec<(u32, u16)> = Vec::with_capacity(n * k);
    for i in 0..n {
        for j in 0..k {
            cells.push((i as u32, j as u16));
        }
    }
    cells.sort_by(|a, b| {
        let pa = plan.at(a.0 as usize, a.1 as usize);
        let pb = plan.at(b.0 as usize, b.1 as usize);
        pb.partial_cmp(&pa).unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut assigned = vec![u16::MAX; n];
    let mut remaining = n;
    let mut load = vec![0usize; k];
    for (i, j) in cells {
        let (i, j) = (i as usize, j as usize);
        if assigned[i] != u16::MAX || load[j] >= cap {
            continue;
        }
        assigned[i] = j as u16;
        load[j] += 1;
        remaining -= 1;
        if remaining == 0 {
            break;
        }
    }
    debug_assert!(assigned.iter().all(|&a| a != u16::MAX));
    assigned
}

/// Convenience: Sinkhorn plan + balanced hard assignment in one call.
pub fn uniform_assign(cost: &Tensor, cfg: SinkhornConfig) -> Vec<u16> {
    balanced_assign(&sinkhorn_plan(cost, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cost_from(points: &[[f32; 2]], centers: &[[f32; 2]]) -> Tensor {
        let mut data = Vec::new();
        for p in points {
            for c in centers {
                data.push((p[0] - c[0]).powi(2) + (p[1] - c[1]).powi(2));
            }
        }
        Tensor::new(&[points.len(), centers.len()], data)
    }

    #[test]
    fn plan_has_uniform_marginals() {
        let cost = cost_from(
            &[[0.0, 0.0], [0.1, 0.0], [5.0, 5.0], [5.1, 5.0]],
            &[[0.0, 0.0], [5.0, 5.0]],
        );
        let plan = sinkhorn_plan(&cost, SinkhornConfig::default());
        let (n, k) = (4, 2);
        for i in 0..n {
            let s: f32 = (0..k).map(|j| plan.at(i, j)).sum();
            assert!((s - 0.25).abs() < 1e-3, "row {i} sums {s}");
        }
        for j in 0..k {
            let s: f32 = (0..n).map(|i| plan.at(i, j)).sum();
            assert!((s - 0.5).abs() < 1e-3, "col {j} sums {s}");
        }
    }

    #[test]
    fn balanced_assignment_respects_capacity() {
        // 5 points, 2 centers → capacity 3.
        let cost = cost_from(
            &[[0.0, 0.0], [0.1, 0.0], [0.2, 0.0], [0.3, 0.0], [5.0, 5.0]],
            &[[0.0, 0.0], [5.0, 5.0]],
        );
        let a = uniform_assign(&cost, SinkhornConfig::default());
        let c0 = a.iter().filter(|&&x| x == 0).count();
        let c1 = a.iter().filter(|&&x| x == 1).count();
        assert!(c0 <= 3 && c1 <= 3, "loads {c0}/{c1}");
        assert_eq!(c0 + c1, 5);
        // The far point must go to its own center.
        assert_eq!(a[4], 1);
    }

    #[test]
    fn balanced_assignment_splits_identical_points() {
        // All points identical: nearest-neighbour would collapse to one
        // codeword; the uniform constraint must spread them out.
        let cost = Tensor::new(&[4, 2], vec![1.0; 8]);
        let a = uniform_assign(&cost, SinkhornConfig::default());
        let c0 = a.iter().filter(|&&x| x == 0).count();
        assert_eq!(c0, 2, "identical points should split evenly, got {a:?}");
    }

    #[test]
    fn well_separated_clusters_keep_natural_assignment() {
        let cost = cost_from(
            &[[0.0, 0.0], [0.1, 0.1], [9.0, 9.0], [9.1, 9.1]],
            &[[0.0, 0.0], [9.0, 9.0]],
        );
        let a = uniform_assign(&cost, SinkhornConfig::default());
        assert_eq!(&a[..2], &[0, 0]);
        assert_eq!(&a[2..], &[1, 1]);
    }

    #[test]
    fn plan_is_finite_under_extreme_costs() {
        let cost = Tensor::new(&[2, 2], vec![0.0, 1e6, 1e6, 0.0]);
        let plan = sinkhorn_plan(&cost, SinkhornConfig { epsilon: 0.01, iterations: 30 });
        assert!(plan.data().iter().all(|v| v.is_finite()));
    }
}
