//! Incremental catalog admission: assign semantic IDs to **new** items
//! against a frozen RQ-VAE (ROADMAP item 4, "online catalog evolution").
//!
//! Training-time index construction ([`RqVae::build_indices`]) quantizes
//! the whole catalog at once and resolves conflicts globally. Production
//! catalogs mutate constantly, so [`CatalogUpdater`] replays the same
//! two-stage scheme one item at a time: greedy nearest-codeword
//! quantization (Eqn. 1–2) for the proposed path, then — only when the
//! full path is already bound — a per-cohort relocation step that reuses
//! the Sinkhorn transport machinery of the training-time conflict
//! resolver. The arithmetic is shared with the training path
//! (`model::nearest`, [`RqVae::quantize_greedy`]), so re-admitting a
//! training-set item reproduces its original codes bit-exactly
//! (`tests/evolution.rs` pins this oracle).
//!
//! Admission never mutates existing bindings: an item admitted at epoch
//! `t` keeps its codes forever, which is what lets the serving layer keep
//! old trie snapshots valid (see `lcrec_core::CatalogTrie` and
//! `docs/CATALOG.md`).

use crate::indices::{IndexError, ItemIndices};
use crate::model::{nearest, RqVae};
use crate::sinkhorn::{balanced_assign, sinkhorn_plan};
use lcrec_tensor::linalg::sq_dist;
use lcrec_tensor::Tensor;
use std::collections::BTreeMap;

/// The outcome of one successful [`CatalogUpdater::admit`] call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Admission {
    /// The item id the catalog assigned (always `indices().len() - 1`).
    pub item: u32,
    /// The semantic-ID path the item was bound to.
    pub codes: Vec<u16>,
    /// `true` when the greedy path was taken verbatim; `false` when a
    /// collision forced the last level (or, under overflow, the
    /// second-to-last level) away from the nearest codeword.
    pub greedy: bool,
    /// How many times the item was reseated into a sibling prefix cohort
    /// because its target cohort had no free leaf slot.
    pub relocations: usize,
}

/// Assigns semantic IDs to new items by nearest-codeword quantization
/// against a **frozen** [`RqVae`], with Sinkhorn-based relocation when the
/// proposed path is already bound.
///
/// The updater owns a growing [`ItemIndices`]; every admitted item gets
/// the next dense id. Existing bindings are never changed — collisions are
/// resolved by moving the *new* item to a free sibling slot, and a typed
/// [`IndexError::SlotsExhausted`] is returned once the relocation budget
/// is spent with every reachable cohort full.
///
/// # Examples
///
/// ```
/// use lcrec_rqvae::{CatalogUpdater, ItemIndices, RqVae, RqVaeConfig};
///
/// let mut cfg = RqVaeConfig::small(4, 8);
/// cfg.levels = 2;
/// cfg.codebook_size = 4;
/// cfg.latent_dim = 4;
/// cfg.hidden = vec![8];
/// let model = RqVae::new(cfg);
///
/// // Start from an empty catalog with the model's code geometry.
/// let base = ItemIndices::new(vec![4, 4], vec![]);
/// let mut updater = CatalogUpdater::new(&model, base);
///
/// let first = updater.admit(&[0.5, -0.25, 0.125, 1.0]).expect("free slot");
/// assert_eq!(first.item, 0);
/// assert!(first.greedy, "an empty catalog admits on the greedy path");
///
/// // The same embedding collides on the full path; the new item is
/// // relocated to a free sibling slot instead of shadowing item 0.
/// let second = updater.admit(&[0.5, -0.25, 0.125, 1.0]).expect("free slot");
/// assert_eq!(second.item, 1);
/// assert_ne!(second.codes, first.codes);
/// assert_eq!(updater.indices().len(), 2);
/// ```
#[derive(Debug)]
pub struct CatalogUpdater<'a> {
    model: &'a RqVae,
    indices: ItemIndices,
    /// Full code path → bound item, kept sorted so cohort occupancy is a
    /// contiguous range scan (and iteration order is deterministic).
    occupied: BTreeMap<Vec<u16>, u32>,
}

impl<'a> CatalogUpdater<'a> {
    /// Wraps a frozen model and the catalog indexed so far. `base` may be
    /// empty (a catalog built from scratch) or the training-time
    /// [`RqVae::build_indices`] output. Its geometry must match the
    /// model's (`levels` × `codebook_size`); mismatches are construction
    /// bugs and panic like [`ItemIndices::new`] does. If `base` still
    /// contains full-path conflicts, the lowest item id holds each path —
    /// the same first-insert-wins rule as [`crate::IndexTrie::build`].
    pub fn new(model: &'a RqVae, base: ItemIndices) -> CatalogUpdater<'a> {
        let cfg = model.config();
        assert_eq!(base.levels, cfg.levels, "catalog levels must match the model");
        assert!(
            base.codebook_sizes.iter().all(|&s| s == cfg.codebook_size),
            "catalog codebook sizes must match the model"
        );
        let mut occupied = BTreeMap::new();
        for (item, codes) in base.codes.iter().enumerate() {
            occupied.entry(codes.clone()).or_insert(item as u32);
        }
        CatalogUpdater { model, indices: base, occupied }
    }

    /// The catalog indexed so far: the base items plus every admission,
    /// in admission order.
    pub fn indices(&self) -> &ItemIndices {
        &self.indices
    }

    /// Consumes the updater, yielding the grown catalog.
    pub fn into_indices(self) -> ItemIndices {
        self.indices
    }

    /// Number of items currently indexed.
    pub fn len(&self) -> usize {
        self.indices.len()
    }

    /// True when no item has been indexed yet.
    pub fn is_empty(&self) -> bool {
        self.indices.is_empty()
    }

    /// Greedy nearest-codeword quantization of one text embedding — the
    /// codes the item *wants*, before any collision handling. Exactly the
    /// training-time arithmetic ([`RqVae::quantize_greedy`] on a one-row
    /// batch), so for items whose training-time assignment was greedy the
    /// result is bit-identical to their original semantic IDs.
    pub fn quantize(&self, embedding: &[f32]) -> Result<Vec<u16>, IndexError> {
        let (codes, _z) = self.encode_and_quantize(embedding)?;
        Ok(codes)
    }

    /// Admits one new item: quantize, resolve any collision, bind the
    /// next dense item id to the final path. Existing bindings are never
    /// touched. Fails with [`IndexError::DimensionMismatch`] on a wrong
    /// embedding width and [`IndexError::SlotsExhausted`] when the
    /// relocation budget runs out with every reachable cohort full (the
    /// catalog is effectively at code-space capacity around that prefix).
    pub fn admit(&mut self, embedding: &[f32]) -> Result<Admission, IndexError> {
        let (greedy_codes, z) = self.encode_and_quantize(embedding)?;
        let h = self.indices.levels;
        let k = self.model.config().codebook_size;
        let mut codes = greedy_codes;
        let mut relocations = 0usize;
        let mut greedy = true;
        // Mirrors the round structure of the training-time conflict
        // resolver: each round either lands the item (free path, or a
        // Sinkhorn-picked free leaf in its cohort) or relocates it into a
        // sibling cohort via the level-(H-2) code; the budget bounds
        // pathological near-full catalogs.
        for round in 0..(2 * k + 4) {
            if !self.occupied.contains_key(&codes) {
                return Ok(self.bind(codes, greedy, relocations));
            }
            if greedy {
                lcrec_obs::counter_add("catalog.collisions", 1);
                greedy = false;
            }
            let prefix: Vec<u16> = codes.iter().take(h.saturating_sub(1)).copied().collect();
            let free = self.free_leaf_codes(&prefix, k);
            if !free.is_empty() {
                // Transport the item onto the cohort's free codes — the
                // same Sinkhorn-balanced assignment the training-time
                // resolver uses, degenerate single-row case.
                let book = self.model.codebook(h - 1);
                let snapshot = [codes.clone()];
                let r = self.model.residual_at(&z, &snapshot, 0, h - 1);
                let cost: Vec<f32> =
                    free.iter().map(|&c| sq_dist(&r, book.row(c as usize))).collect();
                let cost = Tensor::new(&[1, free.len()], cost);
                let plan = sinkhorn_plan(&cost, self.model.config().sinkhorn);
                let pick = balanced_assign(&plan).first().copied().unwrap_or(0) as usize;
                if let (Some(&code), Some(slot)) = (free.get(pick), codes.last_mut()) {
                    *slot = code;
                }
                return Ok(self.bind(codes, false, relocations));
            }
            if h < 2 {
                return Err(IndexError::SlotsExhausted { prefix });
            }
            // Cohort full: reseat into a sibling prefix by walking the
            // level-(H-2) codeword ranking further down each round, then
            // re-aim the last level greedily inside the new cohort.
            relocations += 1;
            lcrec_obs::counter_add("catalog.relocations", 1);
            let up_book = self.model.codebook(h - 2);
            let snapshot = [codes.clone()];
            let r = self.model.residual_at(&z, &snapshot, 0, h - 2);
            let mut ranked: Vec<usize> = (0..k).collect();
            ranked.sort_by(|&a, &b| {
                sq_dist(&r, up_book.row(a))
                    .partial_cmp(&sq_dist(&r, up_book.row(b)))
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let next = ranked.get((1 + round) % k).copied().unwrap_or(0);
            if let Some(slot) = codes.get_mut(h - 2) {
                *slot = next as u16;
            }
            let snapshot = [codes.clone()];
            let r_last = self.model.residual_at(&z, &snapshot, 0, h - 1);
            let (best, _) = nearest(self.model.codebook(h - 1), &r_last);
            if let Some(slot) = codes.last_mut() {
                *slot = best as u16;
            }
        }
        let prefix: Vec<u16> = codes.iter().take(h.saturating_sub(1)).copied().collect();
        Err(IndexError::SlotsExhausted { prefix })
    }

    /// Encodes one embedding and greedy-quantizes it; returns the codes
    /// and the one-row latent (needed for residual arithmetic later).
    fn encode_and_quantize(&self, embedding: &[f32]) -> Result<(Vec<u16>, Tensor), IndexError> {
        let dim = self.model.config().input_dim;
        if embedding.len() != dim {
            return Err(IndexError::DimensionMismatch { expected: dim, got: embedding.len() });
        }
        let e = Tensor::new(&[1, dim], embedding.to_vec());
        let z = self.model.encode(&e);
        let (codes, _) = self.model.quantize_greedy(&z);
        let codes = codes.into_iter().next().unwrap_or_default();
        Ok((codes, z))
    }

    /// Last-level codes still free inside the `prefix` cohort, ascending.
    fn free_leaf_codes(&self, prefix: &[u16], k: usize) -> Vec<u16> {
        let mut used = vec![false; k];
        let mut lo = prefix.to_vec();
        lo.push(0);
        for (path, _) in self.occupied.range(lo..) {
            if !path.starts_with(prefix) {
                break;
            }
            if let Some(&c) = path.last() {
                if let Some(u) = used.get_mut(c as usize) {
                    *u = true;
                }
            }
        }
        (0..k as u16).filter(|&c| !used.get(c as usize).copied().unwrap_or(true)).collect()
    }

    /// Binds the next dense item id to `codes` and records the admission.
    fn bind(&mut self, codes: Vec<u16>, greedy: bool, relocations: usize) -> Admission {
        let item = self.indices.codes.len() as u32;
        self.indices.codes.push(codes.clone());
        self.occupied.insert(codes.clone(), item);
        lcrec_obs::counter_add("catalog.admitted", 1);
        Admission { item, codes, greedy, relocations }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::RqVaeConfig;

    fn tiny_model(levels: usize, k: usize) -> RqVae {
        let mut cfg = RqVaeConfig::small(6, 16);
        cfg.levels = levels;
        cfg.codebook_size = k;
        cfg.latent_dim = 4;
        cfg.hidden = vec![8];
        cfg.seed = 9;
        RqVae::new(cfg)
    }

    fn empty_base(levels: usize, k: usize) -> ItemIndices {
        ItemIndices::new(vec![k; levels], vec![])
    }

    #[test]
    fn admission_assigns_dense_ids_and_free_paths_verbatim() {
        let model = tiny_model(3, 4);
        let mut up = CatalogUpdater::new(&model, empty_base(3, 4));
        let e = [0.3, -0.7, 1.1, 0.0, 0.5, -0.2];
        let want = up.quantize(&e).expect("dimension matches");
        let adm = up.admit(&e).expect("empty catalog admits");
        assert_eq!(adm.item, 0);
        assert_eq!(adm.codes, want, "free path keeps the greedy codes");
        assert!(adm.greedy);
        assert_eq!(adm.relocations, 0);
    }

    #[test]
    fn collisions_relocate_without_touching_existing_bindings() {
        let model = tiny_model(3, 4);
        let mut up = CatalogUpdater::new(&model, empty_base(3, 4));
        let e = [0.3, -0.7, 1.1, 0.0, 0.5, -0.2];
        let first = up.admit(&e).expect("empty catalog admits");
        let second = up.admit(&e).expect("cohort has free slots");
        assert_ne!(first.codes, second.codes);
        assert!(!second.greedy);
        assert_eq!(up.indices().of(0), first.codes.as_slice(), "item 0 untouched");
        assert!(up.indices().is_unique());
    }

    #[test]
    fn exhausted_code_space_is_a_typed_error() {
        // 2 levels × K=2 → 4 leaf slots total; the 5th admission of the
        // same embedding must fail with SlotsExhausted, not loop or panic.
        let model = tiny_model(2, 2);
        let mut up = CatalogUpdater::new(&model, empty_base(2, 2));
        let e = [0.3, -0.7, 1.1, 0.0, 0.5, -0.2];
        for _ in 0..4 {
            up.admit(&e).expect("capacity remains");
        }
        assert!(up.indices().is_unique());
        match up.admit(&e) {
            Err(IndexError::SlotsExhausted { .. }) => {}
            other => panic!("expected SlotsExhausted, got {other:?}"),
        }
        assert_eq!(up.len(), 4, "failed admission binds nothing");
    }

    #[test]
    fn wrong_embedding_width_is_a_typed_error() {
        let model = tiny_model(2, 4);
        let mut up = CatalogUpdater::new(&model, empty_base(2, 4));
        match up.admit(&[1.0, 2.0]) {
            Err(IndexError::DimensionMismatch { expected: 6, got: 2 }) => {}
            other => panic!("expected DimensionMismatch, got {other:?}"),
        }
    }
}
