//! The four indexing schemes compared in Figure 2 of the paper.
//!
//! * **Vanilla ID** — one unique token per item (traditional item IDs).
//! * **Random indices** — multi-level codes drawn uniformly at random
//!   (structure without semantics).
//! * **RQ w/o USM** — semantic RQ-VAE codes, but conflicts resolved by a
//!   supplementary distinct ID appended as an extra level (the prior-work
//!   strategy LC-Rec replaces).
//! * **LC-Rec (RQ + USM)** — the paper's method.

use crate::indices::ItemIndices;
use crate::model::{RqVae, RqVaeConfig};
use lcrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// Which item-indexing scheme to use.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IndexerKind {
    /// One unique token per item.
    VanillaId,
    /// Random multi-level codes (unique, semantics-free).
    Random,
    /// RQ-VAE without uniform semantic mapping; conflicts get suffix IDs.
    RqNoUsm,
    /// Full LC-Rec indexing: RQ-VAE + uniform semantic mapping.
    LcRec,
}

impl IndexerKind {
    /// Display name matching the paper's Figure 2 legend.
    pub fn label(&self) -> &'static str {
        match self {
            IndexerKind::VanillaId => "Vanilla ID",
            IndexerKind::Random => "Random Indices",
            IndexerKind::RqNoUsm => "LC-Rec w/o USM",
            IndexerKind::LcRec => "LC-Rec",
        }
    }

    /// All schemes in Figure-2 order.
    pub fn all() -> [IndexerKind; 4] {
        [IndexerKind::VanillaId, IndexerKind::Random, IndexerKind::RqNoUsm, IndexerKind::LcRec]
    }
}

/// Builds item indices under a scheme. `embeddings` are the item text
/// embeddings (`[num_items, dim]`); schemes that ignore semantics only use
/// the row count.
pub fn build_indices(kind: IndexerKind, embeddings: &Tensor, cfg: &RqVaeConfig) -> ItemIndices {
    match kind {
        IndexerKind::VanillaId => vanilla(embeddings.rows()),
        IndexerKind::Random => random(embeddings.rows(), cfg),
        IndexerKind::RqNoUsm => {
            let mut c = cfg.clone();
            c.usm = false;
            let mut model = RqVae::new(c);
            model.train(embeddings);
            with_suffix_ids(&model, embeddings)
        }
        IndexerKind::LcRec => {
            let mut model = RqVae::new(cfg.clone());
            model.train(embeddings);
            model.build_indices(embeddings)
        }
    }
}

/// Vanilla IDs: a single level whose codebook enumerates the items.
fn vanilla(n: usize) -> ItemIndices {
    ItemIndices::new(vec![n], (0..n).map(|i| vec![i as u16]).collect())
}

/// Random unique multi-level codes.
fn random(n: usize, cfg: &RqVaeConfig) -> ItemIndices {
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x5EED);
    let mut seen = std::collections::HashSet::new();
    let mut codes = Vec::with_capacity(n);
    while codes.len() < n {
        let c: Vec<u16> =
            (0..cfg.levels).map(|_| rng.random_range(0..cfg.codebook_size as u16)).collect();
        if seen.insert(c.clone()) {
            codes.push(c);
        }
    }
    ItemIndices::new(vec![cfg.codebook_size; cfg.levels], codes)
}

/// RQ codes with conflicts resolved by a supplementary final level: every
/// item gains one extra code that enumerates its position inside its
/// conflict group (0 for singletons) — the strategy of P5/TIGER-style
/// index trees the paper critiques.
fn with_suffix_ids(model: &RqVae, embeddings: &Tensor) -> ItemIndices {
    let z = model.encode(embeddings);
    let (codes, _) = model.quantize_greedy(&z);
    let mut groups: HashMap<&[u16], Vec<usize>> = HashMap::new();
    for (i, c) in codes.iter().enumerate() {
        groups.entry(c.as_slice()).or_default().push(i);
    }
    let max_group = groups.values().map(Vec::len).max().unwrap_or(1); // lint: allow(det, reason = "max over group sizes is an order-independent reduction")
    let mut suffix = vec![0u16; codes.len()];
    for items in groups.values() { // lint: allow(det, reason = "groups are disjoint and each group's Vec is in item-id order, so every suffix[i] comes out the same whatever order the groups are visited in")
        for (pos, &i) in items.iter().enumerate() {
            suffix[i] = pos as u16;
        }
    }
    let cfg = model.config();
    let mut sizes = vec![cfg.codebook_size; cfg.levels];
    sizes.push(max_group.max(1));
    let full: Vec<Vec<u16>> = codes
        .into_iter()
        .enumerate()
        .map(|(i, mut c)| {
            c.push(suffix[i]);
            c
        })
        .collect();
    ItemIndices::new(sizes, full)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_tensor::init;

    fn embeddings(n: usize) -> Tensor {
        init::normal(&[n, 12], 1.0, &mut StdRng::seed_from_u64(2))
    }

    fn cfg() -> RqVaeConfig {
        let mut c = RqVaeConfig::small(12, 30);
        c.epochs = 8;
        c.codebook_size = 5;
        c.levels = 3;
        c.latent_dim = 8;
        c.hidden = vec![16];
        c
    }

    #[test]
    fn vanilla_is_one_level_unique() {
        let idx = build_indices(IndexerKind::VanillaId, &embeddings(30), &cfg());
        assert_eq!(idx.levels, 1);
        assert!(idx.is_unique());
        assert_eq!(idx.vocab_tokens(), 30);
    }

    #[test]
    fn random_is_unique_and_multi_level() {
        let idx = build_indices(IndexerKind::Random, &embeddings(30), &cfg());
        assert_eq!(idx.levels, 3);
        assert!(idx.is_unique());
    }

    #[test]
    fn rq_no_usm_gains_suffix_level() {
        let idx = build_indices(IndexerKind::RqNoUsm, &embeddings(30), &cfg());
        assert_eq!(idx.levels, 4, "suffix level appended");
        assert!(idx.is_unique(), "suffix IDs must disambiguate conflicts");
    }

    #[test]
    fn lcrec_indices_unique_without_extra_level() {
        let idx = build_indices(IndexerKind::LcRec, &embeddings(30), &cfg());
        assert_eq!(idx.levels, 3, "USM must not add levels");
        assert!(idx.is_unique());
    }

    #[test]
    fn labels_match_figure_2() {
        let labels: Vec<&str> = IndexerKind::all().iter().map(|k| k.label()).collect();
        assert_eq!(labels, vec!["Vanilla ID", "Random Indices", "LC-Rec w/o USM", "LC-Rec"]);
    }
}
