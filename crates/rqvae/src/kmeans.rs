//! Lightweight k-means (k-means++ seeding + Lloyd iterations) used to
//! initialize RQ-VAE codebooks from data, the standard warm start for
//! residual quantizers.

use lcrec_tensor::linalg::sq_dist;
use lcrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Runs k-means on the rows of `x: [n, d]`, returning `[k, d]` centroids.
/// If `n < k`, remaining centroids are filled with jittered copies so the
/// result always has exactly `k` rows.
pub fn kmeans(x: &Tensor, k: usize, iters: usize, rng: &mut StdRng) -> Tensor {
    let n = x.rows();
    let d = x.cols();
    assert!(k > 0 && n > 0);
    // --- k-means++ seeding ---
    let mut centers: Vec<Vec<f32>> = Vec::with_capacity(k);
    centers.push(x.row(rng.random_range(0..n)).to_vec());
    let mut dists: Vec<f32> = (0..n).map(|i| sq_dist(x.row(i), &centers[0])).collect();
    while centers.len() < k.min(n) {
        let total: f32 = dists.iter().sum();
        let pick = if total <= 1e-12 {
            rng.random_range(0..n)
        } else {
            let mut u = rng.random_range(0.0..total);
            let mut idx = n - 1;
            for (i, &w) in dists.iter().enumerate() {
                if u < w {
                    idx = i;
                    break;
                }
                u -= w;
            }
            idx
        };
        centers.push(x.row(pick).to_vec());
        for i in 0..n {
            let dnew = sq_dist(x.row(i), centers.last().expect("non-empty"));
            if dnew < dists[i] {
                dists[i] = dnew;
            }
        }
    }
    // Pad with jittered copies if there were fewer points than centroids.
    while centers.len() < k {
        let base = centers[rng.random_range(0..centers.len())].clone();
        let jittered: Vec<f32> =
            base.iter().map(|v| v + rng.random_range(-0.01..0.01)).collect();
        centers.push(jittered);
    }

    // --- Lloyd iterations ---
    let mut assign = vec![0usize; n];
    for _ in 0..iters {
        let mut changed = false;
        for i in 0..n {
            let row = x.row(i);
            let mut best = 0;
            let mut bd = f32::INFINITY;
            for (c, center) in centers.iter().enumerate() {
                let dd = sq_dist(row, center);
                if dd < bd {
                    bd = dd;
                    best = c;
                }
            }
            if assign[i] != best {
                assign[i] = best;
                changed = true;
            }
        }
        let mut sums = vec![vec![0.0f32; d]; k];
        let mut counts = vec![0usize; k];
        for i in 0..n {
            counts[assign[i]] += 1;
            for (s, &v) in sums[assign[i]].iter_mut().zip(x.row(i)) {
                *s += v;
            }
        }
        for c in 0..k {
            if counts[c] > 0 {
                let inv = 1.0 / counts[c] as f32;
                for (dst, s) in centers[c].iter_mut().zip(&sums[c]) {
                    *dst = s * inv;
                }
            } else {
                // Re-seed an empty cluster at the farthest point.
                let far = (0..n)
                    .max_by(|&a, &b| {
                        let da = sq_dist(x.row(a), &centers[assign[a]]);
                        let db = sq_dist(x.row(b), &centers[assign[b]]);
                        da.partial_cmp(&db).unwrap_or(std::cmp::Ordering::Equal)
                    })
                    .expect("non-empty");
                centers[c] = x.row(far).to_vec();
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    let mut flat = Vec::with_capacity(k * d);
    for c in centers {
        flat.extend(c);
    }
    Tensor::new(&[k, d], flat)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn recovers_two_clusters() {
        let mut rows = Vec::new();
        for i in 0..20 {
            let j = i as f32 * 0.01;
            rows.push(vec![0.0 + j, 0.0]);
            rows.push(vec![10.0 + j, 10.0]);
        }
        let x = Tensor::from_rows(&rows);
        let c = kmeans(&x, 2, 20, &mut StdRng::seed_from_u64(3));
        let mut xs: Vec<f32> = (0..2).map(|i| c.row(i)[0]).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        assert!((xs[0] - 0.1).abs() < 0.5, "{xs:?}");
        assert!((xs[1] - 10.1).abs() < 0.5, "{xs:?}");
    }

    #[test]
    fn pads_when_fewer_points_than_centroids() {
        let x = Tensor::from_rows(&[vec![1.0, 1.0], vec![2.0, 2.0]]);
        let c = kmeans(&x, 5, 5, &mut StdRng::seed_from_u64(1));
        assert_eq!(c.shape(), &[5, 2]);
        assert!(!c.has_non_finite());
    }

    #[test]
    fn deterministic_under_seed() {
        let x = Tensor::from_rows(&(0..30).map(|i| vec![i as f32, (i * i) as f32 * 0.01]).collect::<Vec<_>>());
        let a = kmeans(&x, 4, 10, &mut StdRng::seed_from_u64(9));
        let b = kmeans(&x, 4, 10, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
    }
}
