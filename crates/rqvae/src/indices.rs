//! Item index containers and the prefix trie used for constrained decoding.

use std::collections::HashMap;

/// Typed failures of catalog indexing operations: checked trie
/// construction ([`IndexTrie::try_build`]), copy-on-write inserts
/// (`lcrec_core::CatalogTrie`) and incremental admission
/// (`crate::CatalogUpdater`). Every variant names the offending item or
/// code path, so callers can log or surface the exact conflict instead of
/// silently shadowing it.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum IndexError {
    /// The item id is already bound to a code path in this index.
    DuplicateItem {
        /// The already-bound item id.
        item: u32,
    },
    /// The full code path is already bound to another item.
    PathOccupied {
        /// The contested code path.
        codes: Vec<u16>,
        /// The item currently bound to it.
        bound: u32,
    },
    /// A code path's depth does not match the index's level count.
    LevelMismatch {
        /// Levels the index expects.
        expected: usize,
        /// Levels the caller supplied.
        got: usize,
    },
    /// An embedding's dimension does not match the model's input width.
    DimensionMismatch {
        /// Dimension the model expects.
        expected: usize,
        /// Dimension the caller supplied.
        got: usize,
    },
    /// Conflict resolution ran out of leaf slots: every cohort reachable
    /// within the relocation budget is full.
    SlotsExhausted {
        /// The prefix cohort the item last tried to land in.
        prefix: Vec<u16>,
    },
}

impl std::fmt::Display for IndexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IndexError::DuplicateItem { item } => {
                write!(f, "item {item} is already bound to a code path")
            }
            IndexError::PathOccupied { codes, bound } => {
                let path: Vec<String> = codes.iter().map(|c| c.to_string()).collect();
                write!(f, "code path {} is already bound to item {bound}", path.join("."))
            }
            IndexError::LevelMismatch { expected, got } => {
                write!(f, "code path has {got} levels, index expects {expected}")
            }
            IndexError::DimensionMismatch { expected, got } => {
                write!(f, "embedding has dimension {got}, model expects {expected}")
            }
            IndexError::SlotsExhausted { prefix } => {
                let path: Vec<String> = prefix.iter().map(|c| c.to_string()).collect();
                write!(
                    f,
                    "no free leaf slot within the relocation budget (last cohort [{}])",
                    path.join(".")
                )
            }
        }
    }
}

impl std::error::Error for IndexError {}

/// The learned multi-level indices of a whole catalog.
///
/// `codes[item][level]` is the codeword chosen at that level. The paper's
/// notation `<a_12><b_3><c_41><d_9>` corresponds to
/// `codes[item] = [12, 3, 41, 9]` with `levels = 4`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ItemIndices {
    /// Number of levels `H`.
    pub levels: usize,
    /// Codebook size per level. Level `l` codewords live in
    /// `0..codebook_sizes[l]`.
    pub codebook_sizes: Vec<usize>,
    /// Per-item code sequences, each of length `levels`.
    pub codes: Vec<Vec<u16>>,
}

impl ItemIndices {
    /// Builds the container, validating code ranges.
    pub fn new(codebook_sizes: Vec<usize>, codes: Vec<Vec<u16>>) -> Self {
        let levels = codebook_sizes.len();
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(c.len(), levels, "item {i} has {} levels, expected {levels}", c.len());
            for (l, &code) in c.iter().enumerate() {
                assert!(
                    (code as usize) < codebook_sizes[l],
                    "item {i} level {l} code {code} out of {}",
                    codebook_sizes[l]
                );
            }
        }
        ItemIndices { levels, codebook_sizes, codes }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code sequence of one item. Unknown item ids yield an empty
    /// slice rather than a panic, so serving-path lookups stay total.
    pub fn of(&self, item: u32) -> &[u16] {
        self.codes.get(item as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of items that share their full index with another item.
    /// The paper's USM step exists to drive this to zero.
    pub fn conflicts(&self) -> usize {
        let mut seen: HashMap<&[u16], usize> = HashMap::new();
        for c in &self.codes {
            *seen.entry(c.as_slice()).or_default() += 1;
        }
        seen.values().filter(|&&n| n > 1).map(|&n| n).sum() // lint: allow(det, reason = "sum over counts is an order-independent reduction")
    }

    /// True if every item has a unique full index.
    pub fn is_unique(&self) -> bool {
        self.conflicts() == 0
    }

    /// Total number of distinct tokens the LM vocabulary must gain —
    /// the paper's "usually ~1,000 additional tokens" (H × K).
    pub fn vocab_tokens(&self) -> usize {
        self.codebook_sizes.iter().sum()
    }

    /// Offset of level `l`'s tokens inside the flattened index-token block.
    /// Levels past the last clamp to the total (`take` never overruns).
    pub fn level_offset(&self, level: usize) -> usize {
        self.codebook_sizes.iter().take(level).sum()
    }

    /// Flattens `(level, code)` into a single token id in
    /// `0..vocab_tokens()`.
    pub fn flat_token(&self, level: usize, code: u16) -> usize {
        self.level_offset(level) + code as usize
    }

    /// Human-readable form, e.g. `<a_12><b_3><c_41><d_9>`.
    pub fn format(&self, item: u32) -> String {
        let letters = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
        self.codes[item as usize]
            .iter()
            .enumerate()
            .map(|(l, &c)| format!("<{}_{}>", letters[l % letters.len()], c))
            .collect()
    }

    /// Fraction of same-prefix item pairs (at `depth` levels) — a coarse
    /// measure of how hierarchical the code space is.
    pub fn prefix_sharing(&self, depth: usize) -> f32 {
        let n = self.codes.len();
        if n < 2 {
            return 0.0;
        }
        let mut groups: HashMap<&[u16], usize> = HashMap::new();
        for c in &self.codes {
            *groups.entry(&c[..depth.min(self.levels)]).or_default() += 1;
        }
        let pairs: usize = groups.values().map(|&g| g * (g - 1) / 2).sum(); // lint: allow(det, reason = "sum over per-group pair counts is an order-independent reduction")
        pairs as f32 / (n * (n - 1) / 2) as f32
    }
}

/// A prefix tree over item indices. Drives the paper's constrained beam
/// search: at each generation step only children of the current prefix are
/// legal, so every completed beam is a real item ("probabilities of tokens
/// that may result in illegal item indices will be assigned 0").
///
/// # Layout
///
/// The trie is stored as a **flattened arena in CSR form** rather than
/// pointer-per-node maps: nodes are numbered in breadth-first order, the
/// outgoing edges of node `n` occupy the contiguous span
/// `child_start[n]..child_start[n + 1]` of the parallel `edge_codes` /
/// `edge_child` arrays, and codes within a span are ascending. The beam
/// hot path ([`IndexTrie::allowed_slice`]) is then a two-array walk ending
/// in a borrowed slice — no hashing, no per-call allocation, no sort —
/// and lookups are cache-friendly binary searches over tiny spans (see
/// `docs/PERFORMANCE.md`). [`PointerTrie`] keeps the original
/// pointer-per-node structure as the differential-testing reference.
///
/// # Examples
///
/// ```
/// use lcrec_rqvae::{IndexTrie, ItemIndices};
///
/// // Three items with 2-level semantic IDs; items 0 and 1 share a prefix.
/// let indices = ItemIndices::new(vec![4, 4], vec![
///     vec![0, 0],
///     vec![0, 3],
///     vec![2, 1],
/// ]);
/// let trie = IndexTrie::build(&indices);
///
/// // Only learned code paths are legal at each step...
/// assert_eq!(trie.allowed(&[]), &[0, 2]);
/// assert_eq!(trie.allowed_slice(&[0]), &[0, 3]);
/// assert!(trie.allowed(&[1]).is_empty(), "no item starts with code 1");
///
/// // ...so every completed path resolves to a real item.
/// assert_eq!(trie.item_at(&[0, 3]), Some(1));
/// assert_eq!(trie.item_at(&[2, 3]), None);
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct IndexTrie {
    levels: usize,
    /// Node `n`'s edges are `edge_codes[child_start[n]..child_start[n+1]]`
    /// (ascending) with child ids in `edge_child` at the same positions.
    child_start: Vec<u32>,
    edge_codes: Vec<u16>,
    edge_child: Vec<u32>,
    /// Per-node bound item (depth-`levels` leaves only).
    items: Vec<Option<u32>>,
}

impl IndexTrie {
    /// Builds the trie from a set of item indices. When several items
    /// share a full index (a conflict USM is meant to eliminate), the
    /// lowest item id stays bound to the leaf — the same first-insert-wins
    /// rule as [`PointerTrie::build`].
    pub fn build(indices: &ItemIndices) -> Self {
        let paths: Vec<(Vec<u16>, u32)> = indices
            .codes
            .iter()
            .enumerate()
            .map(|(item, codes)| (codes.clone(), item as u32))
            .collect();
        IndexTrie::from_paths(indices.levels, paths)
    }

    /// [`IndexTrie::build`] with conflicts surfaced instead of swallowed:
    /// when two items share a full code path the silent first-insert-wins
    /// rule is replaced by a typed [`IndexError::PathOccupied`] naming the
    /// contested path and the item already bound to it. On a conflict-free
    /// input the result is node-for-node identical to [`IndexTrie::build`].
    pub fn try_build(indices: &ItemIndices) -> Result<Self, IndexError> {
        let mut paths: Vec<(Vec<u16>, u32)> = indices
            .codes
            .iter()
            .enumerate()
            .map(|(item, codes)| (codes.clone(), item as u32))
            .collect();
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        for w in paths.windows(2) {
            if let [(pa, ia), (pb, _)] = w {
                if pa == pb {
                    return Err(IndexError::PathOccupied { codes: pa.clone(), bound: *ia });
                }
            }
        }
        Ok(IndexTrie::from_paths(indices.levels, paths))
    }

    /// CSR construction from full code paths: stable-sort by code path
    /// (ties keep insertion order, so the first-bound item wins), dedup,
    /// then carve the sorted list into nodes breadth-first. Each node's
    /// edges come out contiguous and code-ascending by construction.
    fn from_paths(levels: usize, mut paths: Vec<(Vec<u16>, u32)>) -> Self {
        paths.sort_by(|a, b| a.0.cmp(&b.0));
        paths.dedup_by(|cur, prev| cur.0 == prev.0);
        let mut child_start = vec![0u32];
        let mut edge_codes: Vec<u16> = Vec::new();
        let mut edge_child: Vec<u32> = Vec::new();
        let mut items: Vec<Option<u32>> = Vec::new();
        // BFS queue of (depth, lo, hi): paths[lo..hi] share their first
        // `depth` codes and define the subtrie under one node. Nodes are
        // popped — and therefore numbered — in exactly the order their
        // edges were appended, which keeps ids and spans aligned.
        let mut queue: std::collections::VecDeque<(usize, usize, usize)> =
            std::collections::VecDeque::new();
        queue.push_back((0, 0, paths.len()));
        let mut next_id = 1u32;
        while let Some((depth, lo, hi)) = queue.pop_front() {
            if depth == levels {
                items.push(paths.get(lo).filter(|_| lo < hi).map(|p| p.1));
                child_start.push(edge_codes.len() as u32);
                continue;
            }
            items.push(None);
            let mut i = lo;
            while i < hi {
                let code = paths[i].0[depth]; // lint: allow(panic, reason = "i < hi <= paths.len() and every path has exactly `levels` codes with depth < levels")
                let mut j = i + 1;
                while j < hi && paths[j].0[depth] == code { // lint: allow(panic, reason = "j < hi <= paths.len() and every path has exactly `levels` codes with depth < levels")
                    j += 1;
                }
                edge_codes.push(code);
                edge_child.push(next_id);
                next_id += 1;
                queue.push_back((depth + 1, i, j));
                i = j;
            }
            child_start.push(edge_codes.len() as u32);
        }
        IndexTrie { levels, child_start, edge_codes, edge_child, items }
    }

    /// Number of index levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The edge span of `node`, if the node exists.
    fn child_range(&self, node: usize) -> Option<(usize, usize)> {
        let lo = *self.child_start.get(node)? as usize;
        let hi = *self.child_start.get(node + 1)? as usize;
        Some((lo, hi))
    }

    /// The node reached by `prefix`, if it exists: one binary search per
    /// level over that node's (tiny, sorted) edge span.
    fn node_at(&self, prefix: &[u16]) -> Option<usize> {
        let mut node = 0usize;
        for c in prefix {
            let (lo, hi) = self.child_range(node)?;
            let span = self.edge_codes.get(lo..hi)?;
            let k = span.binary_search(c).ok()?;
            node = *self.edge_child.get(lo + k)? as usize;
        }
        Some(node)
    }

    /// Legal next codes after `prefix`, ascending, as a **borrowed slice**
    /// of the arena (empty if the prefix is illegal or complete). This is
    /// the beam-search hot path: no allocation, no hashing, no sort.
    pub fn allowed_slice(&self, prefix: &[u16]) -> &[u16] {
        self.node_at(prefix)
            .and_then(|n| self.child_range(n))
            .and_then(|(lo, hi)| self.edge_codes.get(lo..hi))
            .unwrap_or(&[])
    }

    /// Legal next codes after `prefix` as an owned vector (empty if the
    /// prefix is illegal or complete). Prefer [`IndexTrie::allowed_slice`]
    /// on hot paths.
    pub fn allowed(&self, prefix: &[u16]) -> Vec<u16> {
        self.allowed_slice(prefix).to_vec()
    }

    /// The item whose full index is `codes`, if any.
    pub fn item_at(&self, codes: &[u16]) -> Option<u32> {
        if codes.len() != self.levels {
            return None;
        }
        self.node_at(codes).and_then(|n| self.items.get(n).copied().flatten())
    }

    /// Total node count (diagnostics / benches).
    pub fn num_nodes(&self) -> usize {
        self.items.len()
    }

    /// Canonical text serialization: a `trie levels=L` header followed by
    /// one `c0.c1.….cL-1=item` line per stored item, emitted in depth-first
    /// order with the codes at every node visited in ascending order. The
    /// output is independent of the order items were inserted — two tries
    /// with the same contents always serialize identically (the
    /// golden-snapshot property `tests/golden.rs` pins).
    pub fn to_text(&self) -> String {
        let mut out = format!("trie levels={}\n", self.levels);
        // Explicit DFS stack of (node, code path so far).
        let mut stack: Vec<(usize, Vec<u16>)> = vec![(0, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() == self.levels {
                if let Some(item) = self.items.get(node).copied().flatten() {
                    let codes: Vec<String> = path.iter().map(|c| c.to_string()).collect();
                    out.push_str(&format!("{}={}\n", codes.join("."), item));
                }
                continue;
            }
            // Edges are stored ascending; push descending so the ascending
            // code pops first.
            if let Some((lo, hi)) = self.child_range(node) {
                for e in (lo..hi).rev() {
                    if let (Some(&c), Some(&child)) =
                        (self.edge_codes.get(e), self.edge_child.get(e))
                    {
                        let mut next = path.clone();
                        next.push(c);
                        stack.push((child as usize, next));
                    }
                }
            }
        }
        out
    }

    /// Parses the [`IndexTrie::to_text`] format. Returns `None` on any
    /// malformed header, path or item id, or when a path's depth does not
    /// match the header's level count. Duplicate paths keep the first
    /// line's item, mirroring the build rule.
    pub fn from_text(s: &str) -> Option<IndexTrie> {
        let mut lines = s.lines();
        let levels: usize =
            lines.next()?.strip_prefix("trie levels=")?.trim().parse().ok()?;
        let mut paths: Vec<(Vec<u16>, u32)> = Vec::new();
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (path, item) = line.split_once('=')?;
            let codes: Vec<u16> =
                path.split('.').map(|c| c.parse().ok()).collect::<Option<_>>()?;
            if codes.len() != levels {
                return None;
            }
            paths.push((codes, item.parse().ok()?));
        }
        Some(IndexTrie::from_paths(levels, paths))
    }
}

/// The original pointer-per-node prefix trie, kept as the **reference
/// implementation** for differential testing of the arena [`IndexTrie`]
/// (`tests/decode.rs` checks node-for-node equivalence on randomized ID
/// sets). Not used on any hot path.
#[derive(Debug)]
pub struct PointerTrie {
    levels: usize,
    /// node → (code → child node id); leaves store item ids in `items`.
    children: Vec<HashMap<u16, usize>>,
    items: Vec<Option<u32>>,
}

impl PointerTrie {
    /// Builds the trie from a set of item indices (first-insert-wins on
    /// conflicting full indices, like [`IndexTrie::build`]).
    pub fn build(indices: &ItemIndices) -> Self {
        let mut trie = PointerTrie {
            levels: indices.levels,
            children: vec![HashMap::new()],
            items: vec![None],
        };
        for (item, codes) in indices.codes.iter().enumerate() {
            trie.insert(codes, item as u32);
        }
        trie
    }

    /// Inserts one full code path, keeping the first item bound to it.
    fn insert(&mut self, codes: &[u16], item: u32) {
        let mut node = 0usize;
        for &c in codes {
            let next = match self.children[node].get(&c) { // lint: allow(panic, reason = "node is 0 (created in build) or a child id stored when that node was pushed, so it is always < children.len()")
                Some(&n) => n,
                None => {
                    self.children.push(HashMap::new());
                    self.items.push(None);
                    let id = self.children.len() - 1;
                    self.children[node].insert(c, id); // lint: allow(panic, reason = "node predates the push above, so it stays in bounds after the vec grew")
                    id
                }
            };
            node = next;
        }
        if self.items[node].is_none() { // lint: allow(panic, reason = "items grows in lockstep with children, so every node id indexes both")
            self.items[node] = Some(item); // lint: allow(panic, reason = "items grows in lockstep with children, so every node id indexes both")
        }
    }

    /// Number of index levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The node reached by `prefix`, if it exists.
    fn node_at(&self, prefix: &[u16]) -> Option<usize> {
        let mut node = 0usize;
        for c in prefix {
            node = *self.children.get(node)?.get(c)?;
        }
        Some(node)
    }

    /// Legal next codes after `prefix`, ascending (empty if the prefix is
    /// illegal or complete).
    pub fn allowed(&self, prefix: &[u16]) -> Vec<u16> {
        match self.node_at(prefix).and_then(|n| self.children.get(n)) {
            Some(next) => {
                let mut v: Vec<u16> = next.keys().copied().collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }

    /// The item whose full index is `codes`, if any.
    pub fn item_at(&self, codes: &[u16]) -> Option<u32> {
        if codes.len() != self.levels {
            return None;
        }
        self.node_at(codes).and_then(|n| self.items.get(n).copied().flatten())
    }

    /// Total node count (diagnostics / differential tests).
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ItemIndices {
        ItemIndices::new(
            vec![4, 4, 4],
            vec![
                vec![0, 1, 2],
                vec![0, 1, 3],
                vec![0, 2, 0],
                vec![3, 0, 0],
            ],
        )
    }

    #[test]
    fn uniqueness_and_conflicts() {
        let idx = sample();
        assert!(idx.is_unique());
        let dup = ItemIndices::new(vec![2, 2], vec![vec![0, 1], vec![0, 1], vec![1, 0]]);
        assert!(!dup.is_unique());
        assert_eq!(dup.conflicts(), 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_out_of_range_codes() {
        ItemIndices::new(vec![2], vec![vec![5]]);
    }

    #[test]
    fn token_flattening() {
        let idx = sample();
        assert_eq!(idx.vocab_tokens(), 12);
        assert_eq!(idx.flat_token(0, 3), 3);
        assert_eq!(idx.flat_token(1, 0), 4);
        assert_eq!(idx.flat_token(2, 2), 10);
    }

    #[test]
    fn format_is_readable() {
        let idx = sample();
        assert_eq!(idx.format(0), "<a_0><b_1><c_2>");
    }

    #[test]
    fn trie_allows_only_real_prefixes() {
        let idx = sample();
        let trie = IndexTrie::build(&idx);
        assert_eq!(trie.allowed(&[]), vec![0, 3]);
        assert_eq!(trie.allowed(&[0]), vec![1, 2]);
        assert_eq!(trie.allowed(&[0, 1]), vec![2, 3]);
        assert!(trie.allowed(&[2]).is_empty(), "illegal prefix has no children");
    }

    #[test]
    fn trie_resolves_items() {
        let idx = sample();
        let trie = IndexTrie::build(&idx);
        assert_eq!(trie.item_at(&[0, 1, 3]), Some(1));
        assert_eq!(trie.item_at(&[3, 0, 0]), Some(3));
        assert_eq!(trie.item_at(&[1, 1, 1]), None);
        assert_eq!(trie.item_at(&[0, 1]), None, "partial index is not an item");
    }

    #[test]
    fn try_build_rejects_full_path_collisions() {
        let dup = ItemIndices::new(vec![2, 2], vec![vec![0, 1], vec![0, 1], vec![1, 0]]);
        match IndexTrie::try_build(&dup) {
            Err(IndexError::PathOccupied { codes, bound }) => {
                assert_eq!(codes, vec![0, 1]);
                assert_eq!(bound, 0, "the first-bound item is named");
            }
            other => panic!("expected PathOccupied, got {other:?}"),
        }
        let idx = sample();
        let checked = IndexTrie::try_build(&idx).expect("conflict-free input");
        assert_eq!(checked, IndexTrie::build(&idx), "checked build matches the silent one");
    }

    #[test]
    fn prefix_sharing_decreases_with_depth() {
        let idx = sample();
        assert!(idx.prefix_sharing(1) >= idx.prefix_sharing(2));
        assert!(idx.prefix_sharing(2) >= idx.prefix_sharing(3));
    }
}
