//! Item index containers and the prefix trie used for constrained decoding.

use std::collections::HashMap;

/// The learned multi-level indices of a whole catalog.
///
/// `codes[item][level]` is the codeword chosen at that level. The paper's
/// notation `<a_12><b_3><c_41><d_9>` corresponds to
/// `codes[item] = [12, 3, 41, 9]` with `levels = 4`.
#[derive(Clone, Debug)]
pub struct ItemIndices {
    /// Number of levels `H`.
    pub levels: usize,
    /// Codebook size per level. Level `l` codewords live in
    /// `0..codebook_sizes[l]`.
    pub codebook_sizes: Vec<usize>,
    /// Per-item code sequences, each of length `levels`.
    pub codes: Vec<Vec<u16>>,
}

impl ItemIndices {
    /// Builds the container, validating code ranges.
    pub fn new(codebook_sizes: Vec<usize>, codes: Vec<Vec<u16>>) -> Self {
        let levels = codebook_sizes.len();
        for (i, c) in codes.iter().enumerate() {
            assert_eq!(c.len(), levels, "item {i} has {} levels, expected {levels}", c.len());
            for (l, &code) in c.iter().enumerate() {
                assert!(
                    (code as usize) < codebook_sizes[l],
                    "item {i} level {l} code {code} out of {}",
                    codebook_sizes[l]
                );
            }
        }
        ItemIndices { levels, codebook_sizes, codes }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The code sequence of one item. Unknown item ids yield an empty
    /// slice rather than a panic, so serving-path lookups stay total.
    pub fn of(&self, item: u32) -> &[u16] {
        self.codes.get(item as usize).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Number of items that share their full index with another item.
    /// The paper's USM step exists to drive this to zero.
    pub fn conflicts(&self) -> usize {
        let mut seen: HashMap<&[u16], usize> = HashMap::new();
        for c in &self.codes {
            *seen.entry(c.as_slice()).or_default() += 1;
        }
        seen.values().filter(|&&n| n > 1).map(|&n| n).sum() // lint: allow(det, reason = "sum over counts is an order-independent reduction")
    }

    /// True if every item has a unique full index.
    pub fn is_unique(&self) -> bool {
        self.conflicts() == 0
    }

    /// Total number of distinct tokens the LM vocabulary must gain —
    /// the paper's "usually ~1,000 additional tokens" (H × K).
    pub fn vocab_tokens(&self) -> usize {
        self.codebook_sizes.iter().sum()
    }

    /// Offset of level `l`'s tokens inside the flattened index-token block.
    /// Levels past the last clamp to the total (`take` never overruns).
    pub fn level_offset(&self, level: usize) -> usize {
        self.codebook_sizes.iter().take(level).sum()
    }

    /// Flattens `(level, code)` into a single token id in
    /// `0..vocab_tokens()`.
    pub fn flat_token(&self, level: usize, code: u16) -> usize {
        self.level_offset(level) + code as usize
    }

    /// Human-readable form, e.g. `<a_12><b_3><c_41><d_9>`.
    pub fn format(&self, item: u32) -> String {
        let letters = ['a', 'b', 'c', 'd', 'e', 'f', 'g', 'h'];
        self.codes[item as usize]
            .iter()
            .enumerate()
            .map(|(l, &c)| format!("<{}_{}>", letters[l % letters.len()], c))
            .collect()
    }

    /// Fraction of same-prefix item pairs (at `depth` levels) — a coarse
    /// measure of how hierarchical the code space is.
    pub fn prefix_sharing(&self, depth: usize) -> f32 {
        let n = self.codes.len();
        if n < 2 {
            return 0.0;
        }
        let mut groups: HashMap<&[u16], usize> = HashMap::new();
        for c in &self.codes {
            *groups.entry(&c[..depth.min(self.levels)]).or_default() += 1;
        }
        let pairs: usize = groups.values().map(|&g| g * (g - 1) / 2).sum(); // lint: allow(det, reason = "sum over per-group pair counts is an order-independent reduction")
        pairs as f32 / (n * (n - 1) / 2) as f32
    }
}

/// A prefix tree over item indices. Drives the paper's constrained beam
/// search: at each generation step only children of the current prefix are
/// legal, so every completed beam is a real item ("probabilities of tokens
/// that may result in illegal item indices will be assigned 0").
///
/// # Examples
///
/// ```
/// use lcrec_rqvae::{IndexTrie, ItemIndices};
///
/// // Three items with 2-level semantic IDs; items 0 and 1 share a prefix.
/// let indices = ItemIndices::new(vec![4, 4], vec![
///     vec![0, 0],
///     vec![0, 3],
///     vec![2, 1],
/// ]);
/// let trie = IndexTrie::build(&indices);
///
/// // Only learned code paths are legal at each step...
/// assert_eq!(trie.allowed(&[]), &[0, 2]);
/// assert_eq!(trie.allowed(&[0]), &[0, 3]);
/// assert!(trie.allowed(&[1]).is_empty(), "no item starts with code 1");
///
/// // ...so every completed path resolves to a real item.
/// assert_eq!(trie.item_at(&[0, 3]), Some(1));
/// assert_eq!(trie.item_at(&[2, 3]), None);
/// ```
#[derive(Debug)]
pub struct IndexTrie {
    levels: usize,
    /// node → (code → child node id); leaves store item ids in `items`.
    children: Vec<HashMap<u16, usize>>,
    items: Vec<Option<u32>>,
}

impl IndexTrie {
    /// Builds the trie from a set of item indices.
    pub fn build(indices: &ItemIndices) -> Self {
        let mut trie = IndexTrie {
            levels: indices.levels,
            children: vec![HashMap::new()],
            items: vec![None],
        };
        for (item, codes) in indices.codes.iter().enumerate() {
            trie.insert(codes, item as u32);
        }
        trie
    }

    /// Inserts one full code path, keeping the first item bound to it.
    fn insert(&mut self, codes: &[u16], item: u32) {
        let mut node = 0usize;
        for &c in codes {
            let next = match self.children[node].get(&c) {
                Some(&n) => n,
                None => {
                    self.children.push(HashMap::new());
                    self.items.push(None);
                    let id = self.children.len() - 1;
                    self.children[node].insert(c, id);
                    id
                }
            };
            node = next;
        }
        if self.items[node].is_none() {
            self.items[node] = Some(item);
        }
    }

    /// Number of index levels.
    pub fn levels(&self) -> usize {
        self.levels
    }

    /// The node reached by `prefix`, if it exists.
    fn node_at(&self, prefix: &[u16]) -> Option<usize> {
        let mut node = 0usize;
        for c in prefix {
            node = *self.children.get(node)?.get(c)?;
        }
        Some(node)
    }

    /// Legal next codes after `prefix` (empty slice if the prefix is
    /// illegal or complete).
    pub fn allowed(&self, prefix: &[u16]) -> Vec<u16> {
        match self.node_at(prefix).and_then(|n| self.children.get(n)) {
            Some(next) => {
                let mut v: Vec<u16> = next.keys().copied().collect();
                v.sort_unstable();
                v
            }
            None => Vec::new(),
        }
    }

    /// The item whose full index is `codes`, if any.
    pub fn item_at(&self, codes: &[u16]) -> Option<u32> {
        if codes.len() != self.levels {
            return None;
        }
        self.node_at(codes).and_then(|n| self.items.get(n).copied().flatten())
    }

    /// Total node count (diagnostics / benches).
    pub fn num_nodes(&self) -> usize {
        self.children.len()
    }

    /// Canonical text serialization: a `trie levels=L` header followed by
    /// one `c0.c1.….cL-1=item` line per stored item, emitted in depth-first
    /// order with the codes at every node visited in ascending order. The
    /// output is therefore independent of `HashMap` iteration order and of
    /// the order items were inserted — two tries with the same contents
    /// always serialize identically (the golden-snapshot property
    /// `tests/golden.rs` pins).
    pub fn to_text(&self) -> String {
        let mut out = format!("trie levels={}\n", self.levels);
        // Explicit DFS stack of (node, code path so far).
        let mut stack: Vec<(usize, Vec<u16>)> = vec![(0, Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() == self.levels {
                if let Some(item) = self.items[node] {
                    let codes: Vec<String> = path.iter().map(|c| c.to_string()).collect();
                    out.push_str(&format!("{}={}\n", codes.join("."), item));
                }
                continue;
            }
            let mut codes: Vec<u16> = self.children[node].keys().copied().collect();
            // Descending push order so the ascending code pops first.
            codes.sort_unstable_by(|a, b| b.cmp(a));
            for c in codes {
                if let Some(&child) = self.children[node].get(&c) {
                    let mut next = path.clone();
                    next.push(c);
                    stack.push((child, next));
                }
            }
        }
        out
    }

    /// Parses the [`IndexTrie::to_text`] format. Returns `None` on any
    /// malformed header, path or item id, or when a path's depth does not
    /// match the header's level count.
    pub fn from_text(s: &str) -> Option<IndexTrie> {
        let mut lines = s.lines();
        let levels: usize =
            lines.next()?.strip_prefix("trie levels=")?.trim().parse().ok()?;
        let mut trie = IndexTrie {
            levels,
            children: vec![HashMap::new()],
            items: vec![None],
        };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let (path, item) = line.split_once('=')?;
            let codes: Vec<u16> =
                path.split('.').map(|c| c.parse().ok()).collect::<Option<_>>()?;
            if codes.len() != levels {
                return None;
            }
            trie.insert(&codes, item.parse().ok()?);
        }
        Some(trie)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ItemIndices {
        ItemIndices::new(
            vec![4, 4, 4],
            vec![
                vec![0, 1, 2],
                vec![0, 1, 3],
                vec![0, 2, 0],
                vec![3, 0, 0],
            ],
        )
    }

    #[test]
    fn uniqueness_and_conflicts() {
        let idx = sample();
        assert!(idx.is_unique());
        let dup = ItemIndices::new(vec![2, 2], vec![vec![0, 1], vec![0, 1], vec![1, 0]]);
        assert!(!dup.is_unique());
        assert_eq!(dup.conflicts(), 2);
    }

    #[test]
    #[should_panic(expected = "out of")]
    fn rejects_out_of_range_codes() {
        ItemIndices::new(vec![2], vec![vec![5]]);
    }

    #[test]
    fn token_flattening() {
        let idx = sample();
        assert_eq!(idx.vocab_tokens(), 12);
        assert_eq!(idx.flat_token(0, 3), 3);
        assert_eq!(idx.flat_token(1, 0), 4);
        assert_eq!(idx.flat_token(2, 2), 10);
    }

    #[test]
    fn format_is_readable() {
        let idx = sample();
        assert_eq!(idx.format(0), "<a_0><b_1><c_2>");
    }

    #[test]
    fn trie_allows_only_real_prefixes() {
        let idx = sample();
        let trie = IndexTrie::build(&idx);
        assert_eq!(trie.allowed(&[]), vec![0, 3]);
        assert_eq!(trie.allowed(&[0]), vec![1, 2]);
        assert_eq!(trie.allowed(&[0, 1]), vec![2, 3]);
        assert!(trie.allowed(&[2]).is_empty(), "illegal prefix has no children");
    }

    #[test]
    fn trie_resolves_items() {
        let idx = sample();
        let trie = IndexTrie::build(&idx);
        assert_eq!(trie.item_at(&[0, 1, 3]), Some(1));
        assert_eq!(trie.item_at(&[3, 0, 0]), Some(3));
        assert_eq!(trie.item_at(&[1, 1, 1]), None);
        assert_eq!(trie.item_at(&[0, 1]), None, "partial index is not an item");
    }

    #[test]
    fn prefix_sharing_decreases_with_depth() {
        let idx = sample();
        assert!(idx.prefix_sharing(1) >= idx.prefix_sharing(2));
        assert!(idx.prefix_sharing(2) >= idx.prefix_sharing(3));
    }
}
