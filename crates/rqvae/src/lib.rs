//! # lcrec-rqvae
//!
//! The paper's item-indexing contribution (§III-B): a Residual-Quantized
//! VAE that learns tree-structured semantic item indices from text
//! embeddings, with **uniform semantic mapping** (Sinkhorn-Knopp optimal
//! transport) on the last level to guarantee conflict-free indices — plus
//! the alternative indexing schemes used in the Figure-2 ablation and the
//! prefix trie that drives constrained beam search.

#![warn(missing_docs)]

pub mod catalog;
pub mod indexers;
pub mod indices;
pub mod kmeans;
pub mod model;
pub mod sinkhorn;

pub use catalog::{Admission, CatalogUpdater};
pub use indexers::{build_indices, IndexerKind};
pub use indices::{IndexError, IndexTrie, ItemIndices, PointerTrie};
pub use model::{RqVae, RqVaeConfig, TrainCursor, TrainReport};
pub use sinkhorn::{sinkhorn_plan, uniform_assign, SinkhornConfig};
