//! Dependency-free observability for the LC-Rec workspace.
//!
//! The crate provides four recording primitives feeding one process-global
//! registry:
//!
//! * **Spans** ([`span`]) — scoped RAII timers. Spans nest: a span opened
//!   while another is active on the same thread is recorded under the
//!   parent's path, joined with `/` (e.g. `rqvae.train/epoch/quantize`).
//! * **Counters** ([`counter_add`]) — monotonic `u64` totals (tokens
//!   processed, beam expansions, trie-node visits, micro-steps, …).
//! * **Histograms** ([`hist_record`]) — distributions of *deterministic*
//!   quantities (per-level candidate counts, per-user result sizes).
//! * **Profile records** ([`profile_record`], [`stopwatch`]) — distributions
//!   of *wall-clock / scheduling-dependent* quantities (phase seconds,
//!   worker busy/idle time, queue depths).
//!
//! Everything is gated behind the `LCREC_OBS` environment variable
//! (`1`/`true`/`on` to enable) and is **off by default**, so the
//! uninstrumented hot paths pay one relaxed atomic load per call site.
//! [`set_enabled`] overrides the gate programmatically (tests, the bench
//! `profile` experiment).
//!
//! # Determinism contract
//!
//! Instrumented runs must stay bit-identical across `LCREC_THREADS`
//! settings, and the *measurement* itself is split accordingly:
//!
//! * counters and histograms only ever record scheduling-independent values.
//!   Counter addition is commutative, and the histogram recorders are only
//!   fed integer-valued `f64`s (exact in an `f64` far beyond any count this
//!   codebase produces), so sums are order-independent. This section is
//!   exported by [`Snapshot::deterministic_json`] and bit-compared in
//!   `tests/observability.rs` across 1-thread vs 4-thread runs.
//! * spans and profile records hold wall-clock time and queue depths, which
//!   legitimately differ run to run; they appear in [`Snapshot::to_json`]
//!   and [`Snapshot::table`] but never in the deterministic section.
//!
//! Worker threads never write to the registry directly in scheduling order
//! when the order could matter: `lcrec-par` records into per-worker
//! [`LocalObs`] buffers and merges them in ascending worker index after the
//! scope joins.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Mutex, MutexGuard};
use std::time::Instant;

// ---------------------------------------------------------------------------
// Gate
// ---------------------------------------------------------------------------

/// 0 = undecided, 1 = off, 2 = on (same idiom as `lcrec_tensor::sanitize`).
static STATE: AtomicU8 = AtomicU8::new(0);

/// Whether observability recording is enabled.
///
/// Resolved once from the `LCREC_OBS` environment variable (`1`, `true` or
/// `on` enable it; anything else — including unset — disables it), then
/// cached in an atomic. Unlike the sanitizer this defaults to **off** in
/// every build profile: instrumentation must never tax an unobserved run.
pub fn enabled() -> bool {
    match STATE.load(Ordering::Relaxed) {
        2 => true,
        1 => false,
        _ => {
            let on = match std::env::var("LCREC_OBS") {
                Ok(v) => matches!(v.trim(), "1" | "true" | "on"),
                Err(_) => false,
            };
            STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
            on
        }
    }
}

/// Force observability on or off, overriding the environment.
///
/// Used by tests and by the bench `profile` experiment so instrumentation
/// works regardless of how the process was launched.
pub fn set_enabled(on: bool) {
    STATE.store(if on { 2 } else { 1 }, Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Inner {
    spans: BTreeMap<String, SpanStat>,
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistStat>,
    profile: BTreeMap<String, HistStat>,
}

static REGISTRY: Mutex<Inner> = Mutex::new(Inner {
    spans: BTreeMap::new(),
    counters: BTreeMap::new(),
    hists: BTreeMap::new(),
    profile: BTreeMap::new(),
});

/// Poison-safe lock: a panicking instrumented thread must not wedge
/// observability for the rest of the process.
fn registry() -> MutexGuard<'static, Inner> {
    match REGISTRY.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Clear every span, counter, histogram and profile record.
///
/// Active [`Span`] guards keep the path they captured at creation and will
/// still record on drop; callers that want a clean window should reset
/// between phases, not mid-span.
pub fn reset() {
    *registry() = Inner::default();
}

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Aggregate statistics for one span path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SpanStat {
    /// Number of times the span was entered and exited.
    pub count: u64,
    /// Total nanoseconds spent inside the span (including nested spans).
    pub total_ns: u128,
}

impl SpanStat {
    /// Total seconds spent inside the span.
    pub fn total_s(&self) -> f64 {
        self.total_ns as f64 / 1e9
    }

    /// Mean seconds per entry, or 0 for a never-entered span.
    pub fn mean_s(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.total_s() / self.count as f64 }
    }
}

/// RAII guard returned by [`span`]; records elapsed time on drop.
#[derive(Debug)]
pub struct Span {
    start: Option<Instant>,
    path: Option<String>,
}

/// Open a hierarchical span. The returned guard records `count += 1` and the
/// elapsed wall-clock time under the `/`-joined path of all spans active on
/// this thread when it drops. When the gate is off this is a no-op guard.
#[must_use = "the span records on drop; binding it to _ would end it immediately"]
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { start: None, path: None };
    }
    let path = SPAN_STACK.with(|s| {
        let mut stack = s.borrow_mut();
        stack.push(name);
        stack.join("/")
    });
    Span { start: Some(Instant::now()), path: Some(path) }
}

impl Drop for Span {
    fn drop(&mut self) {
        let (Some(start), Some(path)) = (self.start.take(), self.path.take()) else {
            return;
        };
        let ns = start.elapsed().as_nanos();
        SPAN_STACK.with(|s| {
            s.borrow_mut().pop();
        });
        let mut reg = registry();
        let stat = reg.spans.entry(path).or_default();
        stat.count += 1;
        stat.total_ns += ns;
    }
}

// ---------------------------------------------------------------------------
// Counters / histograms
// ---------------------------------------------------------------------------

/// Add `n` to the monotonic counter `name`. No-op when the gate is off.
///
/// Counters belong to the deterministic section: only record quantities that
/// are a pure function of the workload (never time, never thread identity).
pub fn counter_add(name: &str, n: u64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    *reg.counters.entry(name.to_string()).or_default() += n;
}

/// Aggregate statistics for one histogram: count, sum, extrema and sparse
/// power-of-two buckets keyed by `floor(log2(value))`.
#[derive(Clone, Debug, PartialEq)]
pub struct HistStat {
    /// Number of recorded values.
    pub count: u64,
    /// Sum of recorded values.
    pub sum: f64,
    /// Smallest recorded value.
    pub min: f64,
    /// Largest recorded value.
    pub max: f64,
    /// Sparse log2 buckets: key `e` counts values in `[2^e, 2^(e+1))`.
    /// Non-positive and non-finite values land in the sentinel bucket
    /// [`HistStat::UNDERFLOW_BUCKET`].
    pub buckets: BTreeMap<i32, u64>,
}

impl HistStat {
    /// Bucket key used for values ≤ 0 or non-finite.
    pub const UNDERFLOW_BUCKET: i32 = -61;

    fn record(&mut self, v: f64) {
        self.count += 1;
        self.sum += v;
        if v < self.min {
            self.min = v;
        }
        if v > self.max {
            self.max = v;
        }
        *self.buckets.entry(bucket_of(v)).or_default() += 1;
    }

    fn merge(&mut self, other: &HistStat) {
        self.count += other.count;
        self.sum += other.sum;
        if other.min < self.min {
            self.min = other.min;
        }
        if other.max > self.max {
            self.max = other.max;
        }
        for (b, n) in &other.buckets {
            *self.buckets.entry(*b).or_default() += n;
        }
    }

    /// Mean of the recorded values, or 0 for an empty histogram.
    pub fn mean(&self) -> f64 {
        if self.count == 0 { 0.0 } else { self.sum / self.count as f64 }
    }
}

impl Default for HistStat {
    fn default() -> Self {
        HistStat {
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
            buckets: BTreeMap::new(),
        }
    }
}

fn bucket_of(v: f64) -> i32 {
    if !v.is_finite() || v <= 0.0 {
        return HistStat::UNDERFLOW_BUCKET;
    }
    (v.log2().floor() as i32).clamp(-60, 60)
}

/// Record `v` into the deterministic histogram `name`. No-op when the gate
/// is off.
///
/// Only feed integer-valued (or otherwise exactly-summable) quantities that
/// do not depend on scheduling: the sum must be independent of the order in
/// which threads happened to record.
pub fn hist_record(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    reg.hists.entry(name.to_string()).or_default().record(v);
}

/// Record `v` into the wall-clock profile histogram `name`. No-op when the
/// gate is off. Profile histograms are excluded from the deterministic
/// snapshot section; use them for timings, queue depths, busy/idle ratios.
pub fn profile_record(name: &str, v: f64) {
    if !enabled() {
        return;
    }
    let mut reg = registry();
    reg.profile.entry(name.to_string()).or_default().record(v);
}

// ---------------------------------------------------------------------------
// Stopwatch
// ---------------------------------------------------------------------------

/// One-shot timer for straight-line phases; see [`stopwatch`].
#[derive(Debug)]
pub struct Stopwatch(Option<Instant>);

/// Start a stopwatch. When the gate is off the stopwatch is inert and
/// [`Stopwatch::stop`] records nothing.
pub fn stopwatch() -> Stopwatch {
    Stopwatch(if enabled() { Some(Instant::now()) } else { None })
}

impl Stopwatch {
    /// Stop the watch and record the elapsed seconds into the profile
    /// histogram `name` (a no-op for an inert stopwatch).
    pub fn stop(self, name: &str) {
        if let Some(start) = self.0 {
            profile_record(name, start.elapsed().as_secs_f64());
        }
    }

    /// Whether the stopwatch is actually timing (i.e. the gate was on when
    /// it was started).
    pub fn running(&self) -> bool {
        self.0.is_some()
    }
}

// ---------------------------------------------------------------------------
// Per-worker local buffers
// ---------------------------------------------------------------------------

/// A per-worker recording buffer for code that runs on pool threads.
///
/// Workers record into their own `LocalObs` (no locks, no global ordering)
/// and the pool owner merges the buffers into the global registry in
/// ascending worker index once the scope has joined — so the registry
/// contents never depend on which worker finished first. Recording into a
/// `LocalObs` is unconditional; gating on [`enabled`] is the caller's
/// responsibility (skip creating one when the gate is off).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocalObs {
    counters: BTreeMap<String, u64>,
    hists: BTreeMap<String, HistStat>,
    profile: BTreeMap<String, HistStat>,
}

impl LocalObs {
    /// Create an empty buffer.
    pub fn new() -> Self {
        LocalObs::default()
    }

    /// Buffer-local equivalent of [`counter_add`].
    pub fn counter_add(&mut self, name: &str, n: u64) {
        *self.counters.entry(name.to_string()).or_default() += n;
    }

    /// Buffer-local equivalent of [`hist_record`].
    pub fn hist_record(&mut self, name: &str, v: f64) {
        self.hists.entry(name.to_string()).or_default().record(v);
    }

    /// Buffer-local equivalent of [`profile_record`].
    pub fn profile_record(&mut self, name: &str, v: f64) {
        self.profile.entry(name.to_string()).or_default().record(v);
    }

    /// Merge this buffer into the global registry (a no-op when the gate is
    /// off). Callers must invoke this in a deterministic order across
    /// buffers — `lcrec-par` sorts by worker index first.
    pub fn merge_global(self) {
        if !enabled() {
            return;
        }
        let mut reg = registry();
        for (k, n) in self.counters {
            *reg.counters.entry(k).or_default() += n;
        }
        for (k, h) in self.hists {
            reg.hists.entry(k).or_default().merge(&h);
        }
        for (k, h) in self.profile {
            reg.profile.entry(k).or_default().merge(&h);
        }
    }
}

// ---------------------------------------------------------------------------
// Snapshot
// ---------------------------------------------------------------------------

/// A point-in-time copy of the registry.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Snapshot {
    /// Hierarchical span stats keyed by `/`-joined path.
    pub spans: BTreeMap<String, SpanStat>,
    /// Monotonic counters (deterministic section).
    pub counters: BTreeMap<String, u64>,
    /// Deterministic value histograms.
    pub hists: BTreeMap<String, HistStat>,
    /// Wall-clock / scheduling-dependent histograms.
    pub profile: BTreeMap<String, HistStat>,
}

/// Copy the current registry contents.
pub fn snapshot() -> Snapshot {
    let reg = registry();
    Snapshot {
        spans: reg.spans.clone(),
        counters: reg.counters.clone(),
        hists: reg.hists.clone(),
        profile: reg.profile.clone(),
    }
}

impl Snapshot {
    /// Whether nothing at all was recorded.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
            && self.counters.is_empty()
            && self.hists.is_empty()
            && self.profile.is_empty()
    }

    /// Stats for one span path, if it was ever entered.
    pub fn span(&self, path: &str) -> Option<SpanStat> {
        self.spans.get(path).copied()
    }

    /// Value of one counter (0 if never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render a human-readable table of every section.
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.spans.is_empty() {
            out.push_str(&format!(
                "{:<44} {:>8} {:>12} {:>12}\n",
                "span", "calls", "total_s", "mean_s"
            ));
            for (path, st) in &self.spans {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>12.6} {:>12.6}\n",
                    path,
                    st.count,
                    st.total_s(),
                    st.mean_s()
                ));
            }
        }
        if !self.counters.is_empty() {
            out.push_str(&format!("\n{:<44} {:>16}\n", "counter", "value"));
            for (name, v) in &self.counters {
                out.push_str(&format!("{name:<44} {v:>16}\n"));
            }
        }
        for (title, map) in [("histogram", &self.hists), ("profile", &self.profile)] {
            if map.is_empty() {
                continue;
            }
            out.push_str(&format!(
                "\n{:<44} {:>8} {:>12} {:>12} {:>12}\n",
                title, "count", "mean", "min", "max"
            ));
            for (name, h) in map {
                out.push_str(&format!(
                    "{:<44} {:>8} {:>12.6} {:>12.6} {:>12.6}\n",
                    name,
                    h.count,
                    h.mean(),
                    h.min,
                    h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no observability data recorded)\n");
        }
        out
    }

    /// Full machine-readable JSON: spans, counters, histograms and the
    /// profile section.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"spans\": {");
        push_entries(&mut out, self.spans.iter(), |out, st| {
            out.push_str(&format!(
                "{{\"count\": {}, \"total_ns\": {}}}",
                st.count, st.total_ns
            ));
        });
        out.push_str("},\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.hists.iter(), |out, h| push_hist(out, h));
        out.push_str("},\n  \"profile\": {");
        push_entries(&mut out, self.profile.iter(), |out, h| push_hist(out, h));
        out.push_str("}\n}\n");
        out
    }

    /// JSON of the deterministic section only (counters + value histograms).
    ///
    /// Two instrumented runs of the same workload must produce *identical
    /// strings* here regardless of `LCREC_THREADS`; `tests/observability.rs`
    /// bit-compares them.
    pub fn deterministic_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": {");
        push_entries(&mut out, self.counters.iter(), |out, v| {
            out.push_str(&v.to_string());
        });
        out.push_str("},\n  \"histograms\": {");
        push_entries(&mut out, self.hists.iter(), |out, h| push_hist(out, h));
        out.push_str("}\n}\n");
        out
    }
}

fn push_entries<'a, V: 'a>(
    out: &mut String,
    entries: impl Iterator<Item = (&'a String, &'a V)>,
    mut write_value: impl FnMut(&mut String, &V),
) {
    let mut first = true;
    for (name, value) in entries {
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str("\n    \"");
        out.push_str(&json_escape(name));
        out.push_str("\": ");
        write_value(out, value);
    }
    if !first {
        out.push_str("\n  ");
    }
}

fn push_hist(out: &mut String, h: &HistStat) {
    out.push_str(&format!(
        "{{\"count\": {}, \"sum\": {}, \"min\": {}, \"max\": {}, \"buckets\": {{",
        h.count,
        json_f64(h.sum),
        json_f64(h.min),
        json_f64(h.max)
    ));
    let mut first = true;
    for (b, n) in &h.buckets {
        if !first {
            out.push_str(", ");
        }
        first = false;
        out.push_str(&format!("\"{b}\": {n}"));
    }
    out.push_str("}}");
}

fn json_f64(v: f64) -> String {
    // `{:?}` is the shortest round-trippable form and never produces a bare
    // `inf`/`NaN` for the values we serialize (histograms only serialize
    // min/max once at least one value was recorded).
    if v.is_finite() { format!("{v:?}") } else { "null".to_string() }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Tests
// ---------------------------------------------------------------------------

#[cfg(test)]
mod tests {
    use super::*;

    /// The registry and gate are process-global; unit tests serialize on
    /// this lock so `cargo test` threading cannot interleave them.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    fn lock() -> MutexGuard<'static, ()> {
        match TEST_LOCK.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_of(1.0), 0);
        assert_eq!(bucket_of(1.5), 0);
        assert_eq!(bucket_of(2.0), 1);
        assert_eq!(bucket_of(1023.0), 9);
        assert_eq!(bucket_of(1024.0), 10);
        assert_eq!(bucket_of(0.25), -2);
        assert_eq!(bucket_of(0.0), HistStat::UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(-3.0), HistStat::UNDERFLOW_BUCKET);
        assert_eq!(bucket_of(f64::NAN), HistStat::UNDERFLOW_BUCKET);
    }

    #[test]
    fn disabled_records_nothing() {
        let _l = lock();
        set_enabled(false);
        reset();
        {
            let _s = span("never");
            counter_add("never.counter", 3);
            hist_record("never.hist", 1.0);
            profile_record("never.profile", 1.0);
            stopwatch().stop("never.watch");
        }
        assert!(snapshot().is_empty());
        assert!(!stopwatch().running());
    }

    #[test]
    fn spans_nest_and_aggregate() {
        let _l = lock();
        set_enabled(true);
        reset();
        {
            let _outer = span("outer");
            for _ in 0..3 {
                let _inner = span("inner");
            }
        }
        let snap = snapshot();
        set_enabled(false);
        let outer = snap.span("outer").map(|s| s.count);
        let inner = snap.span("outer/inner").map(|s| s.count);
        assert_eq!(outer, Some(1));
        assert_eq!(inner, Some(3));
        assert!(snap.span("inner").is_none(), "nested span must not appear as a root");
    }

    #[test]
    fn local_merge_matches_direct_recording() {
        let _l = lock();
        set_enabled(true);
        reset();
        counter_add("merge.c", 5);
        hist_record("merge.h", 8.0);
        let direct = snapshot().deterministic_json();

        reset();
        let mut a = LocalObs::new();
        a.counter_add("merge.c", 2);
        a.hist_record("merge.h", 8.0);
        let mut b = LocalObs::new();
        b.counter_add("merge.c", 3);
        a.merge_global();
        b.merge_global();
        let merged = snapshot().deterministic_json();
        set_enabled(false);
        assert_eq!(direct, merged);
    }

    #[test]
    fn json_is_well_formed_and_escaped() {
        let _l = lock();
        set_enabled(true);
        reset();
        counter_add("weird\"name\\", 1);
        let snap = snapshot();
        set_enabled(false);
        let json = snap.to_json();
        assert!(json.contains("\"weird\\\"name\\\\\": 1"));
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        let det = snap.deterministic_json();
        assert!(det.contains("counters"));
        assert!(!det.contains("profile"));
    }
}
