//! CLI entry point:
//! `cargo run -p lcrec-analysis -- <lint|doccov|envdoc|panicscan|detlint|audit> [--json] [ROOT]`.
//!
//! Exits non-zero when any finding is reported, so every command can gate
//! CI and `scripts/check.sh`.

use lcrec_analysis::{annot, detlint, doccov, envdoc, lint, panicscan};
use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // When run via `cargo run -p lcrec-analysis`, the manifest dir is
    // crates/analysis; the workspace root is two levels up.
    let manifest = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest.parent().and_then(|p| p.parent()).map(PathBuf::from).unwrap_or(manifest)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(workspace_root);
            let findings = lint::lint_workspace(&root);
            if findings.is_empty() {
                println!("lint: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for f in &findings {
                    eprintln!("{f}");
                }
                eprintln!("lint: {} finding(s)", findings.len());
                ExitCode::FAILURE
            }
        }
        Some("doccov") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(workspace_root);
            let missing = doccov::missing_docs_workspace(&root);
            let examples = doccov::missing_examples_workspace(&root);
            if missing.is_empty() && examples.is_empty() {
                println!("doccov: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for m in &missing {
                    eprintln!("{m}");
                }
                for m in &examples {
                    eprintln!("{m}");
                }
                eprintln!(
                    "doccov: {} undocumented public item(s), {} entry point(s) without examples",
                    missing.len(),
                    examples.len()
                );
                ExitCode::FAILURE
            }
        }
        Some("envdoc") => {
            let root = args.get(1).map(PathBuf::from).unwrap_or_else(workspace_root);
            let missing = envdoc::undocumented_env_reads(&root);
            if missing.is_empty() {
                println!("envdoc: clean ({})", root.display());
                ExitCode::SUCCESS
            } else {
                for m in &missing {
                    eprintln!("{m}");
                }
                eprintln!("envdoc: {} undocumented env read(s)", missing.len());
                ExitCode::FAILURE
            }
        }
        Some("panicscan") => {
            let json = args.iter().any(|a| a == "--json");
            let root = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let r = panicscan::scan_workspace(&root);
            if json {
                print!("{}", annot::json_report("panicscan", &r.findings, &r.allows));
            }
            if r.findings.is_empty() {
                if !json {
                    println!(
                        "panicscan: clean — {} of {} fns reachable from {} entry points, \
                         {} annotated site(s)",
                        r.fns_reached,
                        r.fns_total,
                        panicscan::ENTRY_POINTS.len(),
                        r.allows.len()
                    );
                }
                ExitCode::SUCCESS
            } else {
                if !json {
                    for f in &r.findings {
                        eprintln!("{}:{}: [{}] {}", f.file.display(), f.line, f.rule, f.detail);
                    }
                    eprintln!("panicscan: {} finding(s)", r.findings.len());
                }
                ExitCode::FAILURE
            }
        }
        Some("detlint") => {
            let json = args.iter().any(|a| a == "--json");
            let root = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let r = detlint::scan_workspace(&root);
            if json {
                print!("{}", annot::json_report("detlint", &r.findings, &r.allows));
            }
            if r.findings.is_empty() {
                if !json {
                    println!(
                        "detlint: clean — {} files scanned, {} annotated site(s)",
                        r.files_scanned,
                        r.allows.len()
                    );
                }
                ExitCode::SUCCESS
            } else {
                if !json {
                    for f in &r.findings {
                        eprintln!("{}:{}: [{}] {}", f.file.display(), f.line, f.rule, f.detail);
                    }
                    eprintln!("detlint: {} finding(s)", r.findings.len());
                }
                ExitCode::FAILURE
            }
        }
        Some("audit") => {
            let root = args
                .iter()
                .skip(1)
                .find(|a| !a.starts_with("--"))
                .map(PathBuf::from)
                .unwrap_or_else(workspace_root);
            let p = panicscan::scan_workspace(&root);
            let d = detlint::scan_workspace(&root);
            let mut allows = p.allows;
            allows.extend(d.allows);
            print!("{}", annot::audit_table(&allows));
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!(
                "usage: lcrec-analysis <lint|doccov|envdoc|panicscan|detlint|audit> \
                 [--json] [ROOT]"
            );
            ExitCode::from(2)
        }
    }
}
