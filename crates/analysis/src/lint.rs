//! The workspace lint pass.
//!
//! Two rules, both matched on comment- and string-stripped source so doc
//! text and panic messages cannot trigger false positives:
//!
//! 1. **no-scaffolding** — `todo!`, `unimplemented!` and `dbg!` are forbidden
//!    everywhere, tests included.
//! 2. **no-unsafe** — the `unsafe` keyword is forbidden everywhere. The
//!    workspace also denies `unsafe_code` at the compiler level; the textual
//!    rule additionally covers code behind `#[allow]` and non-compiled
//!    cfg branches.
//!
//! The old per-file *no-panic-hot-path* rule (a hardcoded list of files in
//! which `.unwrap()`/`panic!` were banned) is subsumed by the call-graph
//! reachability pass in [`crate::panicscan`], which covers every function
//! reachable from the serving/decode entry points instead of a fixed file
//! list.

use crate::parse::{find_token, strip_comments_and_strings};
use std::fmt;
use std::path::{Path, PathBuf};

/// One rule violation at a specific source location.
#[derive(Debug, Clone)]
pub struct Finding {
    /// File the violation is in, relative to the linted root.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which rule fired.
    pub rule: &'static str,
    /// The offending source line, trimmed.
    pub excerpt: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: [{}] {}", self.file.display(), self.line, self.rule, self.excerpt)
    }
}

/// Marks each line of (stripped) source as test code or not: everything from
/// a `#[cfg(test)]` attribute to the close of the brace block it introduces,
/// or to the terminating `;` when the gated item has no body at all (an
/// attribute-gated `use`, a trait-method declaration, …).
pub(crate) fn test_code_mask(stripped: &str) -> Vec<bool> {
    let lines: Vec<&str> = stripped.lines().collect();
    let mut mask = vec![false; lines.len()];
    let mut depth = 0usize; // brace depth inside a cfg(test) item, 0 = outside
    let mut pending = false; // saw the attribute, waiting for the opening brace
    for (i, line) in lines.iter().enumerate() {
        let mut line: &str = line;
        if depth == 0 && !pending {
            if let Some(at) = line.find("#[cfg(test)]") {
                pending = true;
                // Scan only what follows the attribute, so punctuation
                // earlier on the line cannot end the gated item.
                line = &line[at..];
            }
        }
        if pending || depth > 0 {
            mask[i] = true;
        }
        for c in line.chars() {
            match c {
                '{' if pending || depth > 0 => {
                    depth += 1;
                    pending = false;
                }
                '}' if depth > 0 => {
                    depth -= 1;
                }
                // A `;` before any `{` ends a brace-less gated item (e.g.
                // `#[cfg(test)] use …;`) — without this, `pending` would
                // stay set and mask the rest of the file.
                ';' if pending && depth == 0 => {
                    pending = false;
                }
                _ => {}
            }
        }
    }
    mask
}

/// Lints a single file's source. `relative` is the path reported in
/// findings.
pub fn lint_source(relative: &Path, source: &str) -> Vec<Finding> {
    let stripped = strip_comments_and_strings(source);
    let mut findings = Vec::new();
    for (i, (line, raw)) in stripped.lines().zip(source.lines()).enumerate() {
        let mut hit = |rule: &'static str| {
            findings.push(Finding {
                file: relative.to_path_buf(),
                line: i + 1,
                rule,
                excerpt: raw.trim().to_string(),
            });
        };
        for pat in ["todo!", "unimplemented!", "dbg!"] {
            // The macro name is an identifier token; `!` follows it.
            if let Some(at) = line.find(pat) {
                let before =
                    line[..at].chars().next_back().map(|c| c.is_alphanumeric() || c == '_');
                if !before.unwrap_or(false) {
                    hit("no-scaffolding");
                }
            }
        }
        if find_token(line, "unsafe").is_some() {
            hit("no-unsafe");
        }
    }
    findings
}

/// Collects every `.rs` file under `dir`, skipping `target/` and VCS
/// metadata, in sorted order (shared by all the file-walking passes).
pub(crate) fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else { return };
    let mut paths: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    paths.sort();
    for path in paths {
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if matches!(name.as_str(), "target" | ".git" | ".claude") {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// Lints every `.rs` file under `root` (excluding `target/` and VCS
/// directories) and returns all findings, sorted by file and line.
pub fn lint_workspace(root: &Path) -> Vec<Finding> {
    let mut files = Vec::new();
    walk(root, &mut files);
    let mut findings = Vec::new();
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else { continue };
        let relative = file.strip_prefix(root).unwrap_or(&file);
        findings.extend(lint_source(relative, &source));
    }
    findings.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    findings
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaffolding_flagged_anywhere() {
        let src = "fn f() { todo!() }\n";
        let f = lint_source(Path::new("crates/x/src/lib.rs"), src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "no-scaffolding");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn unsafe_keyword_flagged_but_not_identifiers() {
        let src = "#![forbid(unsafe_code)]\nfn f() {}\n";
        assert!(lint_source(Path::new("a.rs"), src).is_empty());
        let src = "fn f() { let p = 0 as *const u8; let _ = p; }\nfn g() { }\n";
        assert!(lint_source(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_mask_rest_of_file() {
        // Regression: a gated item with no brace block (`use …;`) used to
        // leave `pending` set, masking everything below it. The mask feeds
        // the panicscan/detlint passes, which must still see the code after
        // the gated item.
        let src = "#[cfg(test)]\nuse std::fmt::Debug;\nfn f(x: Option<u8>) -> u8 { x.unwrap() }\n";
        let mask = test_code_mask(src);
        assert_eq!(mask, vec![true, true, false]);
        // Same on one line, and with punctuation before the attribute.
        let src = "#[cfg(test)] use std::fmt::Debug;\nfn g() { h.unwrap() }\n";
        assert_eq!(test_code_mask(src), vec![true, false]);
        let src = "use a::b; #[cfg(test)] mod t { }\nfn g() { h.unwrap() }\n";
        assert_eq!(test_code_mask(src), vec![true, false]);
    }

    #[test]
    fn comments_and_strings_do_not_trigger() {
        let src = "// contains todo! in prose\nfn f() { g(\"never todo!(x)\"); }\n";
        assert!(lint_source(Path::new("crates/core/src/lm.rs"), src).is_empty());
    }
}
