//! Call-graph panic-reachability analysis (`panicscan`).
//!
//! The lint pass checks individual lines; this pass checks *paths*. It
//! scans every non-test source file in the workspace with
//! [`crate::parse::scan_items`], builds an over-approximate call graph by
//! name matching, and walks it from the declared serving/decode entry
//! points ([`ENTRY_POINTS`]): the `lcrec-serve` engine surface, the
//! constrained beam searches, `IndexTrie` lookups, and the `lcrec-par`
//! pool mapping functions. Any potential panic site — `.unwrap()`,
//! `.expect(…)`, `panic!`/`unreachable!`, or a direct slice index — inside
//! a function reachable from an entry point is a finding unless the line
//! carries a `// lint: allow(panic, reason = …)` annotation (see
//! [`crate::annot`]).
//!
//! # Call-graph resolution
//!
//! Dependency-free name matching, biased toward over-approximation so a
//! hazard is never missed for want of type inference:
//!
//! * `Type::name(…)` (and `Self::name(…)` inside an `impl`) links to the
//!   workspace functions defined in an `impl Type` block; a lowercase
//!   qualifier (`beam::prune(…)`) falls back to free functions named
//!   `name`.
//! * `.name(…)` method calls link to **every** workspace method called
//!   `name`, whatever type defines it — receiver types are unknown.
//! * `name(…)` bare calls link to every workspace free function named
//!   `name` (keywords, macros, and capitalized constructors excluded).
//!
//! Std/closure methods simply resolve to nothing. The fan-out means some
//! functions are "reachable" only via a name collision; the escape hatch
//! for a site that is genuinely fine is an annotation with a reason, which
//! then shows up in the audit table. Stale annotations (suppressing
//! nothing) and malformed ones are findings too, so every allow stays
//! load-bearing: delete one and the pass — and the tier-1 test wrapping
//! it — fails.

use crate::annot::{parse_allows, Allow, JsonFinding, Scope};
use crate::lint::{test_code_mask, walk};
use crate::parse::{scan_items, strip_comments_and_strings, CallKind, ItemScan};
use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::path::{Path, PathBuf};

/// The declared panic-free surface: `(impl type, fn name)` pairs, `None`
/// for free functions. Reachability is computed from every workspace
/// function matching a pair; a pair matching nothing is itself a finding
/// (`missing-entry-point`) so renames cannot silently hollow out the pass.
pub const ENTRY_POINTS: &[(Option<&str>, &str)] = &[
    (Some("Engine"), "submit"),
    (Some("Engine"), "submit_with_deadline"),
    (Some("Engine"), "step"),
    (Some("Engine"), "step_outcomes"),
    (Some("Engine"), "flush"),
    (Some("Engine"), "flush_outcomes"),
    (Some("Router"), "submit"),
    (Some("Router"), "step"),
    (Some("Router"), "step_outcomes"),
    (Some("Router"), "flush"),
    (Some("Router"), "flush_outcomes"),
    (Some("Router"), "hot_swap"),
    (Some("Router"), "swap_catalog"),
    (Some("Ring"), "primary"),
    (Some("Ring"), "replica_cycle"),
    (None, "constrained_beam_search"),
    (None, "constrained_beam_search_with"),
    (None, "multi_constrained_beam_search"),
    (None, "multi_constrained_beam_search_with"),
    (None, "multi_constrained_beam_search_scratch"),
    (Some("CausalLm"), "greedy"),
    (Some("IndexTrie"), "build"),
    (Some("IndexTrie"), "from_text"),
    (Some("IndexTrie"), "allowed"),
    (Some("IndexTrie"), "allowed_slice"),
    (Some("IndexTrie"), "item_at"),
    (Some("IndexTrie"), "levels"),
    (Some("IndexTrie"), "try_build"),
    (Some("CatalogTrie"), "insert"),
    (Some("CatalogTrie"), "snapshot"),
    (Some("CatalogTrie"), "snapshot_at"),
    // `CatalogUpdater::{quantize, admit}` are deliberately NOT entry
    // points: they run the RQ-VAE encoder forward pass, and the tensor
    // kernels (like every NN forward, e.g. `RqVae::encode`) are outside
    // the declared panic-free surface. The trie side of admission is in.
    (Some("CatalogTrie"), "materialize"),
    (Some("CatalogTrie"), "materialize_at"),
    (Some("TrieSnapshot"), "allowed_slice"),
    (Some("TrieSnapshot"), "item_at"),
    (Some("TrieSnapshot"), "materialize"),
    (Some("Pool"), "map"),
    (Some("Pool"), "map_range"),
    (Some("Pool"), "map_reduce"),
    (Some("ScaleConfig"), "validate"),
    (Some("ScaleConfig"), "synthetic_codes"),
    (Some("ScaleConfig"), "stream_users"),
    (Some("ScaleConfig"), "materialize"),
    (Some("ScaleConfig"), "replay"),
    (None, "load_params_file"),
    (None, "save_params_file"),
];

/// One loaded, pre-processed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the scanned root.
    pub rel: PathBuf,
    /// Raw source text (annotations are parsed from this).
    pub raw: String,
    /// Comment/string-stripped source, line structure preserved.
    pub stripped: String,
    /// Per-line `#[cfg(test)]` mask.
    pub mask: Vec<bool>,
}

impl SourceFile {
    /// Pre-processes one file's source.
    pub fn new(rel: impl Into<PathBuf>, raw: impl Into<String>) -> Self {
        let raw = raw.into();
        let stripped = strip_comments_and_strings(&raw);
        let mask = test_code_mask(&stripped);
        SourceFile { rel: rel.into(), raw, stripped, mask }
    }
}

/// Loads every analyzable `.rs` file under `root`: excludes `target/`,
/// VCS metadata, `vendor/` (external stand-ins we don't own), and any
/// `tests/` directory (integration tests may assert panics on purpose;
/// `#[cfg(test)]` modules in library files are handled by the line mask
/// instead).
pub fn load_workspace(root: &Path) -> Vec<SourceFile> {
    let mut paths = Vec::new();
    walk(root, &mut paths);
    let mut out = Vec::new();
    for path in paths {
        let rel = path.strip_prefix(root).unwrap_or(&path).to_path_buf();
        let excluded = rel
            .components()
            .any(|c| matches!(c.as_os_str().to_str(), Some("tests") | Some("vendor")));
        if excluded {
            continue;
        }
        let Ok(raw) = std::fs::read_to_string(&path) else { continue };
        out.push(SourceFile::new(rel, raw));
    }
    out
}

/// The outcome of a panicscan run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by file/line/rule. Empty = pass clean.
    pub findings: Vec<JsonFinding>,
    /// Every `allow(panic, …)` annotation honoured this run (for the audit
    /// table).
    pub allows: Vec<Allow>,
    /// Total functions scanned across the workspace.
    pub fns_total: usize,
    /// Functions reachable from the entry points.
    pub fns_reached: usize,
}

/// One function in the global graph.
struct GFn {
    file: usize,
    item: usize,
    name: String,
    impl_type: Option<String>,
    qualified: String,
}

/// Potential panic sites on one stripped line: `(rule, description)`.
fn panic_sites(line: &str) -> Vec<(&'static str, &'static str)> {
    let mut out = Vec::new();
    if line.contains(".unwrap()") {
        out.push(("panic-unwrap", ".unwrap()"));
    }
    if line.contains(".expect(") {
        out.push(("panic-expect", ".expect(..)"));
    }
    for (needle, rule, what) in [
        (concat!("panic", "!"), "panic-macro", concat!("panic", "! macro")),
        (concat!("unreachable", "!"), "panic-unreachable", concat!("unreachable", "! macro")),
    ] {
        if let Some(at) = line.find(needle) {
            let before_ident = line[..at]
                .chars()
                .next_back()
                .map(|c| c.is_ascii_alphanumeric() || c == '_')
                .unwrap_or(false);
            if !before_ident {
                out.push((rule, what));
            }
        }
    }
    // Direct index: `[` whose immediately-preceding char continues an
    // expression (identifier, `)`, `]`, `?`). Attribute `#[…]`, slice
    // types `&[T]`, and `vec![…]` all have a different preceding char.
    let b: Vec<char> = line.chars().collect();
    for i in 1..b.len() {
        if b[i] == '['
            && (b[i - 1].is_ascii_alphanumeric()
                || matches!(b[i - 1], '_' | ')' | ']' | '?'))
        {
            out.push(("panic-index", "direct slice index"));
            break;
        }
    }
    out
}

/// Runs the analysis over pre-loaded files (the unit-testable core of
/// [`scan_workspace`]).
pub fn analyze(files: &[SourceFile]) -> Report {
    let scans: Vec<ItemScan> = files.iter().map(|f| scan_items(&f.stripped)).collect();

    // Global function table plus name indices.
    let mut gfns: Vec<GFn> = Vec::new();
    for (fi, scan) in scans.iter().enumerate() {
        for (ii, item) in scan.items.iter().enumerate() {
            gfns.push(GFn {
                file: fi,
                item: ii,
                name: item.name.clone(),
                impl_type: item.impl_type.clone(),
                qualified: item.qualified(),
            });
        }
    }
    let mut methods: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut free: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    let mut by_qual: BTreeMap<(&str, &str), Vec<usize>> = BTreeMap::new();
    for (gi, g) in gfns.iter().enumerate() {
        match &g.impl_type {
            Some(t) => {
                methods.entry(&g.name).or_default().push(gi);
                by_qual.entry((t.as_str(), &g.name)).or_default().push(gi);
            }
            None => free.entry(&g.name).or_default().push(gi),
        }
    }

    // Per-file: map (file, item) → global index for line attribution.
    let mut global_of: BTreeMap<(usize, usize), usize> = BTreeMap::new();
    for (gi, g) in gfns.iter().enumerate() {
        global_of.insert((g.file, g.item), gi);
    }

    // First pass: panic sites, plus a per-function local type map (param
    // types from the declaration, `let` bindings from the body) so method
    // receivers can be resolved precisely instead of fanning out.
    let mut edges: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); gfns.len()];
    let mut sites: Vec<Vec<(usize, &'static str, &'static str)>> = vec![Vec::new(); gfns.len()];
    let mut typemaps: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); gfns.len()];
    for (gi, g) in gfns.iter().enumerate() {
        let lines: Vec<&str> = files[g.file].stripped.lines().collect();
        let decl_line = scans[g.file].items[g.item].decl_line;
        let mut decl = String::new();
        for line in lines.iter().skip(decl_line).take(24) {
            match line.find('{') {
                Some(at) => {
                    decl.push_str(&line[..at]);
                    break;
                }
                None => {
                    decl.push_str(line);
                    decl.push(' ');
                }
            }
        }
        typemaps[gi].extend(crate::parse::param_types(&decl));
    }
    // Struct field types across the whole workspace, for resolving
    // `self.field.method(…)` / `local.field.method(…)` receivers, plus a
    // per-file map of `static`/`const` binding types so `STATE.load(…)` on
    // an atomic resolves to the atomic (i.e. to no workspace method) rather
    // than fanning out to every `load`.
    let mut fields: BTreeMap<(String, String), String> = BTreeMap::new();
    let mut statics: Vec<BTreeMap<String, String>> = Vec::with_capacity(files.len());
    for file in files {
        for (s, f, t) in crate::parse::struct_fields(&file.stripped) {
            fields.insert((s, f), t);
        }
        let mut map = BTreeMap::new();
        for line in file.stripped.lines() {
            if let Some((n, t)) = crate::parse::static_type(line) {
                map.insert(n, t);
            }
        }
        statics.push(map);
    }
    for (fi, (file, scan)) in files.iter().zip(&scans).enumerate() {
        for (li, line) in file.stripped.lines().enumerate() {
            if file.mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            let Some(owner) = scan.line_owner.get(li).copied().flatten() else { continue };
            let gi = global_of[&(fi, owner)];
            for (rule, what) in panic_sites(line) {
                sites[gi].push((li + 1, rule, what));
            }
            if let Some((name, ty)) = crate::parse::let_type(line) {
                typemaps[gi].insert(name, ty);
            }
        }
    }

    // Second pass: call edges, resolved against the type maps.
    for (fi, (file, scan)) in files.iter().zip(&scans).enumerate() {
        for (li, line) in file.stripped.lines().enumerate() {
            if file.mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            let Some(owner) = scan.line_owner.get(li).copied().flatten() else { continue };
            let gi = global_of[&(fi, owner)];
            for call in crate::parse::line_calls(line) {
                let by_type = |ty: &str| {
                    by_qual.get(&(ty, call.name.as_str())).cloned().unwrap_or_default()
                };
                let callees: Vec<usize> = match &call.kind {
                    CallKind::Method => {
                        let fan =
                            || methods.get(call.name.as_str()).cloned().unwrap_or_default();
                        // Walk the receiver path (`self.vocab`,
                        // `beam.tokens`, `ps`) through local types and
                        // struct fields to a final type name; None = the
                        // path could not be followed.
                        let recv_type = call.receiver.as_ref().and_then(|path| {
                            let mut segs = path.split('.');
                            let first = segs.next()?;
                            let mut ty: String = if first == "self" {
                                gfns[gi].impl_type.clone()?
                            } else if let Some(t) = typemaps[gi].get(first) {
                                t.clone()
                            } else {
                                statics[gfns[gi].file].get(first)?.clone()
                            };
                            for seg in segs {
                                ty = fields.get(&(ty, seg.to_string()))?.clone();
                            }
                            Some(ty)
                        });
                        match recv_type.as_deref() {
                            // Generic (`T`) or `impl`/`dyn Trait` receivers
                            // could be anything: fan out.
                            Some(ty) if ty.len() == 1 || ty == "impl" => fan(),
                            // A concrete nominal type resolves strictly —
                            // possibly to nothing (std types).
                            Some(ty)
                                if ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) =>
                            {
                                by_type(ty)
                            }
                            // Slices, tuples, primitives: no workspace
                            // methods can dispatch on them.
                            Some(_) => Vec::new(),
                            // Untyped receiver (interrupted chain, unknown
                            // local or field).
                            None => fan(),
                        }
                    }
                    CallKind::SelfMethod => {
                        // `self.name(…)` — only the enclosing impl type.
                        let ty = gfns[gi].impl_type.clone().unwrap_or_default();
                        by_type(&ty)
                    }
                    CallKind::Bare => free.get(call.name.as_str()).cloned().unwrap_or_default(),
                    CallKind::Qualified(q) => {
                        let ty = if q == "Self" {
                            gfns[gi].impl_type.clone().unwrap_or_default()
                        } else {
                            q.clone()
                        };
                        let direct = by_type(&ty);
                        if direct.is_empty()
                            && ty.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                        {
                            // `module::helper(…)` — a free fn behind a path.
                            free.get(call.name.as_str()).cloned().unwrap_or_default()
                        } else {
                            direct
                        }
                    }
                };
                edges[gi].extend(callees);
            }
        }
    }

    // Reachability from the entry points, remembering for each reached fn
    // the entry it came from and the BFS parent (for witness call chains).
    let mut findings: Vec<JsonFinding> = Vec::new();
    let mut reached: BTreeMap<usize, (String, Option<usize>)> = BTreeMap::new();
    let mut queue: VecDeque<usize> = VecDeque::new();
    for (ty, name) in ENTRY_POINTS {
        let label = match ty {
            Some(t) => format!("{t}::{name}"),
            None => (*name).to_string(),
        };
        let roots: Vec<usize> = gfns
            .iter()
            .enumerate()
            .filter(|(_, g)| g.name == *name && g.impl_type.as_deref() == *ty)
            .map(|(gi, _)| gi)
            .collect();
        if roots.is_empty() {
            findings.push(JsonFinding {
                file: PathBuf::from("(entry-points)"),
                line: 0,
                rule: "missing-entry-point".into(),
                detail: format!(
                    "declared entry point `{label}` matches no workspace fn — update \
                     panicscan::ENTRY_POINTS"
                ),
            });
        }
        for gi in roots {
            if !reached.contains_key(&gi) {
                reached.insert(gi, (label.clone(), None));
                queue.push_back(gi);
            }
        }
    }
    while let Some(gi) = queue.pop_front() {
        let entry = reached[&gi].0.clone();
        for &callee in &edges[gi] {
            if !reached.contains_key(&callee) {
                reached.insert(callee, (entry.clone(), Some(gi)));
                queue.push_back(callee);
            }
        }
    }
    // Shortest witness chain `entry → … → fn`, hop-capped to keep details
    // readable.
    let chain_of = |gi: usize| -> String {
        let mut hops = Vec::new();
        let mut cur = Some(gi);
        while let Some(i) = cur {
            hops.push(gfns[i].qualified.clone());
            cur = reached[&i].1;
        }
        hops.reverse();
        if hops.len() > 6 {
            let tail = hops.split_off(hops.len() - 2);
            hops.truncate(3);
            hops.push("…".to_string());
            hops.extend(tail);
        }
        hops.join(" → ")
    };

    // Annotations.
    let mut allows: Vec<Allow> = Vec::new();
    for file in files {
        let (mut al, malformed) = parse_allows(&file.rel, &file.raw, &file.mask);
        for (line, problem) in malformed {
            findings.push(JsonFinding {
                file: file.rel.clone(),
                line,
                rule: "malformed-allow".into(),
                detail: problem.to_string(),
            });
        }
        allows.append(&mut al);
    }

    // Findings: panic sites in reached fns, minus annotated lines.
    let reached_idx: Vec<usize> = reached.keys().copied().collect();
    for gi in reached_idx {
        let g = &gfns[gi];
        if sites[gi].is_empty() {
            continue;
        }
        let chain = chain_of(gi);
        let entry = reached[&gi].0.clone();
        for &(line, rule, what) in &sites[gi] {
            let allowed = allows.iter_mut().any(|a| {
                a.scope == Scope::Panic && a.file == files[g.file].rel && a.line == line && {
                    a.used = true;
                    true
                }
            });
            if allowed {
                continue;
            }
            findings.push(JsonFinding {
                file: files[g.file].rel.clone(),
                line,
                rule: rule.into(),
                detail: format!("{what}, reachable via `{entry}`: {chain}"),
            });
        }
    }

    // Stale allows: a panic-scope annotation that silenced nothing must go.
    allows.retain(|a| a.scope == Scope::Panic);
    for a in &allows {
        if !a.used {
            findings.push(JsonFinding {
                file: a.file.clone(),
                line: a.comment_line,
                rule: "stale-allow".into(),
                detail: format!(
                    "allow(panic) suppresses nothing (reason was: {}) — delete it",
                    a.reason
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Report { findings, allows, fns_total: gfns.len(), fns_reached: reached.len() }
}

/// Loads the workspace under `root` and runs [`analyze`].
pub fn scan_workspace(root: &Path) -> Report {
    analyze(&load_workspace(root))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel, src)
    }

    #[test]
    fn reachable_unwrap_is_found_and_unreachable_is_not() {
        let src = "\
impl Engine {
    pub fn step(&mut self) {
        helper(self.n);
    }
}
fn helper(n: usize) -> usize {
    maybe(n).unwrap()
}
fn never_called() {
    oops().unwrap()
}
";
        let r = analyze(&[file("crates/x/src/lib.rs", src)]);
        let unwraps: Vec<&JsonFinding> =
            r.findings.iter().filter(|f| f.rule == "panic-unwrap").collect();
        assert_eq!(unwraps.len(), 1, "{:?}", r.findings);
        assert_eq!(unwraps[0].line, 7);
        assert!(unwraps[0].detail.contains("Engine::step"), "{}", unwraps[0].detail);
    }

    #[test]
    fn method_calls_fan_out_and_slice_index_is_detected() {
        let src = "\
impl Pool {
    pub fn map(&self, xs: &[u32]) -> u32 {
        self.inner.pick(xs)
    }
}
struct Other;
impl Other {
    fn pick(&self, xs: &[u32]) -> u32 {
        xs[0]
    }
}
";
        let r = analyze(&[file("crates/x/src/lib.rs", src)]);
        assert!(
            r.findings.iter().any(|f| f.rule == "panic-index" && f.line == 9),
            "method fan-out must reach Other::pick: {:?}",
            r.findings
        );
    }

    #[test]
    fn allow_annotation_suppresses_and_stale_allow_fails() {
        let src = format!(
            "\
fn constrained_beam_search(xs: &[u32]) -> u32 {{
    xs[0] {} lint: allow(panic, reason = \"caller guarantees non-empty\")
}}
fn unreached() {{
    {} lint: allow(panic, reason = \"nothing here\")
    let _ = 1;
}}
",
            "//", "//"
        );
        let r = analyze(&[file("crates/x/src/lib.rs", &src)]);
        assert!(
            !r.findings.iter().any(|f| f.rule == "panic-index"),
            "annotated index must be suppressed: {:?}",
            r.findings
        );
        assert!(
            r.findings.iter().any(|f| f.rule == "stale-allow" && f.line == 5),
            "unused allow must be flagged: {:?}",
            r.findings
        );
        assert_eq!(r.allows.len(), 2);
        assert!(r.allows.iter().any(|a| a.used));
    }

    #[test]
    fn missing_entry_point_is_reported() {
        let r = analyze(&[file("crates/x/src/lib.rs", "fn lonely() {}\n")]);
        assert!(
            r.findings.iter().any(|f| f.rule == "missing-entry-point"),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn test_code_and_panic_message_text_do_not_count() {
        let src = "\
fn constrained_beam_search(n: usize) -> usize {
    n + 1
}
#[cfg(test)]
mod tests {
    fn t() {
        constrained_beam_search(0).to_string().parse::<usize>().unwrap();
    }
}
";
        let r = analyze(&[file("crates/x/src/lib.rs", src)]);
        let real: Vec<&JsonFinding> =
            r.findings.iter().filter(|f| f.rule.starts_with("panic-")).collect();
        assert!(real.is_empty(), "{real:?}");
    }
}
