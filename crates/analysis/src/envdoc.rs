//! Env-var documentation gate: every `LCREC_*` environment variable the
//! source tree reads must have a row in `docs/ENVIRONMENT.md`.
//!
//! The scanner finds reads two ways, both on raw (non-comment) source
//! lines:
//!
//! 1. direct reads — a `LCREC_*` string literal on a line that also calls
//!    `env::var`, and
//! 2. named constants — a `LCREC_*` string literal in a `const *_ENV`
//!    declaration (the workspace convention for indirect reads such as
//!    `Pool::from_env` / `ServeConfig::from_env`).
//!
//! Anything found is diffed against the variable names mentioned anywhere
//! in the documentation table; an undocumented read fails the gate. Run it
//! from the CLI (`cargo run -p lcrec-analysis -- envdoc`) or from a test
//! via [`undocumented_env_reads`]; `tests/correctness.rs` enforces it.
//!
//! The needles below are assembled with `concat!` so this file's own
//! string literals never match themselves.

use std::collections::BTreeSet;
use std::fmt;
use std::path::{Path, PathBuf};

/// The documentation file that must mention every read variable, relative
/// to the workspace root.
pub const ENV_DOC_FILE: &str = "docs/ENVIRONMENT.md";

/// One `LCREC_*` environment read found in the source tree.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct EnvRead {
    /// Variable name, e.g. `LCREC_THREADS`.
    pub var: String,
    /// File the read (or its `_ENV` constant) lives in, relative to the
    /// scanned root.
    pub file: PathBuf,
    /// 1-based line of the match.
    pub line: usize,
}

impl fmt::Display for EnvRead {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: `{}` is read here but not documented in {}",
            self.file.display(),
            self.line,
            self.var,
            ENV_DOC_FILE
        )
    }
}

fn is_var_char(c: char) -> bool {
    c.is_ascii_uppercase() || c.is_ascii_digit() || c == '_'
}

/// Extracts every `LCREC_*` name that appears in `text` after `needle`
/// (which positions the scan just past the `LCREC_` prefix itself).
fn var_names_after(text: &str, needle: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(needle) {
        let tail = &rest[pos + needle.len()..];
        let suffix: String = tail.chars().take_while(|&c| is_var_char(c)).collect();
        out.push(format!("LCREC_{suffix}"));
        rest = tail;
    }
    out
}

/// Scans one file's raw source for `LCREC_*` environment reads. Comment
/// lines and `#[cfg(test)]` blocks are skipped, so prose mentions and test
/// fixtures don't count as reads (integration tests under `tests/` are
/// regular code and *do* count — `LCREC_UPDATE_GOLDEN` must be documented).
pub fn env_reads_source(relative: &Path, source: &str) -> Vec<EnvRead> {
    // Split so this function's own literals can't satisfy the scan.
    let read_needle = concat!("env", "::var");
    let literal_needle = concat!("\"", "LCREC_");
    let const_needle = concat!("_EN", "V");
    let mask =
        crate::lint::test_code_mask(&crate::parse::strip_comments_and_strings(source));
    let mut out = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = raw.trim_start();
        if t.starts_with("//") {
            continue;
        }
        if !raw.contains(literal_needle) {
            continue;
        }
        let direct_read = raw.contains(read_needle);
        let env_const = raw.contains("const") && raw.contains(const_needle);
        if !(direct_read || env_const) {
            continue;
        }
        for var in var_names_after(raw, literal_needle) {
            out.push(EnvRead { var, file: relative.to_path_buf(), line: i + 1 });
        }
    }
    out
}

/// Every `LCREC_*` environment read in the workspace sources under `root`,
/// sorted by variable name then location.
pub fn env_reads_workspace(root: &Path) -> Vec<EnvRead> {
    let mut files = Vec::new();
    crate::lint::walk(root, &mut files);
    let mut out = Vec::new();
    for file in files {
        let Ok(source) = std::fs::read_to_string(&file) else { continue };
        let relative = file.strip_prefix(root).unwrap_or(&file);
        out.extend(env_reads_source(relative, &source));
    }
    out.sort();
    out
}

/// Variable names mentioned in the documentation text (any `LCREC_*`
/// token, in table rows, prose or code blocks).
pub fn documented_vars(doc: &str) -> BTreeSet<String> {
    // In markdown the names appear bare (no leading quote), so scan for
    // the prefix itself.
    let needle = concat!("LCREC", "_");
    doc.lines().flat_map(|l| var_names_after(l, needle)).collect()
}

/// The gate: every environment read under `root` whose variable is not
/// mentioned in [`ENV_DOC_FILE`]. A missing or unreadable documentation
/// file flags every read.
pub fn undocumented_env_reads(root: &Path) -> Vec<EnvRead> {
    let doc = std::fs::read_to_string(root.join(ENV_DOC_FILE)).unwrap_or_default();
    let documented = documented_vars(&doc);
    env_reads_workspace(root)
        .into_iter()
        .filter(|r| !documented.contains(&r.var))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn direct_reads_and_env_consts_are_found() {
        let src = r#"
let on = std::env::var("LCREC_OBS").is_ok();
pub const THREADS_ENV: &str = "LCREC_THREADS";
"#;
        let reads = env_reads_source(Path::new("a.rs"), src);
        let vars: Vec<&str> = reads.iter().map(|r| r.var.as_str()).collect();
        assert_eq!(vars, vec!["LCREC_OBS", "LCREC_THREADS"]);
        assert_eq!(reads[0].line, 2);
    }

    #[test]
    fn comments_and_plain_literals_do_not_count() {
        let src = r#"
// env::var("LCREC_COMMENTED") is just prose
let msg = "LCREC_NOT_A_READ";
"#;
        assert!(env_reads_source(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn documented_vars_parses_table_rows_and_prose() {
        let doc = "| `LCREC_THREADS` | `1` | workers |\nSee also LCREC_OBS.\n";
        let vars = documented_vars(doc);
        assert!(vars.contains("LCREC_THREADS"));
        assert!(vars.contains("LCREC_OBS"));
        assert_eq!(vars.len(), 2);
    }

    #[test]
    fn workspace_reads_are_all_documented() {
        // The real gate, run against the real tree (also enforced as a
        // tier-1 test in tests/correctness.rs).
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(Path::parent)
            .expect("workspace root");
        let missing = undocumented_env_reads(root);
        assert!(
            missing.is_empty(),
            "undocumented env reads:\n{}",
            missing.iter().map(|m| format!("  {m}\n")).collect::<String>()
        );
        // Sanity: the scanner actually sees the known reads.
        let all = env_reads_workspace(root);
        for expected in ["LCREC_THREADS", "LCREC_OBS", "LCREC_SANITIZE", "LCREC_SERVE_BATCH"] {
            assert!(
                all.iter().any(|r| r.var == expected),
                "scanner lost track of {expected}; found: {all:?}"
            );
        }
    }
}
