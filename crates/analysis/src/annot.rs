//! The shared annotation escape hatch for the deep analysis passes
//! ([`crate::panicscan`], [`crate::detlint`]), plus the audit table and the
//! machine-readable JSON report both passes emit.
//!
//! # Annotation grammar
//!
//! An allow annotation is a plain `//` comment (never a `///`/`//!` doc
//! line) of the form
//!
//! ```text
//! // lint: allow(SCOPE, reason = "WHY THIS IS SOUND")
//! ```
//!
//! where `SCOPE` is `panic` (panic-reachability findings) or `det`
//! (determinism-hazard findings). It applies to the source line it trails,
//! or — when the comment stands alone on its line — to the next line.
//! The reason is **mandatory**: an annotation without one is itself a
//! finding (`malformed-allow`), and an annotation that suppresses nothing
//! is a finding too (`stale-allow`), so allows can never silently outlive
//! the code they excuse. Every annotation appears in the audit table
//! (`cargo run -p lcrec-analysis -- audit`).

use std::fmt;
use std::path::{Path, PathBuf};

/// Annotation scope: which pass an allow silences.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Scope {
    /// Silences `panicscan` findings on the annotated line.
    Panic,
    /// Silences `detlint` findings on the annotated line.
    Det,
}

impl Scope {
    /// The scope keyword as written in source.
    pub fn keyword(self) -> &'static str {
        match self {
            Scope::Panic => "panic",
            Scope::Det => "det",
        }
    }
}

/// One parsed `// lint: allow(...)` annotation.
#[derive(Debug, Clone)]
pub struct Allow {
    /// File the annotation lives in, relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line the annotation **applies to** (the trailing code line,
    /// or the line below a standalone comment).
    pub line: usize,
    /// 1-based line the comment itself is on.
    pub comment_line: usize,
    /// Which pass it silences.
    pub scope: Scope,
    /// The mandatory justification.
    pub reason: String,
    /// Set by the owning pass when the annotation suppressed at least one
    /// finding this run — unused annotations are reported as stale.
    pub used: bool,
}

impl fmt::Display for Allow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: allow({}) — {}",
            self.file.display(),
            self.line,
            self.scope.keyword(),
            self.reason
        )
    }
}

// Assembled from parts so this module's own literals never parse as
// annotations when the passes scan this file.
const MARKER: &str = concat!("// lint", ": allow(");

/// Parses every allow annotation in one file. `masked` is the test-code
/// mask from [`crate::lint`] (annotations inside `#[cfg(test)]` blocks are
/// ignored along with the code they would cover). Returns the parsed
/// annotations plus a list of malformed ones (missing scope or reason) as
/// `(line, problem)` pairs.
pub fn parse_allows(
    relative: &Path,
    source: &str,
    masked: &[bool],
) -> (Vec<Allow>, Vec<(usize, &'static str)>) {
    let mut allows = Vec::new();
    let mut malformed = Vec::new();
    for (i, raw) in source.lines().enumerate() {
        if masked.get(i).copied().unwrap_or(false) {
            continue;
        }
        let t = raw.trim_start();
        // Doc comments are prose, not annotations.
        if t.starts_with("///") || t.starts_with("//!") {
            continue;
        }
        let Some(at) = raw.find(MARKER) else { continue };
        let body = &raw[at + MARKER.len()..];
        let Some(close) = body.rfind(')') else {
            malformed.push((i + 1, "unclosed allow annotation"));
            continue;
        };
        let body = &body[..close];
        let Some((scope_str, rest)) = body.split_once(',') else {
            malformed.push((i + 1, "allow annotation without a reason"));
            continue;
        };
        let scope = match scope_str.trim() {
            "panic" => Scope::Panic,
            "det" => Scope::Det,
            _ => {
                malformed.push((i + 1, "unknown allow scope (want panic|det)"));
                continue;
            }
        };
        let rest = rest.trim();
        let reason = rest
            .strip_prefix("reason")
            .map(str::trim_start)
            .and_then(|r| r.strip_prefix('='))
            .map(str::trim)
            .map(|r| r.trim_matches('"').trim())
            .unwrap_or("");
        if reason.is_empty() {
            malformed.push((i + 1, "allow annotation without a reason"));
            continue;
        }
        // Standalone comment → covers the next line; trailing → this line.
        let standalone = raw[..at].trim().is_empty();
        let line = if standalone { i + 2 } else { i + 1 };
        allows.push(Allow {
            file: relative.to_path_buf(),
            line,
            comment_line: i + 1,
            scope,
            reason: reason.to_string(),
            used: false,
        });
    }
    (allows, malformed)
}

/// Renders the audit table of a set of annotations: one aligned row per
/// allow, sorted by file and line, with the scope and reason. This is what
/// `cargo run -p lcrec-analysis -- audit` prints.
pub fn audit_table(allows: &[Allow]) -> String {
    let mut rows: Vec<(String, String, String)> = allows
        .iter()
        .map(|a| {
            (
                format!("{}:{}", a.file.display(), a.line),
                a.scope.keyword().to_string(),
                a.reason.clone(),
            )
        })
        .collect();
    rows.sort();
    let loc_w = rows.iter().map(|r| r.0.len()).max().unwrap_or(8).max(8);
    let mut out = format!("{:<loc_w$}  {:<5}  reason\n", "location", "scope");
    for (loc, scope, reason) in rows {
        out.push_str(&format!("{loc:<loc_w$}  {scope:<5}  {reason}\n"));
    }
    out
}

/// Escapes a string for a JSON string literal body.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One finding row of the machine-readable report (shared shape across
/// passes, snapshot-tested in `crates/analysis/tests/passes.rs`).
#[derive(Debug, Clone)]
pub struct JsonFinding {
    /// File, relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line.
    pub line: usize,
    /// Stable rule identifier (e.g. `panic-reachable`, `det-hash-iter`).
    pub rule: String,
    /// Human-readable detail.
    pub detail: String,
}

/// Renders the stable JSON report for one pass: findings first (sorted by
/// file, line, rule), then the audit rows of every annotation the pass
/// honoured. Keys and ordering are fixed — downstream tooling may rely on
/// them.
pub fn json_report(pass: &str, findings: &[JsonFinding], allows: &[Allow]) -> String {
    let mut fs: Vec<&JsonFinding> = findings.iter().collect();
    fs.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    let mut out = String::new();
    out.push_str(&format!("{{\n  \"pass\": \"{}\",\n  \"findings\": [", json_escape(pass)));
    for (i, f) in fs.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"detail\": \"{}\"}}",
            json_escape(&f.file.display().to_string().replace('\\', "/")),
            f.line,
            json_escape(&f.rule),
            json_escape(&f.detail)
        ));
    }
    out.push_str(if fs.is_empty() { "],\n" } else { "\n  ],\n" });
    let mut als: Vec<&Allow> = allows.iter().collect();
    als.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out.push_str("  \"allowed\": [");
    for (i, a) in als.iter().enumerate() {
        out.push_str(if i == 0 { "\n" } else { ",\n" });
        out.push_str(&format!(
            "    {{\"file\": \"{}\", \"line\": {}, \"scope\": \"{}\", \"reason\": \"{}\"}}",
            json_escape(&a.file.display().to_string().replace('\\', "/")),
            a.line,
            a.scope.keyword(),
            json_escape(&a.reason)
        ));
    }
    out.push_str(if als.is_empty() { "]\n}\n" } else { "\n  ]\n}\n" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unmasked(src: &str) -> Vec<bool> {
        vec![false; src.lines().count()]
    }

    #[test]
    fn trailing_and_standalone_annotations_attach_correctly() {
        let src = "let a = x[0]; // lint: allow(panic, reason = \"len checked above\")\n\
                   // lint: allow(det, reason = \"sorted right after\")\n\
                   for k in map.keys() {}\n";
        let (allows, bad) = parse_allows(Path::new("a.rs"), src, &unmasked(src));
        assert!(bad.is_empty(), "{bad:?}");
        assert_eq!(allows.len(), 2);
        assert_eq!((allows[0].line, allows[0].scope), (1, Scope::Panic));
        assert_eq!(allows[0].reason, "len checked above");
        assert_eq!((allows[1].line, allows[1].scope), (3, Scope::Det));
    }

    #[test]
    fn missing_reason_or_bad_scope_is_malformed() {
        let src = "x(); // lint: allow(panic)\ny(); // lint: allow(warp, reason = \"no\")\n\
                   z(); // lint: allow(det, reason = \"\")\n";
        let (allows, bad) = parse_allows(Path::new("a.rs"), src, &unmasked(src));
        assert!(allows.is_empty());
        assert_eq!(bad.len(), 3);
        assert_eq!(bad[0].0, 1);
    }

    #[test]
    fn doc_comments_and_test_code_are_ignored() {
        let src = "/// // lint: allow(panic, reason = \"doc example\")\nfn f() {}\n";
        let (allows, bad) = parse_allows(Path::new("a.rs"), src, &unmasked(src));
        assert!(allows.is_empty() && bad.is_empty());
        let src = "x; // lint: allow(panic, reason = \"real\")\n";
        let masked = vec![true];
        let (allows, _) = parse_allows(Path::new("a.rs"), src, &masked);
        assert!(allows.is_empty(), "masked lines contribute nothing");
    }

    #[test]
    fn json_report_shape_is_stable() {
        let f = JsonFinding {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 3,
            rule: "panic-reachable".into(),
            detail: "slice index in `f`".into(),
        };
        let a = Allow {
            file: PathBuf::from("crates/x/src/lib.rs"),
            line: 9,
            comment_line: 9,
            scope: Scope::Panic,
            reason: "bounds checked".into(),
            used: true,
        };
        let got = json_report("panicscan", &[f], &[a]);
        assert!(got.contains("\"pass\": \"panicscan\""), "{got}");
        assert!(got.contains("\"rule\": \"panic-reachable\""), "{got}");
        assert!(got.contains("\"reason\": \"bounds checked\""), "{got}");
        // Empty report still well-formed.
        let empty = json_report("detlint", &[], &[]);
        assert!(empty.contains("\"findings\": []"), "{empty}");
        assert!(empty.contains("\"allowed\": []"), "{empty}");
    }

    #[test]
    fn audit_table_lists_every_row() {
        let a = Allow {
            file: PathBuf::from("b.rs"),
            line: 2,
            comment_line: 2,
            scope: Scope::Det,
            reason: "order-independent sum".into(),
            used: true,
        };
        let table = audit_table(&[a]);
        assert!(table.contains("b.rs:2"), "{table}");
        assert!(table.contains("order-independent sum"), "{table}");
    }
}
