//! Doc-coverage pass: every public `fn`, `struct` and `enum` in the
//! covered crates must carry a `///` doc comment, and the workspace's main
//! entry points ([`EXAMPLE_REQUIRED`]) must additionally ship a
//! `# Examples` doc-test.
//!
//! Built on the same comment/string-aware scanner as the lint pass
//! ([`crate::parse`]): declarations are matched on stripped source (so a
//! `"pub fn"` inside a string can't fire), while the doc check walks the
//! *raw* lines above the declaration, skipping attributes and blank lines
//! exactly as rustdoc attaches doc comments. Items inside `#[cfg(test)]`
//! blocks are exempt.
//!
//! Run it from the CLI (`cargo run -p lcrec-analysis -- doccov`) or from a
//! test via [`missing_docs_workspace`]; the tier-1 test in
//! `tests/correctness.rs` keeps the covered crates at 100%.

use crate::parse::strip_comments_and_strings;
use std::fmt;
use std::path::{Path, PathBuf};

/// Crates whose public items must be documented, relative to the workspace
/// root. The tensor/core/par trio is the load-bearing API surface (autograd
/// ops, constrained decoding, the parallel subsystem); obs is the
/// observability contract every instrumented crate programs against; serve
/// is the public serving API; data/eval/text cover the dataset, metrics and
/// tokenization surfaces; rqvae carries the semantic-index/trie surface the
/// decode fast path leans on; fault and analysis document the tooling
/// itself.
pub const DOC_COVERED_CRATES: &[&str] = &[
    "crates/par",
    "crates/tensor",
    "crates/core",
    "crates/obs",
    "crates/serve",
    "crates/fault",
    "crates/data",
    "crates/eval",
    "crates/text",
    "crates/rqvae",
    "crates/analysis",
];

/// Entry points whose doc block must contain a `# Examples` section with a
/// runnable doc-test: `(file relative to the workspace root, item name)`.
/// These are the front doors of the workspace — the first thing a new user
/// calls — so their docs must show working code, not just describe it.
/// A missing *declaration* is reported too, so renaming an entry point
/// without updating this table fails the gate visibly.
pub const EXAMPLE_REQUIRED: &[(&str, &str)] = &[
    ("crates/core/src/lm.rs", "greedy"),
    ("crates/par/src/lib.rs", "Pool"),
    ("crates/rqvae/src/indices.rs", "IndexTrie"),
    ("crates/serve/src/lib.rs", "Engine"),
    ("crates/serve/src/router.rs", "Router"),
    ("crates/serve/src/router.rs", "new"),
    ("crates/serve/src/router.rs", "submit"),
    ("crates/fault/src/lib.rs", "FaultPlan"),
    ("crates/tensor/src/backend.rs", "active_backend"),
    ("crates/data/src/scale.rs", "ScaleConfig"),
    ("crates/tensor/src/serialize.rs", "load_params_file"),
    ("crates/rqvae/src/catalog.rs", "CatalogUpdater"),
    ("crates/core/src/snapshot.rs", "CatalogTrie"),
];

/// One undocumented public item.
#[derive(Debug, Clone)]
pub struct MissingDoc {
    /// File the item is declared in, relative to the scanned root.
    pub file: PathBuf,
    /// 1-based line of the declaration.
    pub line: usize,
    /// Item kind: `"fn"`, `"struct"` or `"enum"`.
    pub kind: &'static str,
    /// Item name.
    pub name: String,
}

impl fmt::Display for MissingDoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: missing docs on pub {} `{}`",
            self.file.display(),
            self.line,
            self.kind,
            self.name
        )
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Parses a stripped line as a public item declaration, returning the item
/// kind and name. Accepts restricted visibility (`pub(crate)`, `pub(super)`)
/// and leading qualifiers (`const fn`, `unsafe fn`, `async fn`).
fn public_item_decl(stripped_line: &str) -> Option<(&'static str, String)> {
    let t = stripped_line.trim_start();
    let rest = t.strip_prefix("pub")?;
    // Token boundary: reject identifiers like `pubx`.
    if rest.chars().next().map(is_ident).unwrap_or(false) {
        return None;
    }
    let rest = rest.trim_start();
    let rest = if let Some(stripped) = rest.strip_prefix('(') {
        stripped.find(')').map(|p| stripped[p + 1..].trim_start())?
    } else {
        rest
    };
    // Skip function qualifiers so `pub const fn` parses as a fn.
    let mut rest = rest;
    for qual in ["const", "async", "unsafe", "extern"] {
        if let Some(r) = rest.strip_prefix(qual) {
            if !r.chars().next().map(is_ident).unwrap_or(false) {
                rest = r.trim_start();
            }
        }
    }
    for (kw, kind) in [("fn", "fn"), ("struct", "struct"), ("enum", "enum")] {
        if let Some(body) = rest.strip_prefix(kw) {
            if body.chars().next().map(is_ident).unwrap_or(false) {
                continue; // identifier that merely starts with the keyword
            }
            let body = body.trim_start();
            let name: String = body.chars().take_while(|&c| is_ident(c)).collect();
            if !name.is_empty() {
                return Some((kind, name));
            }
        }
    }
    None
}

/// True when the raw lines above `decl_idx` attach a doc comment to the
/// declaration: walking upward, attributes and blank lines are transparent
/// (as they are to rustdoc) and the first substantive line must be a `///`
/// doc comment or a `#[doc…]` attribute.
fn has_doc_above(raw_lines: &[&str], decl_idx: usize) -> bool {
    for i in (0..decl_idx).rev() {
        let t = raw_lines[i].trim();
        if t.starts_with("///") || t.starts_with("#[doc") {
            return true;
        }
        if t.is_empty() || (t.starts_with("#[") || t.starts_with("#![")) {
            continue;
        }
        return false;
    }
    false
}

/// Scans one file's source for undocumented public items. `relative` is the
/// path reported in findings.
pub fn missing_docs_source(relative: &Path, source: &str) -> Vec<MissingDoc> {
    let stripped = strip_comments_and_strings(source);
    let mask = crate::lint::test_code_mask(&stripped);
    let raw_lines: Vec<&str> = source.lines().collect();
    let mut out = Vec::new();
    for (i, line) in stripped.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some((kind, name)) = public_item_decl(line) else { continue };
        if !has_doc_above(&raw_lines, i) {
            out.push(MissingDoc { file: relative.to_path_buf(), line: i + 1, kind, name });
        }
    }
    out
}

/// Scans every `.rs` file of the [`DOC_COVERED_CRATES`] under `root` and
/// returns all undocumented public items, sorted by file and line.
pub fn missing_docs_workspace(root: &Path) -> Vec<MissingDoc> {
    let mut out = Vec::new();
    for rel in DOC_COVERED_CRATES {
        let mut files = Vec::new();
        crate::lint::walk(&root.join(rel), &mut files);
        for file in files {
            let Ok(source) = std::fs::read_to_string(&file) else { continue };
            let relative = file.strip_prefix(root).unwrap_or(&file);
            out.extend(missing_docs_source(relative, &source));
        }
    }
    out.sort_by(|a, b| (&a.file, a.line).cmp(&(&b.file, b.line)));
    out
}

/// An [`EXAMPLE_REQUIRED`] entry point whose doc block lacks a `# Examples`
/// section (or whose declaration could not be found at all).
#[derive(Debug, Clone)]
pub struct MissingExample {
    /// File the entry point should be declared in.
    pub file: PathBuf,
    /// Entry-point name from [`EXAMPLE_REQUIRED`].
    pub name: String,
    /// What went wrong: the declaration is missing, or its docs have no
    /// `# Examples` section.
    pub problem: &'static str,
}

impl fmt::Display for MissingExample {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: `{}` {}", self.file.display(), self.name, self.problem)
    }
}

/// True when the doc block attached to the declaration at `decl_idx`
/// contains a `# Examples` heading. Walks the raw lines upward through the
/// contiguous run of doc comments, attributes and blank lines, exactly as
/// [`has_doc_above`] does.
fn doc_has_examples(raw_lines: &[&str], decl_idx: usize) -> bool {
    for i in (0..decl_idx).rev() {
        let t = raw_lines[i].trim();
        if let Some(doc) = t.strip_prefix("///") {
            if doc.trim() == "# Examples" {
                return true;
            }
            continue;
        }
        if t.is_empty() || t.starts_with("#[") || t.starts_with("#![") {
            continue;
        }
        return false;
    }
    false
}

/// Checks one file's source for the named entry point: its declaration must
/// exist and carry a `# Examples` doc section. `relative` is the path
/// reported in findings.
pub fn missing_example_source(
    relative: &Path,
    source: &str,
    name: &str,
) -> Option<MissingExample> {
    let stripped = strip_comments_and_strings(source);
    let mask = crate::lint::test_code_mask(&stripped);
    let raw_lines: Vec<&str> = source.lines().collect();
    for (i, line) in stripped.lines().enumerate() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        let Some((_, decl_name)) = public_item_decl(line) else { continue };
        if decl_name != name {
            continue;
        }
        if doc_has_examples(&raw_lines, i) {
            return None;
        }
        return Some(MissingExample {
            file: relative.to_path_buf(),
            name: name.to_string(),
            problem: "has no `# Examples` doc section",
        });
    }
    Some(MissingExample {
        file: relative.to_path_buf(),
        name: name.to_string(),
        problem: "declaration not found (update EXAMPLE_REQUIRED?)",
    })
}

/// Checks every [`EXAMPLE_REQUIRED`] entry point under `root`.
pub fn missing_examples_workspace(root: &Path) -> Vec<MissingExample> {
    let mut out = Vec::new();
    for (rel, name) in EXAMPLE_REQUIRED {
        let path = root.join(rel);
        let source = std::fs::read_to_string(&path).unwrap_or_default();
        if let Some(m) = missing_example_source(Path::new(rel), &source, name) {
            out.push(m);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn documented_items_pass() {
        let src = "/// Doc.\npub fn f() {}\n\n/// Doc.\n#[derive(Debug)]\npub struct S;\n";
        assert!(missing_docs_source(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn undocumented_items_flagged_with_kind_and_name() {
        let src = "pub fn f() {}\npub struct S;\npub enum E { A }\nfn private() {}\n";
        let m = missing_docs_source(Path::new("a.rs"), src);
        let got: Vec<(&str, &str)> =
            m.iter().map(|d| (d.kind, d.name.as_str())).collect();
        assert_eq!(got, vec![("fn", "f"), ("struct", "S"), ("enum", "E")]);
        assert_eq!(m[1].line, 2);
    }

    #[test]
    fn attributes_and_blank_lines_are_transparent() {
        let src = "/// Doc.\n#[derive(Debug)]\n\npub struct S;\n";
        assert!(missing_docs_source(Path::new("a.rs"), src).is_empty());
        let src = "#[derive(Debug)]\npub struct S;\n";
        assert_eq!(missing_docs_source(Path::new("a.rs"), src).len(), 1);
    }

    #[test]
    fn plain_comment_is_not_a_doc() {
        let src = "// not a doc comment\npub fn f() {}\n";
        assert_eq!(missing_docs_source(Path::new("a.rs"), src).len(), 1);
    }

    #[test]
    fn test_code_and_strings_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    pub fn helper() {}\n}\n";
        assert!(missing_docs_source(Path::new("a.rs"), src).is_empty());
        let src = "/// Doc.\npub fn f() { g(\"pub fn fake\"); }\n";
        assert!(missing_docs_source(Path::new("a.rs"), src).is_empty());
    }

    #[test]
    fn example_section_is_detected() {
        let src = "/// Doc.\n///\n/// # Examples\n///\n/// ```\n/// f();\n/// ```\npub fn f() {}\n";
        assert!(missing_example_source(Path::new("a.rs"), src, "f").is_none());
        let src = "/// Doc without example.\npub fn f() {}\n";
        let m = missing_example_source(Path::new("a.rs"), src, "f").expect("flagged");
        assert!(m.problem.contains("# Examples"), "{m}");
    }

    #[test]
    fn missing_declaration_is_reported_not_skipped() {
        let m = missing_example_source(Path::new("a.rs"), "pub fn other() {}\n", "gone")
            .expect("flagged");
        assert!(m.problem.contains("not found"), "{m}");
    }

    #[test]
    fn restricted_visibility_and_qualifiers_count() {
        let src = "pub(crate) fn f() {}\npub const fn g() {}\n";
        let m = missing_docs_source(Path::new("a.rs"), src);
        let names: Vec<&str> = m.iter().map(|d| d.name.as_str()).collect();
        assert_eq!(names, vec!["f", "g"]);
    }
}
