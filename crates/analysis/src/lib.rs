//! # lcrec-analysis
//!
//! Correctness tooling for the workspace, deliberately dependency-free so it
//! can run in the offline build environment:
//!
//! * [`parse`] — a small, line-oriented Rust source scanner that extracts
//!   `pub fn` names. The gradcheck completeness test uses it to diff the
//!   public autograd ops in `lcrec-tensor`'s `graph.rs` against the table of
//!   finite-difference cases, so adding an op without a gradient check fails
//!   the build.
//! * [`lint`] — a workspace lint pass over the repository's own sources:
//!   no `unwrap()`/`expect(`/`panic!` on the decoding hot paths, no
//!   `todo!`/`unimplemented!`/`dbg!` anywhere, and no `unsafe` blocks. Run
//!   it from the CLI (`cargo run -p lcrec-analysis -- lint`) or from a test
//!   via [`lint::lint_workspace`].

#![warn(missing_docs)]

pub mod lint;
pub mod parse;
