//! # lcrec-analysis
//!
//! Correctness tooling for the workspace, deliberately dependency-free so it
//! can run in the offline build environment. Six passes, all runnable as
//! `cargo run -p lcrec-analysis -- <pass>` and all enforced by tier-1 tests
//! (see `docs/ANALYSIS.md` for the full catalog and the annotation grammar):
//!
//! * [`lint`] — per-line rules over the repository's own sources: no
//!   `todo!`/`unimplemented!`/`dbg!` anywhere, and no `unsafe` blocks.
//! * [`panicscan`] — call-graph panic-reachability: builds a workspace call
//!   graph and flags every `unwrap()`/`expect(`/`panic!`/direct slice index
//!   reachable from the declared serving/decode entry points, unless the
//!   line carries a `// lint: allow(panic, reason = …)` annotation.
//! * [`detlint`] — determinism hazards in non-test code: hash-container
//!   iteration, wall-clock reads outside `lcrec-obs`, thread-identity reads
//!   outside `lcrec-par`, env reads outside the per-crate gate modules —
//!   same `allow(det, …)` escape hatch.
//! * [`doccov`] — doc coverage: every public `fn`/`struct`/`enum` in the
//!   covered crates must carry a `///` doc comment, and the main entry
//!   points must ship `# Examples` doc-tests.
//! * [`envdoc`] — env-var documentation gate: every `LCREC_*` environment
//!   variable the sources read must have a row in `docs/ENVIRONMENT.md`.
//! * `audit` (CLI only) — prints the audit table of every
//!   `allow(panic|det)` annotation in the workspace with its reason, so the
//!   accepted-hazard surface is reviewable at a glance.
//!
//! Shared infrastructure: [`parse`] is the line-oriented Rust scanner
//! (comment/string stripping, item and call extraction, lightweight type
//! inference) and [`annot`] owns the annotation grammar, the audit table,
//! and the machine-readable JSON report (`--json`).

#![warn(missing_docs)]

pub mod annot;
pub mod detlint;
pub mod doccov;
pub mod envdoc;
pub mod lint;
pub mod panicscan;
pub mod parse;
