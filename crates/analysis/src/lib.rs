//! # lcrec-analysis
//!
//! Correctness tooling for the workspace, deliberately dependency-free so it
//! can run in the offline build environment:
//!
//! * [`parse`] — a small, line-oriented Rust source scanner that extracts
//!   `pub fn` names. The gradcheck completeness test uses it to diff the
//!   public autograd ops in `lcrec-tensor`'s `graph.rs` against the table of
//!   finite-difference cases, so adding an op without a gradient check fails
//!   the build.
//! * [`lint`] — a workspace lint pass over the repository's own sources:
//!   no `unwrap()`/`expect(`/`panic!` on the decoding hot paths, no
//!   `todo!`/`unimplemented!`/`dbg!` anywhere, and no `unsafe` blocks. Run
//!   it from the CLI (`cargo run -p lcrec-analysis -- lint`) or from a test
//!   via [`lint::lint_workspace`].
//! * [`doccov`] — a doc-coverage pass: every public `fn`/`struct`/`enum`
//!   in the covered crates (`lcrec-par`, `lcrec-tensor`, `lcrec-core`,
//!   `lcrec-obs`, `lcrec-serve`) must carry a `///` doc comment, and the
//!   main entry points must ship `# Examples` doc-tests. Run it from the
//!   CLI (`cargo run -p lcrec-analysis -- doccov`) or from a test via
//!   [`doccov::missing_docs_workspace`] /
//!   [`doccov::missing_examples_workspace`]; the tier-1 test in
//!   `tests/correctness.rs` enforces it.
//! * [`envdoc`] — an env-var documentation gate: every `LCREC_*`
//!   environment variable the sources read must have a row in
//!   `docs/ENVIRONMENT.md` (`cargo run -p lcrec-analysis -- envdoc`).

#![warn(missing_docs)]

pub mod doccov;
pub mod envdoc;
pub mod lint;
pub mod parse;
