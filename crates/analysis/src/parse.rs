//! A minimal, dependency-free Rust source scanner.
//!
//! This is not a Rust parser — it is a comment/string-aware tokenizer that
//! is exactly strong enough for the two jobs the workspace needs: listing
//! `pub fn` names in a file (gradcheck coverage) and matching forbidden
//! substrings without false positives from comments, doc text, or string
//! literals (the lint pass).

/// Replaces comments, string literals, and char literals with spaces,
/// preserving line structure (every `\n` survives) so findings can report
/// accurate line numbers. Handles `//` line comments, nested `/* */` block
/// comments, escapes inside `"…"` strings, raw strings (`r"…"`,
/// `r#"…"#` at any `#` depth, plus the `b`-prefixed byte forms), `'c'`
/// char literals with escapes (`'\n'`, `'\u{1F600}'`), and leaves
/// lifetimes (`'a`) alone.
pub fn strip_comments_and_strings(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        // Raw (and raw-byte) strings: `r`/`br` + zero or more `#` + `"`.
        // No escape processing applies inside; the body ends only at a
        // quote followed by the same number of `#`.
        if (c == 'r' || (c == 'b' && i + 1 < b.len() && b[i + 1] == 'r'))
            && !out.chars().next_back().map(is_ident).unwrap_or(false)
        {
            let mut j = i + if c == 'b' { 2 } else { 1 };
            let mut hashes = 0usize;
            while j < b.len() && b[j] == '#' {
                hashes += 1;
                j += 1;
            }
            if j < b.len() && b[j] == '"' {
                // Blank the prefix and opening quote.
                for _ in i..=j {
                    out.push(' ');
                }
                i = j + 1;
                while i < b.len() {
                    if b[i] == '"'
                        && (1..=hashes).all(|h| i + h < b.len() && b[i + h] == '#')
                    {
                        for _ in 0..=hashes {
                            out.push(' ');
                        }
                        i += hashes + 1;
                        break;
                    }
                    out.push(if b[i] == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
                continue;
            }
            // `r` / `br` not followed by a raw string: fall through as an
            // ordinary identifier character.
        }
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth = depth.saturating_sub(1);
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        // A `\` line continuation escapes a real newline;
                        // keep it so line numbers stay accurate.
                        out.push(' ');
                        out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
                out.push(' ');
                i += 1;
            }
            '\'' => {
                // Char literal iff it closes after exactly one character or
                // one escape sequence; otherwise it is a lifetime. The
                // escape scan is length-bounded (longest form: '\u{10FFFF}')
                // and skips `\'` so `'\''` closes at the right quote.
                let close = if i + 2 < b.len() && b[i + 1] == '\\' {
                    let limit = b.len().min(i + 12);
                    let mut j = i + 2;
                    if j < limit && (b[j] == '\'' || b[j] == '\\') {
                        j += 1; // the escaped character itself
                    }
                    (j..limit).find(|&k| b[k] == '\'')
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(j) = close {
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Names of every `pub fn` in the source, in declaration order, duplicates
/// included. Visibility qualifiers like `pub(crate)` are counted as public
/// to err on the side of requiring coverage.
pub fn public_fn_names(source: &str) -> Vec<String> {
    let clean = strip_comments_and_strings(source);
    let mut names = Vec::new();
    let text = clean;
    let mut search_from = 0;
    while let Some(rel) = text[search_from..].find("pub") {
        let at = search_from + rel;
        search_from = at + 3;
        // Token boundary on both sides of `pub`.
        let before_ok = !text[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after_ok = !text[at + 3..].chars().next().map(is_ident).unwrap_or(true);
        if !before_ok || !after_ok {
            continue;
        }
        // Skip optional `(crate)` / `(super)` restriction, then expect `fn`.
        let rest: &str = &text[at + 3..];
        let rest = rest.trim_start();
        let rest = if let Some(stripped) = rest.strip_prefix('(') {
            match stripped.find(')') {
                Some(p) => stripped[p + 1..].trim_start(),
                None => continue,
            }
        } else {
            rest
        };
        let Some(body) = rest.strip_prefix("fn") else { continue };
        let body = body.trim_start();
        let name: String = body.chars().take_while(|&c| is_ident(c)).collect();
        if !name.is_empty() {
            names.push(name);
        }
    }
    names
}

/// Finds token occurrences of `needle` (identifier-boundary on both sides)
/// in an already-stripped line. Returns the byte offset of the first match.
pub fn find_token(line: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !line[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after = line[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

/// One `fn` item found by [`scan_items`].
#[derive(Debug, Clone)]
pub struct FnItem {
    /// Function name.
    pub name: String,
    /// The `impl` type the function is defined on (`impl Foo`,
    /// `impl Trait for Foo` → `Foo`), or `None` for a free function.
    pub impl_type: Option<String>,
    /// 0-based line of the `fn` keyword.
    pub decl_line: usize,
}

impl FnItem {
    /// `Type::name` for methods, `name` for free functions.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(t) => format!("{t}::{}", self.name),
            None => self.name.clone(),
        }
    }
}

/// The result of an item-level scan: every `fn` in the file plus, for each
/// source line, which function's body (innermost) owns it.
#[derive(Debug)]
pub struct ItemScan {
    /// All scanned functions, in declaration order.
    pub items: Vec<FnItem>,
    /// `line_owner[l]` is the index (into [`ItemScan::items`]) of the
    /// innermost function whose body contains line `l`, if any. The
    /// signature and brace lines count as part of the body.
    pub line_owner: Vec<Option<usize>>,
}

/// What a `{` being tracked by [`scan_items`] belongs to.
#[derive(Clone, Debug)]
enum Ctx {
    /// An `impl` block for the named type.
    Impl(String),
    /// A function body (index into the item list).
    Fn(usize),
    /// Anything else: `mod`, `match`, closures, struct literals, …
    Other,
}

/// Reads the identifier starting at `i` (empty if none).
fn ident_at(b: &[char], i: usize) -> String {
    b[i..].iter().take_while(|&&c| is_ident(c)).collect()
}

/// Item-level scanner over **stripped** source (see
/// [`strip_comments_and_strings`]): finds every `fn` definition, resolves
/// the `impl` type it belongs to (handling `impl Trait for Type`), and maps
/// each line to its innermost enclosing function. Trait-method
/// *declarations* (ending in `;`) produce no item. This is what the
/// panic-reachability pass builds its call graph from.
pub fn scan_items(stripped: &str) -> ItemScan {
    let b: Vec<char> = stripped.chars().collect();
    let n_lines = stripped.lines().count().max(1);
    let mut items: Vec<FnItem> = Vec::new();
    let mut line_owner: Vec<Option<usize>> = vec![None; n_lines];
    let mut stack: Vec<Ctx> = Vec::new();
    // An `impl`/`fn` header seen but its `{` not yet opened.
    let mut pending: Option<Ctx> = None;
    let mut line = 0usize;
    let mut i = 0usize;
    // `()`/`[]` nesting, so a `;` inside `[u8; 4]` can't end a declaration.
    let mut pdepth = 0usize;
    while i < b.len() {
        let c = b[i];
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            '(' | '[' => {
                pdepth += 1;
                i += 1;
            }
            ')' | ']' => {
                pdepth = pdepth.saturating_sub(1);
                i += 1;
            }
            '{' => {
                stack.push(pending.take().unwrap_or(Ctx::Other));
                i += 1;
            }
            '}' => {
                stack.pop();
                i += 1;
            }
            // A `;` before the body's `{` ends a brace-less declaration
            // (trait method, `impl Trait` alias): drop the pending header.
            ';' if pdepth == 0 => {
                pending = None;
                i += 1;
            }
            _ if is_ident(c) => {
                let word = ident_at(&b, i);
                let boundary_ok =
                    i == 0 || !is_ident(b[i - 1]);
                if boundary_ok && word == "fn" && pending.is_none() {
                    // `fn name` — skip whitespace, read the name.
                    let mut j = i + 2;
                    while j < b.len() && b[j].is_whitespace() && b[j] != '\n' {
                        j += 1;
                    }
                    let name = ident_at(&b, j);
                    if !name.is_empty() {
                        let impl_type = stack.iter().rev().find_map(|ctx| match ctx {
                            Ctx::Impl(t) => Some(t.clone()),
                            _ => None,
                        });
                        items.push(FnItem { name, impl_type, decl_line: line });
                        pending = Some(Ctx::Fn(items.len() - 1));
                    }
                    i = j;
                } else if boundary_ok && word == "impl" && pending.is_none() {
                    // `impl<G> Type`, `impl Trait for Type`: the subject is
                    // the last path segment before the `{` (or before `<`/
                    // `where`), taking the `for` side when present.
                    let mut j = i + 4;
                    let mut depth = 0i32; // <> nesting
                    let mut subject = String::new();
                    while j < b.len() {
                        let cj = b[j];
                        if cj == '\n' {
                            line += 1;
                        } else if cj == '<' {
                            depth += 1;
                        } else if cj == '>' {
                            depth -= 1;
                        } else if cj == '{' || cj == ';' {
                            break;
                        } else if depth == 0 && is_ident(cj) {
                            let w = ident_at(&b, j);
                            if w == "where" {
                                break;
                            }
                            if w != "for" {
                                subject = w.clone();
                            }
                            j += w.len();
                            continue;
                        }
                        j += 1;
                    }
                    if !subject.is_empty() {
                        pending = Some(Ctx::Impl(subject));
                    }
                    i = j;
                    continue;
                } else {
                    i += word.len().max(1);
                }
            }
            _ => {
                i += 1;
            }
        }
        // Ownership: attribute the current line to the innermost fn on the
        // stack (or the one whose header is pending).
        if line < n_lines {
            let owner = match &pending {
                Some(Ctx::Fn(idx)) => Some(*idx),
                _ => stack.iter().rev().find_map(|ctx| match ctx {
                    Ctx::Fn(idx) => Some(*idx),
                    _ => None,
                }),
            };
            if line_owner[line].is_none() && owner.is_some() {
                line_owner[line] = owner;
            }
        }
    }
    ItemScan { items, line_owner }
}

/// How a call site names its callee.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CallKind {
    /// `foo(...)` — a free function (or closure) by bare name.
    Bare,
    /// `recv.foo(...)` — a method; the receiver's type is unknown.
    Method,
    /// `self.foo(...)` — a method whose receiver is the enclosing `impl`
    /// type, so it can be resolved precisely.
    SelfMethod,
    /// `Path::foo(...)` — qualified; the qualifier is the path segment
    /// immediately before the name (`Pool::new` → `Pool`).
    Qualified(String),
}

/// One call site extracted from a stripped line.
#[derive(Debug, Clone)]
pub struct Call {
    /// Callee name as written.
    pub name: String,
    /// How the callee was named.
    pub kind: CallKind,
    /// For [`CallKind::Method`]: the receiver identifier when it is a plain
    /// local (`pool.map(…)` → `pool`), `None` for chained receivers
    /// (`xs.iter().map(…)`) or field accesses (`self.inner.pick(…)`).
    pub receiver: Option<String>,
}

/// Rust keywords (plus primitive-ish idents) that can precede `(` without
/// being calls.
const NON_CALL_WORDS: &[&str] = &[
    "if", "match", "while", "for", "loop", "return", "fn", "in", "as", "let", "else", "move",
    "ref", "mut", "dyn", "impl", "pub", "use", "where", "break", "continue", "crate", "super",
    "type", "static", "const", "enum", "struct", "trait", "mod", "extern", "true", "false",
    "Some", "None", "Ok", "Err", "Box", "Vec", "String",
];

/// Extracts every call site on one **stripped** line: bare calls
/// (`helper(`), method calls (`.advance(`, turbofish tolerated), and
/// qualified calls (`Pool::new(`, `Self::step(`). Macro invocations
/// (`name!(`) and keyword-parens (`if (`) are excluded; tuple-struct and
/// enum-variant constructors are excluded by the capitalization convention
/// for bare names.
pub fn line_calls(line: &str) -> Vec<Call> {
    let b: Vec<char> = line.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !is_ident(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let word = ident_at(&b, i);
        let end = i + word.len();
        // Skip an optional turbofish `::<...>` between name and `(`.
        let mut j = end;
        if j + 2 < b.len() && b[j] == ':' && b[j + 1] == ':' && b[j + 2] == '<' {
            let mut depth = 0i32;
            j += 2;
            while j < b.len() {
                if b[j] == '<' {
                    depth += 1;
                } else if b[j] == '>' {
                    depth -= 1;
                    if depth == 0 {
                        j += 1;
                        break;
                    }
                }
                j += 1;
            }
        }
        let is_call = j < b.len() && b[j] == '(';
        if !is_call || word.is_empty() {
            i = end;
            continue;
        }
        // `name!(` is a macro, not a call.
        if end < b.len() && b[end] == '!' {
            i = end;
            continue;
        }
        // `fn name(` is a declaration, not a call site.
        let prev_word = {
            let mut k = i;
            while k > 0 && b[k - 1].is_whitespace() {
                k -= 1;
            }
            let e = k;
            while k > 0 && is_ident(b[k - 1]) {
                k -= 1;
            }
            b[k..e].iter().collect::<String>()
        };
        if prev_word == "fn" {
            i = end;
            continue;
        }
        let prev = if i >= 1 { Some(b[i - 1]) } else { None };
        let mut receiver = None;
        let kind = match prev {
            Some('.') => {
                // Read the receiver path before the dot: a chain of plain
                // identifiers (`self.vocab`, `beam.tokens`, `ps`). A chain
                // interrupted by a call or index (`xs.iter().map`) has no
                // resolvable receiver.
                let mut segs: Vec<String> = Vec::new();
                let mut pos = i - 1; // at the `.`
                let mut resolvable = true;
                loop {
                    let send = pos;
                    let mut sstart = send;
                    while sstart > 0 && is_ident(b[sstart - 1]) {
                        sstart -= 1;
                    }
                    if sstart == send {
                        // `).foo(` / `].foo(` / leading `.foo(`.
                        resolvable = false;
                        break;
                    }
                    segs.push(b[sstart..send].iter().collect());
                    if sstart > 0 && b[sstart - 1] == '.' {
                        pos = sstart - 1;
                    } else {
                        break;
                    }
                }
                segs.reverse();
                if resolvable && segs.as_slice() == ["self"] {
                    Some(CallKind::SelfMethod)
                } else {
                    if resolvable && !segs.is_empty() {
                        receiver = Some(segs.join("."));
                    }
                    Some(CallKind::Method)
                }
            }
            Some(':') if i >= 2 && b[i - 2] == ':' => {
                // Walk back over the qualifying segment.
                let qend = i - 2;
                let mut qstart = qend;
                while qstart > 0 && is_ident(b[qstart - 1]) {
                    qstart -= 1;
                }
                let qual: String = b[qstart..qend].iter().collect();
                if qual.is_empty() {
                    None
                } else {
                    Some(CallKind::Qualified(qual))
                }
            }
            _ => {
                // Bare call: reject keywords and capitalized constructors.
                let first_upper = word.chars().next().is_some_and(|c| c.is_ascii_uppercase());
                if NON_CALL_WORDS.contains(&word.as_str()) || first_upper {
                    None
                } else {
                    Some(CallKind::Bare)
                }
            }
        };
        if let Some(kind) = kind {
            out.push(Call { name: word, kind, receiver });
        }
        i = end;
    }
    out
}

/// Reads the head of a type starting at `j` in `b`: skips references,
/// lifetimes, and `mut`, then returns the last path segment before any
/// generics (`&mut fmt::Formatter<'_>` → `Formatter`). Returns `"impl"`
/// for `impl Trait`/`dyn Trait` types (caller treats those as unresolvable)
/// and `""` for slices, tuples, and fn types.
fn type_head(b: &[char], mut j: usize) -> String {
    let mut last = String::new();
    while j < b.len() {
        let c = b[j];
        if c.is_whitespace() || c == '&' {
            j += 1;
        } else if c == '\'' {
            j += 1;
            while j < b.len() && is_ident(b[j]) {
                j += 1;
            }
        } else if is_ident(c) {
            let w = ident_at(b, j);
            j += w.len();
            match w.as_str() {
                "mut" => continue,
                "impl" | "dyn" => return "impl".to_string(),
                _ => {}
            }
            last = w;
            // A `::` continues the path; anything else ends the type head.
            if j + 1 < b.len() && b[j] == ':' && b[j + 1] == ':' {
                j += 2;
                continue;
            }
            return last;
        } else {
            // `[`, `(`, `*`, … — not a nominal type head.
            return String::new();
        }
    }
    last
}

/// Extracts `name: Type` pairs from a fn declaration snippet (the text from
/// the `fn` keyword to its opening brace). Also picks up generic bounds
/// (`T: Clone`), which are harmless to the receiver-type lookup since
/// receivers are value identifiers. This powers the call-graph's local
/// type resolution.
pub fn param_types(decl: &str) -> Vec<(String, String)> {
    let b: Vec<char> = decl.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !is_ident(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let name = ident_at(&b, i);
        let mut j = i + name.len();
        while j < b.len() && b[j].is_whitespace() {
            j += 1;
        }
        if j < b.len() && b[j] == ':' && b.get(j + 1) != Some(&':') {
            out.push((name, type_head(&b, j + 1)));
            i = j + 1;
        } else {
            i += name.len();
        }
    }
    out
}

/// Extracts `(struct, field, field type)` triples from every brace-style
/// struct definition in **stripped** source. Tuple and unit structs yield
/// nothing. Field types go through the same head extraction as
/// [`param_types`], so `children: Vec<HashMap<u16, usize>>` records
/// `Vec`. The call-graph uses this to type `self.field.method(…)`
/// receivers.
pub fn struct_fields(stripped: &str) -> Vec<(String, String, String)> {
    let b: Vec<char> = stripped.chars().collect();
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < b.len() {
        if !is_ident(b[i]) || (i > 0 && is_ident(b[i - 1])) {
            i += 1;
            continue;
        }
        let w = ident_at(&b, i);
        if w != "struct" {
            i += w.len();
            continue;
        }
        let mut j = i + w.len();
        while j < b.len() && b[j].is_whitespace() {
            j += 1;
        }
        let name = ident_at(&b, j);
        j += name.len();
        // Find the body brace at generics depth 0; `(` or `;` first means a
        // tuple/unit struct with no named fields.
        let mut depth = 0i32;
        let mut body_at = None;
        while j < b.len() {
            match b[j] {
                '<' => depth += 1,
                '>' => depth -= 1,
                '{' if depth == 0 => {
                    body_at = Some(j);
                    break;
                }
                '(' | ';' if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(open) = body_at else {
            i = j;
            continue;
        };
        let mut bd = 1i32;
        let mut k = open + 1;
        while k < b.len() && bd > 0 {
            match b[k] {
                '{' => bd += 1,
                '}' => bd -= 1,
                _ => {}
            }
            k += 1;
        }
        let body: String = b[open + 1..k.saturating_sub(1)].iter().collect();
        if !name.is_empty() {
            for (f, t) in param_types(&body) {
                out.push((name.clone(), f, t));
            }
        }
        i = k;
    }
    out
}

/// Extracts a `static NAME: Type` / `const NAME: Type` binding from one
/// stripped line (visibility qualifiers and `static mut` tolerated).
/// Statics are in scope for the whole file, so the call graph keeps them
/// in a per-file map consulted when no local binding matches a receiver —
/// without this, `STATE.load(…)` on an `AtomicU8` static would fan out to
/// every workspace method named `load`.
pub fn static_type(line: &str) -> Option<(String, String)> {
    let (at, kw_len) = match find_token(line, "static") {
        Some(at) => (at, 6),
        None => (find_token(line, "const")?, 5),
    };
    let b: Vec<char> = line.chars().collect();
    let mut j = at + kw_len;
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    if ident_at(&b, j) == "mut" {
        j += 3;
        while j < b.len() && b[j].is_whitespace() {
            j += 1;
        }
    }
    let name = ident_at(&b, j);
    if name.is_empty() {
        return None;
    }
    j += name.len();
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    // `const fn`, `*const u8`, etc. have no `name: Type` shape and fall out
    // here.
    if b.get(j) == Some(&':') && b.get(j + 1) != Some(&':') {
        Some((name, type_head(&b, j + 1)))
    } else {
        None
    }
}

/// Infers a local binding's type from one stripped line: an explicit
/// annotation (`let x: Tensor = …`) or a constructor-style initializer
/// (`let x = Tensor::zeros(…)` — the first path segment of the call).
/// Returns `(name, type)` if the line binds one.
pub fn let_type(line: &str) -> Option<(String, String)> {
    let at = find_token(line, "let")?;
    let b: Vec<char> = line.chars().collect();
    let mut j = at + 3;
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    if ident_at(&b, j) == "mut" {
        j += 3;
        while j < b.len() && b[j].is_whitespace() {
            j += 1;
        }
    }
    let name = ident_at(&b, j);
    if name.is_empty() {
        return None;
    }
    j += name.len();
    while j < b.len() && b[j].is_whitespace() {
        j += 1;
    }
    match b.get(j) {
        Some(':') if b.get(j + 1) != Some(&':') => Some((name, type_head(&b, j + 1))),
        Some('=') => {
            let mut k = j + 1;
            while k < b.len() && b[k].is_whitespace() {
                k += 1;
            }
            let ty = ident_at(&b, k);
            let qualified = k + ty.len() + 1 < b.len()
                && b[k + ty.len()] == ':'
                && b[k + ty.len() + 1] == ':';
            if qualified && ty.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                Some((name, ty))
            } else {
                None
            }
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "let a = 1; // unwrap()\n/* panic! */ let b = 2;\n";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("unwrap"));
        assert!(!clean.contains("panic"));
        assert!(clean.contains("let b = 2;"));
        assert_eq!(clean.matches('\n').count(), 2, "line structure preserved");
    }

    #[test]
    fn strips_strings_but_not_lifetimes() {
        let s = "fn f<'a>(x: &'a str) { g(\"panic! inside\"); let c = 'x'; }";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("panic"));
        assert!(clean.contains("<'a>"));
    }

    #[test]
    fn string_line_continuation_preserves_newline() {
        let s = "let a = \"one \\\n two\";\nlet b = 1;\n";
        let clean = strip_comments_and_strings(s);
        assert_eq!(clean.matches('\n').count(), 3, "line structure preserved");
        assert!(clean.lines().nth(2).is_some_and(|l| l.contains("let b = 1;")));
    }

    #[test]
    fn strips_raw_strings_at_any_hash_depth() {
        let s = "let a = r\"panic! one\"; let b = 1;";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("panic"), "{clean}");
        assert!(clean.contains("let b = 1;"));
        // A raw string with embedded quotes: the body ends only at `"#`.
        let s = "let a = r#\"say \"panic!\" loudly\"#; let b = 2;";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("panic"), "{clean}");
        assert!(!clean.contains("say"), "{clean}");
        assert!(clean.contains("let b = 2;"), "{clean}");
        // Depth two, a byte-raw form, and newline preservation.
        let s = "let a = r##\"one \"# two\nthree\"##;\nlet b = br\"x.unwrap()\";\n";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("two") && !clean.contains("unwrap"), "{clean}");
        assert_eq!(clean.matches('\n').count(), 3, "line structure preserved");
        // An identifier ending in `r` before a plain string is not a raw
        // string prefix.
        let s = "var\"keep scanning\"; let c = 3;";
        assert!(strip_comments_and_strings(s).contains("let c = 3;"));
    }

    #[test]
    fn strips_char_literals_with_escapes() {
        for lit in ["'\\''", "'\\\\'", "'\\n'", "'\\u{1F600}'", "'x'"] {
            let s = format!("let c = {lit}; x.unwrap();");
            let clean = strip_comments_and_strings(&s);
            assert!(clean.contains(".unwrap()"), "code after {lit} lost: {clean}");
            assert!(!clean.contains('\\'), "literal {lit} not blanked: {clean}");
        }
        // A lifetime straddling the same syntax survives.
        let clean = strip_comments_and_strings("fn f<'a>(x: &'a str) {}");
        assert!(clean.contains("<'a>"));
    }

    #[test]
    fn strips_nested_block_comments() {
        let s = "let a = 1; /* outer /* inner unwrap() */ still comment */ let b = 2;";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("unwrap"), "{clean}");
        assert!(!clean.contains("still"), "{clean}");
        assert!(clean.contains("let a = 1;") && clean.contains("let b = 2;"), "{clean}");
        // Unterminated comment must not hang or panic.
        let clean = strip_comments_and_strings("code /* open\nnever closed");
        assert!(clean.starts_with("code"));
        assert_eq!(clean.matches('\n').count(), 1);
    }

    #[test]
    fn extracts_public_fn_names() {
        let s = r#"
            impl Foo {
                pub fn alpha(&self) {}
                fn private_one() {}
                pub(crate) fn beta() {}
            }
            pub fn gamma() {}
            // pub fn commented_out() {}
        "#;
        assert_eq!(public_fn_names(s), vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn scan_items_finds_free_fns_methods_and_trait_impls() {
        let src = "\
fn free_one() {
    helper();
}

impl Foo {
    pub fn method_a(&self) -> usize {
        self.inner()
    }
}

impl fmt::Display for Foo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, \"x\")
    }
}

trait Abstract {
    fn declared_only(&self);
    fn with_default(&self) {}
}
";
        let scan = scan_items(&strip_comments_and_strings(src));
        let quals: Vec<String> = scan.items.iter().map(|f| f.qualified()).collect();
        assert_eq!(
            quals,
            vec!["free_one", "Foo::method_a", "Foo::fmt", "declared_only", "with_default"]
        );
        // `helper()` on line 1 (0-based) belongs to free_one.
        assert_eq!(scan.line_owner[1], Some(0));
        // `self.inner()` belongs to method_a.
        assert_eq!(scan.line_owner[6], Some(1));
        // Blank line between items belongs to nobody.
        assert_eq!(scan.line_owner[3], None);
    }

    #[test]
    fn scan_items_handles_generics_and_array_params() {
        let src = "\
impl<T: Clone> Wrapper<T> {
    fn get(&self, idx: [usize; 2]) -> &T {
        &self.vals[idx[0]]
    }
}
";
        let scan = scan_items(&strip_comments_and_strings(src));
        assert_eq!(scan.items.len(), 1);
        assert_eq!(scan.items[0].qualified(), "Wrapper::get");
        // The `;` inside `[usize; 2]` must not orphan the body.
        assert_eq!(scan.line_owner[2], Some(0));
    }

    #[test]
    fn line_calls_classifies_call_sites() {
        let calls = line_calls("let x = helper(a).advance(b) + Pool::new(4).map(f);");
        let got: Vec<(String, CallKind)> =
            calls.into_iter().map(|c| (c.name, c.kind)).collect();
        assert_eq!(
            got,
            vec![
                ("helper".into(), CallKind::Bare),
                ("advance".into(), CallKind::Method),
                ("new".into(), CallKind::Qualified("Pool".into())),
                ("map".into(), CallKind::Method),
            ]
        );
        // Macros, keywords, constructors and turbofish.
        assert!(line_calls("vec![1]; format!(\"x\"); if (a) {}").is_empty());
        assert!(line_calls("Some(x); Ok(y); MyStruct(z)").is_empty());
        let t = line_calls("xs.collect::<Vec<_>>()");
        assert_eq!(t.len(), 1);
        assert_eq!(t[0].name, "collect");
        let q = line_calls("Self::render(input)");
        assert_eq!(q[0].kind, CallKind::Qualified("Self".into()));
        // `self.` receivers are resolvable precisely; field paths carry the
        // dotted receiver; interrupted chains carry nothing.
        let s = line_calls("self.dispatch(x) + self.inner.pick(y) + beam.tokens.push(z)");
        assert_eq!(s[0].kind, CallKind::SelfMethod);
        assert_eq!((s[1].kind.clone(), s[1].receiver.as_deref()), (CallKind::Method, Some("self.inner")));
        assert_eq!(s[2].receiver.as_deref(), Some("beam.tokens"));
        let c = line_calls("xs.iter().map(f); beams[bi].advance(x)");
        assert_eq!(c[0].receiver.as_deref(), Some("xs"));
        assert!(c[1].receiver.is_none(), "chained: {c:?}");
        assert!(c[2].receiver.is_none(), "indexed: {c:?}");
    }

    #[test]
    fn param_types_reads_fn_signatures() {
        let decl = "fn advance(lm: &mut CausalLm, ps: &ParamStore, xs: &[u32], \
                    f: F, w: fmt::Formatter<'_>, n: usize) -> u32";
        let got = param_types(decl);
        let find = |n: &str| got.iter().find(|(name, _)| name == n).map(|(_, t)| t.as_str());
        assert_eq!(find("lm"), Some("CausalLm"));
        assert_eq!(find("ps"), Some("ParamStore"));
        assert_eq!(find("xs"), Some(""), "slices have no nominal head");
        assert_eq!(find("f"), Some("F"));
        assert_eq!(find("w"), Some("Formatter"));
        assert_eq!(find("n"), Some("usize"));
        // `impl Trait` and `dyn Trait` are marked unresolvable.
        let got = param_types("fn run(h: impl Handler, d: &dyn Draw)");
        assert!(got.iter().all(|(_, t)| t == "impl"), "{got:?}");
    }

    #[test]
    fn struct_fields_extracts_named_fields_only() {
        let src = "\
pub struct Engine {
    vocab: Vocab,
    pool: Pool,
    pending: Vec<Request>,
}
struct Unit;
struct Tup(u32, f32);
enum E { A, B }
";
        let got = struct_fields(&strip_comments_and_strings(src));
        assert_eq!(
            got,
            vec![
                ("Engine".into(), "vocab".into(), "Vocab".into()),
                ("Engine".into(), "pool".into(), "Pool".into()),
                ("Engine".into(), "pending".into(), "Vec".into()),
            ]
        );
    }

    #[test]
    fn static_type_reads_statics_and_consts() {
        assert_eq!(
            static_type("static STATE: AtomicU8 = AtomicU8::new(0);"),
            Some(("STATE".into(), "AtomicU8".into()))
        );
        assert_eq!(
            static_type("pub const LIMIT: usize = 8;"),
            Some(("LIMIT".into(), "usize".into()))
        );
        assert_eq!(
            static_type("static mut RAW: u32 = 0;"),
            Some(("RAW".into(), "u32".into()))
        );
        assert_eq!(static_type("pub const fn helper() -> usize {"), None);
        assert_eq!(static_type("let p: *const u8 = q;"), None);
        assert_eq!(static_type("let x = 1;"), None);
    }

    #[test]
    fn let_type_handles_annotations_and_constructors() {
        assert_eq!(let_type("    let pool = Pool::new(4);"), Some(("pool".into(), "Pool".into())));
        assert_eq!(
            let_type("let mut t: Tensor = make();"),
            Some(("t".into(), "Tensor".into()))
        );
        assert_eq!(let_type("let x = helper();"), None, "bare calls say nothing");
        assert_eq!(let_type("let y = gradcheck::cases();"), None, "module paths are not types");
        assert_eq!(let_type("letter = 5;"), None);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(find_token("forbid(unsafe_code)", "unsafe").is_none());
        assert!(find_token("unsafe { }", "unsafe").is_some());
        assert!(find_token("let my_unsafe = 1;", "unsafe").is_none());
    }
}
