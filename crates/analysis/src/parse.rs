//! A minimal, dependency-free Rust source scanner.
//!
//! This is not a Rust parser — it is a comment/string-aware tokenizer that
//! is exactly strong enough for the two jobs the workspace needs: listing
//! `pub fn` names in a file (gradcheck coverage) and matching forbidden
//! substrings without false positives from comments, doc text, or string
//! literals (the lint pass).

/// Replaces comments, string literals, and char literals with spaces,
/// preserving line structure (every `\n` survives) so findings can report
/// accurate line numbers. Handles `//` line comments, nested `/* */` block
/// comments, escapes inside `"…"` strings, `'c'` char literals, and leaves
/// lifetimes (`'a`) alone.
pub fn strip_comments_and_strings(source: &str) -> String {
    let b: Vec<char> = source.chars().collect();
    let mut out = String::with_capacity(source.len());
    let mut i = 0;
    while i < b.len() {
        let c = b[i];
        match c {
            '/' if i + 1 < b.len() && b[i + 1] == '/' => {
                while i < b.len() && b[i] != '\n' {
                    out.push(' ');
                    i += 1;
                }
            }
            '/' if i + 1 < b.len() && b[i + 1] == '*' => {
                let mut depth = 0usize;
                while i < b.len() {
                    if b[i] == '/' && i + 1 < b.len() && b[i + 1] == '*' {
                        depth += 1;
                        out.push_str("  ");
                        i += 2;
                    } else if b[i] == '*' && i + 1 < b.len() && b[i + 1] == '/' {
                        depth -= 1;
                        out.push_str("  ");
                        i += 2;
                        if depth == 0 {
                            break;
                        }
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
            }
            '"' => {
                // Raw strings (r"…", r#"…"#) are handled by the caller never
                // needing their contents; detect the r/# prefix already
                // emitted? Raw strings start with r before the quote — the
                // prefix chars are harmless to keep. Here we just skip the
                // quoted body with escape handling; for raw strings the
                // backslash rule is wrong but the workspace avoids raw
                // strings with embedded quotes.
                out.push(' ');
                i += 1;
                while i < b.len() && b[i] != '"' {
                    if b[i] == '\\' && i + 1 < b.len() {
                        // A `\` line continuation escapes a real newline;
                        // keep it so line numbers stay accurate.
                        out.push(' ');
                        out.push(if b[i + 1] == '\n' { '\n' } else { ' ' });
                        i += 2;
                    } else {
                        out.push(if b[i] == '\n' { '\n' } else { ' ' });
                        i += 1;
                    }
                }
                out.push(' ');
                i += 1;
            }
            '\'' => {
                // Char literal iff it closes within a couple of characters;
                // otherwise it is a lifetime.
                let close = if i + 2 < b.len() && b[i + 1] == '\\' {
                    // '\n', '\'', '\\', '\u{…}'
                    (i + 2..b.len().min(i + 12)).find(|&j| b[j] == '\'')
                } else if i + 2 < b.len() && b[i + 2] == '\'' {
                    Some(i + 2)
                } else {
                    None
                };
                if let Some(j) = close {
                    for _ in i..=j {
                        out.push(' ');
                    }
                    i = j + 1;
                } else {
                    out.push(c);
                    i += 1;
                }
            }
            _ => {
                out.push(c);
                i += 1;
            }
        }
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Names of every `pub fn` in the source, in declaration order, duplicates
/// included. Visibility qualifiers like `pub(crate)` are counted as public
/// to err on the side of requiring coverage.
pub fn public_fn_names(source: &str) -> Vec<String> {
    let clean = strip_comments_and_strings(source);
    let mut names = Vec::new();
    let text = clean;
    let mut search_from = 0;
    while let Some(rel) = text[search_from..].find("pub") {
        let at = search_from + rel;
        search_from = at + 3;
        // Token boundary on both sides of `pub`.
        let before_ok = !text[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after_ok = !text[at + 3..].chars().next().map(is_ident).unwrap_or(true);
        if !before_ok || !after_ok {
            continue;
        }
        // Skip optional `(crate)` / `(super)` restriction, then expect `fn`.
        let rest: &str = &text[at + 3..];
        let rest = rest.trim_start();
        let rest = if let Some(stripped) = rest.strip_prefix('(') {
            match stripped.find(')') {
                Some(p) => stripped[p + 1..].trim_start(),
                None => continue,
            }
        } else {
            rest
        };
        let Some(body) = rest.strip_prefix("fn") else { continue };
        let body = body.trim_start();
        let name: String = body.chars().take_while(|&c| is_ident(c)).collect();
        if !name.is_empty() {
            names.push(name);
        }
    }
    names
}

/// Finds token occurrences of `needle` (identifier-boundary on both sides)
/// in an already-stripped line. Returns the byte offset of the first match.
pub fn find_token(line: &str, needle: &str) -> Option<usize> {
    let mut from = 0;
    while let Some(rel) = line[from..].find(needle) {
        let at = from + rel;
        let before_ok = at == 0
            || !line[..at].chars().next_back().map(is_ident).unwrap_or(false);
        let after = line[at + needle.len()..].chars().next();
        let after_ok = !after.map(is_ident).unwrap_or(false);
        if before_ok && after_ok {
            return Some(at);
        }
        from = at + needle.len();
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strips_line_and_block_comments() {
        let s = "let a = 1; // unwrap()\n/* panic! */ let b = 2;\n";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("unwrap"));
        assert!(!clean.contains("panic"));
        assert!(clean.contains("let b = 2;"));
        assert_eq!(clean.matches('\n').count(), 2, "line structure preserved");
    }

    #[test]
    fn strips_strings_but_not_lifetimes() {
        let s = "fn f<'a>(x: &'a str) { g(\"panic! inside\"); let c = 'x'; }";
        let clean = strip_comments_and_strings(s);
        assert!(!clean.contains("panic"));
        assert!(clean.contains("<'a>"));
    }

    #[test]
    fn string_line_continuation_preserves_newline() {
        let s = "let a = \"one \\\n two\";\nlet b = 1;\n";
        let clean = strip_comments_and_strings(s);
        assert_eq!(clean.matches('\n').count(), 3, "line structure preserved");
        assert!(clean.lines().nth(2).is_some_and(|l| l.contains("let b = 1;")));
    }

    #[test]
    fn extracts_public_fn_names() {
        let s = r#"
            impl Foo {
                pub fn alpha(&self) {}
                fn private_one() {}
                pub(crate) fn beta() {}
            }
            pub fn gamma() {}
            // pub fn commented_out() {}
        "#;
        assert_eq!(public_fn_names(s), vec!["alpha", "beta", "gamma"]);
    }

    #[test]
    fn token_boundaries_respected() {
        assert!(find_token("forbid(unsafe_code)", "unsafe").is_none());
        assert!(find_token("unsafe { }", "unsafe").is_some());
        assert!(find_token("let my_unsafe = 1;", "unsafe").is_none());
    }
}
