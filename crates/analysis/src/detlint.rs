//! Determinism-hazard analysis (`detlint`).
//!
//! The workspace's central contract is bit-identical decoding at any thread
//! count, batch composition, and process restart (DESIGN.md "Threading
//! model", `tests/determinism.rs`). This pass scans every non-test source
//! file for the constructs that historically break that contract and flags
//! each one unless it carries a `// lint: allow(det, reason = …)`
//! annotation (see [`crate::annot`]):
//!
//! * **`det-hash-iter`** — iterating a `HashMap`/`HashSet` (`.iter()`,
//!   `.keys()`, `.values()`, `.drain()`, `for … in &map`, …). Hash
//!   iteration order is randomized per process, so any such loop whose
//!   order reaches an output must be sorted or rewritten over a `BTreeMap`.
//!   Receivers are typed with the same lightweight inference the panic
//!   pass uses (params, `let` bindings, statics, struct fields); untypeable
//!   receivers are skipped, so this rule under-approximates — it exists to
//!   catch the common declared-container cases, not to prove absence.
//! * **`det-time`** — `Instant::now(`/`SystemTime::now(` outside
//!   `crates/obs` (the observability crate owns wall-clock measurement;
//!   everything else must treat time as data passed in).
//! * **`det-thread`** — `available_parallelism`, `thread::current` or
//!   `ThreadId` outside `crates/par` (the pool crate owns parallelism
//!   decisions; results must never depend on worker identity).
//! * **`det-env`** — `env::var` reads outside the blessed per-crate gate
//!   modules ([`ENV_GATE_FILES`]): every `LCREC_*` switch is read once, in
//!   one documented place per crate (see also the `envdoc` pass).
//!
//! Like the panic pass, every annotation needs a reason, appears in the
//! audit table, and turns into a `stale-allow` finding the moment it stops
//! suppressing anything.

use crate::annot::{parse_allows, Allow, JsonFinding, Scope};
use crate::panicscan::{load_workspace, SourceFile};
use crate::parse::{line_calls, param_types, scan_items, static_type, struct_fields, CallKind};
use std::collections::BTreeMap;
use std::path::Path;

/// Files allowed to read process environment variables: one gate module
/// per crate that takes an `LCREC_*` switch, so every env read stays next
/// to the documentation row `envdoc` enforces.
pub const ENV_GATE_FILES: &[&str] = &[
    "crates/fault/src/lib.rs",
    "crates/obs/src/lib.rs",
    "crates/par/src/lib.rs",
    "crates/serve/src/lib.rs",
    "crates/tensor/src/backend.rs",
    "crates/tensor/src/sanitize.rs",
];

/// Order-sensitive iteration methods on hash containers.
const ITER_METHODS: &[&str] =
    &["iter", "iter_mut", "into_iter", "keys", "values", "values_mut", "drain", "retain"];

/// The outcome of a detlint run.
#[derive(Debug)]
pub struct Report {
    /// Unsuppressed findings, sorted by file/line/rule. Empty = pass clean.
    pub findings: Vec<JsonFinding>,
    /// Every `allow(det, …)` annotation honoured this run.
    pub allows: Vec<Allow>,
    /// Files scanned.
    pub files_scanned: usize,
}

fn is_hash_container(ty: &str) -> bool {
    matches!(ty, "HashMap" | "HashSet")
}

fn under(rel: &Path, prefix: &str) -> bool {
    rel.to_string_lossy().replace('\\', "/").starts_with(prefix)
}

/// Runs the analysis over pre-loaded files (the unit-testable core of
/// [`scan_workspace`]).
pub fn analyze(files: &[SourceFile]) -> Report {
    let mut findings: Vec<JsonFinding> = Vec::new();
    let mut allows: Vec<Allow> = Vec::new();

    // Struct fields across the workspace, for `self.field` receivers.
    let mut fields: BTreeMap<(String, String), String> = BTreeMap::new();
    for file in files {
        for (s, f, t) in struct_fields(&file.stripped) {
            fields.insert((s, f), t);
        }
    }

    for file in files {
        let rel_str = file.rel.to_string_lossy().replace('\\', "/");
        let in_obs = under(&file.rel, "crates/obs/");
        let in_par = under(&file.rel, "crates/par/");
        let env_gate = ENV_GATE_FILES.iter().any(|f| rel_str == *f);

        let (mut al, malformed) = parse_allows(&file.rel, &file.raw, &file.mask);
        for (line, problem) in malformed {
            findings.push(JsonFinding {
                file: file.rel.clone(),
                line,
                rule: "malformed-allow".into(),
                detail: problem.to_string(),
            });
        }

        // Lightweight receiver typing, shared in spirit with panicscan:
        // per-function params + lets, plus file-level statics.
        let scan = scan_items(&file.stripped);
        let lines: Vec<&str> = file.stripped.lines().collect();
        let mut fn_types: Vec<BTreeMap<String, String>> =
            vec![BTreeMap::new(); scan.items.len()];
        for (ii, item) in scan.items.iter().enumerate() {
            let mut decl = String::new();
            for line in lines.iter().skip(item.decl_line).take(24) {
                match line.find('{') {
                    Some(at) => {
                        decl.push_str(&line[..at]);
                        break;
                    }
                    None => {
                        decl.push_str(line);
                        decl.push(' ');
                    }
                }
            }
            fn_types[ii].extend(param_types(&decl));
        }
        let mut statics: BTreeMap<String, String> = BTreeMap::new();
        for line in &lines {
            if let Some((n, t)) = static_type(line) {
                statics.insert(n, t);
            }
        }
        for (li, line) in lines.iter().enumerate() {
            if file.mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            if let (Some(owner), Some((n, t))) =
                (scan.line_owner.get(li).copied().flatten(), crate::parse::let_type(line))
            {
                fn_types[owner].insert(n, t);
            }
        }
        // Resolves a dotted receiver path to a type head, if possible.
        let resolve = |owner: Option<usize>, path: &str| -> Option<String> {
            let mut segs = path.split('.');
            let first = segs.next()?;
            let mut ty: String = if first == "self" {
                scan.items.get(owner?)?.impl_type.clone()?
            } else {
                let local = owner.and_then(|o| fn_types.get(o)).and_then(|m| m.get(first));
                local.or_else(|| statics.get(first))?.clone()
            };
            for seg in segs {
                ty = fields.get(&(ty, seg.to_string()))?.clone();
            }
            Some(ty)
        };

        let mut hits: Vec<(usize, &'static str, String)> = Vec::new();
        for (li, line) in lines.iter().enumerate() {
            if file.mask.get(li).copied().unwrap_or(false) {
                continue;
            }
            let owner = scan.line_owner.get(li).copied().flatten();
            // det-hash-iter: typed method receivers.
            for call in line_calls(line) {
                if call.kind != CallKind::Method
                    || !ITER_METHODS.contains(&call.name.as_str())
                {
                    continue;
                }
                let Some(path) = call.receiver.as_deref() else { continue };
                if resolve(owner, path).as_deref().is_some_and(is_hash_container) {
                    hits.push((
                        li + 1,
                        "det-hash-iter",
                        format!(
                            "hash-container iteration `{path}.{}(…)` — order is \
                             process-randomized",
                            call.name
                        ),
                    ));
                }
            }
            // det-hash-iter: `for … in &container` loops.
            if let Some(at) = crate::parse::find_token(line, "for") {
                if let Some(in_at) = crate::parse::find_token(&line[at..], "in") {
                    let after = line[at + in_at + 2..]
                        .trim_start()
                        .trim_start_matches('&')
                        .trim_start_matches("mut ");
                    let head: String = after
                        .chars()
                        .take_while(|&c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
                        .collect();
                    if !head.is_empty()
                        && resolve(owner, &head).as_deref().is_some_and(is_hash_container)
                    {
                        hits.push((
                            li + 1,
                            "det-hash-iter",
                            format!(
                                "hash-container loop `for … in {head}` — order is \
                                 process-randomized"
                            ),
                        ));
                    }
                }
            }
            // det-time.
            if !in_obs {
                for needle in ["Instant::now(", "SystemTime::now("] {
                    if line.contains(needle) {
                        hits.push((
                            li + 1,
                            "det-time",
                            format!(
                                "wall-clock read `{}` outside crates/obs",
                                needle.trim_end_matches('(')
                            ),
                        ));
                    }
                }
            }
            // det-thread.
            if !in_par {
                for needle in ["available_parallelism", "thread::current", "ThreadId"] {
                    if crate::parse::find_token(line, needle.split(':').next_back().unwrap_or(needle))
                        .is_some()
                        && line.contains(needle)
                    {
                        hits.push((
                            li + 1,
                            "det-thread",
                            format!("thread-identity read `{needle}` outside crates/par"),
                        ));
                    }
                }
            }
            // det-env.
            if !env_gate && line.contains("env::var") {
                hits.push((
                    li + 1,
                    "det-env",
                    "environment read outside the crate's gate module (see \
                     detlint::ENV_GATE_FILES)"
                        .to_string(),
                ));
            }
        }

        for (line, rule, detail) in hits {
            let allowed = al.iter_mut().any(|a| {
                a.scope == Scope::Det && a.line == line && {
                    a.used = true;
                    true
                }
            });
            if allowed {
                continue;
            }
            findings.push(JsonFinding { file: file.rel.clone(), line, rule: rule.into(), detail });
        }
        allows.extend(al.into_iter().filter(|a| a.scope == Scope::Det));
    }

    for a in &allows {
        if !a.used {
            findings.push(JsonFinding {
                file: a.file.clone(),
                line: a.comment_line,
                rule: "stale-allow".into(),
                detail: format!(
                    "allow(det) suppresses nothing (reason was: {}) — delete it",
                    a.reason
                ),
            });
        }
    }

    findings.sort_by(|a, b| (&a.file, a.line, &a.rule).cmp(&(&b.file, b.line, &b.rule)));
    Report { findings, allows, files_scanned: files.len() }
}

/// Loads the workspace under `root` and runs [`analyze`].
pub fn scan_workspace(root: &Path) -> Report {
    analyze(&load_workspace(root))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(rel: &str, src: &str) -> SourceFile {
        SourceFile::new(rel, src)
    }

    #[test]
    fn typed_hash_iteration_is_flagged_and_btreemap_is_not() {
        let src = "\
fn f() {
    let mut seen: HashMap<u32, u32> = HashMap::new();
    for k in seen.keys() {
        g(k);
    }
    let sorted: BTreeMap<u32, u32> = BTreeMap::new();
    for k in sorted.keys() {
        g(k);
    }
}
";
        let r = analyze(&[file("crates/x/src/lib.rs", src)]);
        let hash: Vec<&JsonFinding> =
            r.findings.iter().filter(|f| f.rule == "det-hash-iter").collect();
        assert_eq!(hash.len(), 1, "{:?}", r.findings);
        assert_eq!(hash[0].line, 3);
    }

    #[test]
    fn for_loop_over_hash_field_is_flagged() {
        let src = "\
struct Index {
    names: HashSet<String>,
}
impl Index {
    fn dump(&self) {
        for n in &self.names {
            emit(n);
        }
    }
}
";
        let r = analyze(&[file("crates/x/src/lib.rs", src)]);
        assert!(
            r.findings.iter().any(|f| f.rule == "det-hash-iter" && f.line == 6),
            "{:?}",
            r.findings
        );
    }

    #[test]
    fn time_thread_and_env_rules_respect_blessed_locations() {
        let src = "fn f() { let t = Instant::now(); }\n";
        assert!(analyze(&[file("crates/obs/src/lib.rs", src)]).findings.is_empty());
        let r = analyze(&[file("crates/core/src/lm.rs", src)]);
        assert!(r.findings.iter().any(|f| f.rule == "det-time"), "{:?}", r.findings);

        let src = "fn f() -> usize { std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1) }\n";
        assert!(analyze(&[file("crates/par/src/lib.rs", src)]).findings.is_empty());
        let r = analyze(&[file("crates/core/src/lm.rs", src)]);
        assert!(r.findings.iter().any(|f| f.rule == "det-thread"), "{:?}", r.findings);

        let src = "fn f() { let v = std::env::var(\"LCREC_OBS\"); }\n";
        assert!(analyze(&[file("crates/obs/src/lib.rs", src)]).findings.is_empty());
        let r = analyze(&[file("crates/obs/src/other.rs", src)]);
        assert!(r.findings.iter().any(|f| f.rule == "det-env"), "{:?}", r.findings);
    }

    #[test]
    fn det_allow_suppresses_and_goes_stale() {
        let src = format!(
            "fn f() {{\n    let mut seen: HashMap<u32, u32> = HashMap::new();\n    \
             let s: u32 = seen.values().sum(); {} lint: allow(det, reason = \"sum is \
             order-independent\")\n    let _ = s;\n}}\n",
            "//"
        );
        let r = analyze(&[file("crates/x/src/lib.rs", &src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
        assert_eq!(r.allows.len(), 1);
        assert!(r.allows[0].used);

        let stale = format!(
            "fn f() {{\n    {} lint: allow(det, reason = \"nothing here\")\n    let x = 1;\n}}\n",
            "//"
        );
        let r = analyze(&[file("crates/x/src/lib.rs", &stale)]);
        assert!(r.findings.iter().any(|f| f.rule == "stale-allow"), "{:?}", r.findings);
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    fn t() { let t = Instant::now(); }\n}\n";
        let r = analyze(&[file("crates/core/src/lm.rs", src)]);
        assert!(r.findings.is_empty(), "{:?}", r.findings);
    }
}
