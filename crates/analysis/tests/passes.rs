//! Integration tests for the analysis passes' external surfaces.
//!
//! The machine-readable JSON report (`--json`) and the audit table are
//! consumed by scripts and CI tooling, so their exact shape is pinned here:
//! a change to keys, ordering, or escaping must update these snapshots
//! deliberately.

use lcrec_analysis::annot::{audit_table, json_report, Allow, JsonFinding, Scope};

fn sample_allow(file: &str, line: usize, scope: Scope, reason: &str) -> Allow {
    Allow {
        file: file.into(),
        line,
        comment_line: line,
        scope,
        reason: reason.to_string(),
        used: true,
    }
}

#[test]
fn json_report_shape_is_stable() {
    let findings = vec![
        JsonFinding {
            file: "crates/x/src/lib.rs".into(),
            line: 7,
            rule: "panic-unwrap".into(),
            detail: "said \"hi\"".into(),
        },
        JsonFinding {
            file: "crates/a/src/lib.rs".into(),
            line: 2,
            rule: "det-time".into(),
            detail: "wall-clock read".into(),
        },
    ];
    let allows = vec![sample_allow("crates/y/src/lib.rs", 3, Scope::Det, "sum is order-independent")];
    let got = json_report("panicscan", &findings, &allows);
    let want = "{\n  \"pass\": \"panicscan\",\n  \"findings\": [\n    {\"file\": \
                \"crates/a/src/lib.rs\", \"line\": 2, \"rule\": \"det-time\", \"detail\": \
                \"wall-clock read\"},\n    {\"file\": \"crates/x/src/lib.rs\", \"line\": 7, \
                \"rule\": \"panic-unwrap\", \"detail\": \"said \\\"hi\\\"\"}\n  ],\n  \
                \"allowed\": [\n    {\"file\": \"crates/y/src/lib.rs\", \"line\": 3, \
                \"scope\": \"det\", \"reason\": \"sum is order-independent\"}\n  ]\n}\n";
    assert_eq!(got, want);
}

#[test]
fn empty_json_report_shape_is_stable() {
    let got = json_report("detlint", &[], &[]);
    assert_eq!(got, "{\n  \"pass\": \"detlint\",\n  \"findings\": [],\n  \"allowed\": []\n}\n");
}

#[test]
fn audit_table_rows_are_sorted_and_aligned() {
    let allows = vec![
        sample_allow("crates/z/src/lib.rs", 9, Scope::Panic, "len checked above"),
        sample_allow("crates/a/src/lib.rs", 4, Scope::Det, "sorted right after"),
    ];
    let got = audit_table(&allows);
    let want = "location               scope  reason\n\
                crates/a/src/lib.rs:4  det    sorted right after\n\
                crates/z/src/lib.rs:9  panic  len checked above\n";
    assert_eq!(got, want);
}
