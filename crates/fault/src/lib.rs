//! # lcrec-fault
//!
//! Deterministic fault injection and recovery primitives for the workspace:
//! a seeded [`FaultPlan`] that decides, reproducibly, where simulated
//! failures strike, and a bounded [`Backoff`] schedule that the recovery
//! paths use to retry them.
//!
//! Design rules (see `docs/ROBUSTNESS.md` for the full policy):
//!
//! * **Default off, zero surprise.** With `LCREC_FAULT` unset (or `0`) the
//!   plan is inert: every `should_fail` call returns `false` and every
//!   output of the workspace is bit-identical to a build without this crate.
//! * **Deterministic by seed.** A decision depends only on the plan's seed,
//!   the seam's name and a per-seam call counter (or an explicit caller
//!   index) — never on wall-clock, thread scheduling or memory addresses.
//!   Two runs with the same seed see the same faults in the same places.
//! * **Two seam classes.** [`Class::Transient`] seams simulate failures the
//!   library recovers from *internally* (worker hiccups, transient decode
//!   errors, torn checkpoint writes retried in place); results never change,
//!   so the whole test suite stays green with them enabled. [`Class::Outcome`]
//!   seams change typed outcomes (shed admissions, deadline expiries) and
//!   only fire in [`Mode::Chaos`], which the chaos tests opt into with an
//!   explicit plan.
//! * **Bounded bursts.** In [`Mode::Transient`] a seam never fires more than
//!   [`FaultPlan::BURST_CAP`] consecutive times, so any retry loop of at
//!   least `BURST_CAP + 1` attempts provably succeeds — the property that
//!   lets `scripts/check.sh` run the entire suite under `LCREC_FAULT=1`.
//!
//! Environment gate (documented in `docs/ENVIRONMENT.md`): `LCREC_FAULT`
//! selects the mode (`1` = transient, `all` = chaos), `LCREC_FAULT_SEED`
//! the seed.

#![warn(missing_docs)]

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// Environment variable selecting the fault-injection mode: unset/`0` off,
/// `1` transient seams only (safe: results never change), `all` every seam.
pub const FAULT_ENV: &str = "LCREC_FAULT";
/// Environment variable seeding the env-gated plan (default `0`).
pub const FAULT_SEED_ENV: &str = "LCREC_FAULT_SEED";

/// How a seam's injected failure relates to observable behaviour.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Class {
    /// Recovered internally (retries); results stay bit-identical.
    Transient,
    /// Changes a typed outcome (shed, timeout); chaos mode only.
    Outcome,
}

/// A named fault-injection point. Seams are declared as constants in
/// [`seams`] so call sites and tests agree on names and classes.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Seam {
    /// Stable name, used in hashing and diagnostics (`"serve.decode"`).
    pub name: &'static str,
    /// Whether injection here can change typed outcomes.
    pub class: Class,
}

/// The workspace's named fault seams.
pub mod seams {
    use super::{Class, Seam};

    /// Spurious admission pressure: `Engine::submit` sheds the request.
    pub const SERVE_ADMISSION: Seam =
        Seam { name: "serve.admission", class: Class::Outcome };
    /// Forced per-request deadline expiry at dispatch time.
    pub const SERVE_DEADLINE: Seam =
        Seam { name: "serve.deadline", class: Class::Outcome };
    /// Transient batch-decode failure, retried with bounded backoff.
    pub const SERVE_DECODE: Seam =
        Seam { name: "serve.decode", class: Class::Transient };
    /// Torn checkpoint write, retried by the atomic save helper.
    pub const CKPT_WRITE: Seam = Seam { name: "ckpt.write", class: Class::Transient };
    /// Transient worker error in the thread pool; the chunk is recomputed.
    pub const PAR_WORKER: Seam = Seam { name: "par.worker", class: Class::Transient };
}

/// Injection mode of a [`FaultPlan`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Mode {
    /// No seam ever fires.
    Off,
    /// Only [`Class::Transient`] seams fire, burst-capped — safe to enable
    /// for the whole test suite.
    Transient,
    /// Every seam fires, uncapped — for chaos tests with explicit plans.
    Chaos,
}

#[derive(Clone, Copy, Debug, Default)]
struct SeamState {
    calls: u64,
    consecutive: u32,
}

/// A seeded, deterministic fault-injection plan.
///
/// Library code asks the plan whether a named seam should fail right now
/// ([`FaultPlan::should_fail`], counter-based) or at an explicit index
/// ([`FaultPlan::should_fail_at`], stateless — used where calls race across
/// worker threads but decisions must not). Both are pure functions of
/// `(seed, seam, position)`, so a seed pins the entire fault schedule.
///
/// # Examples
///
/// ```
/// use lcrec_fault::{seams, FaultPlan};
///
/// // Inert by default: no seam ever fires.
/// let off = FaultPlan::disabled();
/// assert!(!off.should_fail(seams::SERVE_DECODE));
///
/// // A chaos plan fires deterministically: same seed, same schedule.
/// let a = FaultPlan::chaos(7);
/// let b = FaultPlan::chaos(7);
/// let run = |p: &FaultPlan| -> Vec<bool> {
///     (0..64).map(|_| p.should_fail(seams::SERVE_DEADLINE)).collect()
/// };
/// let schedule = run(&a);
/// assert_eq!(schedule, run(&b));
/// assert!(schedule.iter().any(|&f| f), "some faults fire");
/// assert!(!schedule.iter().all(|&f| f), "but not everywhere");
/// ```
#[derive(Debug)]
pub struct FaultPlan {
    mode: Mode,
    seed: u64,
    /// Inject when `hash % rate_den == 0`.
    rate_den: u64,
    counters: Mutex<BTreeMap<&'static str, SeamState>>,
}

impl FaultPlan {
    /// Most consecutive injections a seam can produce in
    /// [`Mode::Transient`]; retry loops with more attempts than this always
    /// succeed.
    pub const BURST_CAP: u32 = 2;

    /// Default injection rate: one call in `DEFAULT_RATE` fires.
    pub const DEFAULT_RATE: u64 = 8;

    fn new(mode: Mode, seed: u64) -> Self {
        FaultPlan {
            mode,
            seed,
            rate_den: Self::DEFAULT_RATE,
            counters: Mutex::new(BTreeMap::new()),
        }
    }

    /// A plan where no seam ever fires.
    pub fn disabled() -> Self {
        Self::new(Mode::Off, 0)
    }

    /// A transient-only plan: recoverable seams fire (burst-capped), typed
    /// outcomes never change.
    pub fn transient(seed: u64) -> Self {
        Self::new(Mode::Transient, seed)
    }

    /// A chaos plan: every seam fires, uncapped.
    pub fn chaos(seed: u64) -> Self {
        Self::new(Mode::Chaos, seed)
    }

    /// The plan selected by `LCREC_FAULT` / `LCREC_FAULT_SEED`: unset or
    /// `0` → [`FaultPlan::disabled`], `1` → [`FaultPlan::transient`],
    /// `all` (or `2`) → [`FaultPlan::chaos`]. Unparsable values are off.
    pub fn from_env() -> Self {
        let seed = std::env::var(FAULT_SEED_ENV)
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        match std::env::var(FAULT_ENV).ok().as_deref().map(str::trim) {
            Some("1") => Self::transient(seed),
            Some("all") | Some("2") => Self::chaos(seed),
            _ => Self::disabled(),
        }
    }

    /// Overrides the injection rate: roughly one call in `den` fires
    /// (clamped to ≥ 2 so a plan can never fire on every call).
    pub fn with_rate(mut self, den: u64) -> Self {
        self.rate_den = den.max(2);
        self
    }

    /// The plan's mode.
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True when at least one seam class can fire.
    pub fn is_active(&self) -> bool {
        self.mode != Mode::Off
    }

    fn class_enabled(&self, class: Class) -> bool {
        match self.mode {
            Mode::Off => false,
            Mode::Transient => class == Class::Transient,
            Mode::Chaos => true,
        }
    }

    fn decide(&self, seam: Seam, position: u64) -> bool {
        mix(self.seed ^ fnv1a64(seam.name.as_bytes()), position) % self.rate_den == 0
    }

    /// Counter-based injection decision: each call advances the seam's
    /// private counter, so a single-threaded call sequence sees a schedule
    /// that depends only on the seed. In [`Mode::Transient`] a burst of
    /// `true`s is capped at [`FaultPlan::BURST_CAP`].
    pub fn should_fail(&self, seam: Seam) -> bool {
        if !self.class_enabled(seam.class) {
            return false;
        }
        let mut guard = match self.counters.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let st = guard.entry(seam.name).or_default();
        let call = st.calls;
        st.calls += 1;
        let mut fire = self.decide(seam, call);
        if fire && self.mode == Mode::Transient && st.consecutive >= Self::BURST_CAP {
            fire = false;
        }
        st.consecutive = if fire { st.consecutive + 1 } else { 0 };
        fire
    }

    /// Stateless injection decision at an explicit `index` — for seams
    /// consulted concurrently from worker threads, where a shared counter
    /// would make the schedule depend on scheduling. The decision is a pure
    /// function of `(seed, seam, index)`; callers embed the attempt number
    /// in `index` when retrying.
    pub fn should_fail_at(&self, seam: Seam, index: u64) -> bool {
        self.class_enabled(seam.class) && self.decide(seam, index)
    }

    /// For an injected torn write of a `len`-byte payload: the deterministic
    /// number of bytes that "reach disk" before the simulated crash
    /// (always `< len`, and `0` for empty payloads).
    pub fn torn_len(&self, seam: Seam, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (mix(self.seed ^ fnv1a64(seam.name.as_bytes()), len as u64) % len as u64) as usize
    }

    /// Calls made so far against `seam` through [`FaultPlan::should_fail`].
    pub fn calls(&self, seam: Seam) -> u64 {
        let guard = match self.counters.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        guard.get(seam.name).map(|s| s.calls).unwrap_or(0)
    }
}

impl Clone for FaultPlan {
    /// Clones the configuration *and* the current seam counters, so a clone
    /// continues the original's schedule rather than restarting it.
    fn clone(&self) -> Self {
        let counters = match self.counters.lock() {
            Ok(g) => g.clone(),
            Err(p) => p.into_inner().clone(),
        };
        FaultPlan {
            mode: self.mode,
            seed: self.seed,
            rate_den: self.rate_den,
            counters: Mutex::new(counters),
        }
    }
}

/// The process-wide plan read once from the environment — used by seams in
/// code without a natural place to thread a plan through (the thread pool,
/// the checkpoint writer). Engines and chaos tests construct their own.
pub fn env_plan() -> &'static FaultPlan {
    static PLAN: OnceLock<FaultPlan> = OnceLock::new();
    PLAN.get_or_init(FaultPlan::from_env)
}

/// A bounded exponential-backoff schedule: `base_ms << attempt`, capped at
/// `cap_ms`, for at most `max_attempts` attempts. Delays are advisory — the
/// serving engine records rather than sleeps them, so tests stay fast and
/// deterministic.
///
/// The schedule is monotone non-decreasing and saturating: attempt numbers
/// far beyond the shift width return `cap_ms`, never wrap.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Backoff {
    base_ms: u64,
    cap_ms: u64,
    max_attempts: u32,
}

impl Backoff {
    /// A schedule with the given base delay, cap and attempt budget
    /// (`base_ms` clamped to ≥ 1, `cap_ms` to ≥ `base_ms`, `max_attempts`
    /// to ≥ 1).
    pub fn new(base_ms: u64, cap_ms: u64, max_attempts: u32) -> Self {
        let base_ms = base_ms.max(1);
        Backoff { base_ms, cap_ms: cap_ms.max(base_ms), max_attempts: max_attempts.max(1) }
    }

    /// The delay before retry number `attempt` (0-based), in milliseconds.
    pub fn delay_ms(&self, attempt: u32) -> u64 {
        let factor = 1u64.checked_shl(attempt).unwrap_or(u64::MAX);
        self.base_ms.saturating_mul(factor).min(self.cap_ms)
    }

    /// Total attempts allowed (initial try + retries).
    pub fn max_attempts(&self) -> u32 {
        self.max_attempts
    }

    /// The full schedule: one delay per allowed retry.
    pub fn delays(&self) -> impl Iterator<Item = u64> + '_ {
        (0..self.max_attempts.saturating_sub(1)).map(|a| self.delay_ms(a))
    }

    /// Sum of every delay the schedule can impose, in milliseconds.
    pub fn total_budget_ms(&self) -> u64 {
        self.delays().sum()
    }
}

impl Default for Backoff {
    /// The serving/checkpoint default: 1 ms base, 50 ms cap, 4 attempts —
    /// more attempts than [`FaultPlan::BURST_CAP`] consecutive transient
    /// faults, so transient-mode retries always succeed.
    fn default() -> Self {
        Backoff::new(1, 50, 4)
    }
}

impl fmt::Display for Backoff {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "backoff(base {}ms, cap {}ms, {} attempts)",
            self.base_ms, self.cap_ms, self.max_attempts
        )
    }
}

/// Deadline accounting used by the serving engine: a request that has
/// waited `waited_ms` against a budget of `deadline_ms` has expired exactly
/// when `waited_ms >= deadline_ms`. A zero budget therefore *always*
/// expires and a `u64::MAX` budget effectively never does — the two
/// deterministic extremes the tests pin.
pub fn deadline_expired(waited_ms: u64, deadline_ms: u64) -> bool {
    waited_ms >= deadline_ms
}

/// The FNV-1a 64-bit offset basis: the initial state for an incremental
/// hash built with [`fnv1a64_extend`].
pub const FNV1A64_BASIS: u64 = 0xcbf2_9ce4_8422_2325;

/// FNV-1a over `bytes` — the workspace's dependency-free stable hash, also
/// used by the checkpoint checksum trailer.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    fnv1a64_extend(FNV1A64_BASIS, bytes)
}

/// Extends an incremental FNV-1a state with more bytes. Feeding a stream
/// chunk by chunk — starting from [`FNV1A64_BASIS`] — produces exactly
/// [`fnv1a64`] of the concatenation, which is what lets the chunked
/// checkpoint reader verify a multi-megabyte trailer checksum while
/// holding only one chunk in memory.
pub fn fnv1a64_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// SplitMix64 finalizer over two words — the decision hash behind every
/// seam. Pure, stable across platforms.
fn mix(a: u64, b: u64) -> u64 {
    let mut z = a ^ b.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let p = FaultPlan::disabled();
        for _ in 0..200 {
            assert!(!p.should_fail(seams::SERVE_DECODE));
            assert!(!p.should_fail(seams::SERVE_ADMISSION));
            assert!(!p.should_fail_at(seams::PAR_WORKER, 3));
        }
    }

    #[test]
    fn transient_mode_gates_outcome_seams() {
        let p = FaultPlan::transient(1);
        let mut transient_fired = false;
        for _ in 0..500 {
            transient_fired |= p.should_fail(seams::SERVE_DECODE);
            assert!(!p.should_fail(seams::SERVE_ADMISSION), "outcome seam in transient mode");
            assert!(!p.should_fail(seams::SERVE_DEADLINE));
        }
        assert!(transient_fired, "transient seams must fire at this rate over 500 calls");
    }

    #[test]
    fn transient_bursts_are_capped() {
        for seed in 0..32 {
            let p = FaultPlan::transient(seed).with_rate(2); // aggressive
            let mut consecutive = 0u32;
            for _ in 0..2000 {
                if p.should_fail(seams::CKPT_WRITE) {
                    consecutive += 1;
                    assert!(consecutive <= FaultPlan::BURST_CAP, "seed {seed}");
                } else {
                    consecutive = 0;
                }
            }
        }
    }

    #[test]
    fn schedules_are_seed_deterministic_and_seed_sensitive() {
        let run = |seed: u64| -> Vec<bool> {
            let p = FaultPlan::chaos(seed);
            (0..256).map(|_| p.should_fail(seams::SERVE_DEADLINE)).collect()
        };
        assert_eq!(run(3), run(3));
        assert_ne!(run(3), run(4), "different seeds must produce different schedules");
    }

    #[test]
    fn seams_are_independent_streams() {
        let p = FaultPlan::chaos(9);
        let a: Vec<bool> = (0..128).map(|_| p.should_fail(seams::SERVE_DECODE)).collect();
        let q = FaultPlan::chaos(9);
        let b: Vec<bool> = (0..128).map(|_| q.should_fail(seams::SERVE_ADMISSION)).collect();
        assert_ne!(a, b, "seam name must enter the hash");
    }

    #[test]
    fn stateless_decisions_ignore_call_order() {
        let p = FaultPlan::chaos(5);
        let forward: Vec<bool> =
            (0..64).map(|i| p.should_fail_at(seams::PAR_WORKER, i)).collect();
        let backward: Vec<bool> =
            (0..64).rev().map(|i| p.should_fail_at(seams::PAR_WORKER, i)).collect();
        let mut backward = backward;
        backward.reverse();
        assert_eq!(forward, backward);
    }

    #[test]
    fn torn_len_is_a_strict_truncation() {
        let p = FaultPlan::chaos(11);
        assert_eq!(p.torn_len(seams::CKPT_WRITE, 0), 0);
        for len in [1usize, 2, 17, 4096] {
            let t = p.torn_len(seams::CKPT_WRITE, len);
            assert!(t < len, "torn write must lose at least one byte (len {len}, torn {t})");
            assert_eq!(t, p.torn_len(seams::CKPT_WRITE, len), "deterministic per length");
        }
    }

    #[test]
    fn clone_continues_the_schedule() {
        let p = FaultPlan::chaos(13);
        let head: Vec<bool> = (0..32).map(|_| p.should_fail(seams::SERVE_DECODE)).collect();
        let fork = p.clone();
        let a: Vec<bool> = (0..32).map(|_| p.should_fail(seams::SERVE_DECODE)).collect();
        let b: Vec<bool> = (0..32).map(|_| fork.should_fail(seams::SERVE_DECODE)).collect();
        assert_eq!(a, b, "clone must resume at the same counter, not restart");
        assert_eq!(head.len(), 32);
    }

    #[test]
    fn backoff_is_monotone_capped_and_bounded() {
        let b = Backoff::new(2, 40, 6);
        let delays: Vec<u64> = b.delays().collect();
        assert_eq!(delays.len(), 5, "attempts bound the schedule");
        for w in delays.windows(2) {
            assert!(w[0] <= w[1], "monotone non-decreasing: {delays:?}");
        }
        assert!(delays.iter().all(|&d| d <= 40), "capped: {delays:?}");
        assert_eq!(b.delay_ms(0), 2);
        assert_eq!(b.delay_ms(1), 4);
        // Saturation far beyond the shift width: caps, never wraps or panics.
        assert_eq!(b.delay_ms(63), 40);
        assert_eq!(b.delay_ms(200), 40);
        assert_eq!(b.total_budget_ms(), delays.iter().sum::<u64>());
    }

    #[test]
    fn backoff_clamps_degenerate_configs() {
        let b = Backoff::new(0, 0, 0);
        assert_eq!(b.max_attempts(), 1);
        assert_eq!(b.delays().count(), 0, "one attempt means zero retries");
        assert_eq!(b.delay_ms(5), 1, "cap clamps up to base");
    }

    #[test]
    fn deadline_math_extremes() {
        assert!(deadline_expired(0, 0), "zero budget always expires");
        assert!(deadline_expired(5, 5));
        assert!(!deadline_expired(4, 5));
        assert!(!deadline_expired(u64::MAX - 1, u64::MAX));
    }

    #[test]
    fn env_plan_is_stable() {
        // Whatever the environment says, repeated calls return the same
        // plan instance with the same configuration.
        let a = env_plan();
        let b = env_plan();
        assert_eq!(a.mode(), b.mode());
        assert_eq!(a.seed(), b.seed());
    }

    #[test]
    fn fnv_matches_reference_vectors() {
        assert_eq!(fnv1a64(b""), 0xcbf29ce484222325);
        assert_eq!(fnv1a64(b"a"), 0xaf63dc4c8601ec8c);
    }
}
