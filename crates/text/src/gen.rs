//! Deterministic synthetic text generation: item titles, descriptions,
//! reviews, and the GPT-3.5-oracle substitutes (user intentions and
//! preference summaries).
//!
//! All generators draw words from the item's category fields in the
//! [`Taxonomy`], so textual similarity between two
//! items reflects their category proximity — coarse category words are
//! shared broadly, sub-category words narrowly. This mirrors how real
//! Amazon titles/descriptions cluster, and is exactly the signal the paper's
//! RQ-VAE indexing consumes.

use crate::taxonomy::Taxonomy;
use rand::rngs::StdRng;
use rand::seq::IndexedRandom;
use rand::Rng;

/// The category placement and identity of one synthetic item.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ItemProfile {
    /// Coarse category index.
    pub coarse: usize,
    /// Sub-category index within the coarse category.
    pub sub: usize,
    /// Brand index into [`Taxonomy::brands`].
    pub brand: usize,
    /// Distinguishes items sharing a category/brand (model number).
    pub variant: u32,
}

impl ItemProfile {
    /// Flattened sub-category index.
    pub fn flat_sub(&self, tax: &Taxonomy) -> usize {
        tax.sub_index(self.coarse, self.sub)
    }
}

/// Generates all item- and user-facing text for one domain.
#[derive(Debug)]
pub struct TextGen<'a> {
    tax: &'a Taxonomy,
}

impl<'a> TextGen<'a> {
    /// A generator bound to one taxonomy.
    pub fn new(tax: &'a Taxonomy) -> Self {
        TextGen { tax }
    }

    /// The underlying taxonomy.
    pub fn taxonomy(&self) -> &'a Taxonomy {
        self.tax
    }

    fn pick<T: Copy>(&self, rng: &mut StdRng, xs: &[T]) -> T {
        *xs.choose(rng).expect("non-empty word field")
    }

    /// Item title, e.g. `"pixelforge openworld quest edition 3"`.
    pub fn title(&self, p: &ItemProfile, rng: &mut StdRng) -> String {
        let c = &self.tax.coarse[p.coarse];
        let s = &c.subs[p.sub];
        let brand = self.tax.brands[p.brand];
        let w1 = self.pick(rng, s.words);
        let w2 = self.pick(rng, c.words);
        let series = ["edition", "series", "pro", "classic", "plus", "deluxe"];
        let tag = self.pick(rng, &series);
        format!("{brand} {w1} {w2} {tag} {}", p.variant)
    }

    /// Multi-sentence item description referencing category attributes.
    pub fn description(&self, p: &ItemProfile, rng: &mut StdRng) -> String {
        let c = &self.tax.coarse[p.coarse];
        let s = &c.subs[p.sub];
        let brand = self.tax.brands[p.brand];
        let a1 = self.pick(rng, s.attributes);
        let a2 = self.pick(rng, s.attributes);
        let a3 = self.pick(rng, s.attributes);
        let w1 = self.pick(rng, s.words);
        let w2 = self.pick(rng, c.words);
        let w3 = self.pick(rng, s.words);
        format!(
            "the {brand} {name} delivers {a1} {w2} with a {a2} feel . \
             built for {w1} enthusiasts it combines {a3} {w3} and dependable everyday performance .",
            name = s.name,
        )
    }

    /// A short user review of the item with the given sentiment in `[0,1]`.
    pub fn review(&self, p: &ItemProfile, sentiment: f32, rng: &mut StdRng) -> String {
        let c = &self.tax.coarse[p.coarse];
        let s = &c.subs[p.sub];
        let a = self.pick(rng, s.attributes);
        let w = self.pick(rng, s.words);
        let w2 = self.pick(rng, c.words);
        if sentiment > 0.66 {
            format!("absolutely love the {a} {w} , best {w2} purchase i have made .")
        } else if sentiment > 0.33 {
            format!("the {w} is {a} enough and the {w2} works as expected .")
        } else {
            format!("disappointed , the {w} felt cheap and the {a} {w2} did not hold up .")
        }
    }

    /// GPT-3.5 substitute: an intention query a user might type when looking
    /// for this item (paper §III-C3b). The query references the item's
    /// semantics without naming it.
    pub fn intention(&self, p: &ItemProfile, rng: &mut StdRng) -> String {
        let c = &self.tax.coarse[p.coarse];
        let s = &c.subs[p.sub];
        let a1 = self.pick(rng, s.attributes);
        let a2 = self.pick(rng, s.attributes);
        let w1 = self.pick(rng, s.words);
        let w2 = self.pick(rng, c.words);
        format!("i want something {a1} with {w1} {w2} support that feels {a2} and fits a {name} workflow",
                name = s.name)
    }

    /// GPT-3.5 substitute: an explicit preference paragraph inferred from a
    /// user's interaction history (paper §III-C3c).
    pub fn preference(&self, history: &[ItemProfile], rng: &mut StdRng) -> String {
        if history.is_empty() {
            return "the user has no clear preference yet .".to_string();
        }
        // Dominant coarse category and sub-category of the history.
        let mut coarse_counts = vec![0usize; self.tax.num_coarse()];
        let mut sub_counts = vec![0usize; self.tax.num_subs()];
        for p in history {
            coarse_counts[p.coarse] += 1;
            sub_counts[p.flat_sub(self.tax)] += 1;
        }
        let top_coarse = argmax(&coarse_counts);
        let top_sub = argmax(&sub_counts);
        let c = &self.tax.coarse[top_coarse];
        let s = self.tax.sub(top_sub);
        let a = self.pick(rng, s.attributes);
        let recent = history.last().expect("non-empty");
        let rc = &self.tax.coarse[recent.coarse];
        let rs = &rc.subs[recent.sub];
        format!(
            "the user is mainly interested in {cname} and especially {sname} products , \
             values {a} quality , and has recently explored {rname} items .",
            cname = c.name,
            sname = s.name,
            rname = rs.name,
        )
    }

    /// Samples a random item profile (used by tests and tiny fixtures).
    pub fn random_profile(&self, rng: &mut StdRng) -> ItemProfile {
        let coarse = rng.random_range(0..self.tax.num_coarse());
        let sub = rng.random_range(0..self.tax.coarse[coarse].subs.len());
        let brand = rng.random_range(0..self.tax.brands.len());
        ItemProfile { coarse, sub, brand, variant: rng.random_range(1..100) }
    }
}

fn argmax(xs: &[usize]) -> usize {
    xs.iter().enumerate().max_by_key(|(_, &v)| v).map(|(i, _)| i).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::taxonomy::{GAMES, TINY};
    use rand::SeedableRng;

    fn rng(seed: u64) -> StdRng {
        StdRng::seed_from_u64(seed)
    }

    fn profile() -> ItemProfile {
        ItemProfile { coarse: 0, sub: 1, brand: 2, variant: 7 }
    }

    #[test]
    fn title_contains_brand_and_variant() {
        let g = TextGen::new(&GAMES);
        let t = g.title(&profile(), &mut rng(1));
        assert!(t.contains("questline"), "{t}");
        assert!(t.ends_with('7'), "{t}");
    }

    #[test]
    fn generation_is_deterministic() {
        let g = TextGen::new(&GAMES);
        let a = g.description(&profile(), &mut rng(5));
        let b = g.description(&profile(), &mut rng(5));
        assert_eq!(a, b);
    }

    #[test]
    fn descriptions_of_same_sub_share_words() {
        let g = TextGen::new(&GAMES);
        let p1 = ItemProfile { coarse: 1, sub: 0, brand: 0, variant: 1 };
        let p2 = ItemProfile { coarse: 1, sub: 0, brand: 5, variant: 9 };
        let d1 = g.description(&p1, &mut rng(10));
        let d2 = g.description(&p2, &mut rng(20));
        let w1: std::collections::HashSet<&str> = d1.split_whitespace().collect();
        let w2: std::collections::HashSet<&str> = d2.split_whitespace().collect();
        let shared = w1.intersection(&w2).count();
        assert!(shared >= 5, "same-sub descriptions share {shared} words:\n{d1}\n{d2}");
    }

    #[test]
    fn review_sentiment_changes_tone() {
        let g = TextGen::new(&GAMES);
        let pos = g.review(&profile(), 0.9, &mut rng(3));
        let neg = g.review(&profile(), 0.1, &mut rng(3));
        assert!(pos.contains("love"));
        assert!(neg.contains("disappointed"));
    }

    #[test]
    fn preference_names_dominant_category() {
        let g = TextGen::new(&TINY);
        let hist = vec![
            ItemProfile { coarse: 1, sub: 0, brand: 0, variant: 1 },
            ItemProfile { coarse: 1, sub: 0, brand: 1, variant: 2 },
            ItemProfile { coarse: 0, sub: 1, brand: 0, variant: 3 },
        ];
        let p = g.preference(&hist, &mut rng(2));
        assert!(p.contains("tools"), "{p}");
        assert!(p.contains("hammer"), "{p}");
    }

    #[test]
    fn preference_handles_empty_history() {
        let g = TextGen::new(&TINY);
        let p = g.preference(&[], &mut rng(2));
        assert!(p.contains("no clear preference"));
    }

    #[test]
    fn intention_mentions_sub_name() {
        let g = TextGen::new(&GAMES);
        let p = ItemProfile { coarse: 4, sub: 2, brand: 1, variant: 3 };
        let i = g.intention(&p, &mut rng(4));
        assert!(i.contains("gaming controller"), "{i}");
    }
}
