//! # lcrec-text
//!
//! The language substrate for the LC-Rec reproduction: synthetic category
//! taxonomies, deterministic item-text generation (titles, descriptions,
//! reviews), GPT-3.5-oracle substitutes (user intentions, preference
//! summaries), a word-level tokenizer, and the LLaMA-encoder substitute
//! that turns item text into embeddings for RQ-VAE indexing.
//!
//! See `DESIGN.md` at the workspace root for why each substitution
//! preserves the behaviour the paper's method relies on.

#![warn(missing_docs)]

pub mod encoder;
pub mod gen;
pub mod taxonomy;
pub mod token;

pub use encoder::TextEncoder;
pub use gen::{ItemProfile, TextGen};
pub use taxonomy::Taxonomy;
pub use token::Vocab;
