//! Category taxonomies for the three synthetic domains.
//!
//! The paper evaluates on Amazon "Musical Instruments", "Arts, Crafts and
//! Sewing" and "Video Games". Each synthetic domain mirrors that structure
//! with a two-level category tree (coarse → sub) plus per-category word
//! fields: name words, attribute words and brand names. Item text is
//! generated from these fields, so text similarity correlates with category
//! proximity — the property the RQ-VAE indices must discover.

/// A sub-category: the leaf level of the taxonomy.
#[derive(Debug)]
pub struct SubCategory {
    /// Display name, e.g. "acoustic guitar".
    pub name: &'static str,
    /// Words characteristic of this sub-category.
    pub words: &'static [&'static str],
    /// Attribute/feature words used in descriptions and reviews.
    pub attributes: &'static [&'static str],
}

/// A coarse category containing several sub-categories.
#[derive(Debug)]
pub struct CoarseCategory {
    /// Display name, e.g. "guitars".
    pub name: &'static str,
    /// Words shared by everything under this coarse category.
    pub words: &'static [&'static str],
    /// Sub-categories.
    pub subs: &'static [SubCategory],
}

/// A complete domain taxonomy.
#[derive(Debug)]
pub struct Taxonomy {
    /// Domain name, e.g. "Instruments".
    pub name: &'static str,
    /// Brand names shared across the domain.
    pub brands: &'static [&'static str],
    /// Coarse categories.
    pub coarse: &'static [CoarseCategory],
    /// Bundles of sub-categories that co-occur in user behaviour without
    /// being textually similar (e.g. guitars ↔ amplifiers). Each entry lists
    /// global sub-category indices (see [`Taxonomy::sub_index`]). These give
    /// the data a collaborative-semantics axis orthogonal to language — the
    /// distinction Table V of the paper probes.
    pub bundles: &'static [&'static [usize]],
}

impl Taxonomy {
    /// Total number of sub-categories (leaves).
    pub fn num_subs(&self) -> usize {
        self.coarse.iter().map(|c| c.subs.len()).sum()
    }

    /// Number of coarse categories.
    pub fn num_coarse(&self) -> usize {
        self.coarse.len()
    }

    /// Flattened index of sub-category `sub` within coarse `coarse`.
    pub fn sub_index(&self, coarse: usize, sub: usize) -> usize {
        self.coarse[..coarse].iter().map(|c| c.subs.len()).sum::<usize>() + sub
    }

    /// Inverse of [`Taxonomy::sub_index`].
    pub fn sub_coords(&self, flat: usize) -> (usize, usize) {
        let mut rest = flat;
        for (ci, c) in self.coarse.iter().enumerate() {
            if rest < c.subs.len() {
                return (ci, rest);
            }
            rest -= c.subs.len();
        }
        panic!("sub index {flat} out of range ({} subs)", self.num_subs());
    }

    /// The sub-category at a flattened index.
    pub fn sub(&self, flat: usize) -> &SubCategory {
        let (c, s) = self.sub_coords(flat);
        &self.coarse[c].subs[s]
    }

    /// The bundle containing `flat_sub`, if any.
    pub fn bundle_of(&self, flat_sub: usize) -> Option<&'static [usize]> {
        self.bundles.iter().copied().find(|b| b.contains(&flat_sub))
    }
}

macro_rules! sub {
    ($name:literal, $words:expr, $attrs:expr) => {
        SubCategory { name: $name, words: $words, attributes: $attrs }
    };
}

/// The "Musical Instruments" style domain.
pub static INSTRUMENTS: Taxonomy = Taxonomy {
    name: "Instruments",
    brands: &[
        "harmonia", "tonecraft", "melodix", "bravura", "cadenza", "fortepiano", "reverbia",
        "octavia", "lyricon", "sonanta",
    ],
    coarse: &[
        CoarseCategory {
            name: "guitars",
            words: &["guitar", "fretboard", "strings", "neck", "pickup", "chord", "strum"],
            subs: &[
                sub!("acoustic guitar", &["acoustic", "dreadnought", "spruce", "rosewood", "unplugged"],
                     &["warm", "resonant", "handcrafted", "solid", "top", "tone"]),
                sub!("electric guitar", &["electric", "humbucker", "tremolo", "solidbody", "overdrive"],
                     &["sustain", "versatile", "fast", "action", "gloss", "finish"]),
                sub!("bass guitar", &["bass", "lowend", "groove", "fourstring", "precision"],
                     &["punchy", "deep", "tight", "rumble", "balanced", "weight"]),
            ],
        },
        CoarseCategory {
            name: "keyboards",
            words: &["keyboard", "keys", "piano", "octave", "pedal", "velocity"],
            subs: &[
                sub!("digital piano", &["digital", "weighted", "hammer", "grand", "concert"],
                     &["realistic", "touch", "sampled", "dynamics", "quiet", "practice"]),
                sub!("synthesizer", &["synth", "oscillator", "filter", "analog", "modular", "patch"],
                     &["fat", "warm", "programmable", "presets", "sculpt", "waveform"]),
                sub!("midi controller", &["midi", "controller", "pads", "knobs", "daw", "usb"],
                     &["portable", "mappable", "responsive", "compact", "studio", "workflow"]),
            ],
        },
        CoarseCategory {
            name: "drums",
            words: &["drum", "percussion", "rhythm", "beat", "stick", "cymbal"],
            subs: &[
                sub!("acoustic drum kit", &["kick", "snare", "tom", "hihat", "shell", "maple"],
                     &["loud", "crisp", "tunable", "sturdy", "stage", "hardware"]),
                sub!("electronic drums", &["electronic", "mesh", "module", "trigger", "sampler"],
                     &["silent", "sensitivity", "kits", "headphone", "apartment", "usbmidi"]),
                sub!("hand percussion", &["cajon", "bongo", "djembe", "shaker", "tambourine"],
                     &["organic", "travel", "handmade", "goatskin", "bright", "accent"]),
            ],
        },
        CoarseCategory {
            name: "recording gear",
            words: &["studio", "audio", "signal", "record", "mix", "sound"],
            subs: &[
                sub!("microphone", &["microphone", "condenser", "cardioid", "diaphragm", "vocal"],
                     &["clear", "detailed", "lownoise", "shockmount", "podcast", "broadcast"]),
                sub!("audio interface", &["interface", "preamp", "phantom", "converter", "latency"],
                     &["clean", "gain", "driver", "buspowered", "reliable", "channels"]),
                sub!("studio monitors", &["monitor", "woofer", "tweeter", "nearfield", "flat"],
                     &["accurate", "imaging", "reference", "bassreflex", "crossover", "room"]),
            ],
        },
        CoarseCategory {
            name: "wind instruments",
            words: &["wind", "breath", "reed", "brass", "embouchure", "valve"],
            subs: &[
                sub!("saxophone", &["saxophone", "alto", "tenor", "lacquer", "jazz"],
                     &["smoky", "expressive", "intonation", "pads", "smooth", "solo"]),
                sub!("flute", &["flute", "silver", "headjoint", "trill", "classical"],
                     &["airy", "light", "responsive", "polished", "orchestra", "sweet"]),
                sub!("trumpet", &["trumpet", "mouthpiece", "slide", "bell", "fanfare"],
                     &["bright", "bold", "projection", "compensating", "marching", "shine"]),
            ],
        },
        CoarseCategory {
            name: "accessories",
            words: &["accessory", "gear", "replacement", "protect", "setup"],
            subs: &[
                sub!("instrument cables", &["cable", "jack", "plug", "shielded", "patch"],
                     &["durable", "noiseless", "flexible", "gold", "connector", "lifetime"]),
                sub!("guitar amplifier", &["amplifier", "amp", "tube", "wattage", "speaker", "combo"],
                     &["crunchy", "headroom", "reverb", "footswitch", "gigready", "classic"]),
                sub!("instrument stands", &["stand", "mount", "tripod", "holder", "rack"],
                     &["stable", "foldable", "padded", "adjustable", "secure", "lightweight"]),
            ],
        },
    ],
    // Players buy instruments together with amps, cables and stands; home
    // producers pair controllers with interfaces and monitors.
    bundles: &[
        &[1, 2, 16, 15, 17],  // electric/bass guitar + amp + cables + stands
        &[5, 10, 11, 0],      // midi controller + interface + monitors (+ acoustic for singer-songwriters)
        &[7, 9, 4],           // e-drums + microphone + synthesizer
    ],
};

/// The "Arts, Crafts and Sewing" style domain.
pub static ARTS: Taxonomy = Taxonomy {
    name: "Arts",
    brands: &[
        "craftland", "artisania", "pigmenta", "stitchery", "canvasco", "hueforge", "paperlane",
        "loomly", "glazeworks", "inkling",
    ],
    coarse: &[
        CoarseCategory {
            name: "painting",
            words: &["paint", "color", "brush", "palette", "pigment", "canvas"],
            subs: &[
                sub!("acrylic paints", &["acrylic", "heavybody", "matte", "fastdrying", "tube"],
                     &["vibrant", "blendable", "opaque", "lightfast", "nontoxic", "studio"]),
                sub!("watercolors", &["watercolor", "pan", "wash", "transparent", "granulating"],
                     &["luminous", "delicate", "rewettable", "flowing", "travel", "botanical"]),
                sub!("oil paints", &["oil", "linseed", "glaze", "impasto", "turpentine"],
                     &["rich", "buttery", "slow", "classic", "archival", "masterwork"]),
            ],
        },
        CoarseCategory {
            name: "drawing",
            words: &["draw", "sketch", "line", "shade", "paper", "artist"],
            subs: &[
                sub!("colored pencils", &["pencil", "colored", "core", "sharpen", "layering"],
                     &["smooth", "breakresistant", "saturated", "premium", "set", "blend"]),
                sub!("markers", &["marker", "alphabased", "nib", "dualtip", "refill"],
                     &["streakfree", "juicy", "crisp", "illustration", "manga", "bleedproof"]),
                sub!("charcoal and pastels", &["charcoal", "pastel", "smudge", "fixative", "soft"],
                     &["expressive", "velvety", "dusty", "portrait", "tonal", "gesture"]),
            ],
        },
        CoarseCategory {
            name: "sewing",
            words: &["sew", "stitch", "fabric", "thread", "seam", "needle"],
            subs: &[
                sub!("sewing machines", &["machine", "bobbin", "presser", "zigzag", "buttonhole"],
                     &["quiet", "sturdy", "automatic", "speed", "beginner", "heavy"]),
                sub!("quilting supplies", &["quilt", "batting", "rotary", "patchwork", "binding"],
                     &["precise", "cozy", "heirloom", "block", "layered", "gift"]),
                sub!("embroidery", &["embroidery", "hoop", "floss", "crossstitch", "sampler"],
                     &["relaxing", "detailed", "colorful", "kit", "pattern", "vintage"]),
            ],
        },
        CoarseCategory {
            name: "yarn crafts",
            words: &["yarn", "knit", "loop", "skein", "fiber", "cozy"],
            subs: &[
                sub!("knitting needles", &["knitting", "circular", "bamboo", "gauge", "cast"],
                     &["smooth", "clicky", "warm", "ergonomic", "interchangeable", "sock"]),
                sub!("crochet hooks", &["crochet", "hook", "amigurumi", "granny", "chain"],
                     &["comfortable", "grippy", "colorcoded", "plush", "toy", "blanket"]),
                sub!("wool yarn", &["wool", "merino", "worsted", "dyed", "plied"],
                     &["soft", "springy", "handdyed", "natural", "chunky", "gradient"]),
            ],
        },
        CoarseCategory {
            name: "paper crafts",
            words: &["papercraft", "card", "cut", "fold", "glue", "decorate"],
            subs: &[
                sub!("scrapbooking", &["scrapbook", "album", "sticker", "washi", "memory"],
                     &["acidfree", "themed", "adhesive", "photo", "journaling", "keepsake"]),
                sub!("origami", &["origami", "crease", "kami", "modular", "crane"],
                     &["meditative", "geometric", "doublesided", "foil", "tutorial", "delight"]),
                sub!("calligraphy", &["calligraphy", "ink", "lettering", "flourish", "script"],
                     &["elegant", "practice", "nibs", "flowing", "invitation", "gothic"]),
            ],
        },
        CoarseCategory {
            name: "pottery and sculpting",
            words: &["clay", "sculpt", "kiln", "form", "glaze", "wheel"],
            subs: &[
                sub!("polymer clay", &["polymer", "ovenbake", "cane", "millefiori", "charm"],
                     &["pliable", "colorful", "durable", "jewelry", "miniature", "craft"]),
                sub!("pottery tools", &["pottery", "trimming", "rib", "sponge", "throwing"],
                     &["balanced", "sharp", "wooden", "studio", "ceramic", "professional"]),
                sub!("carving", &["carve", "whittle", "chisel", "basswood", "relief"],
                     &["sharp", "controlled", "grain", "rustic", "handle", "detail"]),
            ],
        },
    ],
    bundles: &[
        &[0, 3, 5, 13],   // acrylics + pencils + pastels + scrapbooking (mixed-media artists)
        &[6, 7, 8, 11],   // sewing machine + quilting + embroidery + wool
        &[15, 16, 14, 2], // polymer clay + pottery tools + calligraphy + oils (studio hobbyists)
    ],
};

/// The "Video Games" style domain.
pub static GAMES: Taxonomy = Taxonomy {
    name: "Games",
    brands: &[
        "pixelforge", "novaplay", "questline", "arcadia", "warpgate", "polybit", "dreamloop",
        "vortex", "gritstone", "starfall",
    ],
    coarse: &[
        CoarseCategory {
            name: "action games",
            words: &["action", "combat", "battle", "weapon", "enemy", "mission"],
            subs: &[
                sub!("open world adventure", &["openworld", "explore", "quest", "map", "sidequest"],
                     &["immersive", "vast", "freedom", "dynamic", "story", "environment"]),
                sub!("shooter", &["shooter", "fps", "aim", "multiplayer", "arena"],
                     &["fast", "competitive", "ranked", "precise", "loadout", "team"]),
                sub!("fighting game", &["fighting", "combo", "versus", "tournament", "roster"],
                     &["technical", "responsive", "balanced", "arcade", "characters", "frame"]),
            ],
        },
        CoarseCategory {
            name: "role playing",
            words: &["rpg", "character", "level", "skill", "party", "lore"],
            subs: &[
                sub!("fantasy rpg", &["fantasy", "dragon", "mage", "dungeon", "sword"],
                     &["epic", "deep", "branching", "loot", "crafting", "legend"]),
                sub!("japanese rpg", &["jrpg", "turnbased", "anime", "summon", "overworld"],
                     &["charming", "emotional", "soundtrack", "classic", "cast", "journey"]),
                sub!("strategy rpg", &["tactics", "grid", "permadeath", "formation", "campaign"],
                     &["thoughtful", "challenging", "positioning", "units", "replayable", "depth"]),
            ],
        },
        CoarseCategory {
            name: "sports and racing",
            words: &["sports", "season", "league", "score", "stadium", "race"],
            subs: &[
                sub!("basketball game", &["basketball", "dunk", "court", "franchise", "playoffs"],
                     &["realistic", "smooth", "animation", "roster", "career", "online"]),
                sub!("soccer game", &["soccer", "goal", "club", "transfer", "derby"],
                     &["authentic", "tactical", "stadiums", "ultimate", "kits", "broadcast"]),
                sub!("racing game", &["racing", "drift", "circuit", "garage", "turbo"],
                     &["fast", "tuning", "photorealistic", "handling", "career", "wheel"]),
            ],
        },
        CoarseCategory {
            name: "family and puzzle",
            words: &["family", "puzzle", "party", "fun", "casual", "minigame"],
            subs: &[
                sub!("platformer", &["platformer", "jump", "coin", "sidescroll", "secret"],
                     &["colorful", "tight", "charming", "coop", "levels", "nostalgic"]),
                sub!("puzzle game", &["logic", "brain", "match", "block", "riddle"],
                     &["clever", "relaxing", "addictive", "minimalist", "satisfying", "zen"]),
                sub!("party game", &["minigames", "board", "friends", "couch", "silly"],
                     &["hilarious", "accessible", "chaotic", "multiplayer", "family", "night"]),
            ],
        },
        CoarseCategory {
            name: "consoles and hardware",
            words: &["console", "hardware", "storage", "hdmi", "wireless", "edition"],
            subs: &[
                sub!("home console", &["4k", "hdr", "terabyte", "exclusive", "dock"],
                     &["powerful", "sleek", "quiet", "backward", "bundle", "nextgen"]),
                sub!("handheld console", &["handheld", "portable", "battery", "oled", "sleep"],
                     &["travel", "comfortable", "library", "bright", "pocket", "anywhere"]),
                sub!("gaming controller", &["controller", "gamepad", "dpad", "thumbstick", "rumble"],
                     &["ergonomic", "responsive", "rechargeable", "grip", "wireless", "pro"]),
            ],
        },
        CoarseCategory {
            name: "simulation and builders",
            words: &["simulation", "build", "manage", "sandbox", "create", "economy"],
            subs: &[
                sub!("city builder", &["city", "zoning", "traffic", "mayor", "infrastructure"],
                     &["sprawling", "detailed", "systems", "planning", "mods", "scale"]),
                sub!("life sim", &["life", "farm", "village", "relationship", "seasons"],
                     &["wholesome", "cozy", "routine", "pets", "decorate", "community"]),
                sub!("flight sim", &["flight", "cockpit", "aircraft", "runway", "weather"],
                     &["realistic", "instruments", "vast", "physics", "study", "horizon"]),
            ],
        },
    ],
    bundles: &[
        &[12, 13, 14, 1],  // console + handheld + controller + shooter (hardware buyers)
        &[0, 3, 16, 15],   // open-world + fantasy rpg + life sim + city builder
        &[6, 7, 8, 14],    // sports titles + controller
    ],
};

/// A minimal taxonomy for unit tests: two coarse categories, two subs each.
pub static TINY: Taxonomy = Taxonomy {
    name: "Tiny",
    brands: &["alpha", "beta"],
    coarse: &[
        CoarseCategory {
            name: "widgets",
            words: &["widget", "gizmo", "gear"],
            subs: &[
                sub!("red widget", &["red", "crimson"], &["shiny", "small"]),
                sub!("blue widget", &["blue", "azure"], &["matte", "large"]),
            ],
        },
        CoarseCategory {
            name: "tools",
            words: &["tool", "handle", "steel"],
            subs: &[
                sub!("hammer", &["hammer", "mallet"], &["heavy", "balanced"]),
                sub!("wrench", &["wrench", "spanner"], &["adjustable", "forged"]),
            ],
        },
    ],
    bundles: &[&[0, 2], &[1, 3]],
};

/// Looks up a built-in taxonomy by domain name (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static Taxonomy> {
    match name.to_ascii_lowercase().as_str() {
        "instruments" => Some(&INSTRUMENTS),
        "arts" => Some(&ARTS),
        "games" => Some(&GAMES),
        "tiny" => Some(&TINY),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_domains_have_consistent_structure() {
        for tax in [&INSTRUMENTS, &ARTS, &GAMES] {
            assert_eq!(tax.num_coarse(), 6, "{}", tax.name);
            assert_eq!(tax.num_subs(), 18, "{}", tax.name);
            for c in tax.coarse {
                assert!(!c.words.is_empty());
                for s in c.subs {
                    assert!(s.words.len() >= 4, "{}.{}", c.name, s.name);
                    assert!(s.attributes.len() >= 4);
                }
            }
            assert!(!tax.brands.is_empty());
        }
    }

    #[test]
    fn sub_index_round_trips() {
        for tax in [&INSTRUMENTS, &ARTS, &GAMES, &TINY] {
            for flat in 0..tax.num_subs() {
                let (c, s) = tax.sub_coords(flat);
                assert_eq!(tax.sub_index(c, s), flat);
            }
        }
    }

    #[test]
    fn bundles_reference_valid_subs() {
        for tax in [&INSTRUMENTS, &ARTS, &GAMES, &TINY] {
            for bundle in tax.bundles {
                for &s in *bundle {
                    assert!(s < tax.num_subs(), "{}: bundle sub {s}", tax.name);
                }
            }
        }
    }

    #[test]
    fn bundle_of_finds_membership() {
        assert!(INSTRUMENTS.bundle_of(1).is_some());
        // Sub 3 (digital piano) is in no instruments bundle.
        assert!(INSTRUMENTS.bundle_of(3).is_none());
    }

    #[test]
    fn by_name_lookup() {
        assert!(by_name("games").is_some());
        assert!(by_name("GAMES").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn domains_use_distinct_vocabulary() {
        // The three domains should barely overlap in sub-category words;
        // this keeps their text embeddings distinguishable.
        let collect = |t: &Taxonomy| -> std::collections::HashSet<&str> {
            t.coarse
                .iter()
                .flat_map(|c| c.subs.iter().flat_map(|s| s.words.iter().copied()))
                .collect()
        };
        let a = collect(&INSTRUMENTS);
        let b = collect(&GAMES);
        let overlap = a.intersection(&b).count();
        assert!(overlap <= 2, "instrument/game word overlap: {overlap}");
    }
}
