//! Deterministic text encoder — the substitute for the paper's LLaMA-based
//! item-embedding step.
//!
//! The paper feeds each item's title+description through LLaMA and
//! mean-pools token representations (§IV-A4). Here each word is mapped to a
//! fixed pseudo-random unit vector derived from a hash of the word, and a
//! text embedding is the mean over its words. Because synthetic
//! titles/descriptions draw from category word fields, items of the same
//! (sub-)category share many words and therefore land close together —
//! precisely the geometry the RQ-VAE indexing step consumes.

use lcrec_tensor::Tensor;
use std::collections::HashMap;

/// Mean-pooled bag-of-word-vectors text encoder.
#[derive(Debug)]
pub struct TextEncoder {
    dim: usize,
    seed: u64,
    cache: HashMap<String, Vec<f32>>,
}

impl TextEncoder {
    /// An encoder producing `dim`-dimensional embeddings. Different seeds
    /// give different (but internally consistent) embedding spaces.
    pub fn new(dim: usize, seed: u64) -> Self {
        assert!(dim > 0);
        TextEncoder { dim, seed, cache: HashMap::new() }
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// The fixed unit vector for one word.
    pub fn word_vector(&mut self, word: &str) -> &[f32] {
        if !self.cache.contains_key(word) {
            let v = unit_vector_for(word, self.dim, self.seed);
            self.cache.insert(word.to_string(), v);
        }
        self.cache.get(word).expect("just inserted")
    }

    /// Encodes a text as the mean of its word vectors. Empty text maps to
    /// the zero vector.
    pub fn encode(&mut self, text: &str) -> Vec<f32> {
        let mut acc = vec![0.0f32; self.dim];
        let mut n = 0usize;
        for w in crate::token::split_words(text) {
            let v = self.word_vector(w);
            for (a, &x) in acc.iter_mut().zip(v) {
                *a += x;
            }
            n += 1;
        }
        if n > 0 {
            let inv = 1.0 / n as f32;
            acc.iter_mut().for_each(|a| *a *= inv);
        }
        acc
    }

    /// Encodes many texts into an `[n, dim]` tensor.
    pub fn encode_batch<'a>(&mut self, texts: impl IntoIterator<Item = &'a str>) -> Tensor {
        let mut data = Vec::new();
        let mut n = 0;
        for t in texts {
            data.extend(self.encode(t));
            n += 1;
        }
        Tensor::new(&[n, self.dim], data)
    }
}

/// FNV-1a hash of a string mixed with a seed.
fn hash_word(word: &str, seed: u64) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ seed.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    for b in word.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn unit_vector_for(word: &str, dim: usize, seed: u64) -> Vec<f32> {
    let mut state = hash_word(word, seed) | 1;
    let mut next = move || {
        // xorshift64*
        state ^= state >> 12;
        state ^= state << 25;
        state ^= state >> 27;
        let x = state.wrapping_mul(0x2545_F491_4F6C_DD1D);
        // Map to roughly N(0,1) via sum of uniforms (Irwin–Hall, k=4).
        let mut s = 0.0f32;
        for shift in [0u32, 16, 32, 48] {
            s += ((x >> shift) & 0xFFFF) as f32 / 65535.0;
        }
        (s - 2.0) * (12.0f32 / 4.0).sqrt()
    };
    let mut v: Vec<f32> = (0..dim).map(|_| next()).collect();
    let norm = v.iter().map(|x| x * x).sum::<f32>().sqrt().max(1e-6);
    v.iter_mut().for_each(|x| *x /= norm);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_tensor::linalg::cosine;

    #[test]
    fn word_vectors_are_unit_and_stable() {
        let mut e = TextEncoder::new(32, 7);
        let v1 = e.word_vector("guitar").to_vec();
        let v2 = e.word_vector("guitar").to_vec();
        assert_eq!(v1, v2);
        let norm: f32 = v1.iter().map(|x| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-4);
    }

    #[test]
    fn different_words_are_nearly_orthogonal() {
        let mut e = TextEncoder::new(64, 7);
        let a = e.word_vector("guitar").to_vec();
        let b = e.word_vector("keyboard").to_vec();
        assert!(cosine(&a, &b).abs() < 0.5);
    }

    #[test]
    fn shared_words_raise_similarity() {
        let mut e = TextEncoder::new(64, 7);
        let t1 = e.encode("warm acoustic guitar spruce tone");
        let t2 = e.encode("resonant acoustic guitar rosewood tone");
        let t3 = e.encode("colorful logic puzzle brain match");
        assert!(cosine(&t1, &t2) > cosine(&t1, &t3) + 0.2);
    }

    #[test]
    fn empty_text_is_zero() {
        let mut e = TextEncoder::new(16, 7);
        assert!(e.encode("").iter().all(|&x| x == 0.0));
    }

    #[test]
    fn batch_shape() {
        let mut e = TextEncoder::new(8, 7);
        let t = e.encode_batch(["one two", "three"]);
        assert_eq!(t.shape(), &[2, 8]);
    }

    #[test]
    fn different_seeds_give_different_spaces() {
        let mut e1 = TextEncoder::new(32, 1);
        let mut e2 = TextEncoder::new(32, 2);
        assert_ne!(e1.word_vector("guitar"), e2.word_vector("guitar"));
    }
}
