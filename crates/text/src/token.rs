//! Word-level tokenizer and vocabulary.
//!
//! The paper's backbone carries a subword tokenizer; our synthetic corpus is
//! generated from closed word fields, so a word-level vocabulary is lossless
//! and keeps the LM head small enough for CPU training. Index tokens
//! (`<a_12>` …) are *not* handled here — the LC-Rec model extends this base
//! vocabulary exactly as the paper appends OOV tokens to the tokenizer.

use std::collections::HashMap;

/// Padding token id.
pub const PAD: u32 = 0;
/// Beginning-of-sequence token id.
pub const BOS: u32 = 1;
/// End-of-sequence token id.
pub const EOS: u32 = 2;
/// Unknown-word token id.
pub const UNK: u32 = 3;

/// Number of reserved special tokens.
pub const NUM_SPECIAL: u32 = 4;

/// A fixed word-level vocabulary.
#[derive(Debug, Clone)]
pub struct Vocab {
    words: Vec<String>,
    index: HashMap<String, u32>,
}

impl Vocab {
    /// Builds a vocabulary from a corpus, keeping words with at least
    /// `min_count` occurrences. Token ids `0..4` are reserved for specials.
    pub fn build<'a>(corpus: impl IntoIterator<Item = &'a str>, min_count: usize) -> Self {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for text in corpus {
            for w in split_words(text) {
                *counts.entry(w.to_string()).or_default() += 1;
            }
        }
        let mut kept: Vec<(String, usize)> =
            counts.into_iter().filter(|(_, c)| *c >= min_count).collect(); // lint: allow(det, reason = "kept is fully sorted on the next statement with a total order (count desc, then word)")
        // Deterministic order: by descending count then lexicographic.
        kept.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut words = vec!["<pad>".into(), "<bos>".into(), "<eos>".into(), "<unk>".into()];
        words.extend(kept.into_iter().map(|(w, _)| w));
        let index = words.iter().enumerate().map(|(i, w)| (w.clone(), i as u32)).collect();
        Vocab { words, index }
    }

    /// Vocabulary size including specials.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// True if only the special tokens are present.
    pub fn is_empty(&self) -> bool {
        self.words.len() as u32 == NUM_SPECIAL
    }

    /// Token id for a word, or [`UNK`].
    pub fn id(&self, word: &str) -> u32 {
        self.index.get(word).copied().unwrap_or(UNK)
    }

    /// The word for a token id (`"<unk>"` for out-of-range ids).
    pub fn word(&self, id: u32) -> &str {
        self.words.get(id as usize).map_or("<unk>", |s| s.as_str())
    }

    /// Encodes text to token ids (no BOS/EOS added).
    pub fn encode(&self, text: &str) -> Vec<u32> {
        split_words(text).map(|w| self.id(w)).collect()
    }

    /// Decodes ids to a space-joined string, skipping special tokens.
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            if id < NUM_SPECIAL {
                continue;
            }
            if !out.is_empty() {
                out.push(' ');
            }
            out.push_str(self.word(id));
        }
        out
    }

    /// Fraction of tokens in `text` that map to [`UNK`].
    pub fn oov_rate(&self, text: &str) -> f32 {
        let ids = self.encode(text);
        if ids.is_empty() {
            return 0.0;
        }
        ids.iter().filter(|&&i| i == UNK).count() as f32 / ids.len() as f32
    }
}

/// Splits text into lowercase word tokens; punctuation separates words and
/// standalone `.`/`,` are dropped.
pub fn split_words(text: &str) -> impl Iterator<Item = &str> {
    text.split(|c: char| c.is_whitespace() || c == ',' || c == '.' || c == '"' || c == ':')
        .filter(|w| !w.is_empty())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_orders_by_frequency() {
        let v = Vocab::build(["b b b a a c", "a b"], 1);
        // b appears 4x, a 3x, c 1x.
        assert_eq!(v.id("b"), NUM_SPECIAL);
        assert_eq!(v.id("a"), NUM_SPECIAL + 1);
        assert_eq!(v.id("c"), NUM_SPECIAL + 2);
    }

    #[test]
    fn min_count_filters() {
        let v = Vocab::build(["rare common common"], 2);
        assert_eq!(v.id("rare"), UNK);
        assert_ne!(v.id("common"), UNK);
    }

    #[test]
    fn encode_decode_round_trip() {
        let v = Vocab::build(["hello brave new world"], 1);
        let ids = v.encode("hello new world");
        assert_eq!(v.decode(&ids), "hello new world");
    }

    #[test]
    fn unknown_words_map_to_unk() {
        let v = Vocab::build(["known"], 1);
        assert_eq!(v.encode("mystery"), vec![UNK]);
        assert!((v.oov_rate("mystery known") - 0.5).abs() < 1e-6);
    }

    #[test]
    fn punctuation_is_separator() {
        let words: Vec<&str> = split_words("a,b. c \"d\": e").collect();
        assert_eq!(words, vec!["a", "b", "c", "d", "e"]);
    }

    #[test]
    fn decode_skips_specials() {
        let v = Vocab::build(["x"], 1);
        assert_eq!(v.decode(&[BOS, v.id("x"), EOS, PAD]), "x");
    }

    #[test]
    fn build_is_deterministic() {
        let a = Vocab::build(["z y x w v u t"], 1);
        let b = Vocab::build(["z y x w v u t"], 1);
        assert_eq!(a.words, b.words);
    }
}
