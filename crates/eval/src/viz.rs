//! Embedding-space visualization support for Figure 4: PCA projection of
//! token embeddings plus a quantitative separation statistic, and CSV
//! export so the projection can be plotted externally.

use lcrec_tensor::linalg::{cosine, Pca};
use lcrec_tensor::Tensor;

/// A labelled 2-D point cloud: the contents of one Figure-4 panel.
#[derive(Clone, Debug)]
pub struct Projection {
    /// Point coordinates, shape `[n, 2]`.
    pub points: Tensor,
    /// Group label per point (e.g. 0 = item-index token, 1 = item-text token).
    pub labels: Vec<u8>,
    /// Names of the groups.
    pub group_names: Vec<String>,
}

impl Projection {
    /// Projects `embeddings: [n, d]` to 2-D via PCA.
    pub fn pca_2d(embeddings: &Tensor, labels: Vec<u8>, group_names: Vec<String>) -> Projection {
        assert_eq!(embeddings.rows(), labels.len());
        let pca = Pca::fit(embeddings, 2);
        Projection { points: pca.transform(embeddings), labels, group_names }
    }

    /// Mean point of one group.
    fn centroid(&self, group: u8) -> [f32; 2] {
        let mut c = [0.0f32; 2];
        let mut n = 0;
        for (i, &l) in self.labels.iter().enumerate() {
            if l == group {
                c[0] += self.points.at(i, 0);
                c[1] += self.points.at(i, 1);
                n += 1;
            }
        }
        if n > 0 {
            c[0] /= n as f32;
            c[1] /= n as f32;
        }
        c
    }

    /// Mean within-group distance to centroid for one group.
    fn spread(&self, group: u8) -> f32 {
        let c = self.centroid(group);
        let mut s = 0.0;
        let mut n = 0;
        for (i, &l) in self.labels.iter().enumerate() {
            if l == group {
                let dx = self.points.at(i, 0) - c[0];
                let dy = self.points.at(i, 1) - c[1];
                s += (dx * dx + dy * dy).sqrt();
                n += 1;
            }
        }
        if n > 0 {
            s / n as f32
        } else {
            0.0
        }
    }

    /// Separation ratio between two groups: centroid distance divided by
    /// mean spread. Figure 4's "incompatible" panel shows a large value
    /// (index tokens far from text tokens); a well-integrated space shows a
    /// small one.
    pub fn separation(&self, a: u8, b: u8) -> f32 {
        let ca = self.centroid(a);
        let cb = self.centroid(b);
        let d = ((ca[0] - cb[0]).powi(2) + (ca[1] - cb[1]).powi(2)).sqrt();
        let spread = 0.5 * (self.spread(a) + self.spread(b));
        if spread > 0.0 {
            d / spread
        } else {
            f32::INFINITY
        }
    }

    /// CSV dump: `x,y,group` per line with a header.
    pub fn to_csv(&self) -> String {
        let mut out = String::from("x,y,group\n");
        for (i, &l) in self.labels.iter().enumerate() {
            out.push_str(&format!(
                "{:.5},{:.5},{}\n",
                self.points.at(i, 0),
                self.points.at(i, 1),
                self.group_names.get(l as usize).map_or("?", |s| s.as_str()),
            ));
        }
        out
    }
}

/// Mean cosine similarity between all cross-group pairs in the *original*
/// embedding space — the high-dimensional companion to the 2-D separation
/// statistic (more faithful, no projection loss).
pub fn cross_group_cosine(embeddings: &Tensor, labels: &[u8], a: u8, b: u8) -> f32 {
    let rows_a: Vec<usize> =
        labels.iter().enumerate().filter(|(_, &l)| l == a).map(|(i, _)| i).collect();
    let rows_b: Vec<usize> =
        labels.iter().enumerate().filter(|(_, &l)| l == b).map(|(i, _)| i).collect();
    if rows_a.is_empty() || rows_b.is_empty() {
        return 0.0;
    }
    let mut s = 0.0;
    for &i in &rows_a {
        for &j in &rows_b {
            s += cosine(embeddings.row(i), embeddings.row(j));
        }
    }
    s / (rows_a.len() * rows_b.len()) as f32
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_tensor::init;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_clusters(sep: f32) -> (Tensor, Vec<u8>) {
        let mut rng = StdRng::seed_from_u64(4);
        let mut rows = Vec::new();
        let mut labels = Vec::new();
        for g in 0..2u8 {
            for _ in 0..30 {
                let noise = init::normal(&[8], 0.3, &mut rng);
                let mut r = noise.into_data();
                r[0] += g as f32 * sep;
                rows.push(r);
                labels.push(g);
            }
        }
        (Tensor::from_rows(&rows), labels)
    }

    #[test]
    fn separation_reflects_cluster_distance() {
        let (far, l1) = two_clusters(10.0);
        let (near, l2) = two_clusters(0.5);
        let pf = Projection::pca_2d(&far, l1, vec!["a".into(), "b".into()]);
        let pn = Projection::pca_2d(&near, l2, vec!["a".into(), "b".into()]);
        assert!(
            pf.separation(0, 1) > 3.0 * pn.separation(0, 1),
            "far {} vs near {}",
            pf.separation(0, 1),
            pn.separation(0, 1)
        );
    }

    #[test]
    fn csv_has_header_and_rows() {
        let (x, l) = two_clusters(1.0);
        let p = Projection::pca_2d(&x, l, vec!["idx".into(), "txt".into()]);
        let csv = p.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,y,group");
        assert_eq!(lines.len(), 61);
        assert!(lines[1].ends_with("idx") || lines[1].ends_with("txt"));
    }

    #[test]
    fn cross_group_cosine_higher_for_aligned_spaces() {
        // Aligned: both groups share a dominant direction. Separated: the
        // groups point in opposite directions.
        let mut rng = StdRng::seed_from_u64(8);
        let build = |flip: f32, rng: &mut StdRng| -> (Tensor, Vec<u8>) {
            let mut rows = Vec::new();
            let mut labels = Vec::new();
            for g in 0..2u8 {
                let sign = if g == 1 { flip } else { 1.0 };
                for _ in 0..20 {
                    let noise = init::normal(&[8], 0.3, rng);
                    let mut r = noise.into_data();
                    r[0] += 2.0 * sign;
                    rows.push(r);
                    labels.push(g);
                }
            }
            (Tensor::from_rows(&rows), labels)
        };
        let (aligned, la) = build(1.0, &mut rng);
        let (separated, ls) = build(-1.0, &mut rng);
        let ca = cross_group_cosine(&aligned, &la, 0, 1);
        let cs = cross_group_cosine(&separated, &ls, 0, 1);
        assert!(ca > 0.5, "aligned cosine {ca}");
        assert!(cs < 0.0, "separated cosine {cs}");
    }
}
