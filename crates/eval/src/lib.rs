//! # lcrec-eval
//!
//! Evaluation harness for the LC-Rec reproduction: HR@K / NDCG@K metrics,
//! the leave-one-out full-ranking protocol (§IV-A3), the Table-V pairwise
//! similar-negative probe, Figure-4 embedding visualization support, and
//! markdown report writers.

#![warn(missing_docs)]

pub mod harness;
pub mod metrics;
pub mod report;
pub mod viz;

pub use harness::{
    build_negatives, evaluate_test, evaluate_test_with, evaluate_valid, evaluate_valid_with,
    pairwise_accuracy, pairwise_accuracy_with, NegativeKind, PairwiseScorer, Ranker,
};
pub use metrics::{top_k, top_k_filtered, RankingMetrics};
pub use viz::Projection;
