//! The leave-one-out full-ranking evaluation harness (§IV-A3) and the
//! pairwise similar-negative probe of Table V.

use crate::metrics::RankingMetrics;
use lcrec_data::Dataset;
use lcrec_par::Pool;
use lcrec_tensor::linalg::cosine;
use lcrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anything that can produce a top-k ranked item list for a user context.
/// Score-based models sort full score vectors; generative models run
/// constrained beam search. `Sync` is a supertrait so users can be
/// evaluated concurrently (see [`evaluate_test_with`]).
pub trait Ranker: Sync {
    /// Top-`k` item ids, best first, for `user` with interaction `history`.
    fn rank(&self, user: usize, history: &[u32], k: usize) -> Vec<u32>;

    /// Display name for report tables.
    fn name(&self) -> String;
}

/// Evaluates a ranker over every user's held-out **test** item with full
/// ranking (the paper's protocol; beam size / candidate depth `k = 20`).
/// Users are evaluated in parallel on the ambient [`Pool::from_env`]
/// (`LCREC_THREADS`); metrics merge in user order, so results are
/// bit-identical at every thread count.
pub fn evaluate_test(ranker: &dyn Ranker, ds: &Dataset, k: usize) -> RankingMetrics {
    evaluate_test_with(&Pool::from_env(), ranker, ds, k)
}

/// [`evaluate_test`] with an explicit thread pool.
pub fn evaluate_test_with(
    pool: &Pool,
    ranker: &dyn Ranker,
    ds: &Dataset,
    k: usize,
) -> RankingMetrics {
    evaluate_split(pool, ranker, ds, k, |ds, u| ds.test_example(u))
}

/// Same over the **validation** items (model selection).
pub fn evaluate_valid(ranker: &dyn Ranker, ds: &Dataset, k: usize) -> RankingMetrics {
    evaluate_valid_with(&Pool::from_env(), ranker, ds, k)
}

/// [`evaluate_valid`] with an explicit thread pool.
pub fn evaluate_valid_with(
    pool: &Pool,
    ranker: &dyn Ranker,
    ds: &Dataset,
    k: usize,
) -> RankingMetrics {
    evaluate_split(pool, ranker, ds, k, |ds, u| ds.valid_example(u))
}

/// Shared parallel driver: ranks every user concurrently, then merges the
/// per-user partial metrics in user-index order. Because each partial holds
/// exactly one example, the ordered merge replays the serial `push`
/// sequence bit for bit.
fn evaluate_split<F>(
    pool: &Pool,
    ranker: &dyn Ranker,
    ds: &Dataset,
    k: usize,
    example: F,
) -> RankingMetrics
where
    F: for<'a> Fn(&'a Dataset, usize) -> (&'a [u32], u32) + Sync,
{
    let _span = lcrec_obs::span("eval.split");
    let parts = pool.map_range(ds.num_users(), |u| {
        let watch = lcrec_obs::stopwatch();
        let (ctx, target) = example(ds, u);
        let ranked = ranker.rank(u, ctx, k);
        let mut m = RankingMetrics::default();
        m.push(&ranked, target);
        watch.stop("eval.user_s");
        lcrec_obs::counter_add("eval.users", 1);
        m
    });
    let mut m = RankingMetrics::default();
    for p in &parts {
        m.merge(p);
    }
    m.finalize()
}

/// The kind of hard negative used in Table V.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeKind {
    /// Nearest neighbour by item **text** embedding (language semantics).
    Language,
    /// Nearest neighbour by trained collaborative item embedding
    /// (e.g. SASRec's item matrix).
    Collaborative,
    /// Uniformly random item.
    Random,
}

impl NegativeKind {
    /// Column label used in Table V.
    pub fn label(&self) -> &'static str {
        match self {
            NegativeKind::Language => "Language Neg.",
            NegativeKind::Collaborative => "Collaborative Neg.",
            NegativeKind::Random => "Random Neg.",
        }
    }
}

/// Builds, for each user's test target, one hard negative of the requested
/// kind. `text_emb` and `collab_emb` are `[num_items, d]` matrices.
pub fn build_negatives(
    ds: &Dataset,
    kind: NegativeKind,
    text_emb: &Tensor,
    collab_emb: &Tensor,
    seed: u64,
) -> Vec<(usize, u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_items = ds.num_items() as u32;
    (0..ds.num_users())
        .map(|u| {
            let (_, target) = ds.test_example(u);
            let neg = match kind {
                NegativeKind::Random => loop {
                    let c = rng.random_range(0..n_items);
                    if c != target {
                        break c;
                    }
                },
                NegativeKind::Language => nearest_other(text_emb, target),
                NegativeKind::Collaborative => nearest_other(collab_emb, target),
            };
            (u, target, neg)
        })
        .collect()
}

fn nearest_other(emb: &Tensor, target: u32) -> u32 {
    let trow = emb.row(target as usize);
    let mut best = 0u32;
    let mut bs = f32::NEG_INFINITY;
    for i in 0..emb.rows() {
        if i as u32 == target {
            continue;
        }
        let s = cosine(trow, emb.row(i));
        if s > bs {
            bs = s;
            best = i as u32;
        }
    }
    best
}

/// A model that can compare two candidate items for a user context —
/// the interface Table V probes. `Sync` is a supertrait so pairs can be
/// scored concurrently (see [`pairwise_accuracy_with`]).
pub trait PairwiseScorer: Sync {
    /// Preference score of `item` given the context; the higher-scored
    /// candidate wins.
    fn score(&self, user: usize, history: &[u32], item: u32) -> f64;

    /// Display name.
    fn name(&self) -> String;
}

/// Accuracy of choosing the true target over the hard negative
/// (ties count half, mirroring a random tie-break in expectation).
/// Pairs are scored in parallel on the ambient [`Pool::from_env`].
pub fn pairwise_accuracy(
    scorer: &dyn PairwiseScorer,
    ds: &Dataset,
    pairs: &[(usize, u32, u32)],
) -> f64 {
    pairwise_accuracy_with(&Pool::from_env(), scorer, ds, pairs)
}

/// [`pairwise_accuracy`] with an explicit thread pool. The per-pair
/// outcomes (1, ½ or 0) are summed in pair order, so the accuracy is
/// bit-identical at every thread count.
pub fn pairwise_accuracy_with(
    pool: &Pool,
    scorer: &dyn PairwiseScorer,
    ds: &Dataset,
    pairs: &[(usize, u32, u32)],
) -> f64 {
    let outcomes = pool.map(pairs, |_, &(u, target, neg)| {
        let (ctx, _) = ds.test_example(u);
        let st = scorer.score(u, ctx, target);
        let sn = scorer.score(u, ctx, neg);
        if st > sn {
            1.0
        } else if st == sn {
            0.5
        } else {
            0.0
        }
    });
    let mut correct = 0.0;
    for o in outcomes {
        correct += o;
    }
    100.0 * correct / pairs.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    /// A ranker that always returns items 0..k.
    struct Constant;
    impl Ranker for Constant {
        fn rank(&self, _u: usize, _h: &[u32], k: usize) -> Vec<u32> {
            (0..k as u32).collect()
        }
        fn name(&self) -> String {
            "constant".into()
        }
    }

    /// An oracle that ranks the true target first.
    struct Oracle {
        targets: Vec<u32>,
    }
    impl Ranker for Oracle {
        fn rank(&self, u: usize, _h: &[u32], k: usize) -> Vec<u32> {
            let mut v = vec![self.targets[u]];
            v.extend((0..k as u32 - 1).map(|i| u32::MAX - i));
            v
        }
        fn name(&self) -> String {
            "oracle".into()
        }
    }

    #[test]
    fn oracle_scores_perfect() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let targets: Vec<u32> = (0..ds.num_users()).map(|u| ds.test_example(u).1).collect();
        let m = evaluate_test(&Oracle { targets }, &ds, 20);
        assert!((m.hr1 - 1.0).abs() < 1e-12);
        assert!((m.ndcg10 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_ranker_matches_target_frequency() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let m = evaluate_test(&Constant, &ds, 20);
        // HR@10 equals the fraction of users whose test target id < 10.
        let expect = (0..ds.num_users())
            .filter(|&u| ds.test_example(u).1 < 10)
            .count() as f64
            / ds.num_users() as f64;
        assert!((m.hr10 - expect).abs() < 1e-12);
    }

    #[test]
    fn negatives_differ_from_targets() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let emb = lcrec_tensor::init::normal(
            &[ds.num_items(), 8],
            1.0,
            &mut StdRng::seed_from_u64(1),
        );
        for kind in [NegativeKind::Language, NegativeKind::Collaborative, NegativeKind::Random] {
            let pairs = build_negatives(&ds, kind, &emb, &emb, 9);
            assert_eq!(pairs.len(), ds.num_users());
            for (_, t, n) in pairs {
                assert_ne!(t, n, "{kind:?} produced target == negative");
            }
        }
    }

    #[test]
    fn language_negative_is_nearest_text_neighbour() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        // Craft embeddings where item (target+1) mod n is closest to target.
        let n = ds.num_items();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            // Small angular step so the arc never wraps: the nearest
            // neighbour by cosine is always an adjacent index.
            let angle = i as f32 * (std::f32::consts::PI / (n as f32 + 1.0));
            rows.push(vec![angle.cos(), angle.sin()]);
        }
        let emb = Tensor::from_rows(&rows);
        let pairs = build_negatives(&ds, NegativeKind::Language, &emb, &emb, 1);
        for (_, t, neg) in pairs.iter().take(5) {
            let expected_near = [t.wrapping_sub(1), t + 1];
            assert!(
                expected_near.contains(neg),
                "neg {neg} not adjacent to target {t}"
            );
        }
    }

    struct Popular;
    impl PairwiseScorer for Popular {
        fn score(&self, _u: usize, _h: &[u32], item: u32) -> f64 {
            -(item as f64)
        }
        fn name(&self) -> String {
            "popular".into()
        }
    }

    #[test]
    fn pairwise_accuracy_bounds() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let emb = lcrec_tensor::init::normal(
            &[ds.num_items(), 4],
            1.0,
            &mut StdRng::seed_from_u64(2),
        );
        let pairs = build_negatives(&ds, NegativeKind::Random, &emb, &emb, 3);
        let acc = pairwise_accuracy(&Popular, &ds, &pairs);
        assert!((0.0..=100.0).contains(&acc));
    }
}
