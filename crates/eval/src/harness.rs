//! The leave-one-out full-ranking evaluation harness (§IV-A3) and the
//! pairwise similar-negative probe of Table V.

use crate::metrics::RankingMetrics;
use lcrec_data::Dataset;
use lcrec_tensor::linalg::cosine;
use lcrec_tensor::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Anything that can produce a top-k ranked item list for a user context.
/// Score-based models sort full score vectors; generative models run
/// constrained beam search.
pub trait Ranker {
    /// Top-`k` item ids, best first, for `user` with interaction `history`.
    fn rank(&self, user: usize, history: &[u32], k: usize) -> Vec<u32>;

    /// Display name for report tables.
    fn name(&self) -> String;
}

/// Evaluates a ranker over every user's held-out **test** item with full
/// ranking (the paper's protocol; beam size / candidate depth `k = 20`).
pub fn evaluate_test(ranker: &dyn Ranker, ds: &Dataset, k: usize) -> RankingMetrics {
    let mut m = RankingMetrics::default();
    for u in 0..ds.num_users() {
        let (ctx, target) = ds.test_example(u);
        let ranked = ranker.rank(u, ctx, k);
        m.push(&ranked, target);
    }
    m.finalize()
}

/// Same over the **validation** items (model selection).
pub fn evaluate_valid(ranker: &dyn Ranker, ds: &Dataset, k: usize) -> RankingMetrics {
    let mut m = RankingMetrics::default();
    for u in 0..ds.num_users() {
        let (ctx, target) = ds.valid_example(u);
        let ranked = ranker.rank(u, ctx, k);
        m.push(&ranked, target);
    }
    m.finalize()
}

/// The kind of hard negative used in Table V.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NegativeKind {
    /// Nearest neighbour by item **text** embedding (language semantics).
    Language,
    /// Nearest neighbour by trained collaborative item embedding
    /// (e.g. SASRec's item matrix).
    Collaborative,
    /// Uniformly random item.
    Random,
}

impl NegativeKind {
    /// Column label used in Table V.
    pub fn label(&self) -> &'static str {
        match self {
            NegativeKind::Language => "Language Neg.",
            NegativeKind::Collaborative => "Collaborative Neg.",
            NegativeKind::Random => "Random Neg.",
        }
    }
}

/// Builds, for each user's test target, one hard negative of the requested
/// kind. `text_emb` and `collab_emb` are `[num_items, d]` matrices.
pub fn build_negatives(
    ds: &Dataset,
    kind: NegativeKind,
    text_emb: &Tensor,
    collab_emb: &Tensor,
    seed: u64,
) -> Vec<(usize, u32, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let n_items = ds.num_items() as u32;
    (0..ds.num_users())
        .map(|u| {
            let (_, target) = ds.test_example(u);
            let neg = match kind {
                NegativeKind::Random => loop {
                    let c = rng.random_range(0..n_items);
                    if c != target {
                        break c;
                    }
                },
                NegativeKind::Language => nearest_other(text_emb, target),
                NegativeKind::Collaborative => nearest_other(collab_emb, target),
            };
            (u, target, neg)
        })
        .collect()
}

fn nearest_other(emb: &Tensor, target: u32) -> u32 {
    let trow = emb.row(target as usize);
    let mut best = 0u32;
    let mut bs = f32::NEG_INFINITY;
    for i in 0..emb.rows() {
        if i as u32 == target {
            continue;
        }
        let s = cosine(trow, emb.row(i));
        if s > bs {
            bs = s;
            best = i as u32;
        }
    }
    best
}

/// A model that can compare two candidate items for a user context —
/// the interface Table V probes.
pub trait PairwiseScorer {
    /// Preference score of `item` given the context; the higher-scored
    /// candidate wins.
    fn score(&self, user: usize, history: &[u32], item: u32) -> f64;

    /// Display name.
    fn name(&self) -> String;
}

/// Accuracy of choosing the true target over the hard negative
/// (ties count half, mirroring a random tie-break in expectation).
pub fn pairwise_accuracy(
    scorer: &dyn PairwiseScorer,
    ds: &Dataset,
    pairs: &[(usize, u32, u32)],
) -> f64 {
    let mut correct = 0.0;
    for &(u, target, neg) in pairs {
        let (ctx, _) = ds.test_example(u);
        let st = scorer.score(u, ctx, target);
        let sn = scorer.score(u, ctx, neg);
        if st > sn {
            correct += 1.0;
        } else if st == sn {
            correct += 0.5;
        }
    }
    100.0 * correct / pairs.len().max(1) as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use lcrec_data::DatasetConfig;

    /// A ranker that always returns items 0..k.
    struct Constant;
    impl Ranker for Constant {
        fn rank(&self, _u: usize, _h: &[u32], k: usize) -> Vec<u32> {
            (0..k as u32).collect()
        }
        fn name(&self) -> String {
            "constant".into()
        }
    }

    /// An oracle that ranks the true target first.
    struct Oracle {
        targets: Vec<u32>,
    }
    impl Ranker for Oracle {
        fn rank(&self, u: usize, _h: &[u32], k: usize) -> Vec<u32> {
            let mut v = vec![self.targets[u]];
            v.extend((0..k as u32 - 1).map(|i| u32::MAX - i));
            v
        }
        fn name(&self) -> String {
            "oracle".into()
        }
    }

    #[test]
    fn oracle_scores_perfect() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let targets: Vec<u32> = (0..ds.num_users()).map(|u| ds.test_example(u).1).collect();
        let m = evaluate_test(&Oracle { targets }, &ds, 20);
        assert!((m.hr1 - 1.0).abs() < 1e-12);
        assert!((m.ndcg10 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn constant_ranker_matches_target_frequency() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let m = evaluate_test(&Constant, &ds, 20);
        // HR@10 equals the fraction of users whose test target id < 10.
        let expect = (0..ds.num_users())
            .filter(|&u| ds.test_example(u).1 < 10)
            .count() as f64
            / ds.num_users() as f64;
        assert!((m.hr10 - expect).abs() < 1e-12);
    }

    #[test]
    fn negatives_differ_from_targets() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let emb = lcrec_tensor::init::normal(
            &[ds.num_items(), 8],
            1.0,
            &mut StdRng::seed_from_u64(1),
        );
        for kind in [NegativeKind::Language, NegativeKind::Collaborative, NegativeKind::Random] {
            let pairs = build_negatives(&ds, kind, &emb, &emb, 9);
            assert_eq!(pairs.len(), ds.num_users());
            for (_, t, n) in pairs {
                assert_ne!(t, n, "{kind:?} produced target == negative");
            }
        }
    }

    #[test]
    fn language_negative_is_nearest_text_neighbour() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        // Craft embeddings where item (target+1) mod n is closest to target.
        let n = ds.num_items();
        let mut rows = Vec::with_capacity(n);
        for i in 0..n {
            // Small angular step so the arc never wraps: the nearest
            // neighbour by cosine is always an adjacent index.
            let angle = i as f32 * (std::f32::consts::PI / (n as f32 + 1.0));
            rows.push(vec![angle.cos(), angle.sin()]);
        }
        let emb = Tensor::from_rows(&rows);
        let pairs = build_negatives(&ds, NegativeKind::Language, &emb, &emb, 1);
        for (_, t, neg) in pairs.iter().take(5) {
            let expected_near = [t.wrapping_sub(1), t + 1];
            assert!(
                expected_near.contains(neg),
                "neg {neg} not adjacent to target {t}"
            );
        }
    }

    struct Popular;
    impl PairwiseScorer for Popular {
        fn score(&self, _u: usize, _h: &[u32], item: u32) -> f64 {
            -(item as f64)
        }
        fn name(&self) -> String {
            "popular".into()
        }
    }

    #[test]
    fn pairwise_accuracy_bounds() {
        let ds = lcrec_data::Dataset::generate(&DatasetConfig::tiny());
        let emb = lcrec_tensor::init::normal(
            &[ds.num_items(), 4],
            1.0,
            &mut StdRng::seed_from_u64(2),
        );
        let pairs = build_negatives(&ds, NegativeKind::Random, &emb, &emb, 3);
        let acc = pairwise_accuracy(&Popular, &ds, &pairs);
        assert!((0.0..=100.0).contains(&acc));
    }
}
