//! Top-K ranking metrics: Hit Ratio and NDCG, computed from ranked lists
//! exactly as in the paper's full-ranking evaluation (§IV-A3).

/// Position (0-based) of `target` in `ranked`, if present.
pub fn rank_of(ranked: &[u32], target: u32) -> Option<usize> {
    ranked.iter().position(|&i| i == target)
}

/// HR@k for a single example: 1 if the target appears in the top-k.
pub fn hit_at(ranked: &[u32], target: u32, k: usize) -> f64 {
    match rank_of(ranked, target) {
        Some(r) if r < k => 1.0,
        _ => 0.0,
    }
}

/// NDCG@k for a single example with one relevant item:
/// `1 / log2(rank + 2)` if the target is in the top-k, else 0.
pub fn ndcg_at(ranked: &[u32], target: u32, k: usize) -> f64 {
    match rank_of(ranked, target) {
        Some(r) if r < k => 1.0 / ((r as f64 + 2.0).log2()),
        _ => 0.0,
    }
}

/// Reciprocal rank of the target within the top-k (0 if absent) — not
/// reported in the paper's tables but standard in the area and useful for
/// diagnosing beam-width effects.
pub fn mrr_at(ranked: &[u32], target: u32, k: usize) -> f64 {
    match rank_of(ranked, target) {
        Some(r) if r < k => 1.0 / (r as f64 + 1.0),
        _ => 0.0,
    }
}

/// Aggregated metrics over an evaluation run — one Table III cell group.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RankingMetrics {
    /// HR@1.
    pub hr1: f64,
    /// HR@5.
    pub hr5: f64,
    /// HR@10.
    pub hr10: f64,
    /// NDCG@5.
    pub ndcg5: f64,
    /// NDCG@10.
    pub ndcg10: f64,
    /// Number of evaluated examples.
    pub count: usize,
}

impl RankingMetrics {
    /// Accumulates one example.
    pub fn push(&mut self, ranked: &[u32], target: u32) {
        self.hr1 += hit_at(ranked, target, 1);
        self.hr5 += hit_at(ranked, target, 5);
        self.hr10 += hit_at(ranked, target, 10);
        self.ndcg5 += ndcg_at(ranked, target, 5);
        self.ndcg10 += ndcg_at(ranked, target, 10);
        self.count += 1;
    }

    /// Adds another **un-finalized** partial sum into `self`. Merging
    /// per-user partials in user-index order replays the exact f64
    /// addition sequence of a serial [`RankingMetrics::push`] loop, which
    /// is what keeps parallel evaluation bit-identical to serial runs.
    pub fn merge(&mut self, other: &RankingMetrics) {
        self.hr1 += other.hr1;
        self.hr5 += other.hr5;
        self.hr10 += other.hr10;
        self.ndcg5 += other.ndcg5;
        self.ndcg10 += other.ndcg10;
        self.count += other.count;
    }

    /// Finalizes sums into means.
    pub fn finalize(mut self) -> Self {
        if self.count > 0 {
            let n = self.count as f64;
            self.hr1 /= n;
            self.hr5 /= n;
            self.hr10 /= n;
            self.ndcg5 /= n;
            self.ndcg10 /= n;
        }
        self
    }

    /// Mean of several finalized metric sets (e.g. over instruction
    /// templates, as the paper reports for LC-Rec).
    pub fn average(runs: &[RankingMetrics]) -> RankingMetrics {
        let mut out = RankingMetrics::default();
        if runs.is_empty() {
            return out;
        }
        for r in runs {
            out.hr1 += r.hr1;
            out.hr5 += r.hr5;
            out.hr10 += r.hr10;
            out.ndcg5 += r.ndcg5;
            out.ndcg10 += r.ndcg10;
        }
        let n = runs.len() as f64;
        out.hr1 /= n;
        out.hr5 /= n;
        out.hr10 /= n;
        out.ndcg5 /= n;
        out.ndcg10 /= n;
        out.count = runs.iter().map(|r| r.count).sum::<usize>() / runs.len();
        out
    }

    /// The five metric values in Table III row order.
    pub fn as_row(&self) -> [f64; 5] {
        [self.hr1, self.hr5, self.hr10, self.ndcg5, self.ndcg10]
    }
}

/// Returns the indices of the `k` largest scores, descending, skipping
/// indices for which `valid` returns false.
pub fn top_k_filtered(scores: &[f32], k: usize, valid: impl Fn(usize) -> bool) -> Vec<u32> {
    let mut idx: Vec<u32> =
        (0..scores.len() as u32).filter(|&i| valid(i as usize)).collect();
    let k = k.min(idx.len());
    if k == 0 {
        // select_nth_unstable_by(k-1) would panic on an empty candidate
        // list (every index filtered out, or k == 0): nothing to rank.
        return Vec::new();
    }
    idx.select_nth_unstable_by(k - 1, |&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.truncate(k);
    idx.sort_by(|&a, &b| {
        scores[b as usize]
            .partial_cmp(&scores[a as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx
}

/// Top-k without filtering.
pub fn top_k(scores: &[f32], k: usize) -> Vec<u32> {
    top_k_filtered(scores, k, |_| true)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hit_and_ndcg_basic() {
        let ranked = [5u32, 3, 9, 1];
        assert_eq!(hit_at(&ranked, 5, 1), 1.0);
        assert_eq!(hit_at(&ranked, 3, 1), 0.0);
        assert_eq!(hit_at(&ranked, 3, 5), 1.0);
        assert_eq!(hit_at(&ranked, 42, 10), 0.0);
        assert!((ndcg_at(&ranked, 5, 10) - 1.0).abs() < 1e-12);
        assert!((ndcg_at(&ranked, 3, 10) - 1.0 / 3f64.log2()).abs() < 1e-12);
        assert_eq!(ndcg_at(&ranked, 9, 2), 0.0, "rank 2 outside top-2");
    }

    #[test]
    fn metrics_accumulate_and_finalize() {
        let mut m = RankingMetrics::default();
        m.push(&[1, 2, 3], 1); // hit@1
        m.push(&[1, 2, 3], 3); // hit@5, not @1
        m.push(&[1, 2, 3], 9); // miss
        let f = m.finalize();
        assert!((f.hr1 - 1.0 / 3.0).abs() < 1e-12);
        assert!((f.hr5 - 2.0 / 3.0).abs() < 1e-12);
        assert_eq!(f.count, 3);
    }

    #[test]
    fn mrr_is_reciprocal_rank() {
        let ranked = [7u32, 3, 9];
        assert_eq!(mrr_at(&ranked, 7, 10), 1.0);
        assert_eq!(mrr_at(&ranked, 3, 10), 0.5);
        assert_eq!(mrr_at(&ranked, 9, 2), 0.0, "outside top-k");
        assert_eq!(mrr_at(&ranked, 42, 10), 0.0);
    }

    #[test]
    fn ndcg_decays_with_rank() {
        let ranked: Vec<u32> = (0..10).collect();
        let values: Vec<f64> = (0..10).map(|t| ndcg_at(&ranked, t, 10)).collect();
        for w in values.windows(2) {
            assert!(w[0] > w[1], "NDCG must strictly decay: {values:?}");
        }
    }

    #[test]
    fn top_k_orders_descending() {
        let scores = [0.1, 0.9, 0.5, 0.7];
        assert_eq!(top_k(&scores, 3), vec![1, 3, 2]);
        assert_eq!(top_k(&scores, 10), vec![1, 3, 2, 0], "k larger than n is clamped");
    }

    #[test]
    fn top_k_filter_excludes() {
        let scores = [0.9, 0.8, 0.7];
        let ranked = top_k_filtered(&scores, 2, |i| i != 0);
        assert_eq!(ranked, vec![1, 2]);
    }

    #[test]
    fn average_over_templates() {
        let a = RankingMetrics { hr1: 0.2, hr5: 0.4, hr10: 0.5, ndcg5: 0.3, ndcg10: 0.35, count: 10 };
        let b = RankingMetrics { hr1: 0.4, hr5: 0.6, hr10: 0.7, ndcg5: 0.5, ndcg10: 0.55, count: 10 };
        let avg = RankingMetrics::average(&[a, b]);
        assert!((avg.hr1 - 0.3).abs() < 1e-12);
        assert!((avg.ndcg10 - 0.45).abs() < 1e-12);
    }
}
