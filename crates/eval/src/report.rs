//! Markdown report writers: render experiment results in the same row/column
//! layout as the paper's tables so `EXPERIMENTS.md` can be regenerated.

use crate::metrics::RankingMetrics;

/// Builds a markdown table from a header and rows of cells.
pub fn markdown_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push('|');
    for h in header {
        out.push_str(&format!(" {h} |"));
    }
    out.push('\n');
    out.push('|');
    for _ in header {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push('|');
        for c in row {
            out.push_str(&format!(" {c} |"));
        }
        out.push('\n');
    }
    out
}

/// Formats a metric value in the paper's 4-decimal style.
pub fn fmt_metric(v: f64) -> String {
    format!("{v:.4}")
}

/// A Table-III-style block: methods × five metrics for one dataset.
pub fn metrics_table(dataset: &str, results: &[(String, RankingMetrics)]) -> String {
    let header = ["Method", "HR@1", "HR@5", "HR@10", "NDCG@5", "NDCG@10"];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|(name, m)| {
            let mut row = vec![name.clone()];
            row.extend(m.as_row().iter().map(|&v| fmt_metric(v)));
            row
        })
        .collect();
    format!("### {dataset}\n\n{}", markdown_table(&header, &rows))
}

/// Relative improvement of the last row over the best of the others —
/// the paper's "Improv." column, in percent per metric.
pub fn improvement_row(results: &[(String, RankingMetrics)]) -> Option<Vec<f64>> {
    if results.len() < 2 {
        return None;
    }
    let (last, rest) = results.split_last()?;
    let ours = last.1.as_row();
    let mut best = [f64::NEG_INFINITY; 5];
    for (_, m) in rest {
        for (b, v) in best.iter_mut().zip(m.as_row()) {
            *b = b.max(v);
        }
    }
    Some(
        ours.iter()
            .zip(best)
            .map(|(&o, b)| if b > 0.0 { 100.0 * (o - b) / b } else { 0.0 })
            .collect(),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(hr1: f64) -> RankingMetrics {
        RankingMetrics { hr1, hr5: hr1 * 2.0, hr10: hr1 * 3.0, ndcg5: hr1 * 1.5, ndcg10: hr1 * 1.8, count: 10 }
    }

    #[test]
    fn table_renders_markdown() {
        let t = metrics_table("Games", &[("SASRec".into(), m(0.01)), ("LC-Rec".into(), m(0.02))]);
        assert!(t.contains("### Games"));
        assert!(t.contains("| SASRec |"));
        assert!(t.contains("0.0100"));
        assert!(t.lines().filter(|l| l.starts_with('|')).count() == 4);
    }

    #[test]
    fn improvement_relative_to_best_baseline() {
        let rows = vec![
            ("A".into(), m(0.010)),
            ("B".into(), m(0.020)),
            ("ours".into(), m(0.025)),
        ];
        let imp = improvement_row(&rows).expect("some");
        assert!((imp[0] - 25.0).abs() < 1e-9, "{imp:?}");
    }

    #[test]
    fn improvement_requires_two_rows() {
        assert!(improvement_row(&[("solo".into(), m(0.1))]).is_none());
    }
}
