//! Shared experiment setup: datasets, text embeddings, learned indices and
//! trained models at either of two scales (`Tiny` for tests/benches,
//! `Small` for the checked-in experiment runs).

use lcrec_core::{LcRec, LcRecConfig, LmConfig, P5Cid, P5CidConfig, Tiger, TigerConfig};
use lcrec_data::{Dataset, DatasetConfig, ScaleConfig, TaskSet};
use lcrec_rqvae::{build_indices, IndexerKind, ItemIndices, RqVaeConfig};
use lcrec_seqrec::RecConfig;
use lcrec_tensor::Tensor;
use lcrec_text::TextEncoder;

/// Text-embedding dimension fed to the RQ-VAE.
pub const TEXT_DIM: usize = 48;

/// Experiment scale.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scale {
    /// Unit-test / criterion scale.
    Tiny,
    /// The scale the checked-in experiment outputs were produced at.
    Small,
}

impl Scale {
    /// Parses `"tiny"` / `"small"`.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            _ => None,
        }
    }

    /// The names [`Scale::parse`] accepts — the repro binary lists these
    /// when rejecting an unknown scale instead of defaulting silently.
    pub const NAMES: &'static [&'static str] = &["tiny", "small"];
}

/// Serving-scale tier for the `scale` experiment (`repro --exp scale
/// [--tier …]`): pairs a [`ScaleConfig`] workload (catalog, population,
/// Zipf traffic) with an LM sized so that successive tiers step from
/// cache-resident weights to a weight set larger than L2 — see
/// docs/PERFORMANCE.md, "Scale tiers".
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleTier {
    /// Cache-resident control point: ~2k items, 5k users, the small LM.
    Small,
    /// Weights around the L2 boundary: 20k items, 100k users.
    Medium,
    /// Weights far beyond L2: 120k items, 1M users, `LmConfig::large`.
    Large,
}

impl ScaleTier {
    /// Every tier, in increasing size — the default set the `scale`
    /// experiment runs.
    pub const ALL: [ScaleTier; 3] = [ScaleTier::Small, ScaleTier::Medium, ScaleTier::Large];

    /// The names [`ScaleTier::parse`] accepts (plus `all` handled by the
    /// repro binary) — listed in its unknown-tier error message.
    pub const NAMES: &'static [&'static str] = &["small", "medium", "large"];

    /// Parses a single tier name.
    pub fn parse(s: &str) -> Option<ScaleTier> {
        match s {
            "small" => Some(ScaleTier::Small),
            "medium" => Some(ScaleTier::Medium),
            "large" => Some(ScaleTier::Large),
            _ => None,
        }
    }

    /// Display name, matching [`ScaleTier::parse`].
    pub fn name(self) -> &'static str {
        match self {
            ScaleTier::Small => "small",
            ScaleTier::Medium => "medium",
            ScaleTier::Large => "large",
        }
    }

    /// The tier's synthetic workload (catalog, population, traffic law).
    pub fn workload(self) -> ScaleConfig {
        match self {
            ScaleTier::Small => ScaleConfig::tier_small(),
            ScaleTier::Medium => ScaleConfig::tier_medium(),
            ScaleTier::Large => ScaleConfig::tier_large(),
        }
    }
}

/// LM configuration for a scale tier at the given (extended) vocabulary
/// size; `None` is the micro configuration the tiny smoke run uses.
pub fn scale_lm_config(tier: Option<ScaleTier>, vocab: usize) -> LmConfig {
    match tier {
        None => LmConfig::test(vocab),
        Some(ScaleTier::Small) => LmConfig::small(vocab),
        Some(ScaleTier::Medium) => LmConfig {
            vocab,
            dim: 128,
            layers: 3,
            heads: 8,
            ff_hidden: 256,
            max_seq: 128,
            dropout: 0.1,
            seed: 1234,
        },
        Some(ScaleTier::Large) => LmConfig::large(vocab),
    }
}

/// The three datasets of Table II at the chosen scale (`Tiny` uses one
/// small fixture relabelled, to keep tests fast).
pub fn dataset_suite(scale: Scale) -> Vec<Dataset> {
    match scale {
        Scale::Small => DatasetConfig::small_suite().iter().map(Dataset::generate).collect(),
        Scale::Tiny => vec![Dataset::generate(&DatasetConfig::tiny())],
    }
}

/// A single dataset by paper name at the given scale (`Tiny` always maps
/// to the fixture).
pub fn dataset(scale: Scale, name: &str) -> Dataset {
    match scale {
        Scale::Tiny => Dataset::generate(&DatasetConfig::tiny()),
        Scale::Small => {
            let cfg = match name {
                "Instruments" => DatasetConfig::instruments_small(),
                "Arts" => DatasetConfig::arts_small(),
                "Games" => DatasetConfig::games_small(),
                other => panic!("unknown dataset {other}"),
            };
            Dataset::generate(&cfg)
        }
    }
}

/// Item text embeddings (title + description, mean-pooled) — the input to
/// all indexing schemes.
pub fn item_embeddings(ds: &Dataset) -> Tensor {
    let mut enc = TextEncoder::new(TEXT_DIM, 0x7E87);
    let texts: Vec<String> = ds.catalog.items.iter().map(|i| i.full_text()).collect();
    enc.encode_batch(texts.iter().map(String::as_str))
}

/// RQ-VAE configuration for a dataset at a scale.
pub fn rq_config(scale: Scale, num_items: usize) -> RqVaeConfig {
    let mut cfg = RqVaeConfig::small(TEXT_DIM, num_items);
    if scale == Scale::Tiny {
        cfg.epochs = 8;
        cfg.levels = 3;
        cfg.codebook_size = 8;
        cfg.latent_dim = 8;
        cfg.hidden = vec![16];
    }
    cfg
}

/// Learned item indices under a scheme.
pub fn indices(scale: Scale, ds: &Dataset, emb: &Tensor, kind: IndexerKind) -> ItemIndices {
    build_indices(kind, emb, &rq_config(scale, ds.num_items()))
}

/// LC-Rec configuration at a scale with a chosen task set.
pub fn lcrec_config(scale: Scale, tasks: TaskSet) -> LcRecConfig {
    let mut cfg = match scale {
        Scale::Small => LcRecConfig::small(),
        Scale::Tiny => LcRecConfig::test(),
    };
    cfg.tasks = tasks;
    if scale == Scale::Small {
        cfg.train.epochs = 8;
        cfg.train.batch = 32;
        cfg.train.warmup = 50;
        cfg.train.max_steps = Some(2600);
    }
    cfg
}

/// Builds and tunes an LC-Rec model.
pub fn train_lcrec(scale: Scale, ds: &Dataset, idx: ItemIndices, tasks: TaskSet) -> LcRec {
    let mut model = LcRec::build(ds, idx, lcrec_config(scale, tasks));
    model.fit(ds);
    model
}

thread_local! {
    static LCREC_CACHE: std::cell::RefCell<std::collections::HashMap<String, std::rc::Rc<LcRec>>> =
        std::cell::RefCell::new(std::collections::HashMap::new());
}

/// Like [`train_lcrec`] but memoized per process on (scale, dataset,
/// task set, indexing scheme). Datasets and indices are deterministic
/// under their seeds, so identical keys yield identical models; the
/// experiment suite uses this to avoid re-tuning the same configuration
/// for every figure.
pub fn train_lcrec_cached(
    scale: Scale,
    ds: &Dataset,
    idx: ItemIndices,
    tasks: TaskSet,
    scheme: &str,
) -> std::rc::Rc<LcRec> {
    let key = format!("{scale:?}/{}/{tasks:?}/{scheme}", ds.catalog.taxonomy.name);
    LCREC_CACHE.with(|c| {
        if let Some(m) = c.borrow().get(&key) {
            eprintln!("[repro]   (cache hit: {key})");
            return m.clone();
        }
        let model = std::rc::Rc::new(train_lcrec(scale, ds, idx, tasks));
        c.borrow_mut().insert(key, model.clone());
        model
    })
}

/// Baseline training configuration at a scale.
pub fn rec_config(scale: Scale) -> RecConfig {
    match scale {
        Scale::Small => {
            let mut c = RecConfig::small();
            c.epochs = 10;
            c
        }
        Scale::Tiny => RecConfig::test(),
    }
}

/// TIGER configuration.
pub fn tiger_config(scale: Scale) -> TigerConfig {
    match scale {
        Scale::Small => TigerConfig::small(),
        Scale::Tiny => TigerConfig::test(),
    }
}

/// Trains TIGER on a dataset with the given (semantic) indices.
pub fn train_tiger(scale: Scale, ds: &Dataset, idx: ItemIndices) -> Tiger {
    let mut t = Tiger::new(idx, tiger_config(scale));
    t.fit(ds);
    t
}

/// Trains P5-CID on a dataset.
pub fn train_p5cid(scale: Scale, ds: &Dataset) -> P5Cid {
    let cfg = match scale {
        Scale::Small => P5CidConfig::small(),
        Scale::Tiny => P5CidConfig::test(),
    };
    let mut m = P5Cid::build(ds, cfg);
    m.fit(ds);
    m
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_suite_is_one_fixture() {
        let suite = dataset_suite(Scale::Tiny);
        assert_eq!(suite.len(), 1);
    }

    #[test]
    fn embeddings_match_items() {
        let ds = dataset(Scale::Tiny, "Games");
        let emb = item_embeddings(&ds);
        assert_eq!(emb.rows(), ds.num_items());
        assert_eq!(emb.cols(), TEXT_DIM);
    }

    #[test]
    fn indices_are_unique_at_tiny_scale() {
        let ds = dataset(Scale::Tiny, "Games");
        let emb = item_embeddings(&ds);
        let idx = indices(Scale::Tiny, &ds, &emb, IndexerKind::LcRec);
        assert!(idx.is_unique());
        assert_eq!(idx.len(), ds.num_items());
    }
}
