//! # lcrec-bench
//!
//! The experiment harness: one reproduction function per table/figure of
//! the LC-Rec paper (see `experiments`), shared setup helpers, the `repro`
//! binary that regenerates them, and Criterion micro-benchmarks for every
//! performance-relevant component.

#![warn(missing_docs)]

pub mod experiments;
pub mod setup;

pub use experiments::ExpOutput;
pub use setup::{Scale, ScaleTier};
